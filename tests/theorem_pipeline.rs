//! The theorem-level pipeline across structured workload families:
//! convexity (Theorem 1), fatness (Theorems 2/4.1/4.2), characteristic
//! polynomial degrees (Section 2.2) and Lemma 2.3 invariance — all through
//! the public umbrella API.

use sinr_diagrams::algebra::SturmChain;
use sinr_diagrams::core::{bounds, charpoly, convexity, gen, Network, StationId};
use sinr_diagrams::geometry::Similarity;
use sinr_diagrams::prelude::*;

fn families() -> Vec<(&'static str, Network)> {
    vec![
        (
            "ring6",
            Network::uniform(gen::ring(6, 4.0), 0.02, 2.0).unwrap(),
        ),
        (
            "grid3x3",
            Network::uniform(gen::grid(3, 3, 3.0), 0.01, 3.0).unwrap(),
        ),
        (
            "colinear",
            Network::uniform(gen::positive_colinear(&[2.0, 3.5, 6.0, 9.0]), 0.0, 2.0).unwrap(),
        ),
        ("clustered", {
            use rand::SeedableRng;
            let mut rng = rand::rngs::StdRng::seed_from_u64(8);
            let pts = gen::clustered(&mut rng, 3, 3, 6.0, 0.8);
            Network::uniform(pts, 0.01, 2.5).unwrap()
        }),
        (
            "extreme-delta",
            Network::uniform(gen::delta_extreme(6, 2.0), 0.0, 2.0).unwrap(),
        ),
    ]
}

#[test]
fn theorem1_convexity_across_families() {
    for (name, net) in families() {
        assert!(net.satisfies_convexity_preconditions(), "{name}");
        for i in net.ids() {
            let zone = net.reception_zone(i);
            let Some(report) = convexity::check_zone_convexity(&zone, 18, 10, 1e-7) else {
                continue;
            };
            assert!(
                report.is_convex(),
                "{name}/{i}: {} violations",
                report.violations.len()
            );
        }
    }
}

#[test]
fn theorem2_fatness_across_families() {
    for (name, net) in families() {
        let bound = bounds::fatness_bound(net.beta()).unwrap();
        for i in net.ids() {
            let Some(profile) = net.reception_zone(i).radial_profile(128) else {
                continue;
            };
            if let Some(phi) = profile.fatness() {
                assert!(phi <= bound + 1e-6, "{name}/{i}: φ={phi} > {bound}");
            }
        }
    }
}

#[test]
fn theorem41_bounds_across_families() {
    for (name, net) in families() {
        for i in net.ids() {
            let zb = bounds::zone_bounds(&net, i);
            let Some(profile) = net.reception_zone(i).radial_profile(128) else {
                continue;
            };
            assert!(
                profile.delta() >= zb.delta_lower - 1e-9,
                "{name}/{i}: δ={} < {}",
                profile.delta(),
                zb.delta_lower
            );
            if let Some(up) = zb.delta_upper {
                assert!(
                    profile.big_delta() <= up + 1e-9,
                    "{name}/{i}: Δ={} > {}",
                    profile.big_delta(),
                    up
                );
            }
        }
    }
}

#[test]
fn characteristic_polynomial_degrees() {
    for (name, net) in families() {
        let expected = charpoly::expected_degree(&net);
        let h = charpoly::restricted_to_line(
            &net,
            StationId(0),
            Point::new(0.13, -0.77),
            sinr_diagrams::geometry::Vector::new(1.0, 0.41),
        );
        assert_eq!(h.degree(), Some(expected), "{name}");
        // Sturm on the restriction finds at most 2 roots on any window
        // (convex zones, Lemma 2.1).
        let count = SturmChain::new(&h).count_roots_in(-100.0, 100.0);
        assert!(count <= 2, "{name}: {count} boundary crossings");
    }
}

#[test]
fn lemma_2_3_invariance_through_pipeline() {
    // A similarity-transformed network has identical reception structure:
    // same convexity verdicts, same fatness, scaled δ/Δ.
    let net = Network::uniform(gen::ring(5, 3.0), 0.04, 2.0).unwrap();
    let f = Similarity::new(0.7, 3.0, sinr_diagrams::geometry::Vector::new(10.0, -4.0));
    let mapped = net.transformed(&f);
    for i in net.ids() {
        let p1 = net.reception_zone(i).radial_profile(64).unwrap();
        let p2 = mapped.reception_zone(i).radial_profile(64).unwrap();
        // Radii scale by σ = 3.
        assert!(
            (p2.delta() / p1.delta() - 3.0).abs() < 1e-3,
            "{i}: δ ratio {}",
            p2.delta() / p1.delta()
        );
        assert!((p2.big_delta() / p1.big_delta() - 3.0).abs() < 1e-3);
        // Fatness is scale-invariant.
        let (f1, f2) = (p1.fatness().unwrap(), p2.fatness().unwrap());
        assert!((f1 - f2).abs() < 1e-4, "{i}: fatness {f1} vs {f2}");
    }
}

#[test]
fn heavier_interference_shrinks_zones() {
    // Sanity of the model across the pipeline: adding a station can only
    // reduce (or keep) every other zone.
    let base = Network::uniform(gen::ring(4, 4.0), 0.01, 2.0).unwrap();
    let bigger = base.with_station(Point::new(0.0, 0.0), 1.0).unwrap();
    for i in base.ids() {
        let before = base.reception_zone(i).radial_profile(64).unwrap();
        let after = bigger.reception_zone(i).radial_profile(64).unwrap();
        assert!(
            after.big_delta() <= before.big_delta() + 1e-9,
            "{i}: Δ grew after adding an interferer"
        );
        assert!(after.delta() <= before.delta() + 1e-9);
    }
}

#[test]
fn beta_one_zones_still_convex() {
    // Theorem 1 explicitly includes β = 1 (non-trivial networks).
    let net = Network::uniform(gen::ring(5, 4.0), 0.05, 1.0).unwrap();
    assert!(!net.is_trivial());
    for i in net.ids() {
        let zone = net.reception_zone(i);
        let Some(report) = convexity::check_zone_convexity(&zone, 16, 8, 1e-7) else {
            continue;
        };
        assert!(
            report.is_convex(),
            "{i} at β=1: {}",
            report.violations.len()
        );
    }
}
