//! Theorem 3 end-to-end: the full point-location pipeline against ground
//! truth, across network families and ε values.

use sinr_diagrams::core::gen;
use sinr_diagrams::pointloc::qds::verify_qds;
use sinr_diagrams::pointloc::{Located, PointLocator, Qds, QdsConfig};
use sinr_diagrams::prelude::*;

/// Never-wrong property: definite answers always match direct evaluation.
#[test]
fn definite_answers_are_never_wrong() {
    for (seed, n, beta) in [(3u64, 4usize, 2.0), (11, 8, 1.7), (29, 6, 4.0)] {
        let net = gen::random_separated_network(seed, n, 6.0, 1.4, 0.01, beta).unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        let mut uncertain = 0usize;
        let mut total = 0usize;
        for a in -60..=60 {
            for b in -60..=60 {
                let p = Point::new(a as f64 * 0.15, b as f64 * 0.15);
                total += 1;
                match ds.locate(p) {
                    Located::Reception(i) => {
                        assert!(
                            net.is_heard(i, p),
                            "seed {seed}: wrong Reception({i}) at {p}"
                        )
                    }
                    Located::Silent => {
                        assert_eq!(net.heard_at(p), None, "seed {seed}: wrong Silent at {p}")
                    }
                    Located::Uncertain(i) => {
                        uncertain += 1;
                        // Uncertain must at least name the only candidate.
                        if let Some(h) = net.heard_at(p) {
                            assert_eq!(h, i, "uncertain candidate mismatch at {p}");
                        }
                    }
                }
            }
        }
        assert!(
            uncertain * 5 < total,
            "seed {seed}: {uncertain}/{total} uncertain — band too fat"
        );
    }
}

/// The ε-area guarantee across ε values and stations.
#[test]
fn epsilon_area_guarantee() {
    let net = gen::random_separated_network(17, 5, 5.0, 1.5, 0.02, 2.0).unwrap();
    for eps in [0.5, 0.25, 0.1] {
        let config = QdsConfig::with_epsilon(eps);
        for i in net.ids() {
            let qds = Qds::build(&net, i, &config).unwrap();
            let zone_area = net.reception_zone(i).area_estimate(720).unwrap();
            assert!(
                qds.question_area() <= eps * zone_area * (1.0 + 1e-9),
                "ε={eps} {i}: area(H?)={} > ε·area(H)={}",
                qds.question_area(),
                eps * zone_area
            );
        }
    }
}

/// Full verification (the three guarantees) via the verifier helper.
#[test]
fn verifier_confirms_guarantees() {
    let net = sinr_diagrams::core::Network::uniform(gen::ring(5, 4.0), 0.01, 2.5).unwrap();
    let config = QdsConfig::with_epsilon(0.2);
    for i in net.ids() {
        let qds = Qds::build(&net, i, &config).unwrap();
        let v = verify_qds(&net, &qds, &config, 121);
        assert!(v.holds(), "{i}: {v:?}");
        assert!(
            v.plus_samples > 100,
            "{i}: too few T+ samples ({})",
            v.plus_samples
        );
    }
}

/// Structure size: total T? cells grow like 1/ε (paper: size O(n·ε⁻¹)).
#[test]
fn size_grows_inverse_epsilon() {
    let net = gen::random_separated_network(23, 4, 5.0, 1.5, 0.0, 3.0).unwrap();
    let sizes: Vec<usize> = [0.4, 0.2, 0.1]
        .iter()
        .map(|eps| {
            PointLocator::build(&net, &QdsConfig::with_epsilon(*eps))
                .unwrap()
                .total_question_cells()
        })
        .collect();
    assert!(sizes[1] > sizes[0] && sizes[2] > sizes[1]);
    // Halving ε should roughly double the cell count (within generous
    // slack: γ ∝ ε means ring cells ∝ 1/ε while the 9-cell dilation adds
    // constant factors).
    let r1 = sizes[1] as f64 / sizes[0] as f64;
    let r2 = sizes[2] as f64 / sizes[1] as f64;
    assert!(r1 > 1.3 && r1 < 3.5, "ratio {r1}");
    assert!(r2 > 1.3 && r2 < 3.5, "ratio {r2}");
}

/// Dispatch correctness: the DS answer is consistent with the fact that
/// only the nearest station can be heard.
#[test]
fn dispatch_respects_observation_2_2() {
    let net = gen::random_separated_network(31, 7, 6.0, 1.3, 0.02, 2.2).unwrap();
    let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
    let tree = KdTree::build(net.positions().to_vec());
    for a in -30..=30 {
        for b in -30..=30 {
            let p = Point::new(a as f64 * 0.3, b as f64 * 0.3);
            if let Some(i) = ds.locate(p).station() {
                let (nearest, _) = tree.nearest(p).unwrap();
                assert_eq!(
                    i.index(),
                    nearest,
                    "named station must be the nearest at {p}"
                );
            }
        }
    }
}

/// Degenerate family: colocated stations, huge noise, tight budgets.
#[test]
fn robustness_of_build() {
    // Colocated pair plus normal stations: builds, locates sensibly.
    let net = sinr_diagrams::core::Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(5.0, 0.0),
            Point::new(0.0, 5.0),
        ],
        0.01,
        2.0,
    )
    .unwrap();
    let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
    assert_eq!(ds.locate(Point::new(0.4, 0.0)), Located::Silent);
    match ds.locate(Point::new(5.0, 0.05)) {
        Located::Reception(i) | Located::Uncertain(i) => assert_eq!(i.index(), 2),
        Located::Silent => panic!("next to s2 it cannot be silent"),
    }

    // Huge noise: zones shrink to tiny noise-limited discs; still fine.
    let noisy = sinr_diagrams::core::Network::uniform(
        vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
        5.0,
        1.5,
    )
    .unwrap();
    let ds = PointLocator::build(&noisy, &QdsConfig::with_epsilon(0.3)).unwrap();
    // Noise-limited radius 1/√(βN) ≈ 0.365.
    match ds.locate(Point::new(0.1, 0.0)) {
        Located::Reception(i) | Located::Uncertain(i) => assert_eq!(i.index(), 0),
        Located::Silent => panic!("inside the noise-limited disc"),
    }
    assert_eq!(ds.locate(Point::new(2.0, 0.0)), Located::Silent);

    // A cell budget that cannot be met fails loudly, not silently.
    let mut tight = QdsConfig::with_epsilon(0.05);
    tight.max_cells = 10;
    assert!(PointLocator::build(&net, &tight).is_err());
}
