//! End-to-end reproduction of the paper's numerically generated figures,
//! exercised through the public umbrella API (`sinr_diagrams`).

use sinr_diagrams::core::StationId;
use sinr_diagrams::diagram::figures;
use sinr_diagrams::diagram::{measure, render};
use sinr_diagrams::graphs::compare::{classify_at, Comparison};
use sinr_diagrams::prelude::*;

#[test]
fn figure1_dynamic_reception_narrative() {
    let fig = figures::figure1();
    // (A) p hears s2 (station index 1).
    assert_eq!(fig.panel_a.heard_at(fig.receiver), Some(StationId(1)));
    // (B) after moving s1, nothing is heard.
    assert_eq!(fig.panel_b.heard_at(fig.receiver), None);
    // (C) silencing s3 lets s1 through.
    assert_eq!(fig.panel_c.heard_at(fig.receiver), Some(StationId(0)));

    // The rasterised diagrams tell the same story at the receiver pixel.
    for (net, expected) in [
        (&fig.panel_a, Some(StationId(1))),
        (&fig.panel_b, None),
        (&fig.panel_c, Some(StationId(0))),
    ] {
        let map = ReceptionMap::compute(net, fig.window, 241, 241);
        // Find the pixel containing the receiver.
        let mut label = None;
        let mut best = f64::INFINITY;
        for (c, r, l) in map.iter() {
            let d = map.pixel_center(c, r).dist(fig.receiver);
            if d < best {
                best = d;
                label = l.station();
            }
        }
        assert_eq!(
            label, expected,
            "raster disagrees with pointwise evaluation"
        );
    }
}

#[test]
fn figure2_cumulative_interference_false_positive() {
    let fig = figures::figure2();
    let all = vec![true; 4];
    let outcome = classify_at(&fig.network, &fig.udg, &all, fig.receiver);
    assert_eq!(outcome, Comparison::FalsePositive(StationId(0)));

    // The UDG diagram and SINR diagram genuinely differ around p: render
    // both and compare labels at the receiver's pixel.
    let window = BBox::centered_square(3.0);
    let udg_map = ReceptionMap::compute_protocol(&fig.udg, &all, window, 121, 121);
    let sinr_map = ReceptionMap::compute(&fig.network, window, 121, 121);
    let center = (60, 60); // the receiver is the window centre
    assert_eq!(udg_map.at(center.0, center.1).station(), Some(StationId(0)));
    assert_eq!(sinr_map.at(center.0, center.1).station(), None);
}

#[test]
fn figure34_stepwise_divergence() {
    let fig = figures::figure34();
    assert_eq!(fig.steps.len(), 4);
    // Step 1: agreement on s1.
    assert_eq!(fig.steps[0].expected_udg, Some(StationId(0)));
    assert_eq!(fig.steps[0].expected_sinr, Some(StationId(0)));
    // Step 2: the canonical false negative.
    assert_eq!(fig.steps[1].expected_udg, None);
    assert_eq!(fig.steps[1].expected_sinr, Some(StationId(0)));
    // Step 3: SINR switches to s3 while UDG stays silent.
    assert_eq!(fig.steps[2].expected_udg, None);
    assert_eq!(fig.steps[2].expected_sinr, Some(StationId(2)));
    // Step 4: the models change differently (SINR loses s3).
    assert_eq!(fig.steps[3].expected_sinr, None);

    // Cross-check every step against live evaluation through the compare
    // machinery (only steps with ≥ 2 transmitters fit the SINR subnetwork
    // requirement).
    for step in fig
        .steps
        .iter()
        .filter(|s| s.transmitting.iter().filter(|t| **t).count() >= 2)
    {
        let outcome = classify_at(&fig.network, &fig.udg, &step.transmitting, fig.receiver);
        let (udg, sinr) = match outcome {
            Comparison::AgreeSilent => (None, None),
            Comparison::AgreeHeard(s) => (Some(s), Some(s)),
            Comparison::FalsePositive(s) => (Some(s), None),
            Comparison::FalseNegative(s) => (None, Some(s)),
            Comparison::Different { udg, sinr } => (Some(udg), Some(sinr)),
        };
        assert_eq!(udg, step.expected_udg, "UDG at step {}", step.step);
        assert_eq!(sinr, step.expected_sinr, "SINR at step {}", step.step);
    }
}

#[test]
fn figure5_nonconvexity_detected_three_ways() {
    let fig = figures::figure5();

    // 1. Segment sampling finds violations.
    let mut violations = 0usize;
    for i in fig.network.ids() {
        let zone = fig.network.reception_zone(i);
        if let Some(report) =
            sinr_diagrams::core::convexity::check_zone_convexity(&zone, 48, 24, 1e-7)
        {
            violations += report.violations.len();
        }
    }
    assert!(violations > 0);

    // 2. Sturm line counting finds a line with more than two crossings.
    let mut worst = 0usize;
    for i in fig.network.ids() {
        let zone = fig.network.reception_zone(i);
        let Some(report) =
            sinr_diagrams::core::convexity::check_zone_convexity(&zone, 48, 24, 1e-7)
        else {
            continue;
        };
        if let Some(v) = report.violations.first() {
            worst = worst.max(sinr_diagrams::core::convexity::boundary_crossings_on_line(
                &fig.network,
                i,
                v.p1,
                v.p2 - v.p1,
                -50.0,
                51.0,
            ));
        }
    }
    assert!(
        worst > 2,
        "expected a Lemma 2.1 violation, worst crossing count {worst}"
    );

    // 3. The raster convexity defect is well above the convex noise floor.
    let window = BBox::centered_square(12.0);
    let defect = fig
        .network
        .ids()
        .filter_map(|i| measure::measure_zone(&fig.network, i, window, 201))
        .map(|m| m.convexity_defect)
        .fold(0.0f64, f64::max);
    assert!(defect > 0.005, "raster defect {defect}");
}

#[test]
fn figure_renderings_are_stable() {
    // The ASCII rendering of a figure is deterministic (stable seeds and
    // stable arithmetic): two computations agree byte-for-byte.
    let fig = figures::figure1();
    let a = render::ascii(&ReceptionMap::compute(&fig.panel_a, fig.window, 64, 32));
    let b = render::ascii(&ReceptionMap::compute(&fig.panel_a, fig.window, 64, 32));
    assert_eq!(a, b);
    // And all three renderers accept the map.
    let map = ReceptionMap::compute(&fig.panel_a, fig.window, 32, 16);
    let mut ppm = Vec::new();
    let mut pgm = Vec::new();
    let mut csv = Vec::new();
    render::write_ppm(&map, &mut ppm).unwrap();
    render::write_pgm(&map, 3, &mut pgm).unwrap();
    render::write_csv(&map, &mut csv).unwrap();
    assert!(!ppm.is_empty() && !pgm.is_empty() && !csv.is_empty());
}
