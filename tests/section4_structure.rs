//! Structural facts from Section 4 of the paper, verified end-to-end:
//!
//! * **Lemma 4.3** (Section 4.2.1) — the two-station one-dimensional
//!   closed forms for `μ_l`, `μ_r`;
//! * **Lemma 4.4** (Section 4.2.2) — for *positive colinear* networks,
//!   `δ = μ_r` (the rightward axis crossing) and `Δ = −μ_l` (the leftward
//!   one), and the ratio respects the fatness bound;
//! * **Corollary 4.5** — every zone point has `μ_l ≤ x ≤ μ_r`;
//! * the **rotation reduction** of Section 4.2.3 — rotating all stations
//!   onto the positive axis around the far point can only shrink `δ`
//!   while preserving `Δ`.

use sinr_diagrams::core::{bounds, gen, Network, StationId};
use sinr_diagrams::prelude::*;

fn colinear_net(offsets: &[f64], beta: f64) -> Network {
    Network::uniform(gen::positive_colinear(offsets), 0.0, beta).unwrap()
}

#[test]
fn lemma44_delta_is_rightward_crossing() {
    // For positive colinear networks, δ is attained along +x (towards the
    // interferers) and Δ along −x (away from all of them).
    for (offsets, beta) in [
        (vec![2.0, 3.0, 5.0], 2.0),
        (vec![1.5, 6.0], 3.0),
        (vec![2.0, 2.5, 3.0, 8.0, 12.0], 1.8),
    ] {
        let net = colinear_net(&offsets, beta);
        let zone = net.reception_zone(StationId(0));
        let mu_r = zone.boundary_radius(0.0).unwrap();
        let mu_l = zone.boundary_radius(std::f64::consts::PI).unwrap();
        let profile = zone.radial_profile(256).unwrap();
        assert!(
            (profile.delta() - mu_r).abs() < 1e-6 * mu_r,
            "δ={} should equal the +x crossing {}",
            profile.delta(),
            mu_r
        );
        assert!(
            (profile.big_delta() - mu_l).abs() < 1e-6 * mu_l,
            "Δ={} should equal the −x crossing {}",
            profile.big_delta(),
            mu_l
        );
        // Lemma 4.4's ratio bound.
        let bound = bounds::fatness_bound(beta).unwrap();
        assert!(mu_l / mu_r <= bound + 1e-9);
    }
}

#[test]
fn corollary45_zone_within_axis_slab() {
    // Corollary 4.5: (x, y) ∈ H₀ ⇒ μ_l ≤ x ≤ μ_r (with μ_l < 0 < μ_r as
    // signed axis coordinates).
    let net = colinear_net(&[2.0, 4.5, 7.0], 2.0);
    let zone = net.reception_zone(StationId(0));
    let mu_r = zone.boundary_radius(0.0).unwrap();
    let mu_l = -zone.boundary_radius(std::f64::consts::PI).unwrap();
    for k in 0..720 {
        let theta = std::f64::consts::TAU * k as f64 / 720.0;
        let p = zone.boundary_point(theta).unwrap();
        assert!(
            p.x >= mu_l - 1e-7 && p.x <= mu_r + 1e-7,
            "boundary point {p} escapes the slab [{mu_l}, {mu_r}]"
        );
    }
}

#[test]
fn lemma43_special_case_of_lemma44() {
    // A positive colinear network with a single interferer is exactly the
    // Lemma 4.3 setting (after scaling distance κ to 1).
    let kappa = 3.0;
    let beta = 2.5;
    let net = colinear_net(&[kappa], beta);
    let zone = net.reception_zone(StationId(0));
    let (mu_l, mu_r) = bounds::lemma43_interval(beta, 1.0).unwrap();
    // Closed forms are for unit spacing; scale by κ.
    let toward = zone.boundary_radius(0.0).unwrap();
    let away = zone.boundary_radius(std::f64::consts::PI).unwrap();
    assert!((toward - kappa * mu_r).abs() < 1e-9);
    assert!((away + kappa * mu_l).abs() < 1e-9);
}

#[test]
fn rotation_reduction_shrinks_delta_keeps_big_delta() {
    // Section 4.2.3: rotate each station sᵢ around the far point
    // q = (−Δ, 0) onto the positive x-axis (aᵢ' = dist(sᵢ, q) − Δ). The
    // resulting positive colinear network has the same Δ and a δ no
    // larger than the original's.
    let net = gen::random_separated_network(77, 6, 5.0, 1.2, 0.0, 2.0).unwrap();
    let i = StationId(0);
    // Normalise: move s₀ to the origin, rotate the far direction onto −x.
    let zone = net.reception_zone(i);
    let profile = zone.radial_profile(512).unwrap();
    let theta_far = profile.big_delta_direction();
    let big_delta = profile.big_delta();
    let q = net.position(i) + sinr_diagrams::geometry::Vector::from_angle(theta_far) * big_delta;

    // Build the rotated positive colinear network.
    let offsets: Vec<f64> = net
        .ids()
        .filter(|j| *j != i)
        .map(|j| net.position(j).dist(q) - big_delta)
        .collect();
    assert!(
        offsets.iter().all(|a| *a > 0.0),
        "s0 is heard at q ⇒ all others farther"
    );
    let rotated = Network::uniform(gen::positive_colinear(&offsets), 0.0, net.beta()).unwrap();
    let rzone = rotated.reception_zone(StationId(0));
    let rprofile = rzone.radial_profile(512).unwrap();

    // Δ' = Δ (the SINR at q is unchanged: all distances to q preserved).
    assert!(
        (rprofile.big_delta() - big_delta).abs() < 1e-4 * big_delta,
        "Δ'={} vs Δ={big_delta}",
        rprofile.big_delta()
    );
    // δ' ≤ δ (each rotated station is at least as close to the ball
    // B(s0, δ') as the original was).
    assert!(
        rprofile.delta() <= profile.delta() + 1e-6,
        "δ'={} > δ={}",
        rprofile.delta(),
        profile.delta()
    );
}

#[test]
fn one_dimensional_embedding_consistency() {
    // The paper analyses the 1-D embedding (Section 4.2.1) and then maps
    // back to the plane: for the two-station network the planar zone's
    // intersection with the axis is exactly [μ_l, μ_r].
    let beta = 3.0;
    let net = colinear_net(&[1.0], beta);
    let (mu_l, mu_r) = bounds::lemma43_interval(beta, 1.0).unwrap();
    for k in 0..200 {
        let x = -1.5 + 3.0 * k as f64 / 199.0;
        let p = Point::new(x, 0.0);
        if p == net.position(StationId(1)) {
            continue;
        }
        let inside = net.is_heard(StationId(0), p);
        let in_interval = x >= mu_l - 1e-9 && x <= mu_r + 1e-9;
        if (x - mu_l).abs() > 1e-6 && (x - mu_r).abs() > 1e-6 {
            assert_eq!(inside, in_interval, "x={x}");
        }
    }
}
