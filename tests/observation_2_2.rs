//! Observation 2.2: in a non-trivial uniform power network, every
//! reception zone is compact and *strictly contained* in the Voronoi cell
//! of its station — the fact that makes nearest-station dispatch correct
//! in Theorem 3's data structure.

use sinr_diagrams::core::{gen, StationId};
use sinr_diagrams::prelude::*;
use sinr_diagrams::voronoi::naive_nearest;

fn networks() -> Vec<sinr_diagrams::core::Network> {
    let mut nets = Vec::new();
    for seed in [1u64, 7, 42] {
        nets.push(gen::random_separated_network(seed, 8, 6.0, 1.0, 0.02, 1.8).unwrap());
    }
    // Structured layouts.
    nets.push(sinr_diagrams::core::Network::uniform(gen::ring(6, 4.0), 0.01, 2.5).unwrap());
    nets.push(sinr_diagrams::core::Network::uniform(gen::grid(3, 3, 3.0), 0.0, 3.0).unwrap());
    nets
}

#[test]
fn zone_points_are_nearest_to_their_station() {
    for net in networks() {
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if zone.is_degenerate() {
                continue;
            }
            // Sample boundary points (the extreme points of the zone) and
            // interior points; each must have sᵢ as its strictly nearest
            // station.
            for k in 0..48 {
                let theta = std::f64::consts::TAU * k as f64 / 48.0;
                let Some(r) = zone.boundary_radius(theta) else {
                    continue;
                };
                for frac in [0.35, 0.8, 0.999] {
                    let p = net.position(i)
                        + sinr_diagrams::geometry::Vector::from_angle(theta) * (r * frac);
                    let nearest = naive_nearest(net.positions(), p).unwrap();
                    let d_own = net.position(i).dist(p);
                    let d_near = net.position(StationId(nearest)).dist(p);
                    assert!(
                        (d_own - d_near).abs() < 1e-9,
                        "zone point {p} of {i} closer to s{nearest} ({d_near} < {d_own})"
                    );
                }
            }
        }
    }
}

#[test]
fn zone_strictly_inside_voronoi_cell() {
    for net in networks() {
        let window = net.bbox().inflated(30.0);
        let vd = VoronoiDiagram::build(net.positions().to_vec(), window);
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if zone.is_degenerate() {
                continue;
            }
            let Some(polygon) = &vd.cell(i.index()).polygon else {
                continue;
            };
            let Some(boundary) = zone.boundary_polygon(64) else {
                continue;
            };
            for p in boundary {
                assert!(
                    polygon.contains(p),
                    "boundary point {p} of zone {i} escapes its Voronoi cell"
                );
            }
        }
    }
}

#[test]
fn zones_are_bounded_for_nontrivial_networks() {
    for net in networks() {
        assert!(!net.is_trivial());
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if zone.is_degenerate() {
                continue;
            }
            let profile = zone.radial_profile(64);
            assert!(
                profile.is_some(),
                "zone {i} should be bounded (Observation 2.2)"
            );
        }
    }
}

#[test]
fn trivial_network_is_the_exception() {
    // |S| = 2, N = 0, β = 1: the zones are half-planes (unbounded), the
    // single case Observation 2.2 excludes.
    let net = sinr_diagrams::core::Network::uniform(
        vec![Point::new(0.0, 0.0), Point::new(2.0, 0.0)],
        0.0,
        1.0,
    )
    .unwrap();
    assert!(net.is_trivial());
    let zone = net.reception_zone(StationId(0));
    assert!(zone.radial_profile(16).is_none());
    // The half-plane picture: everything strictly left of the bisector
    // x = 1 hears s0.
    for y in [-5.0, 0.0, 5.0] {
        assert!(net.is_heard(StationId(0), Point::new(0.5, y)));
        assert!(!net.is_heard(StationId(0), Point::new(1.5, y)));
    }
    // Points on the bisector hear both stations at SINR exactly 1 = β.
    assert!(net.is_heard(StationId(0), Point::new(1.0, 3.0)));
    assert!(net.is_heard(StationId(1), Point::new(1.0, 3.0)));
}

#[test]
fn kdtree_dispatch_equals_naive_dispatch() {
    for net in networks() {
        let tree = KdTree::build(net.positions().to_vec());
        let mut state: u64 = 5;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 16.0 - 8.0
        };
        for _ in 0..200 {
            let p = Point::new(next(), next());
            let (kd, kd_dist) = tree.nearest(p).unwrap();
            let nv = naive_nearest(net.positions(), p).unwrap();
            let nv_dist = net.position(StationId(nv)).dist(p);
            assert!((kd_dist - nv_dist).abs() < 1e-9, "distance mismatch at {p}");
            let _ = kd;
        }
    }
}
