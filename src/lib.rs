//! # sinr-diagrams
//!
//! A comprehensive Rust implementation of
//!
//! > **SINR Diagrams: Towards Algorithmically Usable SINR Models of
//! > Wireless Networks.** Chen Avin, Yuval Emek, Erez Kantor, Zvi Lotker,
//! > David Peleg, Liam Roditty. PODC 2009.
//!
//! This umbrella crate re-exports the component crates of the workspace:
//!
//! * [`geometry`] — planar computational-geometry kernel;
//! * [`algebra`] — polynomials and Sturm-sequence root counting;
//! * [`core`] — the SINR model: networks, reception zones, convexity and
//!   fatness machinery (Theorems 1, 2, 4.1, 4.2), and the batched
//!   [`QueryEngine`](prelude::QueryEngine) with its SoA
//!   [`SinrEvaluator`](prelude::SinrEvaluator), the explicitly
//!   vectorized [`SimdScan`](prelude::SimdScan) backend (runtime AVX2
//!   detection, portable fallback), a std-only work-stealing batch
//!   scheduler, and epoch-versioned dynamic networks whose in-place
//!   surgery emits [`NetworkDelta`](prelude::NetworkDelta)s that every
//!   engine applies incrementally (stale engines refuse to answer);
//! * [`graphs`] — graph-based models (UDG, disk graphs, Quasi-UDG,
//!   protocol model) and SINR-vs-graph comparisons;
//! * [`voronoi`] — Voronoi diagrams and nearest-neighbour search
//!   (Observation 2.2, query dispatch of Theorem 3);
//! * [`pointloc`] — the approximate point-location data structure of
//!   Theorem 3 (Section 5);
//! * [`diagram`] — rasterised reception maps and the paper's figures;
//! * [`server`] — the streaming batched-query server: a length-prefixed
//!   binary protocol over TCP (std-only, thread per connection) whose
//!   sessions bind a network plus any backend
//!   ([`BackendId`](prelude::BackendId)) and then interleave
//!   `LocateBatch` / `SinrBatch` / `ReceptionProbBatch` (seeded
//!   Monte-Carlo reception probability under a stochastic
//!   [`ChannelModel`](prelude::ChannelModel)) / `Mutate` frames —
//!   dynamic updates
//!   stream through the same [`NetworkDelta`](prelude::NetworkDelta)
//!   machinery, revision-fenced, with no engine rebuilds (see the
//!   [`server`] crate docs for the full frame-layout table, backend ids
//!   and error codes, and `examples/query_server.rs` /
//!   `examples/query_client.rs` for the runnable pair).
//!
//! ## Quickstart
//!
//! ```
//! use sinr_diagrams::prelude::*;
//!
//! // Three uniform-power stations (Figure 1(A) of the paper).
//! let network = Network::builder()
//!     .station(Point::new(-2.0, -1.0))
//!     .station(Point::new(2.5, -1.5))
//!     .station(Point::new(0.5, 2.0))
//!     .background_noise(0.05)
//!     .threshold(1.5)
//!     .build()
//!     .unwrap();
//!
//! // One scalar question: who does a receiver at p hear?
//! let p = Point::new(1.8, -1.0);
//! let heard = network.heard_at(p);
//! assert!(heard.is_some() || heard.is_none()); // depends on geometry
//!
//! // Production-shaped question: many receivers, one network. Build a
//! // query engine once (SoA layout + Observation 2.2 kd-tree dispatch)
//! // and answer the whole batch in one work-stolen parallel pass.
//! let engine = network.query_engine();
//! let receivers: Vec<Point> = (0..1000)
//!     .map(|k| Point::new((k % 50) as f64 * 0.2 - 5.0, (k / 50) as f64 * 0.5 - 5.0))
//!     .collect();
//! let mut answers = vec![Located::Silent; receivers.len()];
//! engine.locate_batch(&receivers, &mut answers);
//! for (q, a) in receivers.iter().zip(&answers) {
//!     assert_eq!(a.station(), network.heard_at(*q)); // engine ≡ ground truth
//! }
//!
//! // Served over the wire: the same batches through a streaming session
//! // (in-process here; `Server::bind` + `Client::connect` for real TCP).
//! let mut client = sinr_diagrams::server::serve_in_process();
//! client.bind_network(BackendId::SimdScan, 0.0, &network).unwrap();
//! let (_, served) = client.locate_batch(&receivers).unwrap();
//! assert_eq!(served.len(), receivers.len());
//! ```

pub use sinr_algebra as algebra;
pub use sinr_core as core;
pub use sinr_diagram as diagram;
pub use sinr_geometry as geometry;
pub use sinr_graphs as graphs;
pub use sinr_pointloc as pointloc;
pub use sinr_server as server;
pub use sinr_voronoi as voronoi;

/// Convenient glob-import surface: the most commonly used types from every
/// component crate.
pub mod prelude {
    pub use sinr_algebra::{BiPoly, Poly, SturmChain};
    pub use sinr_core::{
        BoxedEngine, ChannelError, ChannelModel, DeltaOp, ExactScan, LocateError, Located,
        McConfig, Network, NetworkBuilder, NetworkDelta, PowerAssignment, QueryEngine,
        ReceptionZone, SimdKernel, SimdScan, SinrEvaluator, Station, StationId, StationKey,
        SurgeryOp, SyncError, VoronoiAssisted,
    };
    pub use sinr_diagram::{Raster, ReceptionMap};
    pub use sinr_geometry::{BBox, Ball, Grid, Line, Point, Segment, Vector};
    pub use sinr_graphs::UnitDiskGraph;
    pub use sinr_pointloc::PointLocator;
    pub use sinr_server::{BackendId, Client, Server};
    pub use sinr_voronoi::{KdTree, VoronoiDiagram};
}
