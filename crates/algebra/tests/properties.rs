//! Property-based tests for the polynomial and Sturm machinery.
//!
//! The Sturm chain is the decisive predicate of the whole reproduction
//! (the paper's segment test rests on it), so we cross-validate it three
//! independent ways: against known root multisets, against closed-form
//! quadratic/cubic solvers, and against dense sign-scanning.

use proptest::prelude::*;
use sinr_algebra::{solve_cubic, solve_quadratic, BiPoly, Poly, SturmChain};

fn small_real() -> impl Strategy<Value = f64> {
    // Roots separated enough that f64 Sturm counting is unambiguous.
    (-40i32..40).prop_map(|k| k as f64 / 4.0)
}

fn coeff() -> impl Strategy<Value = f64> {
    (-1000i32..1000).prop_map(|k| k as f64 / 100.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Ring axioms hold pointwise: (p+q)(x) = p(x)+q(x), (p·q)(x) = p(x)·q(x).
    #[test]
    fn poly_ops_match_pointwise(
        a in prop::collection::vec(coeff(), 0..6),
        b in prop::collection::vec(coeff(), 0..6),
        x in -4.0f64..4.0,
    ) {
        let p = Poly::from_coeffs(a);
        let q = Poly::from_coeffs(b);
        let scale = 1.0 + p.eval(x).abs() + q.eval(x).abs();
        prop_assert!(((&p + &q).eval(x) - (p.eval(x) + q.eval(x))).abs() < 1e-9 * scale);
        prop_assert!(((&p - &q).eval(x) - (p.eval(x) - q.eval(x))).abs() < 1e-9 * scale);
        let prod_scale = 1.0 + (p.eval(x) * q.eval(x)).abs() + p.max_coeff_abs() * q.max_coeff_abs();
        prop_assert!(((&p * &q).eval(x) - p.eval(x) * q.eval(x)).abs() < 1e-7 * prod_scale);
    }

    /// Division identity: self = q·div + r with deg r < deg div.
    #[test]
    fn division_identity(
        a in prop::collection::vec(coeff(), 1..8),
        b in prop::collection::vec(coeff(), 1..5),
    ) {
        let p = Poly::from_coeffs(a);
        let d = Poly::from_coeffs(b);
        prop_assume!(!d.is_zero());
        prop_assume!(d.leading_coeff().abs() > 0.05); // avoid ill-conditioned division
        let (q, r) = p.div_rem(&d);
        let rhs = &(&q * &d) + &r;
        let scale = 1.0 + p.max_coeff_abs() + q.max_coeff_abs() * d.max_coeff_abs();
        for i in 0..=p.degree().unwrap_or(0) {
            prop_assert!((rhs.coeff(i) - p.coeff(i)).abs() < 1e-7 * scale,
                "coeff {i}: {} vs {}", rhs.coeff(i), p.coeff(i));
        }
        if let (Some(dr), Some(dd)) = (r.degree(), d.degree()) {
            prop_assert!(dr < dd);
        }
    }

    /// Taylor shift: P.shifted(c)(x) == P(x + c).
    #[test]
    fn shift_identity(
        a in prop::collection::vec(coeff(), 1..7),
        c in -3.0f64..3.0,
        x in -3.0f64..3.0,
    ) {
        let p = Poly::from_coeffs(a);
        let s = p.shifted(c);
        let scale = 1.0 + p.max_coeff_abs() * 100.0;
        prop_assert!((s.eval(x) - p.eval(x + c)).abs() < 1e-8 * scale);
    }

    /// Sturm counts the exact number of distinct roots for root-built
    /// polynomials — *exactly* when all roots are simple. When the input
    /// multiset repeats a root, building the coefficients rounds the exact
    /// multiple root into either a tight real pair or a complex pair, so
    /// the represented polynomial legitimately has between
    /// `distinct − even-multiplicity groups` and `total` real roots; the
    /// property asserts those honest bounds.
    #[test]
    fn sturm_counts_distinct_roots(
        roots in prop::collection::vec(small_real(), 1..7),
    ) {
        let p = Poly::from_roots(&roots);
        let mut sorted = roots.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut distinct = sorted.clone();
        distinct.dedup();
        let has_duplicates = distinct.len() != roots.len();
        let chain = SturmChain::new(&p);
        let counted = chain.count_distinct_roots();
        if !has_duplicates {
            prop_assert_eq!(counted, distinct.len(), "roots {:?}", roots);
            prop_assert_eq!(chain.count_roots_in(-11.0, 11.0), distinct.len());
        } else {
            // Each multiplicity-m group may round to anywhere between 0
            // extra real roots (complex pair absorbs an even share) and
            // m distinct real roots.
            let groups_with_dups = {
                let mut g = 0usize;
                let mut k = 0usize;
                while k < sorted.len() {
                    let run = sorted[k..].iter().take_while(|r| **r == sorted[k]).count();
                    if run > 1 { g += 1; }
                    k += run;
                }
                g
            };
            prop_assert!(counted + groups_with_dups >= distinct.len(),
                "counted {} too low for roots {:?}", counted, roots);
            prop_assert!(counted <= roots.len(),
                "counted {} exceeds total multiplicity for {:?}", counted, roots);
        }
    }

    /// Sturm interval counts match a direct count of known roots.
    #[test]
    fn sturm_interval_counts(
        roots in prop::collection::vec(small_real(), 1..6),
        lo in -12.0f64..0.0,
        width in 0.1f64..12.0,
    ) {
        let hi = lo + width;
        // Keep endpoints off the root lattice (roots are multiples of 1/4).
        let lo = lo + 0.01;
        let hi = hi + 0.01;
        let p = Poly::from_roots(&roots);
        let mut distinct = roots.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        // Exact only for simple roots (see sturm_counts_distinct_roots for
        // why duplicated roots round into ambiguous real/complex pairs).
        prop_assume!(distinct.len() == roots.len());
        let expected = distinct.iter().filter(|r| **r > lo && **r <= hi).count();
        let chain = SturmChain::new(&p);
        prop_assert_eq!(chain.count_roots_in(lo, hi), expected,
            "roots {:?} in ({}, {}]", roots, lo, hi);
    }

    /// Sturm root refinement recovers the true (simple) roots.
    #[test]
    fn sturm_refines_simple_roots(
        roots in prop::collection::vec(small_real(), 1..5),
    ) {
        let mut distinct = roots.clone();
        distinct.sort_by(|a, b| a.partial_cmp(b).unwrap());
        distinct.dedup();
        prop_assume!(distinct.len() == roots.len()); // simple roots only
        let p = Poly::from_roots(&roots);
        let chain = SturmChain::new(&p);
        let found = chain.roots_in(-11.0, 11.0, 1e-12);
        prop_assert_eq!(found.len(), distinct.len());
        for (f, r) in found.iter().zip(distinct.iter()) {
            prop_assert!((f - r).abs() < 1e-7, "{} vs {}", f, r);
        }
    }

    /// Sturm agrees with the closed-form quadratic solver.
    #[test]
    fn sturm_vs_quadratic(a in coeff(), b in coeff(), c in coeff()) {
        prop_assume!(a.abs() > 0.05);
        let closed = solve_quadratic(a, b, c);
        // Skip near-double roots where the counting is legitimately fragile.
        if closed.len() == 2 {
            prop_assume!((closed[1] - closed[0]).abs() > 1e-4);
        }
        prop_assume!(closed.len() != 1 || (b * b - 4.0 * a * c).abs() > 1e-4);
        let p = Poly::from_coeffs(vec![c, b, a]);
        let chain = SturmChain::new(&p);
        prop_assert_eq!(chain.count_distinct_roots(), closed.len());
    }

    /// Sturm agrees with the closed-form cubic solver.
    #[test]
    fn sturm_vs_cubic(c2 in coeff(), c1 in coeff(), c0 in coeff()) {
        let closed = solve_cubic(1.0, c2, c1, c0);
        // Skip clustered roots.
        for w in closed.windows(2) {
            prop_assume!((w[1] - w[0]).abs() > 1e-3);
        }
        let disc = sinr_algebra::cubic_discriminant(1.0, c2, c1, c0);
        prop_assume!(disc.abs() > 1e-6);
        let p = Poly::from_coeffs(vec![c0, c1, c2, 1.0]);
        let chain = SturmChain::new(&p);
        prop_assert_eq!(chain.count_distinct_roots(), closed.len(),
            "cubic x^3+{}x^2+{}x+{}, closed {:?}", c2, c1, c0, closed);
    }

    /// BiPoly restriction equals direct evaluation along the line.
    #[test]
    fn bipoly_restriction_pointwise(
        a1 in -3.0f64..3.0, b1 in -3.0f64..3.0,
        a2 in -3.0f64..3.0, b2 in -3.0f64..3.0,
        px in -2.0f64..2.0, py in -2.0f64..2.0,
        dx in -2.0f64..2.0, dy in -2.0f64..2.0,
        t in 0.0f64..1.0,
    ) {
        let h = BiPoly::squared_distance(a1, b1)
            .mul(&BiPoly::squared_distance(a2, b2))
            .sub(&BiPoly::squared_distance(0.0, 0.0).scaled(3.0));
        let r = h.restrict(px, py, dx, dy);
        let direct = h.eval(px + t * dx, py + t * dy);
        prop_assert!((r.eval(t) - direct).abs() < 1e-6 * (1.0 + direct.abs() + h.max_coeff_abs()));
    }

    /// Sturm counting survives the degree-2n polynomials of the paper:
    /// products of reception quadratics with a couple of real factors.
    #[test]
    fn sturm_high_degree_products(
        quads in prop::collection::vec((0.5f64..4.0, -1.0f64..1.0), 5..25),
        r1 in -3.5f64..-0.5,
        r2 in 0.5f64..3.5,
    ) {
        prop_assume!((r2 - r1).abs() > 0.1);
        let mut p = Poly::from_roots(&[r1, r2]);
        for (cst, b) in &quads {
            // t² + b t + cst with disc b² − 4cst < 0: no real roots.
            prop_assume!(b * b - 4.0 * cst < -0.1);
            p = &p * &Poly::from_coeffs(vec![*cst, *b, 1.0]);
            p = p.normalized();
        }
        let chain = SturmChain::new(&p);
        prop_assert_eq!(chain.count_roots_in(-4.0, 4.0), 2);
    }
}
