//! # sinr-algebra
//!
//! Computer-algebra substrate for the `sinr-diagrams` workspace: dense
//! univariate and bivariate polynomials over `f64`, and **Sturm sequences**
//! for exact-in-spirit counting of distinct real roots.
//!
//! ## Why this exists
//!
//! The central technical device of *"SINR Diagrams"* (Avin et al., PODC
//! 2009) is algebraic: the boundary of a reception zone `H₀` is the zero
//! set of a 2-variate polynomial `H(x, y)` of degree `2n` (Section 2.2),
//! and both the convexity proof (Section 3.2) and the point-location
//! *segment test* (Section 5.1) reduce to the question
//!
//! > *how many distinct real roots does the restriction of `H` to a line
//! > have in a given interval?*
//!
//! which Sturm's condition (Theorem 3.6 in the paper, attributed to
//! Jacques Sturm, 1829) answers by counting sign changes of the Sturm
//! chain evaluated at the interval's endpoints.
//!
//! ## Modules
//!
//! * [`poly`] — dense univariate polynomials: ring operations, Euclidean
//!   division, derivatives, Horner evaluation, variable shifts (the paper's
//!   `z = x − r̄` substitution), deflation by quadratic factors;
//! * [`bipoly`] — dense bivariate polynomials and their restriction to a
//!   parametrised segment (yielding a univariate polynomial);
//! * [`sturm`] — Sturm chains, sign-change counting (including at `±∞`),
//!   root counting on intervals, root isolation and bisection refinement;
//! * [`roots`] — closed-form quadratic/cubic solvers and the cubic
//!   discriminant of Proposition 3.4, used for cross-validation;
//! * [`num`] — numeric policy: relative tolerances and compensated
//!   (Kahan) summation.
//!
//! ## Example: the segment test in miniature
//!
//! ```
//! use sinr_algebra::{Poly, SturmChain};
//!
//! // P(x) = (x − 1)(x − 2)(x − 5)² has distinct real roots {1, 2, 5}.
//! let p = Poly::from_roots(&[1.0, 2.0, 5.0, 5.0]);
//! let chain = SturmChain::new(&p);
//! assert_eq!(chain.count_distinct_roots(), 3);
//! assert_eq!(chain.count_roots_in(0.0, 3.0), 2);
//! assert_eq!(chain.count_roots_in(3.0, 10.0), 1);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod bipoly;
pub mod num;
pub mod poly;
pub mod roots;
pub mod sturm;

pub use bipoly::BiPoly;
pub use num::{kahan_sum, KahanSum, RelTol};
pub use poly::Poly;
pub use roots::{cubic_discriminant, solve_cubic, solve_quadratic};
pub use sturm::SturmChain;
