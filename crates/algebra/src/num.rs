//! Numeric policy: relative tolerances and compensated summation.
//!
//! Sturm chains on `f64` degrade when spurious tiny coefficients are
//! mistaken for genuine ones. Every "is this coefficient zero?" decision in
//! this crate goes through [`RelTol`], which measures magnitudes relative
//! to a *reference scale* (typically the max-|coefficient| of the
//! polynomial at hand). Interference sums in `sinr-core` accumulate many
//! positive terms of mixed magnitude; [`KahanSum`] keeps those sums
//! accurate to the last bit.

/// A relative tolerance anchored to a reference scale.
///
/// A value `x` is considered zero when `|x| ≤ rel · scale + tiny`, where
/// `tiny` guards against a zero scale.
///
/// # Examples
///
/// ```
/// use sinr_algebra::RelTol;
///
/// let tol = RelTol::new(1e-12).with_scale(1e6);
/// assert!(tol.is_zero(1e-7));   // 1e-7 ≪ 1e-12 · 1e6 = 1e-6
/// assert!(!tol.is_zero(1e-5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelTol {
    rel: f64,
    scale: f64,
}

/// Default relative tolerance for coefficient pruning.
pub const DEFAULT_REL: f64 = 1e-11;

impl RelTol {
    /// Creates a relative tolerance with reference scale 1.
    ///
    /// # Panics
    ///
    /// Panics if `rel` is negative or NaN.
    pub fn new(rel: f64) -> Self {
        assert!(rel >= 0.0, "tolerance must be non-negative");
        RelTol { rel, scale: 1.0 }
    }

    /// Returns the same tolerance anchored to `scale` (absolute magnitudes
    /// are compared against `rel · scale`).
    pub fn with_scale(self, scale: f64) -> Self {
        RelTol {
            scale: scale.abs().max(f64::MIN_POSITIVE),
            ..self
        }
    }

    /// The effective absolute threshold `rel · scale`.
    #[inline]
    pub fn threshold(&self) -> f64 {
        self.rel * self.scale + f64::MIN_POSITIVE
    }

    /// Is `x` (effectively) zero?
    #[inline]
    pub fn is_zero(&self, x: f64) -> bool {
        x.abs() <= self.threshold()
    }

    /// Sign of `x` quantised by the tolerance: −1, 0, or +1.
    #[inline]
    pub fn sign(&self, x: f64) -> i8 {
        if self.is_zero(x) {
            0
        } else if x > 0.0 {
            1
        } else {
            -1
        }
    }
}

impl Default for RelTol {
    fn default() -> Self {
        RelTol::new(DEFAULT_REL)
    }
}

/// Kahan–Babuška compensated accumulator.
///
/// # Examples
///
/// ```
/// use sinr_algebra::KahanSum;
///
/// let mut acc = KahanSum::new();
/// for _ in 0..10_000 {
///     acc.add(0.1);
/// }
/// assert!((acc.value() - 1000.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// Creates an empty (zero) accumulator.
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Adds a term to the sum.
    #[inline]
    pub fn add(&mut self, x: f64) {
        let t = self.sum + x;
        if self.sum.abs() >= x.abs() {
            self.comp += (self.sum - t) + x;
        } else {
            self.comp += (x - t) + self.sum;
        }
        self.sum = t;
    }

    /// The compensated value of the sum.
    #[inline]
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.add(x);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = KahanSum::new();
        acc.extend(iter);
        acc
    }
}

/// Compensated sum of an iterator of `f64` terms.
///
/// # Examples
///
/// ```
/// let s = sinr_algebra::kahan_sum((0..1000).map(|i| 1.0 / (i as f64 + 1.0)));
/// assert!(s > 7.48 && s < 7.49); // harmonic number H_1000 ≈ 7.4855
/// ```
pub fn kahan_sum<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
    iter.into_iter().collect::<KahanSum>().value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reltol_scales() {
        let t = RelTol::new(1e-12);
        assert!(t.is_zero(1e-13));
        assert!(!t.is_zero(1e-11));
        let t = t.with_scale(1e10);
        assert!(t.is_zero(1e-3));
        assert!(!t.is_zero(1.0));
    }

    #[test]
    fn reltol_sign() {
        let t = RelTol::default();
        assert_eq!(t.sign(0.0), 0);
        assert_eq!(t.sign(1.0), 1);
        assert_eq!(t.sign(-1.0), -1);
        assert_eq!(t.sign(1e-15), 0);
    }

    #[test]
    fn reltol_zero_scale_guard() {
        let t = RelTol::new(1e-12).with_scale(0.0);
        assert!(t.is_zero(0.0));
        assert!(!t.is_zero(1.0));
    }

    #[test]
    fn kahan_beats_naive() {
        // Sum 1 + 1e-16 many times: naive accumulation loses the tiny terms.
        let n = 1_000_000usize;
        let mut naive = 1.0f64;
        let mut kahan = KahanSum::new();
        kahan.add(1.0);
        for _ in 0..n {
            naive += 1e-16;
            kahan.add(1e-16);
        }
        let exact = 1.0 + n as f64 * 1e-16;
        assert!((kahan.value() - exact).abs() < 1e-15);
        // The naive sum typically stays at exactly 1.0 (each tiny add rounds away).
        assert!((naive - exact).abs() >= (kahan.value() - exact).abs());
    }

    #[test]
    fn kahan_collect() {
        let acc: KahanSum = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(acc.value(), 6.0);
        assert_eq!(kahan_sum([1.5, -0.5]), 1.0);
    }

    #[test]
    #[should_panic]
    fn negative_rel_panics() {
        let _ = RelTol::new(-1e-9);
    }
}
