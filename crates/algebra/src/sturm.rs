//! Sturm chains and real-root counting.
//!
//! Implements the paper's Theorem 3.6 (Sturm's condition):
//!
//! > Consider two reals `a < b`, neither a root of `P(x)`. Then the number
//! > of distinct real roots of `P(x)` in `(a, b)` is `SC_P(a) − SC_P(b)`,
//!
//! where `SC_P(t)` is the number of sign changes in the Sturm sequence
//! `P₀(t), P₁(t), …, P_m(t)` with `P₀ = P`, `P₁ = P′`, and
//! `P_i = −rem(P_{i−2} / P_{i−1})`.
//!
//! The paper applies this machinery in two places:
//!
//! 1. **Section 3.2** — bounding the roots of the quartic `Ĥ(z)` to prove
//!    convexity of three-station reception zones;
//! 2. **Section 5.1** — the *segment test* of the point-location structure:
//!    counting distinct intersections of a reception-zone boundary with a
//!    grid-cell edge, i.e. counting roots of a degree-`2n` restriction in a
//!    parameter interval.
//!
//! ## Numerical notes
//!
//! Working over `f64`, every element of the chain is normalised by its
//! max-|coefficient| (a positive rescaling, which provably preserves the
//! sign pattern), and remainders are pruned with a relative tolerance so
//! that cancellation noise does not masquerade as a genuine low-degree
//! remainder. Multiple roots need no special handling: the classical chain
//! terminates at (a multiple of) `gcd(P, P′)` and still counts *distinct*
//! roots.

use crate::num::RelTol;
use crate::poly::Poly;

/// A Sturm chain of a polynomial, supporting sign-change queries and
/// distinct-real-root counting.
///
/// # Examples
///
/// ```
/// use sinr_algebra::{Poly, SturmChain};
///
/// let p = Poly::from_roots(&[-1.0, 0.5, 2.0]);
/// let chain = SturmChain::new(&p);
/// assert_eq!(chain.count_distinct_roots(), 3);
/// assert_eq!(chain.count_roots_in(0.0, 3.0), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SturmChain {
    /// The chain `P₀, P₁, …, P_m`, each normalised to max-|coeff| 1.
    seq: Vec<Poly>,
}

impl SturmChain {
    /// Builds the Sturm chain of `p`.
    ///
    /// The zero polynomial and constants yield a chain that reports zero
    /// roots everywhere (a constant has no roots; for the zero polynomial
    /// "number of distinct roots" is not meaningful, and we define it as 0).
    pub fn new(p: &Poly) -> Self {
        let p0 = p.normalized();
        if p0.is_constant() {
            return SturmChain { seq: vec![p0] };
        }
        let p1 = p0.derivative().normalized();
        let mut seq = vec![p0, p1];
        loop {
            let a = &seq[seq.len() - 2];
            let b = &seq[seq.len() - 1];
            if b.is_zero() {
                seq.pop();
                break;
            }
            let (_, r) = a.div_rem(b);
            if r.is_zero() {
                break;
            }
            let next = (-&r).normalized();
            let stop = next.is_constant();
            seq.push(next);
            if stop {
                break;
            }
        }
        SturmChain { seq }
    }

    /// The polynomials of the chain (each normalised by a positive scalar).
    pub fn sequence(&self) -> &[Poly] {
        &self.seq
    }

    /// Number of sign changes of the chain evaluated at `t`
    /// (zeros are dropped from the sign sequence, per the standard
    /// convention). "Zero" means the computed value is smaller than its
    /// Horner rounding-error bound.
    pub fn sign_changes_at(&self, t: f64) -> usize {
        let signs = self.seq.iter().map(|p| {
            let (v, bound) = p.eval_with_error_bound(t);
            if v.abs() <= bound {
                0
            } else if v > 0.0 {
                1
            } else {
                -1
            }
        });
        count_changes(signs)
    }

    /// Number of sign changes "at `+∞`" (signs of leading coefficients).
    pub fn sign_changes_at_pos_inf(&self) -> usize {
        let tol = RelTol::default();
        count_changes(self.seq.iter().map(|p| tol.sign(p.leading_coeff())))
    }

    /// Number of sign changes "at `−∞`" (leading coefficient times the
    /// degree parity).
    pub fn sign_changes_at_neg_inf(&self) -> usize {
        let tol = RelTol::default();
        count_changes(self.seq.iter().map(|p| {
            let d = p.degree().unwrap_or(0);
            let s = tol.sign(p.leading_coeff());
            if d % 2 == 1 {
                -s
            } else {
                s
            }
        }))
    }

    /// Total number of distinct real roots (over all of `R`).
    pub fn count_distinct_roots(&self) -> usize {
        self.sign_changes_at_neg_inf()
            .saturating_sub(self.sign_changes_at_pos_inf())
    }

    /// Number of distinct real roots in the half-open interval `(a, b]`.
    ///
    /// When an endpoint happens to be (numerically) a root of the
    /// polynomial itself, it is nudged outward by a relative epsilon so the
    /// preconditions of Sturm's theorem hold; the nudge is far smaller than
    /// any quantity the callers care about.
    ///
    /// # Panics
    ///
    /// Panics if `a > b` or either endpoint is not finite.
    pub fn count_roots_in(&self, a: f64, b: f64) -> usize {
        assert!(
            a.is_finite() && b.is_finite(),
            "interval endpoints must be finite"
        );
        assert!(a <= b, "interval must satisfy a ≤ b (got {a} > {b})");
        if a == b {
            return 0;
        }
        let a = self.nudge_off_root(a, b - a);
        let b = self.nudge_off_root(b, b - a);
        self.sign_changes_at(a)
            .saturating_sub(self.sign_changes_at(b))
    }

    /// Returns sub-intervals of `(a, b]`, each containing exactly one
    /// distinct real root of the polynomial.
    ///
    /// Intervals are returned in increasing order. The subdivision bisects
    /// until each piece isolates a single root or shrinks below a relative
    /// width floor (adjacent near-equal roots may then share an interval —
    /// flagged by the returned [`Isolation::count`] being greater than 1).
    pub fn isolate_roots(&self, a: f64, b: f64) -> Vec<Isolation> {
        let total = self.count_roots_in(a, b);
        let mut out = Vec::with_capacity(total);
        if total > 0 {
            let min_width = (b - a).abs() * 1e-13 + 1e-300;
            self.isolate_rec(a, b, total, min_width, &mut out);
        }
        out
    }

    fn isolate_rec(&self, a: f64, b: f64, count: usize, min_width: f64, out: &mut Vec<Isolation>) {
        if count == 0 {
            return;
        }
        if count == 1 || (b - a) <= min_width {
            out.push(Isolation {
                lo: a,
                hi: b,
                count,
            });
            return;
        }
        let mid = 0.5 * (a + b);
        let left = self.count_roots_in(a, mid);
        self.isolate_rec(a, mid, left, min_width, out);
        self.isolate_rec(mid, b, count - left, min_width, out);
    }

    /// Refines an isolating interval to a root location by bisection on the
    /// chain's root counter (robust for roots of *even multiplicity*, where
    /// the polynomial does not change sign).
    ///
    /// Returns the midpoint of the final bracket.
    pub fn refine_root(&self, mut lo: f64, mut hi: f64, tol: f64) -> f64 {
        debug_assert!(lo <= hi);
        for _ in 0..200 {
            if (hi - lo) <= tol {
                break;
            }
            let mid = 0.5 * (lo + hi);
            if self.count_roots_in(lo, mid) > 0 {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// All distinct real roots in `(a, b]`, refined to absolute tolerance
    /// `tol`, in increasing order.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::{Poly, SturmChain};
    ///
    /// let p = Poly::from_roots(&[1.0, 4.0, 4.0]); // double root at 4
    /// let chain = SturmChain::new(&p);
    /// let roots = chain.roots_in(0.0, 10.0, 1e-10);
    /// assert_eq!(roots.len(), 2);
    /// assert!((roots[0] - 1.0).abs() < 1e-8);
    /// // A double root is ill-conditioned: ~√ε accuracy is the f64 limit.
    /// assert!((roots[1] - 4.0).abs() < 1e-5);
    /// ```
    pub fn roots_in(&self, a: f64, b: f64, tol: f64) -> Vec<f64> {
        self.isolate_roots(a, b)
            .into_iter()
            .map(|iso| self.refine_root(iso.lo, iso.hi, tol))
            .collect()
    }

    /// Moves `t` off a root of `P₀` by tiny outward steps (relative to the
    /// interval scale) so that Sturm's precondition `P(t) ≠ 0` holds.
    fn nudge_off_root(&self, t: f64, interval: f64) -> f64 {
        let p = &self.seq[0];
        let mut t = t;
        let mut step = interval.abs().max(t.abs()).max(1.0) * 1e-14;
        for _ in 0..40 {
            let (v, bound) = p.eval_with_error_bound(t);
            if v.abs() > bound {
                return t;
            }
            t += step;
            step *= 2.0;
        }
        t
    }
}

/// An interval `(lo, hi]` isolating `count` distinct real roots
/// (normally `count == 1`; larger counts indicate a cluster tighter than
/// the subdivision floor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Isolation {
    /// Lower end of the bracket (exclusive).
    pub lo: f64,
    /// Upper end of the bracket (inclusive).
    pub hi: f64,
    /// Number of distinct roots inside.
    pub count: usize,
}

/// Counts sign changes in a sequence, skipping zeros.
fn count_changes<I: IntoIterator<Item = i8>>(signs: I) -> usize {
    let mut changes = 0;
    let mut last: i8 = 0;
    for s in signs {
        if s == 0 {
            continue;
        }
        if last != 0 && s != last {
            changes += 1;
        }
        last = s;
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_changes_basics() {
        assert_eq!(count_changes([1, 1, 1]), 0);
        assert_eq!(count_changes([1, -1, 1]), 2);
        assert_eq!(count_changes([1, 0, -1]), 1); // zero skipped
        assert_eq!(count_changes([0, 0, 0]), 0);
        assert_eq!(count_changes([-1, 0, 0, 1, 0, -1]), 2);
    }

    #[test]
    fn simple_roots_counted() {
        let p = Poly::from_roots(&[-3.0, 1.0, 2.5]);
        let c = SturmChain::new(&p);
        assert_eq!(c.count_distinct_roots(), 3);
        assert_eq!(c.count_roots_in(-10.0, 10.0), 3);
        assert_eq!(c.count_roots_in(0.0, 2.0), 1);
        assert_eq!(c.count_roots_in(-4.0, 0.0), 1);
        assert_eq!(c.count_roots_in(3.0, 10.0), 0);
    }

    #[test]
    fn multiple_roots_counted_once() {
        // (x−1)³(x+2)² : distinct roots {1, −2}
        let p = &Poly::from_roots(&[1.0, 1.0, 1.0]) * &Poly::from_roots(&[-2.0, -2.0]);
        let c = SturmChain::new(&p);
        assert_eq!(c.count_distinct_roots(), 2);
        assert_eq!(c.count_roots_in(0.0, 5.0), 1);
        assert_eq!(c.count_roots_in(-5.0, 0.0), 1);
    }

    #[test]
    fn no_real_roots() {
        let p = Poly::from_coeffs(vec![1.0, 0.0, 1.0]); // x² + 1
        let c = SturmChain::new(&p);
        assert_eq!(c.count_distinct_roots(), 0);
        assert_eq!(c.count_roots_in(-100.0, 100.0), 0);
    }

    #[test]
    fn constants_and_zero() {
        assert_eq!(
            SturmChain::new(&Poly::constant(4.0)).count_distinct_roots(),
            0
        );
        assert_eq!(SturmChain::new(&Poly::zero()).count_distinct_roots(), 0);
        assert_eq!(
            SturmChain::new(&Poly::constant(-1.0)).count_roots_in(-1.0, 1.0),
            0
        );
    }

    #[test]
    fn endpoint_on_root_is_nudged() {
        let p = Poly::from_roots(&[0.0, 1.0, 2.0]);
        let c = SturmChain::new(&p);
        // counting over (0, 2] with both endpoints roots: the half-open
        // convention after nudging counts the interior root and one endpoint
        let n = c.count_roots_in(0.0, 2.0);
        assert!((1..=3).contains(&n), "nudged count {n} should be sane");
        // A window strictly containing all roots is exact regardless.
        assert_eq!(c.count_roots_in(-0.5, 2.5), 3);
    }

    #[test]
    fn isolation_and_refinement() {
        let roots = [-2.0, 0.1, 0.2, 7.0];
        let p = Poly::from_roots(&roots);
        let c = SturmChain::new(&p);
        let isos = c.isolate_roots(-10.0, 10.0);
        assert_eq!(isos.iter().map(|i| i.count).sum::<usize>(), 4);
        let found = c.roots_in(-10.0, 10.0, 1e-12);
        assert_eq!(found.len(), 4);
        for (f, r) in found.iter().zip(roots.iter()) {
            assert!((f - r).abs() < 1e-8, "found {f}, wanted {r}");
        }
    }

    #[test]
    fn even_multiplicity_refinement() {
        // Double root at 3: the polynomial never changes sign there, but
        // chain-based bisection still converges.
        let p = Poly::from_roots(&[3.0, 3.0]);
        let c = SturmChain::new(&p);
        assert_eq!(c.count_distinct_roots(), 1);
        let r = c.roots_in(0.0, 10.0, 1e-12);
        assert_eq!(r.len(), 1);
        assert!((r[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    fn quartic_of_the_paper_shape() {
        // Section 3.2 works with Ĥ(z) = ((z + r̄)² + 1)² − γ z² − δ.
        // For r̄ = 0, γ = 4, δ = −1:  (z² + 1)² − 4z² + 1 = z⁴ − 2z² + 2 > 0
        // has no real roots.
        let z2 = Poly::from_coeffs(vec![1.0, 0.0, 1.0]);
        let h = &(&z2 * &z2) - &Poly::from_coeffs(vec![-1.0, 0.0, 4.0]);
        let c = SturmChain::new(&h);
        assert_eq!(c.count_distinct_roots(), 0);
        // With δ = 1 the polynomial (z²+1)² − 4z² − 1 = z⁴ − 2z² has roots
        // {−√2, 0, √2}: three distinct, matching the at-most-two claim only
        // outside the paper's geometric constraints — a useful sanity check
        // that the counter itself is not artificially capped.
        let h2 = &(&z2 * &z2) - &Poly::from_coeffs(vec![1.0, 0.0, 4.0]);
        let c2 = SturmChain::new(&h2);
        assert_eq!(c2.count_distinct_roots(), 3);
    }

    #[test]
    fn agrees_with_dense_sign_scan() {
        // Cross-validate against brute-force sign scanning on a pseudo-random
        // family of polynomials with known roots.
        let mut state: u64 = 0xDEADBEEF;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 8.0 - 4.0
        };
        for trial in 0..50 {
            let k = 1 + (trial % 5);
            let roots: Vec<f64> = (0..k).map(|_| next()).collect();
            let p = Poly::from_roots(&roots);
            let chain = SturmChain::new(&p);
            let mut sorted = roots.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            sorted.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
            assert_eq!(
                chain.count_distinct_roots(),
                sorted.len(),
                "trial {trial}: roots {roots:?}"
            );
            assert_eq!(chain.count_roots_in(-4.5, 4.5), sorted.len());
        }
    }

    #[test]
    fn high_degree_product_of_quadratics() {
        // Degree-80 polynomial: product of 40 irreducible quadratics plus
        // two real linear factors. Exercises the normalisation machinery at
        // the degrees the paper's segment test meets (2n with n = 41).
        let mut p = Poly::from_roots(&[-1.5, 2.5]);
        for i in 0..40 {
            let b = 0.1 * (i as f64 % 5.0) - 0.2;
            let cst = 1.0 + (i as f64 % 3.0); // positive constant, no real roots
            p = &p * &Poly::from_coeffs(vec![cst, b, 1.0]);
            p = p.normalized();
        }
        let chain = SturmChain::new(&p);
        assert_eq!(chain.count_distinct_roots(), 2);
        assert_eq!(chain.count_roots_in(0.0, 10.0), 1);
        assert_eq!(chain.count_roots_in(-10.0, 0.0), 1);
    }

    #[test]
    fn interval_conventions() {
        let p = Poly::from_roots(&[1.0]);
        let c = SturmChain::new(&p);
        assert_eq!(c.count_roots_in(1.0, 1.0), 0); // empty interval
        assert_eq!(c.count_roots_in(0.0, 0.5), 0);
        assert_eq!(c.count_roots_in(0.5, 1.5), 1);
    }

    #[test]
    #[should_panic]
    fn reversed_interval_panics() {
        let p = Poly::x();
        SturmChain::new(&p).count_roots_in(1.0, 0.0);
    }
}
