//! Dense univariate polynomials over `f64`.
//!
//! Coefficients are stored in ascending power order: `coeffs[i]` multiplies
//! `x^i`. The zero polynomial is the empty coefficient vector. Every
//! constructor and operation trims trailing coefficients that are
//! negligible *relative to the polynomial's own magnitude*, so the reported
//! degree is numerically meaningful — exactly what the Sturm machinery
//! needs (a spurious tiny leading coefficient would corrupt the sign
//! pattern at `±∞`).

use crate::num::RelTol;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dense univariate polynomial with `f64` coefficients.
///
/// # Examples
///
/// ```
/// use sinr_algebra::Poly;
///
/// // 3x² − 2x + 1
/// let p = Poly::from_coeffs(vec![1.0, -2.0, 3.0]);
/// assert_eq!(p.degree(), Some(2));
/// assert_eq!(p.eval(2.0), 9.0);
/// let dp = p.derivative();
/// assert_eq!(dp, Poly::from_coeffs(vec![-2.0, 6.0]));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Poly {
    coeffs: Vec<f64>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// The constant polynomial `1`.
    pub fn one() -> Self {
        Poly::constant(1.0)
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Self {
        Poly::from_coeffs(vec![c])
    }

    /// The monomial `x`.
    pub fn x() -> Self {
        Poly::from_coeffs(vec![0.0, 1.0])
    }

    /// The monomial `c·x^deg`.
    pub fn monomial(deg: usize, c: f64) -> Self {
        let mut coeffs = vec![0.0; deg + 1];
        coeffs[deg] = c;
        Poly::from_coeffs(coeffs)
    }

    /// Builds a polynomial from coefficients in ascending power order,
    /// trimming negligible leading terms.
    pub fn from_coeffs(coeffs: Vec<f64>) -> Self {
        let mut p = Poly { coeffs };
        p.trim();
        p
    }

    /// The monic polynomial `Π (x − rᵢ)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::Poly;
    /// let p = Poly::from_roots(&[1.0, -1.0]); // x² − 1
    /// assert_eq!(p.eval(1.0), 0.0);
    /// assert_eq!(p.eval(0.0), -1.0);
    /// ```
    pub fn from_roots(roots: &[f64]) -> Self {
        let mut p = Poly::one();
        for &r in roots {
            p = &p * &Poly::from_coeffs(vec![-r, 1.0]);
        }
        p
    }

    /// Degree of the polynomial, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// The coefficient of `x^i` (zero beyond the stored degree).
    pub fn coeff(&self, i: usize) -> f64 {
        self.coeffs.get(i).copied().unwrap_or(0.0)
    }

    /// All coefficients in ascending power order (empty for zero).
    pub fn coeffs(&self) -> &[f64] {
        &self.coeffs
    }

    /// The leading coefficient, or 0 for the zero polynomial.
    pub fn leading_coeff(&self) -> f64 {
        self.coeffs.last().copied().unwrap_or(0.0)
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// True for a constant (degree ≤ 0) polynomial, including zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.len() <= 1
    }

    /// Largest absolute coefficient (0 for the zero polynomial).
    pub fn max_coeff_abs(&self) -> f64 {
        self.coeffs.iter().fold(0.0f64, |m, c| m.max(c.abs()))
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: f64) -> f64 {
        let mut acc = 0.0;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Evaluates the polynomial and its derivative at `x` in one pass.
    pub fn eval_with_derivative(&self, x: f64) -> (f64, f64) {
        let mut p = 0.0;
        let mut dp = 0.0;
        for &c in self.coeffs.iter().rev() {
            dp = dp * x + p;
            p = p * x + c;
        }
        (p, dp)
    }

    /// The formal derivative.
    pub fn derivative(&self) -> Poly {
        if self.coeffs.len() <= 1 {
            return Poly::zero();
        }
        let coeffs = self
            .coeffs
            .iter()
            .enumerate()
            .skip(1)
            .map(|(i, &c)| i as f64 * c)
            .collect();
        Poly::from_coeffs(coeffs)
    }

    /// The polynomial scaled by `k` (all coefficients multiplied by `k`).
    pub fn scaled(&self, k: f64) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|c| c * k).collect())
    }

    /// The polynomial divided by its max-|coefficient| — a *positive*
    /// rescaling, so roots and sign patterns are unchanged. Returns the
    /// zero polynomial unchanged.
    ///
    /// Sturm chains normalise every element this way to keep the `f64`
    /// dynamic range in check for the degree-`2n` polynomials of the paper.
    pub fn normalized(&self) -> Poly {
        let m = self.max_coeff_abs();
        if m <= f64::MIN_POSITIVE {
            self.clone()
        } else {
            self.scaled(1.0 / m)
        }
    }

    /// Euclidean division: returns `(q, r)` with `self = q·div + r` and
    /// `deg r < deg div`.
    ///
    /// # Panics
    ///
    /// Panics if `div` is the zero polynomial.
    pub fn div_rem(&self, div: &Poly) -> (Poly, Poly) {
        assert!(!div.is_zero(), "polynomial division by zero");
        let dd = div.coeffs.len() - 1;
        if self.coeffs.len() <= dd {
            return (Poly::zero(), self.clone());
        }
        let lead = div.coeffs[dd];
        let mut rem = self.coeffs.clone();
        let qn = rem.len() - dd;
        let mut quo = vec![0.0; qn];
        for k in (0..qn).rev() {
            let q = rem[k + dd] / lead;
            quo[k] = q;
            if q != 0.0 {
                for (i, &dc) in div.coeffs.iter().enumerate() {
                    rem[k + i] -= q * dc;
                }
            }
        }
        rem.truncate(dd);
        // The remainder's scale reference is the dividend: coefficients that
        // are tiny relative to the inputs are cancellation noise.
        let scale = self.max_coeff_abs().max(1.0);
        let tol = RelTol::default().with_scale(scale);
        while rem.last().is_some_and(|c| tol.is_zero(*c)) {
            rem.pop();
        }
        (Poly::from_coeffs(quo), Poly::from_coeffs(rem))
    }

    /// The Taylor shift `Q(x) = P(x + c)`.
    ///
    /// This is the paper's `z = x − r̄` substitution (Section 3.2): the
    /// shifted polynomial `Ĥ(z) = H(z + r̄)` is obtained as `shift(r̄)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::Poly;
    /// let p = Poly::from_roots(&[3.0]);       // x − 3
    /// let q = p.shifted(3.0);                 // (x+3) − 3 = x
    /// assert_eq!(q, Poly::x());
    /// ```
    pub fn shifted(&self, c: f64) -> Poly {
        if self.coeffs.len() <= 1 {
            return self.clone();
        }
        // Synthetic Taylor expansion around −c … equivalently repeated
        // synthetic division computing the coefficients of P(x + c).
        let n = self.coeffs.len();
        let mut a = self.coeffs.clone();
        for i in 0..n - 1 {
            for k in (i..n - 1).rev() {
                let next = a[k + 1];
                a[k] += c * next;
            }
        }
        Poly::from_coeffs(a)
    }

    /// The variable rescaling `Q(x) = P(k·x)`.
    pub fn var_scaled(&self, k: f64) -> Poly {
        let mut pw = 1.0;
        let coeffs = self
            .coeffs
            .iter()
            .map(|&c| {
                let v = c * pw;
                pw *= k;
                v
            })
            .collect();
        Poly::from_coeffs(coeffs)
    }

    /// The reflection `Q(x) = P(−x)`.
    pub fn reflected(&self) -> Poly {
        self.var_scaled(-1.0)
    }

    /// `self` raised to the power `e` by repeated squaring.
    pub fn pow(&self, e: u32) -> Poly {
        let mut base = self.clone();
        let mut acc = Poly::one();
        let mut e = e;
        while e > 0 {
            if e & 1 == 1 {
                acc = &acc * &base;
            }
            e >>= 1;
            if e > 0 {
                base = &base * &base;
            }
        }
        acc
    }

    /// Polynomial composition `self ∘ inner`, i.e. `P(Q(x))`.
    ///
    /// Used e.g. to restrict a univariate polynomial to a reparametrised
    /// axis. Cost `O(deg(P)²·deg(Q))` by Horner over polynomials.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::Poly;
    /// let p = Poly::from_coeffs(vec![0.0, 0.0, 1.0]); // x²
    /// let q = Poly::from_coeffs(vec![1.0, 1.0]);      // x + 1
    /// assert_eq!(p.compose(&q), Poly::from_coeffs(vec![1.0, 2.0, 1.0]));
    /// ```
    pub fn compose(&self, inner: &Poly) -> Poly {
        let mut acc = Poly::zero();
        for &c in self.coeffs.iter().rev() {
            acc = &(&acc * inner) + &Poly::constant(c);
        }
        acc
    }

    /// A greatest common divisor of `self` and `other` by the Euclidean
    /// algorithm, normalised to max-|coefficient| 1 (f64 GCDs are defined
    /// up to a scalar). Returns the zero polynomial when both inputs are
    /// zero.
    ///
    /// Remainders that shrink below a relative tolerance of the operands
    /// are treated as zero — the standard numerical-GCD convention; for
    /// polynomials with well-separated roots this recovers the exact
    /// common factor structure.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::Poly;
    /// let a = Poly::from_roots(&[1.0, 2.0, 3.0]);
    /// let b = Poly::from_roots(&[2.0, 3.0, 5.0]);
    /// let g = a.gcd(&b);
    /// assert_eq!(g.degree(), Some(2)); // (x−2)(x−3) up to scale
    /// assert!(g.eval(2.0).abs() < 1e-9 && g.eval(3.0).abs() < 1e-9);
    /// ```
    pub fn gcd(&self, other: &Poly) -> Poly {
        let mut a = self.normalized();
        let mut b = other.normalized();
        if a.degree() < b.degree() {
            std::mem::swap(&mut a, &mut b);
        }
        while !b.is_zero() {
            let (_, r) = a.div_rem(&b);
            // Prune cancellation noise relative to the operands.
            let r = r.pruned_rel(1e-9).normalized();
            a = b;
            b = r;
        }
        a
    }

    /// The square-free part `P / gcd(P, P′)` (each distinct root with
    /// multiplicity one), normalised. The classical Sturm chain implicitly
    /// performs this reduction — the chain terminates at `gcd(P, P′)` —
    /// and this method exposes it for callers that want the deflated
    /// polynomial itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::Poly;
    /// let p = Poly::from_roots(&[1.0, 1.0, 4.0]); // (x−1)²(x−4)
    /// let sf = p.square_free();
    /// assert_eq!(sf.degree(), Some(2));
    /// assert!(sf.eval(1.0).abs() < 1e-6);
    /// assert!(sf.eval(4.0).abs() < 1e-6);
    /// ```
    pub fn square_free(&self) -> Poly {
        if self.is_constant() {
            return self.normalized();
        }
        let g = self.gcd(&self.derivative());
        if g.is_constant() {
            return self.normalized();
        }
        let (q, _) = self.div_rem(&g);
        q.normalized()
    }

    /// An upper bound on the absolute value of every real root
    /// (Cauchy's bound `1 + max |aᵢ| / |a_d|`).
    ///
    /// Returns `None` for constant or zero polynomials (no roots, or
    /// everything is a root).
    pub fn root_bound(&self) -> Option<f64> {
        if self.coeffs.len() <= 1 {
            return None;
        }
        let lead = self.leading_coeff().abs();
        let m = self.coeffs[..self.coeffs.len() - 1]
            .iter()
            .fold(0.0f64, |m, c| m.max(c.abs()));
        Some(1.0 + m / lead)
    }

    /// Evaluates at `x` and returns `(value, error_bound)` where
    /// `error_bound` is a running bound on the Horner rounding error
    /// (`≈ 2·deg·ε·Σ|cᵢ||x|^i`). A computed value smaller than its bound is
    /// numerically indistinguishable from zero — the criterion the Sturm
    /// machinery uses for sign quantisation.
    pub fn eval_with_error_bound(&self, x: f64) -> (f64, f64) {
        let ax = x.abs();
        let mut acc = 0.0;
        let mut mag = 0.0; // Σ |cᵢ| |x|^i, accumulated by the same Horner walk
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
            mag = mag * ax + c.abs();
        }
        let d = self.coeffs.len().max(1) as f64;
        (acc, 4.0 * d * f64::EPSILON * mag + f64::MIN_POSITIVE)
    }

    /// Returns the polynomial with trailing *and interior* coefficients
    /// below `rel · max_coeff_abs` zeroed (trailing ones removed).
    ///
    /// Only valid when the domain of interest is `|x| ≲ 1` (e.g. segment
    /// restrictions reparametrised to `t ∈ [0, 1]`), where a coefficient
    /// tiny relative to the largest one cannot influence any value. For
    /// general polynomials prefer keeping all coefficients: genuinely huge
    /// dynamic range is legitimate (a product of many quadratics has
    /// `|lead| ≪ |constant|` without any coefficient being noise).
    pub fn pruned_rel(&self, rel: f64) -> Poly {
        let m = self.max_coeff_abs();
        if m <= f64::MIN_POSITIVE {
            return Poly::zero();
        }
        let tol = RelTol::new(rel).with_scale(m);
        Poly::from_coeffs(
            self.coeffs
                .iter()
                .map(|&c| if tol.is_zero(c) { 0.0 } else { c })
                .collect(),
        )
    }

    /// Removes trailing coefficients that are exactly zero (or denormal
    /// dust below `1e-300`). Relative pruning is *not* applied here: see
    /// [`Poly::pruned_rel`] for why.
    fn trim(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.abs() < 1e-300) {
            self.coeffs.pop();
        }
    }
}

// ---------------------------------------------------------------------------
// Ring operations.
// ---------------------------------------------------------------------------

impl Add for &Poly {
    type Output = Poly;
    fn add(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        Poly::from_coeffs(coeffs)
    }
}

impl Sub for &Poly {
    type Output = Poly;
    fn sub(self, rhs: &Poly) -> Poly {
        let n = self.coeffs.len().max(rhs.coeffs.len());
        let mut coeffs = vec![0.0; n];
        for (i, c) in self.coeffs.iter().enumerate() {
            coeffs[i] += c;
        }
        for (i, c) in rhs.coeffs.iter().enumerate() {
            coeffs[i] -= c;
        }
        Poly::from_coeffs(coeffs)
    }
}

impl Mul for &Poly {
    type Output = Poly;
    fn mul(self, rhs: &Poly) -> Poly {
        if self.is_zero() || rhs.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![0.0; self.coeffs.len() + rhs.coeffs.len() - 1];
        for (i, a) in self.coeffs.iter().enumerate() {
            if *a == 0.0 {
                continue;
            }
            for (j, b) in rhs.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }
}

impl Neg for &Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        self.scaled(-1.0)
    }
}

macro_rules! forward_owned_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Poly {
            type Output = Poly;
            fn $method(self, rhs: Poly) -> Poly {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Poly> for Poly {
            type Output = Poly;
            fn $method(self, rhs: &Poly) -> Poly {
                (&self).$method(rhs)
            }
        }
        impl $trait<Poly> for &Poly {
            type Output = Poly;
            fn $method(self, rhs: Poly) -> Poly {
                self.$method(&rhs)
            }
        }
    };
}

forward_owned_binop!(Add, add);
forward_owned_binop!(Sub, sub);
forward_owned_binop!(Mul, mul);

impl Neg for Poly {
    type Output = Poly;
    fn neg(self) -> Poly {
        -&self
    }
}

impl AddAssign<&Poly> for Poly {
    fn add_assign(&mut self, rhs: &Poly) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&Poly> for Poly {
    fn sub_assign(&mut self, rhs: &Poly) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&Poly> for Poly {
    fn mul_assign(&mut self, rhs: &Poly) {
        *self = &*self * rhs;
    }
}

impl std::fmt::Display for Poly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate().rev() {
            if c == 0.0 {
                continue;
            }
            if !first {
                write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
            } else if c < 0.0 {
                write!(f, "-")?;
            }
            let a = c.abs();
            match i {
                0 => write!(f, "{a}")?,
                1 => {
                    if a == 1.0 {
                        write!(f, "x")?
                    } else {
                        write!(f, "{a}·x")?
                    }
                }
                _ => {
                    if a == 1.0 {
                        write!(f, "x^{i}")?
                    } else {
                        write!(f, "{a}·x^{i}")?
                    }
                }
            }
            first = false;
        }
        if first {
            write!(f, "0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(cs: &[f64]) -> Poly {
        Poly::from_coeffs(cs.to_vec())
    }

    #[test]
    fn construction_and_degree() {
        assert_eq!(Poly::zero().degree(), None);
        assert_eq!(Poly::one().degree(), Some(0));
        assert_eq!(Poly::x().degree(), Some(1));
        assert_eq!(Poly::monomial(5, 2.0).degree(), Some(5));
        // trailing zeros trimmed
        assert_eq!(p(&[1.0, 2.0, 0.0, 0.0]).degree(), Some(1));
        // all-zero input is the zero polynomial
        assert!(p(&[0.0, 0.0]).is_zero());
    }

    #[test]
    fn evaluation_horner() {
        let q = p(&[1.0, -2.0, 3.0]); // 3x² − 2x + 1
        assert_eq!(q.eval(0.0), 1.0);
        assert_eq!(q.eval(1.0), 2.0);
        assert_eq!(q.eval(-1.0), 6.0);
        assert_eq!(Poly::zero().eval(7.0), 0.0);
    }

    #[test]
    fn eval_with_derivative_consistent() {
        let q = p(&[5.0, -1.0, 0.5, 2.0]);
        for &x in &[-2.0, 0.0, 0.3, 1.7] {
            let (v, d) = q.eval_with_derivative(x);
            assert!((v - q.eval(x)).abs() < 1e-12);
            assert!((d - q.derivative().eval(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn ring_axioms_spot_checks() {
        let a = p(&[1.0, 2.0]);
        let b = p(&[3.0, 0.0, 1.0]);
        let c = p(&[-1.0, 1.0, 0.0, 2.0]);
        // commutativity
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&a * &b, &b * &a);
        // associativity
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // distributivity
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // additive inverse
        assert!((&a - &a).is_zero());
        assert!((&a + &(-&a)).is_zero());
        // multiplicative identity / absorbing zero
        assert_eq!(&a * &Poly::one(), a);
        assert!((&a * &Poly::zero()).is_zero());
    }

    #[test]
    fn from_roots_and_eval() {
        let q = Poly::from_roots(&[1.0, 2.0, -3.0]);
        assert_eq!(q.degree(), Some(3));
        for &r in &[1.0, 2.0, -3.0] {
            assert!(q.eval(r).abs() < 1e-12);
        }
        assert!(q.eval(0.0).abs() > 0.1);
        // leading coefficient is 1 (monic)
        assert!((q.leading_coeff() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn division_with_remainder() {
        // (x² + 2x + 1) = (x + 1)(x + 1) + 0
        let dividend = p(&[1.0, 2.0, 1.0]);
        let divisor = p(&[1.0, 1.0]);
        let (q, r) = dividend.div_rem(&divisor);
        assert_eq!(q, p(&[1.0, 1.0]));
        assert!(r.is_zero());
        // general case: verify self = q·div + r
        let a = p(&[3.0, -2.0, 0.0, 5.0, 1.0]);
        let d = p(&[1.0, 0.0, 2.0]);
        let (q, r) = a.div_rem(&d);
        let recomposed = &(&q * &d) + &r;
        for i in 0..5 {
            assert!((recomposed.coeff(i) - a.coeff(i)).abs() < 1e-12);
        }
        assert!(r.degree().is_none_or(|dr| dr < d.degree().unwrap()));
        // dividing by higher degree leaves the dividend as remainder
        let (q, r) = d.div_rem(&a);
        assert!(q.is_zero());
        assert_eq!(r, d);
    }

    #[test]
    #[should_panic]
    fn division_by_zero_panics() {
        let _ = Poly::one().div_rem(&Poly::zero());
    }

    #[test]
    fn taylor_shift() {
        // P(x) = x² ; P(x + 1) = x² + 2x + 1
        let q = Poly::monomial(2, 1.0).shifted(1.0);
        assert_eq!(q, p(&[1.0, 2.0, 1.0]));
        // shifting roots: from_roots([a]).shifted(c) has root a − c
        let r = Poly::from_roots(&[5.0]).shifted(2.0);
        assert!(r.eval(3.0).abs() < 1e-12);
        // consistency with evaluation
        let q = p(&[2.0, -1.0, 0.0, 4.0]);
        let s = q.shifted(-1.7);
        for &x in &[-1.0, 0.0, 0.5, 2.0] {
            assert!((s.eval(x) - q.eval(x - 1.7)).abs() < 1e-9);
        }
    }

    #[test]
    fn var_scaling_and_reflection() {
        let q = p(&[1.0, 1.0, 1.0]); // x² + x + 1
        let s = q.var_scaled(2.0); // 4x² + 2x + 1
        assert_eq!(s, p(&[1.0, 2.0, 4.0]));
        let r = q.reflected(); // x² − x + 1
        assert_eq!(r, p(&[1.0, -1.0, 1.0]));
        for &x in &[-2.0, 0.5, 3.0] {
            assert!((r.eval(x) - q.eval(-x)).abs() < 1e-12);
        }
    }

    #[test]
    fn powers() {
        let q = p(&[1.0, 1.0]); // x + 1
        assert_eq!(q.pow(0), Poly::one());
        assert_eq!(q.pow(1), q);
        assert_eq!(q.pow(2), p(&[1.0, 2.0, 1.0]));
        assert_eq!(q.pow(3), p(&[1.0, 3.0, 3.0, 1.0]));
    }

    #[test]
    fn cauchy_root_bound() {
        let q = Poly::from_roots(&[10.0, -7.0, 0.5]);
        let bound = q.root_bound().unwrap();
        assert!(bound >= 10.0);
        assert!(Poly::one().root_bound().is_none());
        assert!(Poly::zero().root_bound().is_none());
    }

    #[test]
    fn normalisation_preserves_roots() {
        let q = Poly::from_roots(&[2.0, 3.0]).scaled(1e8);
        let n = q.normalized();
        assert!((n.max_coeff_abs() - 1.0).abs() < 1e-12);
        assert!(n.eval(2.0).abs() < 1e-9);
        assert!(n.eval(3.0).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Poly::zero()), "0");
        assert_eq!(format!("{}", Poly::one()), "1");
        let q = p(&[1.0, -2.0, 3.0]);
        let s = format!("{q}");
        assert!(s.contains("x^2") && s.contains('x'));
    }

    #[test]
    fn degenerate_derivatives() {
        assert!(Poly::zero().derivative().is_zero());
        assert!(Poly::constant(5.0).derivative().is_zero());
        assert_eq!(Poly::x().derivative(), Poly::one());
    }

    #[test]
    fn composition_matches_pointwise() {
        let p0 = p(&[1.0, -2.0, 0.5, 1.0]);
        let q = p(&[0.3, 2.0, -1.0]);
        let comp = p0.compose(&q);
        for &x in &[-1.5, 0.0, 0.4, 2.0] {
            let direct = p0.eval(q.eval(x));
            assert!((comp.eval(x) - direct).abs() < 1e-9 * (1.0 + direct.abs()));
        }
        // degree multiplies
        assert_eq!(comp.degree(), Some(6));
        // composing with a constant evaluates
        assert_eq!(
            p0.compose(&Poly::constant(2.0)),
            Poly::constant(p0.eval(2.0))
        );
    }

    #[test]
    fn gcd_recovers_common_factors() {
        let common = Poly::from_roots(&[1.5, -2.0]);
        let a = &common * &Poly::from_roots(&[4.0]);
        let b = &common * &Poly::from_roots(&[-7.0, 0.5]);
        let g = a.gcd(&b);
        assert_eq!(g.degree(), Some(2));
        assert!(g.eval(1.5).abs() < 1e-9);
        assert!(g.eval(-2.0).abs() < 1e-9);
        // coprime inputs yield a constant
        let g2 = Poly::from_roots(&[1.0]).gcd(&Poly::from_roots(&[2.0]));
        assert!(g2.is_constant() && !g2.is_zero());
        // zero handling
        assert!(Poly::zero().gcd(&Poly::zero()).is_zero());
        let g3 = Poly::zero().gcd(&Poly::from_roots(&[3.0]));
        assert_eq!(g3.degree(), Some(1));
    }

    #[test]
    fn square_free_deflates_multiplicities() {
        let p0 = &Poly::from_roots(&[2.0, 2.0, 2.0]) * &Poly::from_roots(&[-1.0, -1.0, 5.0]);
        let sf = p0.square_free();
        assert_eq!(sf.degree(), Some(3));
        for r in [2.0, -1.0, 5.0] {
            assert!(sf.eval(r).abs() < 1e-6, "root {r} lost: {}", sf.eval(r));
        }
        // already square-free input is unchanged up to scale
        let q = Poly::from_roots(&[0.5, 3.0]);
        let sfq = q.square_free();
        assert_eq!(sfq.degree(), Some(2));
        // constants
        assert_eq!(Poly::constant(7.0).square_free().degree(), Some(0));
    }

    #[test]
    fn large_product_stays_finite_after_normalisation() {
        // Product of 100 quadratics with moderate coefficients: raw
        // coefficients span a huge dynamic range but remain finite, and
        // normalisation brings them back to [0, 1].
        let mut q = Poly::one();
        for i in 0..100 {
            let c = 1.0 + (i % 7) as f64;
            q = &q * &p(&[c, 0.3, 1.0]);
            q = q.normalized();
        }
        assert!(q.max_coeff_abs().is_finite());
        assert!((q.max_coeff_abs() - 1.0).abs() < 1e-12);
        assert_eq!(q.degree(), Some(200));
    }
}
