//! Closed-form root solvers for low degrees.
//!
//! These serve two purposes in the workspace:
//!
//! 1. **Cross-validation** — property tests check the Sturm machinery
//!    against closed forms on random quadratics and cubics;
//! 2. **Proposition 3.4** — the paper's convexity argument inspects the
//!    sign of the *cubic discriminant* of `H′(x)`; [`cubic_discriminant`]
//!    implements the exact formula used there.

/// Real roots of `a·x² + b·x + c = 0`, in increasing order.
///
/// Uses the numerically stable "citardauq"/sign-aware formulation to avoid
/// catastrophic cancellation. A double root is reported once. Degenerate
/// (linear/constant) inputs are handled: `a = 0, b ≠ 0` yields one root,
/// `a = b = 0` yields none (even for `c = 0`, where "all x" has no useful
/// finite representation).
///
/// # Examples
///
/// ```
/// use sinr_algebra::solve_quadratic;
///
/// assert_eq!(solve_quadratic(1.0, -3.0, 2.0), vec![1.0, 2.0]);
/// assert_eq!(solve_quadratic(1.0, 0.0, 1.0), Vec::<f64>::new());
/// assert_eq!(solve_quadratic(0.0, 2.0, -4.0), vec![2.0]);
/// ```
pub fn solve_quadratic(a: f64, b: f64, c: f64) -> Vec<f64> {
    if a == 0.0 {
        if b == 0.0 {
            return Vec::new();
        }
        return vec![-c / b];
    }
    let disc = b * b - 4.0 * a * c;
    if disc < 0.0 {
        return Vec::new();
    }
    if disc == 0.0 {
        return vec![-b / (2.0 * a)];
    }
    let sq = disc.sqrt();
    let q = -0.5 * (b + b.signum() * sq);
    let (mut r1, mut r2) = if b == 0.0 {
        let r = (0.5 * sq / a).abs();
        (-r, r)
    } else {
        (q / a, c / q)
    };
    if r1 > r2 {
        std::mem::swap(&mut r1, &mut r2);
    }
    if r1 == r2 {
        vec![r1]
    } else {
        vec![r1, r2]
    }
}

/// The discriminant of the cubic `c₃x³ + c₂x² + c₁x + c₀`, in the exact
/// form quoted in Proposition 3.4 of the paper:
///
/// ```text
/// ∆ = c₁²c₂² − 4c₀c₂³ − 4c₁³c₃ + 18c₀c₁c₂c₃ − 27c₀²c₃²
/// ```
///
/// `∆ < 0` means the cubic has exactly one real root (and two complex
/// conjugates); `∆ > 0` means three distinct real roots; `∆ = 0` means a
/// repeated root.
///
/// # Examples
///
/// ```
/// use sinr_algebra::cubic_discriminant;
///
/// // x³ − x = x(x−1)(x+1): three distinct real roots ⇒ ∆ > 0.
/// assert!(cubic_discriminant(1.0, 0.0, -1.0, 0.0) > 0.0);
/// // x³ + x: one real root ⇒ ∆ < 0.
/// assert!(cubic_discriminant(1.0, 0.0, 1.0, 0.0) < 0.0);
/// ```
pub fn cubic_discriminant(c3: f64, c2: f64, c1: f64, c0: f64) -> f64 {
    c1 * c1 * c2 * c2 - 4.0 * c0 * c2 * c2 * c2 - 4.0 * c1 * c1 * c1 * c3 + 18.0 * c0 * c1 * c2 * c3
        - 27.0 * c0 * c0 * c3 * c3
}

/// Real roots of `c₃x³ + c₂x² + c₁x + c₀ = 0` (with `c₃ ≠ 0`), in
/// increasing order. Repeated roots are reported once.
///
/// Uses the trigonometric method for the three-real-root case and Cardano
/// for the single-root case; each root is polished with two Newton steps.
///
/// # Panics
///
/// Panics if `c3 == 0` (use [`solve_quadratic`] instead).
///
/// # Examples
///
/// ```
/// use sinr_algebra::solve_cubic;
///
/// let roots = solve_cubic(1.0, -6.0, 11.0, -6.0); // (x−1)(x−2)(x−3)
/// assert_eq!(roots.len(), 3);
/// assert!((roots[0] - 1.0).abs() < 1e-9);
/// assert!((roots[2] - 3.0).abs() < 1e-9);
/// ```
pub fn solve_cubic(c3: f64, c2: f64, c1: f64, c0: f64) -> Vec<f64> {
    assert!(c3 != 0.0, "leading coefficient must be non-zero");
    // Normalise to x³ + a x² + b x + c.
    let a = c2 / c3;
    let b = c1 / c3;
    let c = c0 / c3;
    // Depressed cubic t³ + p t + q with x = t − a/3.
    let shift = a / 3.0;
    let p = b - a * a / 3.0;
    let q = 2.0 * a * a * a / 27.0 - a * b / 3.0 + c;

    let disc = -(4.0 * p * p * p + 27.0 * q * q);
    let mut roots = if disc > 0.0 {
        // Three distinct real roots — trigonometric method (p < 0 here).
        let m = 2.0 * (-p / 3.0).sqrt();
        let theta = (3.0 * q / (p * m)).clamp(-1.0, 1.0).acos() / 3.0;
        (0..3)
            .map(|k| m * (theta - 2.0 * std::f64::consts::PI * k as f64 / 3.0).cos() - shift)
            .collect::<Vec<f64>>()
    } else if disc == 0.0 {
        if p == 0.0 {
            vec![-shift] // triple root
        } else {
            // double root at 3q/p... the simple root is 3q/p? Standard:
            // simple root = 3q/p, double root = −3q/(2p).
            vec![3.0 * q / p - shift, -3.0 * q / (2.0 * p) - shift]
        }
    } else {
        // One real root — Cardano with sign care.
        let half_q = q / 2.0;
        let inner = (half_q * half_q + p * p * p / 27.0).sqrt();
        let u = (-half_q + inner).cbrt();
        let v = (-half_q - inner).cbrt();
        vec![u + v - shift]
    };

    // Newton polish against the original coefficients.
    for r in roots.iter_mut() {
        for _ in 0..2 {
            let f = ((c3 * *r + c2) * *r + c1) * *r + c0;
            let df = (3.0 * c3 * *r + 2.0 * c2) * *r + c1;
            if df.abs() > f64::MIN_POSITIVE {
                *r -= f / df;
            }
        }
    }
    roots.sort_by(|x, y| x.partial_cmp(y).unwrap());
    roots.dedup_by(|x, y| (*x - *y).abs() <= 1e-9 * (1.0 + x.abs().max(y.abs())));
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_standard_cases() {
        assert_eq!(solve_quadratic(1.0, -5.0, 6.0), vec![2.0, 3.0]);
        assert_eq!(solve_quadratic(1.0, 2.0, 1.0), vec![-1.0]); // double
        assert!(solve_quadratic(1.0, 0.0, 4.0).is_empty());
        assert_eq!(solve_quadratic(2.0, 0.0, -8.0), vec![-2.0, 2.0]);
    }

    #[test]
    fn quadratic_degenerate() {
        assert_eq!(solve_quadratic(0.0, 3.0, -6.0), vec![2.0]);
        assert!(solve_quadratic(0.0, 0.0, 5.0).is_empty());
        assert!(solve_quadratic(0.0, 0.0, 0.0).is_empty());
    }

    #[test]
    fn quadratic_cancellation_stability() {
        // x² − 1e8 x + 1 has roots ≈ 1e8 and ≈ 1e−8; the naive formula
        // loses the small root entirely.
        let roots = solve_quadratic(1.0, -1e8, 1.0);
        assert_eq!(roots.len(), 2);
        assert!((roots[0] - 1e-8).abs() / 1e-8 < 1e-6);
        assert!((roots[1] - 1e8).abs() / 1e8 < 1e-12);
    }

    #[test]
    fn cubic_three_roots() {
        let roots = solve_cubic(1.0, 0.0, -7.0, 6.0); // (x−1)(x−2)(x+3)
        assert_eq!(roots.len(), 3);
        let expect = [-3.0, 1.0, 2.0];
        for (r, e) in roots.iter().zip(expect.iter()) {
            assert!((r - e).abs() < 1e-9, "{r} vs {e}");
        }
    }

    #[test]
    fn cubic_single_root() {
        let roots = solve_cubic(1.0, 0.0, 0.0, -8.0); // x³ = 8
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 2.0).abs() < 1e-9);
        let roots = solve_cubic(1.0, 0.0, 1.0, 0.0); // x(x²+1)
        assert_eq!(roots.len(), 1);
        assert!(roots[0].abs() < 1e-9);
    }

    #[test]
    fn cubic_repeated_roots() {
        // (x−1)²(x+2) = x³ − 3x + 2
        let roots = solve_cubic(1.0, 0.0, -3.0, 2.0);
        assert_eq!(roots.len(), 2);
        assert!((roots[0] + 2.0).abs() < 1e-7);
        assert!((roots[1] - 1.0).abs() < 1e-7);
        // triple root (x−1)³ = x³ −3x² +3x −1
        let roots = solve_cubic(1.0, -3.0, 3.0, -1.0);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn discriminant_sign_matches_root_count() {
        // ∆ > 0 ⟺ 3 distinct real roots, ∆ < 0 ⟺ 1 real root.
        let cases: [(f64, f64, f64, f64); 4] = [
            (1.0, 0.0, -7.0, 6.0),    // 3 roots
            (1.0, 0.0, 1.0, 0.0),     // 1 root
            (2.0, -4.0, -22.0, 24.0), // 3 roots
            (1.0, 1.0, 1.0, 1.0),     // 1 root
        ];
        for (c3, c2, c1, c0) in cases {
            let disc = cubic_discriminant(c3, c2, c1, c0);
            let n = solve_cubic(c3, c2, c1, c0).len();
            if disc > 0.0 {
                assert_eq!(n, 3, "disc {disc} should mean 3 roots");
            } else if disc < 0.0 {
                assert_eq!(n, 1, "disc {disc} should mean 1 root");
            }
        }
    }

    #[test]
    fn proposition_3_4_shape() {
        // In the paper: H'(x) = 4x³ + 2Ax + B with A = 2 − 4a₁a₂. When
        // sign(a₁)·sign(a₂) ≠ 1, A > 0, and ∆ = −128A³ − 432B² < 0, so H'
        // has exactly one real root. Verify via the generic discriminant.
        for (a1, a2, b_coef) in [(1.0, -1.0, 0.5), (-2.0, 3.0, -1.0), (0.0, 0.0, 2.0)] {
            let a_coef: f64 = 2.0 - 4.0 * a1 * a2;
            assert!(a_coef > 0.0);
            let disc = cubic_discriminant(4.0, 0.0, 2.0 * a_coef, b_coef);
            let closed = -128.0 * a_coef.powi(3) - 432.0 * b_coef * b_coef;
            assert!(
                (disc / 16.0 - closed / 16.0).abs() < 1e-6 * disc.abs().max(closed.abs()).max(1.0),
                "paper's closed form must match the general formula: {disc} vs {closed}"
            );
            assert!(disc < 0.0);
            assert_eq!(solve_cubic(4.0, 0.0, 2.0 * a_coef, b_coef).len(), 1);
        }
    }

    #[test]
    #[should_panic]
    fn cubic_zero_leading_panics() {
        let _ = solve_cubic(0.0, 1.0, 1.0, 1.0);
    }
}
