//! Dense bivariate polynomials and restriction to lines.
//!
//! The characteristic polynomial of a reception zone (paper, Section 2.2)
//! is a 2-variate polynomial `H(x, y)` of degree `2n` built from the
//! squared-distance quadratics `D_i(x, y) = (x − a_i)² + (y − b_i)²`.
//! [`BiPoly`] provides the ring operations to build it, evaluation, and the
//! *restriction to a parametrised segment* — substituting
//! `x = p_x + t·d_x`, `y = p_y + t·d_y` — which yields the univariate
//! polynomial fed to the Sturm machinery.
//!
//! Note: `sinr-core` has a faster direct construction of restricted
//! characteristic polynomials (multiplying univariate quadratics); this
//! module is the general-purpose reference implementation, used for
//! cross-validation and for callers with arbitrary polynomials (the
//! "general framework of zones" of Section 5).

use crate::poly::Poly;

/// A dense bivariate polynomial `Σ c[i][j]·x^i·y^j`.
///
/// Stored row-major: `coeffs[i][j]` multiplies `x^i y^j`. All rows have
/// equal length. The zero polynomial is the empty matrix.
///
/// # Examples
///
/// ```
/// use sinr_algebra::BiPoly;
///
/// // D(x, y) = (x − 1)² + (y − 2)²
/// let d = BiPoly::squared_distance(1.0, 2.0);
/// assert_eq!(d.eval(1.0, 2.0), 0.0);
/// assert_eq!(d.eval(4.0, 6.0), 25.0);
/// assert_eq!(d.total_degree(), Some(2));
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BiPoly {
    /// coeffs[i][j] multiplies x^i y^j; rectangular, possibly empty.
    coeffs: Vec<Vec<f64>>,
}

impl BiPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        BiPoly { coeffs: Vec::new() }
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> Self {
        if c == 0.0 {
            BiPoly::zero()
        } else {
            BiPoly {
                coeffs: vec![vec![c]],
            }
        }
    }

    /// Builds from a coefficient matrix (`coeffs[i][j]` multiplies
    /// `x^i y^j`). Rows may have ragged lengths; they are squared up.
    pub fn from_coeffs(mut coeffs: Vec<Vec<f64>>) -> Self {
        let w = coeffs.iter().map(|r| r.len()).max().unwrap_or(0);
        for r in &mut coeffs {
            r.resize(w, 0.0);
        }
        let mut p = BiPoly { coeffs };
        p.trim();
        p
    }

    /// The squared-distance quadratic `D(x, y) = (x − a)² + (y − b)²` —
    /// the atom from which every characteristic polynomial in the paper is
    /// assembled.
    pub fn squared_distance(a: f64, b: f64) -> Self {
        // (x² − 2a x + a²) + (y² − 2b y + b²)
        BiPoly::from_coeffs(vec![
            vec![a * a + b * b, -2.0 * b, 1.0],
            vec![-2.0 * a, 0.0, 0.0],
            vec![1.0, 0.0, 0.0],
        ])
    }

    /// True for the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Total degree (max `i + j` with non-zero coefficient), or `None` for
    /// the zero polynomial.
    pub fn total_degree(&self) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, row) in self.coeffs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c != 0.0 {
                    best = Some(best.map_or(i + j, |b| b.max(i + j)));
                }
            }
        }
        best
    }

    /// The coefficient of `x^i y^j`.
    pub fn coeff(&self, i: usize, j: usize) -> f64 {
        self.coeffs
            .get(i)
            .and_then(|r| r.get(j))
            .copied()
            .unwrap_or(0.0)
    }

    /// Largest absolute coefficient.
    pub fn max_coeff_abs(&self) -> f64 {
        self.coeffs
            .iter()
            .flat_map(|r| r.iter())
            .fold(0.0f64, |m, c| m.max(c.abs()))
    }

    /// Evaluates at `(x, y)` (Horner in `y` inside Horner in `x`).
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let mut acc = 0.0;
        for row in self.coeffs.iter().rev() {
            let mut ry = 0.0;
            for &c in row.iter().rev() {
                ry = ry * y + c;
            }
            acc = acc * x + ry;
        }
        acc
    }

    /// The polynomial scaled by `k`.
    pub fn scaled(&self, k: f64) -> BiPoly {
        BiPoly::from_coeffs(
            self.coeffs
                .iter()
                .map(|r| r.iter().map(|c| c * k).collect())
                .collect(),
        )
    }

    /// Sum of two bivariate polynomials.
    pub fn add(&self, other: &BiPoly) -> BiPoly {
        let h = self.coeffs.len().max(other.coeffs.len());
        let w = self
            .coeffs
            .first()
            .map_or(0, |r| r.len())
            .max(other.coeffs.first().map_or(0, |r| r.len()));
        let mut out = vec![vec![0.0; w]; h];
        for (i, row) in self.coeffs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                out[i][j] += c;
            }
        }
        for (i, row) in other.coeffs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                out[i][j] += c;
            }
        }
        BiPoly::from_coeffs(out)
    }

    /// Difference of two bivariate polynomials.
    pub fn sub(&self, other: &BiPoly) -> BiPoly {
        self.add(&other.scaled(-1.0))
    }

    /// Product of two bivariate polynomials (dense convolution).
    pub fn mul(&self, other: &BiPoly) -> BiPoly {
        if self.is_zero() || other.is_zero() {
            return BiPoly::zero();
        }
        let h = self.coeffs.len() + other.coeffs.len() - 1;
        let w = self.coeffs[0].len() + other.coeffs[0].len() - 1;
        let mut out = vec![vec![0.0; w]; h];
        for (i1, r1) in self.coeffs.iter().enumerate() {
            for (j1, &c1) in r1.iter().enumerate() {
                if c1 == 0.0 {
                    continue;
                }
                for (i2, r2) in other.coeffs.iter().enumerate() {
                    for (j2, &c2) in r2.iter().enumerate() {
                        if c2 != 0.0 {
                            out[i1 + i2][j1 + j2] += c1 * c2;
                        }
                    }
                }
            }
        }
        BiPoly::from_coeffs(out)
    }

    /// Restricts the polynomial to the parametrised line
    /// `(x, y) = (px + t·dx, py + t·dy)`, producing a univariate
    /// polynomial in `t`.
    ///
    /// With `(px, py)` a segment endpoint and `(dx, dy)` the endpoint
    /// difference, the parameter range `t ∈ [0, 1]` traces the segment —
    /// this is the reduction at the heart of the paper's segment test
    /// (Section 5.1) and its line-intersection argument (Lemma 2.1 /
    /// Section 3.2).
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_algebra::BiPoly;
    ///
    /// // The unit circle x² + y² − 1, restricted to the horizontal line
    /// // y = 0 traced as (t, 0): gives t² − 1.
    /// let circle = BiPoly::squared_distance(0.0, 0.0).add(&BiPoly::constant(-1.0));
    /// let p = circle.restrict(0.0, 0.0, 1.0, 0.0);
    /// assert_eq!(p.degree(), Some(2));
    /// assert!(p.eval(1.0).abs() < 1e-12);
    /// assert!(p.eval(-1.0).abs() < 1e-12);
    /// ```
    pub fn restrict(&self, px: f64, py: f64, dx: f64, dy: f64) -> Poly {
        if self.is_zero() {
            return Poly::zero();
        }
        let x_lin = Poly::from_coeffs(vec![px, dx]);
        let y_lin = Poly::from_coeffs(vec![py, dy]);

        // Horner in x with polynomial "digits": for each row, first fold the
        // y-polynomial (Horner in y over y_lin), then fold rows over x_lin.
        let mut acc = Poly::zero();
        for row in self.coeffs.iter().rev() {
            let mut ry = Poly::zero();
            for &c in row.iter().rev() {
                ry = &(&ry * &y_lin) + &Poly::constant(c);
            }
            acc = &(&acc * &x_lin) + &ry;
        }
        acc
    }

    fn trim(&mut self) {
        // Drop all-zero trailing rows and columns.
        while self
            .coeffs
            .last()
            .is_some_and(|r| r.iter().all(|c| *c == 0.0))
        {
            self.coeffs.pop();
        }
        if self.coeffs.is_empty() {
            return;
        }
        let mut w = self.coeffs[0].len();
        while w > 0 && self.coeffs.iter().all(|r| r[w - 1] == 0.0) {
            w -= 1;
        }
        for r in &mut self.coeffs {
            r.truncate(w);
        }
        if w == 0 {
            self.coeffs.clear();
        }
    }
}

impl std::fmt::Display for BiPoly {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        let mut first = true;
        for (i, row) in self.coeffs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                if c == 0.0 {
                    continue;
                }
                if !first {
                    write!(f, " {} ", if c < 0.0 { "-" } else { "+" })?;
                } else if c < 0.0 {
                    write!(f, "-")?;
                }
                write!(f, "{}", c.abs())?;
                if i > 0 {
                    write!(f, "·x^{i}")?;
                }
                if j > 0 {
                    write!(f, "·y^{j}")?;
                }
                first = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn squared_distance_values() {
        let d = BiPoly::squared_distance(3.0, -1.0);
        assert_eq!(d.eval(3.0, -1.0), 0.0);
        assert_eq!(d.eval(0.0, 0.0), 10.0);
        assert_eq!(d.eval(4.0, 0.0), 2.0);
        assert_eq!(d.total_degree(), Some(2));
    }

    #[test]
    fn ring_operations_match_pointwise() {
        let a = BiPoly::squared_distance(1.0, 0.0);
        let b = BiPoly::squared_distance(-2.0, 3.0);
        let sum = a.add(&b);
        let dif = a.sub(&b);
        let pro = a.mul(&b);
        for &(x, y) in &[(0.0, 0.0), (1.5, -2.0), (-3.0, 4.0), (0.1, 0.2)] {
            let (av, bv) = (a.eval(x, y), b.eval(x, y));
            assert!((sum.eval(x, y) - (av + bv)).abs() < 1e-9);
            assert!((dif.eval(x, y) - (av - bv)).abs() < 1e-9);
            assert!((pro.eval(x, y) - av * bv).abs() < 1e-6);
        }
    }

    #[test]
    fn zero_behaviour() {
        let z = BiPoly::zero();
        assert!(z.is_zero());
        assert_eq!(z.total_degree(), None);
        assert_eq!(z.eval(3.0, 4.0), 0.0);
        let a = BiPoly::squared_distance(0.0, 0.0);
        assert!(a.mul(&z).is_zero());
        assert_eq!(a.add(&z), a);
        assert!(BiPoly::constant(0.0).is_zero());
        assert!(BiPoly::from_coeffs(vec![vec![0.0, 0.0], vec![0.0, 0.0]]).is_zero());
    }

    #[test]
    fn restriction_matches_direct_evaluation() {
        // Build a moderately complex polynomial and compare restriction vs
        // direct evaluation along the line.
        let d1 = BiPoly::squared_distance(1.0, 2.0);
        let d2 = BiPoly::squared_distance(-2.0, 0.5);
        let d3 = BiPoly::squared_distance(0.0, -1.0);
        let h = d1.mul(&d2).sub(&d3.scaled(2.5)).add(&BiPoly::constant(7.0));
        let (px, py, dx, dy) = (0.3, -0.7, 1.2, 0.4);
        let r = h.restrict(px, py, dx, dy);
        for &t in &[-2.0, -0.5, 0.0, 0.25, 1.0, 3.0] {
            let direct = h.eval(px + t * dx, py + t * dy);
            assert!(
                (r.eval(t) - direct).abs() < 1e-7 * (1.0 + direct.abs()),
                "t={t}: {} vs {direct}",
                r.eval(t)
            );
        }
    }

    #[test]
    fn restriction_degree() {
        // Restriction of a total-degree-d polynomial has degree ≤ d in t.
        let d1 = BiPoly::squared_distance(1.0, 1.0);
        let d2 = BiPoly::squared_distance(2.0, -1.0);
        let prod = d1.mul(&d2); // total degree 4
        let r = prod.restrict(0.0, 0.0, 1.0, 1.0);
        assert_eq!(r.degree(), Some(4));
        // Restricting along a degenerate direction (0,0) gives a constant.
        let r0 = prod.restrict(0.5, 0.5, 0.0, 0.0);
        assert!(r0.is_constant());
        assert!((r0.eval(0.0) - prod.eval(0.5, 0.5)).abs() < 1e-9);
    }

    #[test]
    fn paper_characteristic_polynomial_small() {
        // Two stations s0=(0,0), s1=(2,0), uniform power, no noise, β=2:
        // H(x,y) = β·D0 − D1 ≤ 0 describes H0 = {2·D0 ≤ D1}.
        let d0 = BiPoly::squared_distance(0.0, 0.0);
        let d1 = BiPoly::squared_distance(2.0, 0.0);
        let h = d0.scaled(2.0).sub(&d1);
        // On the segment from s0 towards s1, the boundary is where
        // 2 x² = (x−2)² ⇒ x = −2 ± 2√2 ⇒ positive root ≈ 0.8284.
        let r = h.restrict(0.0, 0.0, 1.0, 0.0);
        let roots = crate::sturm::SturmChain::new(&r).roots_in(0.0, 2.0, 1e-12);
        assert_eq!(roots.len(), 1);
        assert!((roots[0] - (2.0 * 2f64.sqrt() - 2.0)).abs() < 1e-9);
    }

    #[test]
    fn display_nonempty() {
        assert_eq!(format!("{}", BiPoly::zero()), "0");
        let d = BiPoly::squared_distance(1.0, 1.0);
        assert!(!format!("{d}").is_empty());
    }
}
