//! Property-based tests for the point-location structure: Theorem 3's
//! guarantees must hold for *every* constructible input, not just the
//! curated examples.

use proptest::prelude::*;
use sinr_core::{Network, StationId};
use sinr_geometry::{Point, Segment};
use sinr_pointloc::{segment_test, Located, PointLocator, Qds, QdsConfig};

/// Separated station layouts (non-degenerate zones, honest numerics).
fn layouts() -> impl Strategy<Value = Vec<Point>> {
    (2usize..6, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = Vec::new();
        let mut guard = 0;
        while pts.len() < n && guard < 4_000 {
            guard += 1;
            let cand = Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0));
            if pts.iter().all(|p| p.dist(cand) >= 1.2) {
                pts.push(cand);
            }
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Definite answers of the locator are never wrong, anywhere.
    #[test]
    fn locator_definite_answers_sound(
        pts in layouts(),
        beta in 1.3f64..4.0,
        noise in 0.0f64..0.05,
        qx in -8.0f64..8.0,
        qy in -8.0f64..8.0,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.35)).unwrap();
        let p = Point::new(qx, qy);
        match ds.locate(p) {
            Located::Reception(i) => prop_assert!(net.is_heard(i, p)),
            Located::Silent => prop_assert_eq!(net.heard_at(p), None),
            Located::Uncertain(_) => {}
        }
    }

    /// The ε-area bound holds for every station of every network.
    #[test]
    fn epsilon_area_bound(
        pts in layouts(),
        beta in 1.3f64..4.0,
        eps in 0.15f64..0.6,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, 0.01, beta).unwrap();
        let config = QdsConfig::with_epsilon(eps);
        for i in net.ids() {
            let qds = Qds::build(&net, i, &config).unwrap();
            let Some(zone_area) = net.reception_zone(i).area_estimate(360) else { continue };
            prop_assert!(
                qds.question_area() <= eps * zone_area * (1.0 + 1e-6),
                "{}: {} > {}", i, qds.question_area(), eps * zone_area
            );
        }
    }

    /// The segment test never reports more than two crossings for a
    /// convex zone (Theorem 1 + Lemma 2.1), and zero for segments strictly
    /// inside or far outside.
    #[test]
    fn segment_test_respects_convexity(
        pts in layouts(),
        beta in 1.2f64..5.0,
        ax in -7.0f64..7.0, ay in -7.0f64..7.0,
        bx in -7.0f64..7.0, by in -7.0f64..7.0,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, 0.02, beta).unwrap();
        let seg = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        prop_assume!(seg.length() > 1e-6);
        for i in net.ids() {
            let crossings = segment_test(&net, i, &seg);
            prop_assert!(crossings <= 2, "{}: {} crossings", i, crossings);
        }
        // A tiny segment at the station is strictly inside its zone.
        let i = StationId(0);
        let c = net.position(i);
        let inside = Segment::new(c + sinr_geometry::Vector::new(0.01, 0.0),
                                  c + sinr_geometry::Vector::new(0.0, 0.01));
        prop_assert_eq!(segment_test(&net, i, &inside), 0);
    }

    /// Locate is consistent with nearest-station dispatch.
    #[test]
    fn locate_names_only_nearest(
        pts in layouts(),
        qx in -8.0f64..8.0,
        qy in -8.0f64..8.0,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, 0.01, 2.0).unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.35)).unwrap();
        let p = Point::new(qx, qy);
        if let Some(named) = ds.locate(p).station() {
            let nearest = sinr_voronoi::naive_nearest(net.positions(), p).unwrap();
            let dn = net.position(StationId(nearest)).dist(p);
            let dd = net.position(named).dist(p);
            prop_assert!((dd - dn).abs() < 1e-9, "named {} not nearest", named);
        }
    }
}
