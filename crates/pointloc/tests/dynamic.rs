//! Dynamic updates on the Theorem-3 locator: incremental
//! [`QueryEngine::apply`] with lazy per-zone rebuilds must be
//! bit-for-bit indistinguishable from an eager rebuild from the mutated
//! network, and the staleness / precondition contracts must hold.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{QueryEngine, SyncError};
use sinr_core::{Network, StationId};
use sinr_geometry::Point;
use sinr_pointloc::{Located, PointLocator, QdsConfig};

/// Separated stations (non-degenerate zones, bounded QDS builds).
fn separated_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-4.0..=4.0), rng.gen_range(-4.0..=4.0));
        if pts.iter().all(|p| p.dist(cand) >= 1.3) {
            pts.push(cand);
        }
    }
    pts
}

fn sample_points(net: &Network) -> Vec<Point> {
    let mut pts = Vec::new();
    for a in -10..=10 {
        for b in -10..=10 {
            pts.push(Point::new(a as f64 * 0.5, b as f64 * 0.5));
        }
    }
    for i in net.ids() {
        pts.push(net.position(i));
    }
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Geometry churn (add / move / remove): the incrementally applied
    /// locator, with its zones rebuilt lazily on dispatch, answers
    /// exactly like `PointLocator::build` over the mutated network —
    /// including which points land `Uncertain`.
    #[test]
    fn apply_with_lazy_rebuild_equals_fresh_build(
        (seed, n) in (any::<u64>(), 3usize..5),
    ) {
        let pts = separated_points(seed, n);
        let mut net = Network::uniform(pts, 0.01, 2.0).expect("valid network");
        let config = QdsConfig::with_epsilon(0.3);
        let mut ds = match PointLocator::build(&net, &config) {
            Ok(ds) => ds,
            // Resource-budget build failures are a build concern, not an
            // update-equivalence concern.
            Err(_) => return Ok(()),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9D5);

        for step in 0..4 {
            let delta = match step % 3 {
                0 => {
                    let i = rng.gen_range(0..net.len());
                    let jitter = Point::new(
                        net.position(StationId(i)).x + rng.gen_range(-0.4..0.4),
                        net.position(StationId(i)).y + rng.gen_range(-0.4..0.4),
                    );
                    net.move_station(StationId(i), jitter).expect("valid move")
                }
                1 => net
                    .add_station(
                        Point::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)),
                        1.0,
                    )
                    .expect("valid add"),
                _ => {
                    let i = rng.gen_range(0..net.len());
                    net.remove_station(StationId(i)).expect("n > 2")
                }
            };
            prop_assert!(ds.is_stale());
            ds.apply(&delta).expect("uniform-power delta applies");
            prop_assert!(!ds.is_stale());
            // Every zone is invalidated (interference is global)…
            prop_assert_eq!(ds.stale_zones(), net.len());
        }

        let fresh = match PointLocator::build(&net, &config) {
            Ok(fresh) => fresh,
            // The mutated geometry can exceed the cell budget; the lazy
            // path degrades per-station instead, so there is no fresh
            // baseline to compare against here.
            Err(_) => return Ok(()),
        };
        let points = sample_points(&net);
        let mut lazy_out = vec![Located::Silent; points.len()];
        let mut fresh_out = vec![Located::Silent; points.len()];
        QueryEngine::locate_batch(&ds, &points, &mut lazy_out);
        QueryEngine::locate_batch(&fresh, &points, &mut fresh_out);
        for (p, (a, b)) in points.iter().zip(lazy_out.iter().zip(&fresh_out)) {
            prop_assert_eq!(*a, *b, "lazy vs fresh diverge at {} in {}", p, net);
        }
        // …and only the dispatched-to zones were rebuilt by the batch.
        prop_assert!(ds.stale_zones() <= net.len());
        prop_assert_eq!(ds.total_question_cells(), fresh.total_question_cells());
        prop_assert_eq!(ds.stale_zones(), 0);
    }
}

#[test]
fn non_uniform_power_delta_is_unsupported() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.5),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
    let before = ds.revision();
    let delta = net.set_power(StationId(0), 2.0).unwrap();
    assert!(matches!(ds.apply(&delta), Err(SyncError::Unsupported(_))));
    // The locator did not advance — and being stale, it refuses queries.
    assert_eq!(ds.revision(), before);
    assert!(ds.is_stale());
    assert!(std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        ds.locate(Point::new(0.1, 0.0))
    }))
    .is_err());
    // Restoring uniform power and syncing recovers the locator.
    net.set_power(StationId(0), 1.0).unwrap();
    ds.sync(&net).unwrap();
    assert!(!ds.is_stale());
    assert_eq!(
        ds.locate(net.position(StationId(0))),
        Located::Reception(StationId(0))
    );
    // sync against a non-uniform network reports Unsupported.
    net.set_power(StationId(1), 3.0).unwrap();
    let mut ds2 = ds.clone();
    assert!(matches!(ds2.sync(&net), Err(SyncError::Unsupported(_))));
}

#[test]
fn physical_noop_power_delta_keeps_zones_fresh() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.5),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
    let delta = net.set_power(StationId(0), 1.0).unwrap();
    ds.apply(&delta).unwrap();
    // 1 → 1 on a uniform network moves no boundary: nothing invalidated.
    assert_eq!(ds.stale_zones(), 0);
    assert!(!ds.is_stale());
}
