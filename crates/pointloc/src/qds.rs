//! The per-station data structure `QDS` of Section 5.1: column-compressed
//! `T⁺ / T⁻ / T?` cell classification with `O(1)` queries.
//!
//! After the boundary reconstruction traces the cells crossed by `∂Hᵢ`,
//! the `T?` zone is the union of their 9-cells. The paper stores, per grid
//! column that contains `T?` cells, the (constant number of) `T?` cells of
//! that column; cells between the uncertainty bands are `T⁺`, everything
//! else is `T⁻`. We store per column the sorted row-intervals of `T?`
//! cells plus an inside/outside flag per gap (decided once at build time),
//! which answers any query with one hash lookup and a short scan.

use crate::brp::{reconstruct_boundary_with, BoundaryPredicate, BrpError, BrpStats};
use sinr_core::{Network, StationId};
use sinr_geometry::{CellId, Grid, Point};
use std::collections::HashMap;

/// Classification of a query point relative to one reception zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CellClass {
    /// Guaranteed inside the zone (`Hᵢ⁺ ⊆ Hᵢ`).
    Plus,
    /// Guaranteed outside the zone.
    Minus,
    /// Uncertain: within the `ε`-area boundary band `Hᵢ?`.
    Question,
}

/// Build configuration for [`Qds`] / [`crate::PointLocator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QdsConfig {
    /// The paper's performance parameter `0 < ε < 1`: the uncertain band's
    /// area is at most an `ε`-fraction of the zone's area.
    pub epsilon: f64,
    /// Resource guard: maximum boundary-ring cells per station.
    pub max_cells: usize,
    /// Boundary-cell recognition strategy (see [`BoundaryPredicate`]).
    pub predicate: BoundaryPredicate,
}

impl QdsConfig {
    /// A configuration with the given `ε` and the default cell budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < ε < 1`.
    pub fn with_epsilon(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon < 1.0,
            "ε must lie in (0, 1), got {epsilon}"
        );
        QdsConfig {
            epsilon,
            max_cells: 4_000_000,
            predicate: BoundaryPredicate::default(),
        }
    }
}

impl Default for QdsConfig {
    fn default() -> Self {
        QdsConfig::with_epsilon(0.2)
    }
}

/// One column's record: sorted disjoint row-intervals of `T?` cells and,
/// for each gap *between* consecutive intervals, whether the gap is inside
/// the zone.
#[derive(Debug, Clone, PartialEq)]
struct Column {
    /// Sorted disjoint `[lo, hi]` row ranges of `T?` cells.
    bands: Vec<(i64, i64)>,
    /// `gap_inside[g]` classifies rows strictly between `bands[g]` and
    /// `bands[g+1]`.
    gap_inside: Vec<bool>,
}

/// The per-station approximate zone map: grid + compressed columns.
#[derive(Debug, Clone)]
pub struct Qds {
    station: StationId,
    /// Degenerate zones (co-located stations) have no grid.
    grid: Option<Grid>,
    columns: HashMap<i64, Column>,
    stats: Option<BrpStats>,
    /// Total number of `T?` cells (for area accounting).
    question_cells: usize,
}

impl Qds {
    /// Builds the structure for station `i` of a uniform power network
    /// with `β > 1` and `α = 2`.
    ///
    /// Degenerate zones (co-located stations) build successfully into an
    /// "everything is outside" map, matching `Hᵢ = {sᵢ}` up to the single
    /// point `sᵢ` itself (which [`Qds::classify`] special-cases).
    ///
    /// # Errors
    ///
    /// Propagates [`BrpError`] for unbounded zones (trivial networks),
    /// `β ≤ 1`, or an over-budget resolution.
    pub fn build(net: &Network, i: StationId, config: &QdsConfig) -> Result<Self, BrpError> {
        match reconstruct_boundary_with(net, i, config.epsilon, config.max_cells, config.predicate)
        {
            Ok(outcome) => {
                // Dilate ring cells to 9-cells, bucketing rows per column.
                let mut col_rows: HashMap<i64, Vec<i64>> = HashMap::new();
                for cell in &outcome.ring {
                    for nb in cell.nine_cell() {
                        col_rows.entry(nb.i).or_default().push(nb.j);
                    }
                }
                let mut columns = HashMap::with_capacity(col_rows.len());
                let mut question_cells = 0usize;
                for (col, mut rows) in col_rows {
                    rows.sort_unstable();
                    rows.dedup();
                    question_cells += rows.len();
                    let bands = to_intervals(&rows);
                    // Classify each gap once, by direct evaluation at the
                    // centre of its first cell.
                    let mut gap_inside = Vec::with_capacity(bands.len().saturating_sub(1));
                    for band in bands.iter().take(bands.len().saturating_sub(1)) {
                        let row = band.1 + 1;
                        let p = outcome.grid.cell_center(CellId::new(col, row));
                        gap_inside.push(net.is_heard(i, p));
                    }
                    columns.insert(col, Column { bands, gap_inside });
                }
                Ok(Qds {
                    station: i,
                    grid: Some(outcome.grid),
                    columns,
                    stats: Some(outcome.stats),
                    question_cells,
                })
            }
            Err(BrpError::DegenerateZone) => Ok(Qds {
                station: i,
                grid: None,
                columns: HashMap::new(),
                stats: None,
                question_cells: 0,
            }),
            Err(e) => Err(e),
        }
    }

    /// The station this map belongs to.
    pub fn station_id(&self) -> StationId {
        self.station
    }

    /// Build statistics (`None` for degenerate zones).
    pub fn stats(&self) -> Option<&BrpStats> {
        self.stats.as_ref()
    }

    /// Number of `T?` cells, i.e. `area(Hᵢ?) / γ²`.
    pub fn question_cell_count(&self) -> usize {
        self.question_cells
    }

    /// The total area of the uncertain zone `Hᵢ?`.
    pub fn question_area(&self) -> f64 {
        match &self.grid {
            Some(g) => self.question_cells as f64 * g.cell_area(),
            None => 0.0,
        }
    }

    /// Number of stored columns (the structure's size is proportional to
    /// this plus the total band count).
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Classifies a point against this zone in `O(1)` (hash lookup plus a
    /// scan over the column's constant-size band list).
    pub fn classify(&self, p: Point) -> CellClass {
        let Some(grid) = &self.grid else {
            // Degenerate zone: only the station point itself is inside.
            return CellClass::Minus;
        };
        let cell = grid.cell_of(p);
        let Some(column) = self.columns.get(&cell.i) else {
            return CellClass::Minus;
        };
        let j = cell.j;
        // Below the first band or above the last: outside.
        let Some(&(first_lo, _)) = column.bands.first() else {
            return CellClass::Minus;
        };
        let &(_, last_hi) = column.bands.last().expect("non-empty");
        if j < first_lo || j > last_hi {
            return CellClass::Minus;
        }
        for (g, &(lo, hi)) in column.bands.iter().enumerate() {
            if j >= lo && j <= hi {
                return CellClass::Question;
            }
            if j < lo {
                // In the gap before band g (g ≥ 1 since j ≥ first_lo).
                return if column.gap_inside[g - 1] {
                    CellClass::Plus
                } else {
                    CellClass::Minus
                };
            }
        }
        CellClass::Minus
    }
}

/// Merges a sorted deduplicated row list into maximal `[lo, hi]` runs.
fn to_intervals(rows: &[i64]) -> Vec<(i64, i64)> {
    let mut out: Vec<(i64, i64)> = Vec::new();
    for &r in rows {
        match out.last_mut() {
            Some((_, hi)) if *hi + 1 == r => *hi = r,
            _ => out.push((r, r)),
        }
    }
    out
}

/// The result of verifying a built [`Qds`] against ground truth.
///
/// Produced by [`verify_qds`]; all three of the paper's guarantees are
/// checked *empirically* on the constructed structure:
///
/// 1. `Hᵢ⁺ ⊆ Hᵢ` — sampled `T⁺` cells are heard;
/// 2. `H⁻ ∩ Hᵢ = ∅` — sampled `T⁻` cells are not heard;
/// 3. `area(Hᵢ?) ≤ ε · area(Hᵢ)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QdsVerification {
    /// Points sampled inside `T⁺` cells.
    pub plus_samples: usize,
    /// `T⁺` samples that were (wrongly) not heard.
    pub plus_violations: usize,
    /// Points sampled inside `T⁻` cells.
    pub minus_samples: usize,
    /// `T⁻` samples that were (wrongly) heard.
    pub minus_violations: usize,
    /// Measured `area(Hᵢ?)`.
    pub question_area: f64,
    /// Estimated `area(Hᵢ)` (boundary-polygon shoelace).
    pub zone_area: f64,
    /// The `ε` the structure was built with.
    pub epsilon: f64,
}

impl QdsVerification {
    /// True when all three guarantees hold on the sampled evidence.
    pub fn holds(&self) -> bool {
        self.plus_violations == 0
            && self.minus_violations == 0
            && self.question_area <= self.epsilon * self.zone_area * (1.0 + 1e-9)
    }
}

/// Samples a dense point set around the zone of `qds.station_id()` and
/// checks the three guarantees of Theorem 3. `res × res` points are drawn
/// from a window 2.5× the zone's circumradius.
pub fn verify_qds(net: &Network, qds: &Qds, config: &QdsConfig, res: usize) -> QdsVerification {
    let i = qds.station_id();
    let zone = net.reception_zone(i);
    let zone_area = zone.area_estimate(720).unwrap_or(0.0);
    let mut v = QdsVerification {
        plus_samples: 0,
        plus_violations: 0,
        minus_samples: 0,
        minus_violations: 0,
        question_area: qds.question_area(),
        zone_area,
        epsilon: config.epsilon,
    };
    let center = net.position(i);
    let radius = qds
        .stats()
        .map(|s| 2.5 * s.big_delta_estimate)
        .unwrap_or(2.5 * net.kappa(i).max(1e-3));
    for a in 0..res {
        for b in 0..res {
            let p = Point::new(
                center.x + radius * (2.0 * a as f64 / (res - 1) as f64 - 1.0),
                center.y + radius * (2.0 * b as f64 / (res - 1) as f64 - 1.0),
            );
            match qds.classify(p) {
                CellClass::Plus => {
                    v.plus_samples += 1;
                    if !net.is_heard(i, p) {
                        v.plus_violations += 1;
                    }
                }
                CellClass::Minus => {
                    v.minus_samples += 1;
                    if net.is_heard(i, p) {
                        v.minus_violations += 1;
                    }
                }
                CellClass::Question => {}
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net3() -> Network {
        Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(6.0, 0.0),
                Point::new(3.0, 5.0),
            ],
            0.0,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn intervals_merge() {
        assert_eq!(
            to_intervals(&[1, 2, 3, 7, 8, 12]),
            vec![(1, 3), (7, 8), (12, 12)]
        );
        assert_eq!(to_intervals(&[]), vec![]);
        assert_eq!(to_intervals(&[5]), vec![(5, 5)]);
    }

    #[test]
    fn guarantees_hold() {
        let net = net3();
        let config = QdsConfig::with_epsilon(0.3);
        for i in net.ids() {
            let qds = Qds::build(&net, i, &config).unwrap();
            let v = verify_qds(&net, &qds, &config, 101);
            assert!(
                v.holds(),
                "station {i}: +viol={} −viol={} area(H?)={} ε·area(H)={}",
                v.plus_violations,
                v.minus_violations,
                v.question_area,
                v.epsilon * v.zone_area
            );
            assert!(
                v.plus_samples > 0,
                "station {i}: no T+ samples — degenerate test"
            );
            assert!(v.minus_samples > 0);
        }
    }

    #[test]
    fn area_fraction_shrinks_with_epsilon() {
        let net = net3();
        let i = StationId(0);
        let zone_area = net.reception_zone(i).area_estimate(720).unwrap();
        let mut last_fraction = f64::INFINITY;
        for eps in [0.8, 0.4, 0.2, 0.1] {
            let qds = Qds::build(&net, i, &QdsConfig::with_epsilon(eps)).unwrap();
            let fraction = qds.question_area() / zone_area;
            assert!(fraction <= eps + 1e-9, "ε={eps}: fraction {fraction}");
            assert!(fraction < last_fraction);
            last_fraction = fraction;
        }
    }

    #[test]
    fn classification_near_station_and_far() {
        let net = net3();
        let qds = Qds::build(&net, StationId(0), &QdsConfig::with_epsilon(0.3)).unwrap();
        assert_eq!(qds.classify(Point::new(0.05, 0.05)), CellClass::Plus);
        assert_eq!(qds.classify(Point::new(100.0, 100.0)), CellClass::Minus);
        // On the boundary: must be Question (never a wrong definite answer).
        let zone = net.reception_zone(StationId(0));
        for k in 0..32 {
            let theta = std::f64::consts::TAU * k as f64 / 32.0;
            let p = zone.boundary_point(theta).unwrap();
            assert_eq!(qds.classify(p), CellClass::Question, "θ={theta}");
        }
    }

    #[test]
    fn degenerate_zone_all_minus() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(2.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let qds = Qds::build(&net, StationId(0), &QdsConfig::default()).unwrap();
        assert_eq!(qds.classify(Point::new(0.1, 0.0)), CellClass::Minus);
        assert_eq!(qds.question_cell_count(), 0);
        assert!(qds.stats().is_none());
    }

    #[test]
    fn column_count_is_moderate() {
        // Size O(ε⁻¹) per station (paper, Section 5.2): the column count
        // at ε = 0.4 should be comfortably below the ring-cell count.
        let net = net3();
        let qds = Qds::build(&net, StationId(0), &QdsConfig::with_epsilon(0.4)).unwrap();
        assert!(qds.column_count() > 0);
        assert!(qds.column_count() <= qds.question_cell_count());
    }

    #[test]
    #[should_panic]
    fn bad_epsilon_panics() {
        let _ = QdsConfig::with_epsilon(1.0);
    }
}
