//! The combined point-location structure `DS` of Theorem 3.
//!
//! One [`Qds`] per station plus a kd-tree over the stations. A query
//! point's only possible transmitter is its nearest station
//! (Observation 2.2: every zone lies strictly inside its station's
//! Voronoi cell), so `locate` is one nearest-neighbour search
//! (`O(log n)`) followed by one `O(1)` cell classification — matching the
//! paper's query bound. The structure's size is `O(n·ε⁻¹)` and the
//! preprocessing `O(n³·ε⁻¹)`: `O(n·ε⁻¹)` segment tests at `O(n²)` each.

use crate::brp::BrpError;
use crate::qds::{CellClass, Qds, QdsConfig};
use sinr_core::engine::{LocateError, QueryEngine, SinrEvaluator, SyncError};
use sinr_core::tile::{batch_map_morton, TileConfig};
use sinr_core::{DeltaOp, Network, NetworkDelta, StationId};
use sinr_geometry::Point;
use sinr_voronoi::KdTree;
use std::sync::OnceLock;

// `Located` is the shared answer type of every `QueryEngine` backend; it
// lives in `sinr_core::engine` and is re-exported here for compatibility.
pub use sinr_core::engine::Located;

/// Errors from building a [`PointLocator`].
#[derive(Debug, Clone, PartialEq)]
pub enum PointLocError {
    /// Theorem 3 is stated for uniform power networks.
    NonUniformPower,
    /// Theorem 3 requires path loss `α = 2`.
    UnsupportedPathLoss(f64),
    /// Theorem 3 requires `β > 1`.
    ThresholdNotAboveOne(f64),
    /// A per-station build failed (unbounded zone or resource budget).
    Station(StationId, BrpError),
}

impl std::fmt::Display for PointLocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointLocError::NonUniformPower => {
                write!(f, "point location requires a uniform power network")
            }
            PointLocError::UnsupportedPathLoss(a) => {
                write!(f, "point location requires α = 2, got α = {a}")
            }
            PointLocError::ThresholdNotAboveOne(b) => {
                write!(f, "point location requires β > 1, got β = {b}")
            }
            PointLocError::Station(i, e) => write!(f, "building QDS for {i}: {e}"),
        }
    }
}

impl std::error::Error for PointLocError {}

/// The full data structure of Theorem 3: per-station zone maps plus a
/// nearest-station dispatcher.
///
/// ## Dynamic updates and per-station staleness
///
/// Under [`QueryEngine::apply`] the cheap parts — the SoA evaluator and
/// the kd-tree dispatcher — are brought up to date eagerly, while the
/// expensive per-station grid maps (`O(n²·ε⁻¹)` each to build) are
/// handled **lazily**: every station's map is marked stale (any
/// geometry or power change shifts interference globally, so every
/// `∂Hᵢ` moves) and rebuilt only when a query actually dispatches to
/// that station. A mobile workload whose queries concentrate around a
/// few stations therefore pays reconstruction only for the zones it
/// touches, instead of the full `O(n³·ε⁻¹)` rebuild.
///
/// If a lazy rebuild fails (unbounded zone, cell budget), queries for
/// that station degrade to the exact `O(n)` evaluator scan — exact
/// answers, never [`Located::Uncertain`], never wrong — until the next
/// successful sync. Power deltas that break the Theorem-3 uniform-power
/// precondition are rejected as [`SyncError::Unsupported`].
///
/// # Examples
///
/// ```
/// use sinr_core::{Network, StationId};
/// use sinr_geometry::Point;
/// use sinr_pointloc::{Located, PointLocator, QdsConfig};
///
/// let net = Network::uniform(vec![
///     Point::new(0.0, 0.0),
///     Point::new(6.0, 0.0),
///     Point::new(3.0, 5.0),
/// ], 0.0, 2.0).unwrap();
/// let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
///
/// // Far from everyone: silent, and the locator knows it.
/// assert_eq!(ds.locate(Point::new(100.0, -80.0)), Located::Silent);
/// ```
#[derive(Debug, Clone)]
pub struct PointLocator {
    /// Per-station zone maps. An unset cell is a zone invalidated by a
    /// delta and not yet dispatched to; it is (re)built on first use
    /// from `net`. `Err` records a failed lazy rebuild — queries then
    /// degrade to the exact evaluator scan for that station.
    maps: Vec<OnceLock<Result<Qds, BrpError>>>,
    tree: KdTree,
    /// Mirror of the source network's current state, kept in step by
    /// `apply` — what lazy zone rebuilds are computed from.
    net: Network,
    config: QdsConfig,
    /// Retained for `QueryEngine::sinr_batch` (the grid structure answers
    /// zone membership, not SINR values) and for the staleness guard.
    eval: SinrEvaluator,
}

impl PointLocator {
    /// Builds the structure: one [`Qds`] per station (`O(n³·ε⁻¹)` total
    /// preprocessing) plus the kd-tree dispatcher (`O(n log n)`).
    ///
    /// # Errors
    ///
    /// * [`PointLocError::NonUniformPower`] /
    ///   [`PointLocError::UnsupportedPathLoss`] /
    ///   [`PointLocError::ThresholdNotAboveOne`] — Theorem 3
    ///   preconditions;
    /// * [`PointLocError::Station`] — a per-station reconstruction failed.
    pub fn build(net: &Network, config: &QdsConfig) -> Result<Self, PointLocError> {
        Self::check_preconditions(net)?;
        let mut maps = Vec::with_capacity(net.len());
        for i in net.ids() {
            let qds = Qds::build(net, i, config).map_err(|e| PointLocError::Station(i, e))?;
            maps.push(OnceLock::from(Ok(qds)));
        }
        Ok(PointLocator {
            maps,
            tree: KdTree::build(net.positions().to_vec()),
            net: net.clone(),
            config: *config,
            eval: SinrEvaluator::new(net),
        })
    }

    fn check_preconditions(net: &Network) -> Result<(), PointLocError> {
        if !net.is_uniform_power() {
            return Err(PointLocError::NonUniformPower);
        }
        if net.alpha() != 2.0 {
            return Err(PointLocError::UnsupportedPathLoss(net.alpha()));
        }
        if net.beta() <= 1.0 {
            return Err(PointLocError::ThresholdNotAboveOne(net.beta()));
        }
        Ok(())
    }

    /// The `ε` the structure was built with.
    pub fn epsilon(&self) -> f64 {
        self.config.epsilon
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when the structure covers no stations (never for a built one).
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The number of stations whose zone map is currently *stale*:
    /// invalidated by an applied delta and not yet lazily rebuilt
    /// (queries dispatching to such a station pay the rebuild on first
    /// touch). 0 for a freshly built or fully exercised structure.
    pub fn stale_zones(&self) -> usize {
        self.maps.iter().filter(|m| m.get().is_none()).count()
    }

    /// The station's zone map, building it now if it was invalidated by
    /// a delta. `None` when (re)construction fails for this station
    /// (queries then degrade to the exact scan).
    fn map_for(&self, i: usize) -> Option<&Qds> {
        self.maps[i]
            .get_or_init(|| Qds::build(&self.net, StationId(i), &self.config))
            .as_ref()
            .ok()
    }

    /// Total number of `T?` cells across all stations (the structure's
    /// dominant size term, `O(n·ε⁻¹)`). Forces any lazily invalidated
    /// zone to rebuild; stations whose rebuild failed contribute 0.
    pub fn total_question_cells(&self) -> usize {
        (0..self.maps.len())
            .map(|i| self.map_for(i).map_or(0, Qds::question_cell_count))
            .sum()
    }

    /// Locates a query point: `O(log n)` nearest-station dispatch plus an
    /// `O(1)` cell classification (plus a one-off zone rebuild when the
    /// dispatched station's map was invalidated by an applied delta).
    ///
    /// # Panics
    ///
    /// Panics when the source network has mutated past this engine's
    /// revision (apply the missed deltas or
    /// [`sync`](QueryEngine::sync)) — a stale locator never answers.
    pub fn locate(&self, p: Point) -> Located {
        self.eval.assert_fresh();
        let Some((nearest, dist)) = self.tree.nearest(p) else {
            return Located::Silent;
        };
        if dist == 0.0 {
            // Exactly at a station: in its zone by definition (the {sᵢ}
            // clause), even for degenerate zones.
            return Located::Reception(StationId(nearest));
        }
        match self.map_for(nearest) {
            Some(qds) => match qds.classify(p) {
                CellClass::Plus => Located::Reception(StationId(nearest)),
                CellClass::Question => Located::Uncertain(StationId(nearest)),
                CellClass::Minus => Located::Silent,
            },
            // Zone reconstruction failed: answer exactly instead.
            None => self.eval.locate(p),
        }
    }

    /// Ground-truth comparison: evaluates the SINR model directly
    /// (`O(n)`) — the baseline the data structure accelerates.
    pub fn locate_naive(&self, net: &Network, p: Point) -> Option<StationId> {
        debug_assert_eq!(net.positions(), self.net.positions());
        net.heard_at(p)
    }
}

impl QueryEngine for PointLocator {
    fn locate(&self, p: Point) -> Located {
        PointLocator::locate(self, p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        // Rides the engine's Morton-tiled batch driver: large batches
        // are scheduled in spatially coherent tiles (the PR-5 tile
        // grouping), so queries dispatching to the same station hit the
        // same zone grid back-to-back — the per-zone `Qds` structures
        // and the kd-tree's upper levels stay cache-hot, and a tile
        // whose zone needs a lazy rebuild pays it once for the whole
        // neighbourhood. Work-stealing still matters more here than for
        // the uniform-cost scans: QDS queries are `O(log n)` when the
        // grid answers and `O(n)` when a query misses every per-zone
        // structure, so tiles with slow points rebalance across
        // threads. Per-point answers are exactly `locate`'s (only the
        // visit order changes); concurrent first-touch rebuilds of the
        // same invalidated zone are serialized by the per-station
        // `OnceLock`.
        batch_map_morton(points, out, &TileConfig::default(), |p| {
            PointLocator::locate(self, p)
        });
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }

    fn freshness(&self) -> Result<(), LocateError> {
        self.eval.freshness()
    }

    fn revision(&self) -> u64 {
        self.eval.revision()
    }

    fn is_stale(&self) -> bool {
        self.eval.is_stale()
    }

    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        // Theorem 3 is stated for uniform power; a delta that leaves the
        // network non-uniform cannot be represented here.
        if !delta.uniform_after() {
            return Err(SyncError::Unsupported(
                "the Theorem-3 locator requires uniform power".into(),
            ));
        }
        self.eval.apply(delta)?;
        // Mirror the op onto the stored network copy (same validation
        // already passed upstream, so failures are impossible here).
        let mirrored = match delta.op() {
            DeltaOp::Add {
                position, power, ..
            } => self.net.add_station(*position, *power).map(|_| ()),
            DeltaOp::Remove { id, .. } => self.net.remove_station(*id).map(|_| ()),
            DeltaOp::Move { id, to, .. } => self.net.move_station(*id, *to).map(|_| ()),
            DeltaOp::SetPower { id, to, .. } => self.net.set_power(*id, *to).map(|_| ()),
        };
        mirrored.map_err(|e| SyncError::Unsupported(format!("mirror op failed: {e}")))?;
        // Eager, cheap: the proximity dispatcher — but only geometry ops
        // can move a site, so power deltas (which this backend only
        // accepts when they keep the network uniform, i.e. 1 → 1) skip
        // the O(n log n) rebuild entirely.
        let geometry_changed = !matches!(delta.op(), DeltaOp::SetPower { .. });
        // Lazy, expensive: every zone's boundary moved (interference is
        // global), so all per-station maps are stale — they rebuild on
        // first dispatch. Exception: a delta that changes nothing
        // physically (1 → 1 power on a uniform network, a move to the
        // same point) moves no boundary.
        let physically_noop = matches!(
            delta.op(),
            DeltaOp::SetPower { from, to, .. } if from == to
        ) || matches!(delta.op(), DeltaOp::Move { from, to, .. } if from == to);
        if geometry_changed && !physically_noop {
            self.tree = KdTree::build(self.net.positions().to_vec());
        }
        if !physically_noop {
            self.maps = (0..self.net.len()).map(|_| OnceLock::new()).collect();
        }
        Ok(())
    }

    fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
        // Lazy sync: validate, adopt the network, invalidate everything;
        // zones rebuild on first dispatch (use `build` for an eager
        // all-zones construction with per-station error reporting).
        Self::check_preconditions(net).map_err(|e| SyncError::Unsupported(e.to_string()))?;
        self.net = net.clone();
        self.eval.sync(net);
        self.tree = KdTree::build(net.positions().to_vec());
        self.maps = (0..net.len()).map(|_| OnceLock::new()).collect();
        Ok(())
    }

    fn freeze(&mut self) {
        // `self.net` is already a private mirror (its epoch cell is this
        // locator's own), so detaching the evaluator is the whole job;
        // lazy zone rebuilds keep reading the mirror as before.
        self.eval.freeze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net3() -> Network {
        Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(6.0, 0.0),
                Point::new(3.0, 5.0),
            ],
            0.0,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn preconditions_enforced() {
        let nonuniform = Network::builder()
            .station(Point::ORIGIN)
            .station_with_power(Point::new(3.0, 0.0), 2.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert_eq!(
            PointLocator::build(&nonuniform, &QdsConfig::default()).unwrap_err(),
            PointLocError::NonUniformPower
        );
        let alpha4 = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(3.0, 0.0))
            .threshold(2.0)
            .path_loss(4.0)
            .build()
            .unwrap();
        assert!(matches!(
            PointLocator::build(&alpha4, &QdsConfig::default()).unwrap_err(),
            PointLocError::UnsupportedPathLoss(_)
        ));
        let beta1 = Network::uniform(vec![Point::ORIGIN, Point::new(3.0, 0.0)], 0.0, 1.0).unwrap();
        assert!(matches!(
            PointLocator::build(&beta1, &QdsConfig::default()).unwrap_err(),
            PointLocError::ThresholdNotAboveOne(_)
        ));
    }

    #[test]
    fn locate_agrees_with_ground_truth() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.25)).unwrap();
        let mut uncertain = 0usize;
        let mut total = 0usize;
        for a in -30..=90 {
            for b in -40..=90 {
                let p = Point::new(a as f64 * 0.1, b as f64 * 0.1);
                total += 1;
                match ds.locate(p) {
                    Located::Reception(i) => {
                        assert!(net.is_heard(i, p), "claimed reception of {i} at {p}");
                    }
                    Located::Silent => {
                        assert_eq!(net.heard_at(p), None, "claimed silence at {p}");
                    }
                    Located::Uncertain(_) => uncertain += 1,
                }
            }
        }
        // The uncertain band must be a small minority of the window.
        assert!(
            uncertain * 10 < total,
            "{uncertain}/{total} uncertain answers"
        );
    }

    #[test]
    fn station_positions_locate_as_reception() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        for i in net.ids() {
            assert_eq!(ds.locate(net.position(i)), Located::Reception(i));
        }
    }

    #[test]
    fn colocated_station_zone_is_the_point_itself() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(4.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        // At the shared location: reception by one of the co-located pair
        // (the {sᵢ} clause — the kd-tree picks one of the zero-distance
        // sites).
        match ds.locate(Point::ORIGIN) {
            Located::Reception(i) => assert!(i.index() <= 1),
            other => panic!("expected reception at the shared site, got {other:?}"),
        }
        // Near (but not at) the pair: silent — they jam each other.
        assert_eq!(ds.locate(Point::new(0.3, 0.0)), Located::Silent);
    }

    #[test]
    fn size_scales_inverse_epsilon() {
        let net = net3();
        let small = PointLocator::build(&net, &QdsConfig::with_epsilon(0.5)).unwrap();
        let large = PointLocator::build(&net, &QdsConfig::with_epsilon(0.1)).unwrap();
        assert!(large.total_question_cells() > small.total_question_cells());
        assert_eq!(small.len(), 3);
        assert_eq!(small.epsilon(), 0.5);
    }

    #[test]
    fn locate_naive_baseline() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        assert_eq!(
            ds.locate_naive(&net, Point::new(0.1, 0.0)),
            Some(StationId(0))
        );
        assert_eq!(ds.locate_naive(&net, Point::new(3.0, 1.8)), None);
    }
}
