//! The combined point-location structure `DS` of Theorem 3.
//!
//! One [`Qds`] per station plus a kd-tree over the stations. A query
//! point's only possible transmitter is its nearest station
//! (Observation 2.2: every zone lies strictly inside its station's
//! Voronoi cell), so `locate` is one nearest-neighbour search
//! (`O(log n)`) followed by one `O(1)` cell classification — matching the
//! paper's query bound. The structure's size is `O(n·ε⁻¹)` and the
//! preprocessing `O(n³·ε⁻¹)`: `O(n·ε⁻¹)` segment tests at `O(n²)` each.

use crate::brp::BrpError;
use crate::qds::{CellClass, Qds, QdsConfig};
use sinr_core::engine::{batch_map, QueryEngine, SinrEvaluator};
use sinr_core::{Network, StationId};
use sinr_geometry::Point;
use sinr_voronoi::KdTree;

// `Located` is the shared answer type of every `QueryEngine` backend; it
// lives in `sinr_core::engine` and is re-exported here for compatibility.
pub use sinr_core::engine::Located;

/// Errors from building a [`PointLocator`].
#[derive(Debug, Clone, PartialEq)]
pub enum PointLocError {
    /// Theorem 3 is stated for uniform power networks.
    NonUniformPower,
    /// Theorem 3 requires path loss `α = 2`.
    UnsupportedPathLoss(f64),
    /// Theorem 3 requires `β > 1`.
    ThresholdNotAboveOne(f64),
    /// A per-station build failed (unbounded zone or resource budget).
    Station(StationId, BrpError),
}

impl std::fmt::Display for PointLocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PointLocError::NonUniformPower => {
                write!(f, "point location requires a uniform power network")
            }
            PointLocError::UnsupportedPathLoss(a) => {
                write!(f, "point location requires α = 2, got α = {a}")
            }
            PointLocError::ThresholdNotAboveOne(b) => {
                write!(f, "point location requires β > 1, got β = {b}")
            }
            PointLocError::Station(i, e) => write!(f, "building QDS for {i}: {e}"),
        }
    }
}

impl std::error::Error for PointLocError {}

/// The full data structure of Theorem 3: per-station zone maps plus a
/// nearest-station dispatcher.
///
/// # Examples
///
/// ```
/// use sinr_core::{Network, StationId};
/// use sinr_geometry::Point;
/// use sinr_pointloc::{Located, PointLocator, QdsConfig};
///
/// let net = Network::uniform(vec![
///     Point::new(0.0, 0.0),
///     Point::new(6.0, 0.0),
///     Point::new(3.0, 5.0),
/// ], 0.0, 2.0).unwrap();
/// let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
///
/// // Far from everyone: silent, and the locator knows it.
/// assert_eq!(ds.locate(Point::new(100.0, -80.0)), Located::Silent);
/// ```
#[derive(Debug, Clone)]
pub struct PointLocator {
    maps: Vec<Qds>,
    tree: KdTree,
    positions: Vec<Point>,
    epsilon: f64,
    /// Retained for `QueryEngine::sinr_batch` (the grid structure answers
    /// zone membership, not SINR values).
    eval: SinrEvaluator,
}

impl PointLocator {
    /// Builds the structure: one [`Qds`] per station (`O(n³·ε⁻¹)` total
    /// preprocessing) plus the kd-tree dispatcher (`O(n log n)`).
    ///
    /// # Errors
    ///
    /// * [`PointLocError::NonUniformPower`] /
    ///   [`PointLocError::UnsupportedPathLoss`] /
    ///   [`PointLocError::ThresholdNotAboveOne`] — Theorem 3
    ///   preconditions;
    /// * [`PointLocError::Station`] — a per-station reconstruction failed.
    pub fn build(net: &Network, config: &QdsConfig) -> Result<Self, PointLocError> {
        if !net.is_uniform_power() {
            return Err(PointLocError::NonUniformPower);
        }
        if net.alpha() != 2.0 {
            return Err(PointLocError::UnsupportedPathLoss(net.alpha()));
        }
        if net.beta() <= 1.0 {
            return Err(PointLocError::ThresholdNotAboveOne(net.beta()));
        }
        let mut maps = Vec::with_capacity(net.len());
        for i in net.ids() {
            maps.push(Qds::build(net, i, config).map_err(|e| PointLocError::Station(i, e))?);
        }
        Ok(PointLocator {
            maps,
            tree: KdTree::build(net.positions().to_vec()),
            positions: net.positions().to_vec(),
            epsilon: config.epsilon,
            eval: SinrEvaluator::new(net),
        })
    }

    /// The `ε` the structure was built with.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// True when the structure covers no stations (never for a built one).
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// The per-station maps.
    pub fn maps(&self) -> &[Qds] {
        &self.maps
    }

    /// Total number of `T?` cells across all stations (the structure's
    /// dominant size term, `O(n·ε⁻¹)`).
    pub fn total_question_cells(&self) -> usize {
        self.maps.iter().map(|m| m.question_cell_count()).sum()
    }

    /// Locates a query point: `O(log n)` nearest-station dispatch plus an
    /// `O(1)` cell classification.
    pub fn locate(&self, p: Point) -> Located {
        let Some((nearest, dist)) = self.tree.nearest(p) else {
            return Located::Silent;
        };
        if dist == 0.0 {
            // Exactly at a station: in its zone by definition (the {sᵢ}
            // clause), even for degenerate zones.
            return Located::Reception(StationId(nearest));
        }
        match self.maps[nearest].classify(p) {
            CellClass::Plus => Located::Reception(StationId(nearest)),
            CellClass::Question => Located::Uncertain(StationId(nearest)),
            CellClass::Minus => Located::Silent,
        }
    }

    /// Ground-truth comparison: evaluates the SINR model directly
    /// (`O(n)`) — the baseline the data structure accelerates.
    pub fn locate_naive(&self, net: &Network, p: Point) -> Option<StationId> {
        debug_assert_eq!(net.positions(), &self.positions[..]);
        net.heard_at(p)
    }
}

impl QueryEngine for PointLocator {
    fn locate(&self, p: Point) -> Located {
        PointLocator::locate(self, p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        // Rides the engine's shared work-stealing batch driver. That
        // matters here more than for the uniform-cost scans: QDS queries
        // are `O(log n)` when the grid answers and `O(n)` when a query
        // misses every per-zone structure, so a static per-core split
        // could strand the slow points on one thread; tile stealing
        // rebalances them.
        batch_map(points, out, |p| PointLocator::locate(self, *p));
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net3() -> Network {
        Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(6.0, 0.0),
                Point::new(3.0, 5.0),
            ],
            0.0,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn preconditions_enforced() {
        let nonuniform = Network::builder()
            .station(Point::ORIGIN)
            .station_with_power(Point::new(3.0, 0.0), 2.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert_eq!(
            PointLocator::build(&nonuniform, &QdsConfig::default()).unwrap_err(),
            PointLocError::NonUniformPower
        );
        let alpha4 = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(3.0, 0.0))
            .threshold(2.0)
            .path_loss(4.0)
            .build()
            .unwrap();
        assert!(matches!(
            PointLocator::build(&alpha4, &QdsConfig::default()).unwrap_err(),
            PointLocError::UnsupportedPathLoss(_)
        ));
        let beta1 = Network::uniform(vec![Point::ORIGIN, Point::new(3.0, 0.0)], 0.0, 1.0).unwrap();
        assert!(matches!(
            PointLocator::build(&beta1, &QdsConfig::default()).unwrap_err(),
            PointLocError::ThresholdNotAboveOne(_)
        ));
    }

    #[test]
    fn locate_agrees_with_ground_truth() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.25)).unwrap();
        let mut uncertain = 0usize;
        let mut total = 0usize;
        for a in -30..=90 {
            for b in -40..=90 {
                let p = Point::new(a as f64 * 0.1, b as f64 * 0.1);
                total += 1;
                match ds.locate(p) {
                    Located::Reception(i) => {
                        assert!(net.is_heard(i, p), "claimed reception of {i} at {p}");
                    }
                    Located::Silent => {
                        assert_eq!(net.heard_at(p), None, "claimed silence at {p}");
                    }
                    Located::Uncertain(_) => uncertain += 1,
                }
            }
        }
        // The uncertain band must be a small minority of the window.
        assert!(
            uncertain * 10 < total,
            "{uncertain}/{total} uncertain answers"
        );
    }

    #[test]
    fn station_positions_locate_as_reception() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        for i in net.ids() {
            assert_eq!(ds.locate(net.position(i)), Located::Reception(i));
        }
    }

    #[test]
    fn colocated_station_zone_is_the_point_itself() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(4.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        // At the shared location: reception by one of the co-located pair
        // (the {sᵢ} clause — the kd-tree picks one of the zero-distance
        // sites).
        match ds.locate(Point::ORIGIN) {
            Located::Reception(i) => assert!(i.index() <= 1),
            other => panic!("expected reception at the shared site, got {other:?}"),
        }
        // Near (but not at) the pair: silent — they jam each other.
        assert_eq!(ds.locate(Point::new(0.3, 0.0)), Located::Silent);
    }

    #[test]
    fn size_scales_inverse_epsilon() {
        let net = net3();
        let small = PointLocator::build(&net, &QdsConfig::with_epsilon(0.5)).unwrap();
        let large = PointLocator::build(&net, &QdsConfig::with_epsilon(0.1)).unwrap();
        assert!(large.total_question_cells() > small.total_question_cells());
        assert_eq!(small.len(), 3);
        assert_eq!(small.epsilon(), 0.5);
    }

    #[test]
    fn locate_naive_baseline() {
        let net = net3();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        assert_eq!(
            ds.locate_naive(&net, Point::new(0.1, 0.0)),
            Some(StationId(0))
        );
        assert_eq!(ds.locate_naive(&net, Point::new(3.0, 1.8)), None);
    }
}
