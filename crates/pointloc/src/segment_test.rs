//! The Sturm-based segment test of Section 5.1.
//!
//! "On input segment σ, the segment test returns the number of distinct
//! intersection points of ∂Q and σ. […] The segment test is implemented to
//! run in time O(m²) by employing Sturm's condition of the projection of
//! the polynomial Q(x, y) on σ."
//!
//! Here the zone is a reception zone `Hᵢ`, its boundary is the zero set of
//! the characteristic polynomial, and the projection is the restriction
//! built by `sinr_core::charpoly` (degree `m ≤ 2n`). Counting distinct
//! real roots of the restriction in the segment's parameter interval
//! `[0, 1]` is exactly the segment test.

use sinr_algebra::SturmChain;
use sinr_core::{charpoly, Network, StationId};
use sinr_geometry::{CellId, Grid, GridEdge, Segment};

/// Number of distinct intersection points of `∂Hᵢ` with the closed
/// segment — the paper's segment test.
///
/// For a convex zone (Theorem 1 applies when the network is uniform with
/// `β ≥ 1`) the answer is 0, 1 or 2.
///
/// # Panics
///
/// Panics if the network's path loss is not `α = 2`.
///
/// # Examples
///
/// ```
/// use sinr_core::{Network, StationId};
/// use sinr_geometry::{Point, Segment};
/// use sinr_pointloc::segment_test;
///
/// let net = Network::uniform(
///     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap();
/// // H0 spans (−4/(√2−1), 4/(1+√2)) ≈ (−9.66, 1.66) along the x-axis;
/// // a segment cutting straight through crosses the boundary twice.
/// let through = Segment::new(Point::new(-10.0, 0.0), Point::new(2.0, 0.0));
/// assert_eq!(segment_test(&net, StationId(0), &through), 2);
/// // A short segment deep inside the zone crosses nothing.
/// let inside = Segment::new(Point::new(-0.2, 0.0), Point::new(0.4, 0.0));
/// assert_eq!(segment_test(&net, StationId(0), &inside), 0);
/// ```
pub fn segment_test(net: &Network, i: StationId, seg: &Segment) -> usize {
    let h = charpoly::restricted_to_segment(net, i, seg);
    if h.is_constant() {
        return 0;
    }
    SturmChain::new(&h).count_roots_in(0.0, 1.0)
}

/// Segment test specialised to one edge of a grid cell.
pub fn crossings_on_cell_edge(
    net: &Network,
    i: StationId,
    grid: &Grid,
    cell: CellId,
    edge: GridEdge,
) -> usize {
    segment_test(net, i, &grid.cell_edge(cell, edge))
}

/// True when the boundary `∂Hᵢ` intersects the closed square of `cell` —
/// the boundary-cell predicate of the reconstruction process.
///
/// Decision procedure (sound for the convex zones of Theorem 1):
///
/// * corners on both sides of `∂Hᵢ` ⇒ crossed (intermediate value);
/// * all four corners strictly inside ⇒ by convexity the whole square is
///   inside ⇒ not crossed;
/// * all four corners outside ⇒ crossed iff some edge reports a crossing
///   (a convex zone larger than the cell cannot hide strictly inside it),
///   decided by four Sturm segment tests.
pub fn cell_is_boundary(net: &Network, i: StationId, grid: &Grid, cell: CellId) -> bool {
    let beta = net.beta();
    let mut inside = 0usize;
    for corner in grid.cell_corners(cell) {
        if net.sinr(i, corner) >= beta {
            inside += 1;
        }
    }
    match inside {
        1..=3 => true,
        4 => false,
        _ => GridEdge::ALL
            .iter()
            .any(|e| crossings_on_cell_edge(net, i, grid, cell, *e) > 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point;

    fn net2() -> Network {
        Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap()
    }

    #[test]
    fn counts_zero_one_two() {
        let net = net2();
        let s0 = StationId(0);
        // H0 along the x-axis is the interval (−4/(√2−1), 4/(1+√2)).
        let r_right = 4.0 / (1.0 + 2f64.sqrt());
        let r_left = -4.0 / (2f64.sqrt() - 1.0);
        // Entirely inside.
        assert_eq!(
            segment_test(
                &net,
                s0,
                &Segment::new(Point::new(-1.0, 0.0), Point::new(0.5, 0.0))
            ),
            0
        );
        // Entirely outside.
        assert_eq!(
            segment_test(
                &net,
                s0,
                &Segment::new(Point::new(2.0, 0.0), Point::new(3.0, 0.0))
            ),
            0
        );
        // One crossing.
        assert_eq!(
            segment_test(
                &net,
                s0,
                &Segment::new(Point::new(0.0, 0.0), Point::new(r_right + 0.5, 0.0))
            ),
            1
        );
        // Two crossings.
        assert_eq!(
            segment_test(
                &net,
                s0,
                &Segment::new(
                    Point::new(r_left - 0.5, 0.0),
                    Point::new(r_right + 0.5, 0.0)
                )
            ),
            2
        );
    }

    #[test]
    fn convexity_bounds_crossings() {
        // Random chords of a 4-station uniform network never cross a zone
        // boundary more than twice (Theorem 1 + Lemma 2.1).
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.5),
                Point::new(-1.0, 2.0),
                Point::new(1.5, -2.0),
            ],
            0.02,
            2.0,
        )
        .unwrap();
        let mut state: u64 = 77;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 12.0 - 6.0
        };
        for _ in 0..50 {
            let seg = Segment::new(Point::new(next(), next()), Point::new(next(), next()));
            for i in net.ids() {
                let c = segment_test(&net, i, &seg);
                assert!(c <= 2, "{c} crossings of ∂H_{i} on {seg}");
            }
        }
    }

    #[test]
    fn boundary_cell_predicate() {
        let net = net2();
        let s0 = StationId(0);
        let grid = Grid::new(Point::ORIGIN, 0.25);
        let r_right = 4.0 / (1.0 + 2f64.sqrt()); // ≈ 1.657
                                                 // Cell containing the eastern boundary point.
        let on_boundary = grid.cell_of(Point::new(r_right, 0.0));
        assert!(cell_is_boundary(&net, s0, &grid, on_boundary));
        // Cell at the station: interior.
        assert!(!cell_is_boundary(
            &net,
            s0,
            &grid,
            grid.cell_of(Point::new(0.05, 0.05))
        ));
        // Far outside cell.
        assert!(!cell_is_boundary(
            &net,
            s0,
            &grid,
            grid.cell_of(Point::new(10.0, 10.0))
        ));
    }

    #[test]
    fn tangent_edges_detected_via_sturm() {
        // A cell whose corners are all outside but whose edge the zone
        // pokes through: position a thin sliver by using a cell just at
        // the rightmost tip of the zone.
        let net = net2();
        let s0 = StationId(0);
        let r_right = 4.0 / (1.0 + 2f64.sqrt());
        // A coarse grid cell whose west edge is just inside the tip and
        // whose corners straddle nothing (tip pokes into the west edge).
        // At x = r − 0.02 the zone's vertical half-width is
        // √((4−x)² − 2x²) ≈ 0.475, so corners at |y| = 0.5 are outside.
        let gamma = 1.0;
        let grid = Grid::new(Point::new(r_right - 0.02, -gamma / 2.0), gamma);
        let cell = grid.cell_of(Point::new(r_right + 0.01, 0.0));
        let corners_inside = grid
            .cell_corners(cell)
            .iter()
            .filter(|c| net.sinr(s0, **c) >= net.beta())
            .count();
        assert_eq!(
            corners_inside, 0,
            "construction should give all-outside corners"
        );
        assert!(
            cell_is_boundary(&net, s0, &grid, cell),
            "sliver crossing must be detected"
        );
    }
}
