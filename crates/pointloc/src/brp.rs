//! The Boundary Reconstruction Process (BRP) of Section 5.1.
//!
//! The paper's BRP walks `∂Q` clockwise, collecting the grid cells the
//! boundary passes through; the `T?` cells are the 9-cells of the traced
//! cells. We implement the trace as a breadth-first flood along the
//! boundary: starting from the seed cell due north of the station
//! (located by the same binary search the paper uses), neighbouring cells
//! are tested with the boundary-cell predicate (corner signs resolved by
//! the Sturm segment test in the ambiguous all-outside case). Because
//! `∂Q` is a closed connected curve and boundary cells are 8-connected
//! along it, the flood discovers exactly the cells the paper's clockwise
//! walk visits — the output set is identical.

use sinr_core::{Network, StationId};
use sinr_geometry::{CellId, Grid, Vector};
use std::collections::{HashSet, VecDeque};

/// Statistics of one BRP run (the quantities the paper's analysis bounds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BrpStats {
    /// Grid spacing `γ` actually used.
    pub gamma: f64,
    /// Lower estimate `δ̃ ≤ δ(sᵢ, Hᵢ)` used for sizing.
    pub delta_estimate: f64,
    /// Upper estimate `Δ̃ ≥ Δ(sᵢ, Hᵢ)` used for sizing.
    pub big_delta_estimate: f64,
    /// Number of boundary cells traced (the paper's `m − 1`).
    pub ring_cells: usize,
    /// Number of segment tests performed.
    pub segment_tests: usize,
    /// Number of direct SINR corner evaluations performed.
    pub sinr_evaluations: usize,
}

/// The outcome of a boundary reconstruction: the traced ring plus stats.
#[derive(Debug, Clone)]
pub struct BrpOutcome {
    /// The grid the reconstruction ran on (aligned so `sᵢ` is a vertex).
    pub grid: Grid,
    /// The boundary cells (the clockwise walk's cell set).
    pub ring: Vec<CellId>,
    /// Run statistics.
    pub stats: BrpStats,
}

/// Errors the reconstruction can report.
#[derive(Debug, Clone, PartialEq)]
pub enum BrpError {
    /// The zone is degenerate (`Hᵢ = {sᵢ}`, co-located stations).
    DegenerateZone,
    /// The zone is unbounded (trivial network).
    UnboundedZone,
    /// Theorem 3 requires `β > 1` (Theorem 4.2's fatness guarantee sizes
    /// the grid; at `β ≤ 1` no constant bound exists).
    ThresholdNotAboveOne(f64),
    /// The requested resolution would create more cells than `max_cells`.
    TooManyCells {
        /// Estimated ring length.
        estimated: usize,
        /// Configured ceiling.
        limit: usize,
    },
}

impl std::fmt::Display for BrpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BrpError::DegenerateZone => write!(f, "zone is a single point (co-located stations)"),
            BrpError::UnboundedZone => write!(f, "zone is unbounded (trivial network)"),
            BrpError::TooManyCells { estimated, limit } => {
                write!(
                    f,
                    "boundary ring needs ≈{estimated} cells, limit is {limit}"
                )
            }
            BrpError::ThresholdNotAboveOne(beta) => {
                write!(f, "point location requires β > 1, got β = {beta}")
            }
        }
    }
}

impl std::error::Error for BrpError {}

/// Estimates `δ̃` and `Δ̃` for station `i` following Section 5.2: measure
/// the boundary distance in a few directions (each measurement is the
/// paper's binary search), then pin the extremes with Theorem 4.2's
/// constant-fatness guarantee.
///
/// Returns `(δ̃, Δ̃)` with `δ̃ ≤ δ ≤ Δ ≤ Δ̃`, or an error for degenerate or
/// unbounded zones.
pub fn estimate_zone_radii(
    net: &Network,
    i: StationId,
    probe_directions: usize,
) -> Result<(f64, f64), BrpError> {
    if net.is_colocated(i) {
        return Err(BrpError::DegenerateZone);
    }
    if net.beta() <= 1.0 {
        return Err(BrpError::ThresholdNotAboveOne(net.beta()));
    }
    let k = probe_directions.max(3);
    let zone = net.reception_zone(i);
    let mut r_min = f64::INFINITY;
    let mut r_max: f64 = 0.0;
    for j in 0..k {
        let theta = std::f64::consts::TAU * j as f64 / k as f64;
        let r = zone.boundary_radius(theta).ok_or(BrpError::UnboundedZone)?;
        r_min = r_min.min(r);
        r_max = r_max.max(r);
    }
    // Two rigorous lower bounds on δ for convex zones (Theorem 1 applies:
    // uniform power, α = 2, β > 1):
    //   (a) Theorem 4.2: δ ≥ Δ/φ ≥ r_max/φ with φ = (√β+1)/(√β−1);
    //   (b) hull containment: the zone contains the polygon through the
    //       sampled boundary points, whose inradius w.r.t. the station is
    //       at least r_min·cos(π/k).
    let phi = (net.beta().sqrt() + 1.0) / (net.beta().sqrt() - 1.0);
    let delta_est = (r_max / phi).max(r_min * (std::f64::consts::PI / k as f64).cos());
    // Upper bounds on Δ: Theorem 4.2 (Δ ≤ φ·δ ≤ φ·r_min) and Theorem 4.1's
    // closed form; both are safe, take the tighter.
    let big_delta_est = (phi * r_min).max(r_max).min(
        sinr_core::bounds::delta_upper_bound(net.kappa(i), net.noise(), net.beta())
            .unwrap_or(f64::INFINITY),
    );
    Ok((delta_est, big_delta_est))
}

/// How boundary cells are recognised during the reconstruction.
///
/// Both strategies decide the same predicate — "does `∂Hᵢ` intersect the
/// closed cell square?" — and produce identical rings; they differ in
/// cost. The ablation bench `pointloc_build` quantifies the difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundaryPredicate {
    /// First classify the four cell corners by direct SINR evaluation
    /// (`O(n)` each): mixed signs ⇒ crossed; all inside ⇒ not crossed
    /// (convexity); only the all-outside case falls back to the four Sturm
    /// segment tests. This is the default.
    #[default]
    CornerFiltered,
    /// The paper-literal route: run the Sturm segment test (`O(n²)`) on
    /// each of the four cell edges, plus two corner evaluations to
    /// distinguish "cell fully inside" from "fully outside" when no edge
    /// is crossed.
    SegmentTestsOnly,
}

/// Runs the boundary reconstruction for station `i` with the paper's grid
/// spacing `γ = ε·δ̃²/(18·Δ̃)` (clamped to `δ̃/(2√2)` so the station's
/// four surrounding cells stay strictly inside the zone), using the
/// default [`BoundaryPredicate::CornerFiltered`] strategy.
///
/// `max_cells` caps the traced ring as a resource guard.
///
/// # Errors
///
/// Returns a [`BrpError`] for degenerate/unbounded zones or an over-budget
/// resolution.
pub fn reconstruct_boundary(
    net: &Network,
    i: StationId,
    epsilon: f64,
    max_cells: usize,
) -> Result<BrpOutcome, BrpError> {
    reconstruct_boundary_with(
        net,
        i,
        epsilon,
        max_cells,
        BoundaryPredicate::CornerFiltered,
    )
}

/// [`reconstruct_boundary`] with an explicit boundary-cell recognition
/// strategy.
///
/// # Errors
///
/// Returns a [`BrpError`] for degenerate/unbounded zones or an over-budget
/// resolution.
pub fn reconstruct_boundary_with(
    net: &Network,
    i: StationId,
    epsilon: f64,
    max_cells: usize,
    predicate: BoundaryPredicate,
) -> Result<BrpOutcome, BrpError> {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "ε must lie in (0, 1), got {epsilon}"
    );
    let (delta_est, big_delta_est) = estimate_zone_radii(net, i, 16)?;

    // Section 5.1's choice, with the γ < δ̃/√2 safety clamp.
    let gamma_paper = epsilon * delta_est * delta_est / (18.0 * big_delta_est);
    let gamma = gamma_paper.min(delta_est / (2.0 * 2f64.sqrt()));
    let est_ring = (2.0 * std::f64::consts::PI * big_delta_est / gamma).ceil() as usize;
    if est_ring > max_cells {
        return Err(BrpError::TooManyCells {
            estimated: est_ring,
            limit: max_cells,
        });
    }

    let center = net.position(i);
    let grid = Grid::new(center, gamma);
    let zone = net.reception_zone(i);

    // Seed: the boundary point due north (the paper's binary search north
    // of s, which our ray-shooting bisection is).
    let r_north = zone
        .boundary_radius(std::f64::consts::FRAC_PI_2)
        .ok_or(BrpError::UnboundedZone)?;
    let seed_point = center + Vector::new(0.0, r_north);
    let seed = grid.cell_of(seed_point);

    let mut stats = BrpStats {
        gamma,
        delta_estimate: delta_est,
        big_delta_estimate: big_delta_est,
        ring_cells: 0,
        segment_tests: 0,
        sinr_evaluations: 0,
    };

    // Flood along the boundary over 8-neighbours.
    let mut ring: Vec<CellId> = Vec::new();
    let mut visited: HashSet<CellId> = HashSet::new();
    let mut queue: VecDeque<CellId> = VecDeque::new();
    visited.insert(seed);
    if !is_boundary_counted(net, i, &grid, seed, predicate, &mut stats) {
        // The seed contains a boundary point by construction; numerical
        // skew can only put it in an adjacent cell — scan the 9-cell.
        let mut found = None;
        for c in seed.nine_cell() {
            if c != seed && is_boundary_counted(net, i, &grid, c, predicate, &mut stats) {
                found = Some(c);
                break;
            }
        }
        let c = found.expect("a boundary cell must exist near the seed point");
        visited.insert(c);
        queue.push_back(c);
        ring.push(c);
    } else {
        queue.push_back(seed);
        ring.push(seed);
    }

    while let Some(cell) = queue.pop_front() {
        for nb in cell.neighbors() {
            if visited.contains(&nb) {
                continue;
            }
            visited.insert(nb);
            if ring.len() > max_cells {
                return Err(BrpError::TooManyCells {
                    estimated: est_ring.max(ring.len()),
                    limit: max_cells,
                });
            }
            if is_boundary_counted(net, i, &grid, nb, predicate, &mut stats) {
                ring.push(nb);
                queue.push_back(nb);
            }
        }
    }
    stats.ring_cells = ring.len();
    Ok(BrpOutcome { grid, ring, stats })
}

/// Boundary-cell predicate with bookkeeping (mirrors
/// `segment_test::cell_is_boundary` but counts the work performed).
fn is_boundary_counted(
    net: &Network,
    i: StationId,
    grid: &Grid,
    cell: CellId,
    predicate: BoundaryPredicate,
    stats: &mut BrpStats,
) -> bool {
    let beta = net.beta();
    match predicate {
        BoundaryPredicate::CornerFiltered => {
            let mut inside = 0usize;
            for corner in grid.cell_corners(cell) {
                stats.sinr_evaluations += 1;
                if net.sinr(i, corner) >= beta {
                    inside += 1;
                }
            }
            match inside {
                1..=3 => true,
                4 => false,
                _ => sinr_geometry::GridEdge::ALL.iter().any(|e| {
                    stats.segment_tests += 1;
                    crate::segment_test::crossings_on_cell_edge(net, i, grid, cell, *e) > 0
                }),
            }
        }
        BoundaryPredicate::SegmentTestsOnly => {
            let crossed = sinr_geometry::GridEdge::ALL.iter().any(|e| {
                stats.segment_tests += 1;
                crate::segment_test::crossings_on_cell_edge(net, i, grid, cell, *e) > 0
            });
            if crossed {
                return true;
            }
            // No edge crossing ⇒ the square is entirely inside or entirely
            // outside (a convex zone larger than the cell cannot hide in
            // its interior) ⇒ not a boundary cell — except the
            // measure-zero tangency where ∂Hᵢ touches a corner exactly.
            for corner in grid.cell_corners(cell) {
                stats.sinr_evaluations += 1;
                let s = net.sinr(i, corner);
                if (s - beta).abs() < 1e-12 * beta {
                    return true;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point;

    fn net3() -> Network {
        Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(6.0, 0.0),
                Point::new(3.0, 5.0),
            ],
            0.0,
            2.0,
        )
        .unwrap()
    }

    #[test]
    fn radii_estimates_bracket_truth() {
        let net = net3();
        for i in net.ids() {
            let (lo, hi) = estimate_zone_radii(&net, i, 16).unwrap();
            let profile = net.reception_zone(i).radial_profile(256).unwrap();
            assert!(
                lo <= profile.delta() + 1e-9,
                "{i}: δ̃={lo} > δ={}",
                profile.delta()
            );
            assert!(
                hi >= profile.big_delta() - 1e-9,
                "{i}: Δ̃={hi} < Δ={}",
                profile.big_delta()
            );
        }
    }

    #[test]
    fn ring_encircles_boundary() {
        let net = net3();
        let i = StationId(0);
        let out = reconstruct_boundary(&net, i, 0.5, 2_000_000).unwrap();
        assert!(!out.ring.is_empty());
        // Every boundary point sampled by ray-shooting lies in some traced
        // ring cell.
        let zone = net.reception_zone(i);
        let ring_set: HashSet<CellId> = out.ring.iter().copied().collect();
        for k in 0..64 {
            let theta = std::f64::consts::TAU * k as f64 / 64.0;
            let p = zone.boundary_point(theta).unwrap();
            let c = out.grid.cell_of(p);
            // The containing cell, or an immediate neighbour (boundary
            // points can sit exactly on cell edges), must be in the ring.
            let hit = c.nine_cell().any(|nb| ring_set.contains(&nb));
            assert!(hit, "boundary point at θ={theta} not covered by the ring");
        }
    }

    #[test]
    fn ring_length_matches_paper_bound() {
        // m ≤ ⌈per(Q)/γ⌉ ≤ ⌈2πΔ̃/γ⌉ and the T? count is at most 9m.
        let net = net3();
        let i = StationId(0);
        let out = reconstruct_boundary(&net, i, 0.4, 2_000_000).unwrap();
        let bound = (2.0 * std::f64::consts::PI * out.stats.big_delta_estimate / out.stats.gamma)
            .ceil() as usize;
        // The flood's cell count is within a small constant of the walk's m
        // (each unit of boundary length meets O(1) cells).
        assert!(
            out.stats.ring_cells <= 3 * bound,
            "ring {} ≫ bound {bound}",
            out.stats.ring_cells
        );
        assert!(out.stats.ring_cells >= 8, "suspiciously tiny ring");
    }

    #[test]
    fn epsilon_refines_gamma() {
        let net = net3();
        let i = StationId(0);
        let coarse = reconstruct_boundary(&net, i, 0.8, 2_000_000).unwrap();
        let fine = reconstruct_boundary(&net, i, 0.1, 2_000_000).unwrap();
        assert!(fine.stats.gamma < coarse.stats.gamma);
        assert!(fine.stats.ring_cells > coarse.stats.ring_cells);
    }

    #[test]
    fn degenerate_and_unbounded_errors() {
        let colocated = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(2.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        assert_eq!(
            reconstruct_boundary(&colocated, StationId(0), 0.5, 1_000_000).unwrap_err(),
            BrpError::DegenerateZone
        );
        let trivial =
            Network::uniform(vec![Point::ORIGIN, Point::new(2.0, 0.0)], 0.0, 1.0).unwrap();
        assert_eq!(
            reconstruct_boundary(&trivial, StationId(0), 0.5, 1_000_000).unwrap_err(),
            BrpError::ThresholdNotAboveOne(1.0)
        );
    }

    #[test]
    fn predicate_strategies_agree() {
        // The corner-filtered shortcut and the paper-literal pure segment
        // tests recognise exactly the same boundary cells.
        let net = net3();
        for i in net.ids() {
            let fast = reconstruct_boundary_with(
                &net,
                i,
                0.5,
                2_000_000,
                BoundaryPredicate::CornerFiltered,
            )
            .unwrap();
            let pure = reconstruct_boundary_with(
                &net,
                i,
                0.5,
                2_000_000,
                BoundaryPredicate::SegmentTestsOnly,
            )
            .unwrap();
            let mut a = fast.ring.clone();
            let mut b = pure.ring.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{i}: strategies disagree on the ring");
            // The corner filter eliminates the segment tests for
            // mixed-corner cells (the ring itself); outside-neighbours
            // still need the algebraic test, so the saving is a constant
            // factor (~2–3×), not an order of magnitude.
            assert!(
                pure.stats.segment_tests as f64 > 1.5 * fast.stats.segment_tests.max(1) as f64,
                "pure {} vs fast {}",
                pure.stats.segment_tests,
                fast.stats.segment_tests
            );
        }
    }

    #[test]
    fn cell_budget_enforced() {
        let net = net3();
        let err = reconstruct_boundary(&net, StationId(0), 0.05, 64).unwrap_err();
        assert!(matches!(err, BrpError::TooManyCells { .. }));
    }

    #[test]
    #[should_panic]
    fn epsilon_out_of_range_panics() {
        let net = net3();
        let _ = reconstruct_boundary(&net, StationId(0), 1.5, 1_000_000);
    }
}
