//! # sinr-pointloc
//!
//! The approximate point-location data structure of **Theorem 3** of
//! *"SINR Diagrams"* (Avin et al., PODC 2009), Section 5.
//!
//! Given a uniform power network with `α = 2` and `β > 1` and a
//! performance parameter `0 < ε < 1`, the structure partitions the plane,
//! for every station `sᵢ`, into
//!
//! * `Hᵢ⁺` — cells guaranteed inside the reception zone `Hᵢ`;
//! * `Hᵢ?` — a bounded ring of *uncertain* cells along `∂Hᵢ` whose total
//!   area is at most `ε · area(Hᵢ)`;
//! * the remaining plane, guaranteed outside `Hᵢ`;
//!
//! and answers queries in `O(log n)`: a kd-tree finds the only candidate
//! station (Observation 2.2: zones live strictly inside Voronoi cells),
//! and that station's per-zone grid structure classifies the cell in
//! `O(1)`.
//!
//! The build follows the paper's recipe:
//!
//! 1. estimate `δ` and `Δ` by ray-shooting (Theorem 4.2 pins `Δ/δ = O(1)`,
//!    so both are `Θ(r)` for the measured boundary distance `r`);
//! 2. impose a `γ`-spaced grid aligned at `sᵢ` with
//!    `γ = ε·δ̃²/(18·Δ̃)` (Section 5.1);
//! 3. run the **Boundary Reconstruction Process**: starting from the
//!    boundary cell due north of `sᵢ`, walk around `∂Hᵢ` collecting the
//!    cells it crosses, deciding crossings with the Sturm-sequence
//!    **segment test** on the restricted characteristic polynomial;
//! 4. dilate the traced cells to their 9-cells (`T?`), classify the rest
//!    of each grid column as `T⁺` (between the uncertainty bands) or `T⁻`,
//!    and store the columns in a compressed map.
//!
//! ## Example
//!
//! ```
//! use sinr_core::Network;
//! use sinr_geometry::Point;
//! use sinr_pointloc::{Located, PointLocator, QdsConfig};
//!
//! let net = Network::uniform(vec![
//!     Point::new(0.0, 0.0),
//!     Point::new(6.0, 0.0),
//!     Point::new(3.0, 5.0),
//! ], 0.0, 2.0).unwrap();
//! let locator = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
//!
//! match locator.locate(Point::new(0.2, 0.1)) {
//!     Located::Reception(id) => assert_eq!(id.index(), 0),
//!     Located::Uncertain(_) => {} // near a boundary: allowed
//!     Located::Silent => panic!("next to s0 the locator cannot rule out reception"),
//! }
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod brp;
pub mod ds;
pub mod qds;
pub mod segment_test;

pub use brp::{BoundaryPredicate, BrpOutcome, BrpStats};
pub use ds::{Located, PointLocError, PointLocator};
pub use qds::{CellClass, Qds, QdsConfig, QdsVerification};
pub use segment_test::{crossings_on_cell_edge, segment_test};
