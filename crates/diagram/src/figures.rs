//! The paper's numerically generated figures as reproducible scenes.
//!
//! Each scene bundles the network (or model pair), the receiver point and
//! the *narrated outcome* from the paper, so the reproduction harness can
//! assert the qualitative claim and regenerate the diagram. The station
//! coordinates are ours (the paper prints plots, not coordinates); what is
//! reproduced is the *phenomenon* each figure demonstrates.

use sinr_core::{Network, StationId};
use sinr_geometry::{BBox, Point};
use sinr_graphs::ProtocolModel;

/// The three-panel dynamic-reception scenario of **Figure 1**.
///
/// * Panel A: receiver `p` hears `s2`;
/// * Panel B: `s1` moves next to `p` — now nothing is heard at `p`;
/// * Panel C: same placement as B but `s3` silent — `p` hears `s1`.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// Panel A network (`s1` far away).
    pub panel_a: Network,
    /// Panel B network (`s1` moved next to `p`).
    pub panel_b: Network,
    /// Panel C network (panel B with `s3` removed; note the station
    /// indices shift: `s1 → 0`, `s2 → 1`).
    pub panel_c: Network,
    /// The receiver.
    pub receiver: Point,
    /// The plotting window used by the paper (−6..6).
    pub window: BBox,
}

/// Builds the Figure 1 scene.
///
/// Index convention: station 0 is the paper's `s1`, 1 is `s2`, 2 is `s3`.
pub fn figure1() -> Figure1 {
    let receiver = Point::new(0.8, -1.0);
    let s2 = Point::new(1.8, -1.0);
    let s3 = Point::new(2.2, 0.0);
    let s1_a = Point::new(-4.0, 2.5);
    let s1_b = Point::new(0.8, -0.233);
    let build = |s1: Point, with_s3: bool| {
        let mut pts = vec![s1, s2];
        if with_s3 {
            pts.push(s3);
        }
        Network::uniform(pts, 0.02, 1.5).expect("valid figure network")
    };
    Figure1 {
        panel_a: build(s1_a, true),
        panel_b: build(s1_b, true),
        panel_c: build(s1_b, false),
        receiver,
        window: BBox::centered_square(6.0),
    }
}

/// The cumulative-interference scenario of **Figure 2**: in the UDG
/// diagram `p` hears `s1`; in the SINR diagram the combined interference
/// of `s2, s3, s4` (each individually outside `p`'s unit disk) silences
/// it — the graph model's *false positive*.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The four-station SINR network (`s1` is station 0).
    pub network: Network,
    /// The UDG / protocol model over the same stations.
    pub udg: ProtocolModel,
    /// The receiver.
    pub receiver: Point,
    /// The plotting window used by the paper (−10..10).
    pub window: BBox,
}

/// Builds the Figure 2 scene.
pub fn figure2() -> Figure2 {
    let positions = vec![
        Point::new(0.8, 0.0),  // s1: inside p's unit disk
        Point::new(-1.3, 0.0), // s2..s4: just outside it
        Point::new(0.0, 1.3),
        Point::new(0.0, -1.3),
    ];
    Figure2 {
        network: Network::uniform(positions.clone(), 0.02, 1.2).expect("valid figure network"),
        udg: ProtocolModel::new(positions, 1.0),
        receiver: Point::new(0.0, 0.0),
        window: BBox::centered_square(10.0),
    }
}

/// One step of the **Figures 3–4** progression: which stations transmit,
/// and what each model delivers at the receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure34Step {
    /// Step number (1–4), matching the paper's narration.
    pub step: usize,
    /// Transmit mask over the four stations.
    pub transmitting: Vec<bool>,
    /// Expected reception under the UDG / protocol model.
    pub expected_udg: Option<StationId>,
    /// Expected reception under the SINR model.
    pub expected_sinr: Option<StationId>,
}

/// The full Figures 3–4 scene: four stations joining one at a time.
#[derive(Debug, Clone)]
pub struct Figure34 {
    /// The four-station SINR network.
    pub network: Network,
    /// The UDG / protocol model over the same stations.
    pub udg: ProtocolModel,
    /// The receiver.
    pub receiver: Point,
    /// The four steps with the paper's narrated outcomes:
    /// 1. only `s1`: both models deliver `s1`;
    /// 2. `+s2`: UDG collides (none), SINR still delivers `s1` — *false
    ///    negative*;
    /// 3. `+s3`: UDG none, SINR delivers `s3`;
    /// 4. `+s4`: the models change differently again (here: UDG unchanged,
    ///    SINR loses `s3` to the added interference).
    pub steps: Vec<Figure34Step>,
    /// The plotting window used by the paper (−8..8, approximately).
    pub window: BBox,
}

/// Builds the Figures 3–4 scene.
pub fn figure34() -> Figure34 {
    let positions = vec![
        Point::new(0.7, 0.0),     // s1
        Point::new(-0.9, 0.0),    // s2
        Point::new(0.35, 0.244),  // s3 (close to p)
        Point::new(-0.66, -0.88), // s4 (outside p's disk, strong interferer)
    ];
    let network = Network::uniform(positions.clone(), 0.02, 1.5).expect("valid figure network");
    let udg = ProtocolModel::new(positions, 1.0);
    let steps = vec![
        Figure34Step {
            step: 1,
            transmitting: vec![true, false, false, false],
            expected_udg: Some(StationId(0)),
            expected_sinr: Some(StationId(0)),
        },
        Figure34Step {
            step: 2,
            transmitting: vec![true, true, false, false],
            expected_udg: None,
            expected_sinr: Some(StationId(0)),
        },
        Figure34Step {
            step: 3,
            transmitting: vec![true, true, true, false],
            expected_udg: None,
            expected_sinr: Some(StationId(2)),
        },
        Figure34Step {
            step: 4,
            transmitting: vec![true, true, true, true],
            expected_udg: None,
            expected_sinr: None,
        },
    ];
    Figure34 {
        network,
        udg,
        receiver: Point::new(0.0, 0.0),
        steps,
        window: BBox::centered_square(8.0),
    }
}

/// The non-convexity counterexample of **Figure 5**: a uniform power
/// network with `β = 0.3 < 1` and `N = 0.05` whose reception zones are
/// "clearly non-convex".
#[derive(Debug, Clone)]
pub struct Figure5 {
    /// The three-station network with `β < 1`.
    pub network: Network,
    /// The plotting window used by the paper (−8..8, approximately).
    pub window: BBox,
}

/// Builds the Figure 5 scene (the paper's parameters: `β = 0.3`,
/// `N = 0.05`, `α = 2`, uniform power).
pub fn figure5() -> Figure5 {
    Figure5 {
        network: Network::uniform(
            vec![
                Point::new(-2.0, 1.0),
                Point::new(2.5, 1.2),
                Point::new(0.0, -2.0),
            ],
            0.05,
            0.3,
        )
        .expect("valid figure network"),
        window: BBox::centered_square(8.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_narrative_holds() {
        let fig = figure1();
        // Panel A: p hears s2 (index 1).
        assert_eq!(fig.panel_a.heard_at(fig.receiver), Some(StationId(1)));
        // Panel B: nothing is heard.
        assert_eq!(fig.panel_b.heard_at(fig.receiver), None);
        // Panel C: with s3 silenced, p hears s1 (index 0).
        assert_eq!(fig.panel_c.heard_at(fig.receiver), Some(StationId(0)));
        // The panels only differ as described.
        assert_eq!(fig.panel_b.len(), 3);
        assert_eq!(fig.panel_c.len(), 2);
        assert_eq!(
            fig.panel_b.position(StationId(0)),
            fig.panel_c.position(StationId(0))
        );
    }

    #[test]
    fn figure2_false_positive_holds() {
        let fig = figure2();
        let all = vec![true; 4];
        assert_eq!(
            fig.udg.heard_at(&all, fig.receiver),
            Some(0),
            "UDG: p hears s1"
        );
        assert_eq!(
            fig.network.heard_at(fig.receiver),
            None,
            "SINR: cumulative silence"
        );
        // Each interferer alone would not stop reception (it is the sum
        // that matters — the point of the figure).
        for silent in 1..4 {
            let mut pts = fig.network.positions().to_vec();
            pts.remove(silent);
            let reduced = Network::uniform(pts, fig.network.noise(), fig.network.beta()).unwrap();
            // With any single interferer removed, s1 gets through again.
            assert_eq!(
                reduced.heard_at(fig.receiver),
                Some(StationId(0)),
                "removing s{} should restore reception",
                silent + 1
            );
        }
    }

    #[test]
    fn figure34_steps_hold() {
        let fig = figure34();
        for step in &fig.steps {
            let udg = fig
                .udg
                .heard_at(&step.transmitting, fig.receiver)
                .map(StationId);
            assert_eq!(udg, step.expected_udg, "UDG at step {}", step.step);
            // SINR over the transmitting subset.
            let active: Vec<Point> = fig
                .network
                .positions()
                .iter()
                .zip(step.transmitting.iter())
                .filter_map(|(p, tx)| tx.then_some(*p))
                .collect();
            let sinr = if active.len() >= 2 {
                let sub =
                    Network::uniform(active, fig.network.noise(), fig.network.beta()).unwrap();
                sub.heard_at(fig.receiver).map(|sub_id| {
                    // map back to original indices
                    let mut seen = 0usize;
                    let mut orig = 0usize;
                    for (idx, tx) in step.transmitting.iter().enumerate() {
                        if *tx {
                            if seen == sub_id.index() {
                                orig = idx;
                                break;
                            }
                            seen += 1;
                        }
                    }
                    StationId(orig)
                })
            } else {
                // Single transmitter: reception iff solo SINR (signal over
                // noise) clears β.
                let d2 = fig.network.position(StationId(0)).dist_sq(fig.receiver);
                ((1.0 / d2) / fig.network.noise() >= fig.network.beta()).then_some(StationId(0))
            };
            assert_eq!(sinr, step.expected_sinr, "SINR at step {}", step.step);
        }
    }

    #[test]
    fn figure34_shows_false_negative() {
        // Step 2 is the canonical false negative: UDG silent, SINR delivers.
        let fig = figure34();
        let step2 = &fig.steps[1];
        assert_eq!(step2.expected_udg, None);
        assert_eq!(step2.expected_sinr, Some(StationId(0)));
    }

    #[test]
    fn figure5_zones_nonconvex() {
        let fig = figure5();
        assert!(fig.network.beta() < 1.0);
        let mut violations = 0usize;
        for i in fig.network.ids() {
            let zone = fig.network.reception_zone(i);
            if let Some(report) = sinr_core::convexity::check_zone_convexity(&zone, 48, 24, 1e-7) {
                violations += report.violations.len();
            }
        }
        assert!(violations > 0, "Figure 5 zones must exhibit non-convexity");
    }
}
