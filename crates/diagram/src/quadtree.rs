//! Hierarchical (quadtree-refined) reception-map rasterisation.
//!
//! The dense path ([`ReceptionMap::compute`]) evaluates every pixel of
//! the grid. But by Theorem 1 (convexity) and Theorem 2 (fatness) of the
//! paper, reception zones are fat convex bodies: the set of pixels whose
//! status is *ambiguous at raster resolution* is a thin band around the
//! `SINR = β` zone boundaries, with measure proportional to boundary
//! *length* while the grid grows with *area*. This module exploits that
//! asymmetry through the interval certificates of `sinr-core`
//! ([`QueryEngine::sinr_bounds_cell`]): starting from the whole window,
//! any cell whose certified SINR brackets put every point strictly on
//! one side of the reception test is resolved wholesale, and only cells
//! the certificate leaves [`CellDecision::Mixed`] are subdivided — down
//! to pixel resolution, where the surviving pixels are answered
//! per-point *against the certificate in hand*
//! ([`QueryEngine::locate_in_cell`] — candidate-only certified
//! decisions, `O(candidates)` per pixel), and only what neither path
//! resolves goes to ONE ordinary [`QueryEngine::locate_batch`] call.
//!
//! ## The equivalence contract
//!
//! The produced [`Raster`] is **bit-identical** to the dense path of the
//! same backend, for every backend and kernel:
//!
//! * certificate-resolved pixels carry a decision that is *proved* for
//!   every point of the cell (the margins in `sinr-core::tile` are
//!   one-sided — looseness degrades to `Mixed`, never to a wrong uniform
//!   claim);
//! * every other pixel is answered by the backend itself — through
//!   `locate_in_cell` (certified candidate-only decisions with the
//!   backend's serial kernel as fallback, pinned bit-identical to its
//!   `locate`) or its own `locate_batch`, whose per-point answers are
//!   order- and composition-independent (the permutation-invariance
//!   differential suites pin this), so batching only the *unresolved*
//!   pixels changes nothing;
//! * a backend without certificates (`sinr_bounds_cell` → `None`, e.g.
//!   the approximate Theorem-3 locator) degrades to exactly the dense
//!   evaluation in one batch.
//!
//! The payoff is reported, not assumed: [`HierarchicalStats`] carries
//! the evaluated-pixel fraction (the `cells_evaluated / pixels` metric
//! the perf harness trends).

use crate::raster::{pixel_center, PixelLabel, Raster, ReceptionMap};
use sinr_core::engine::{Located, QueryEngine};
use sinr_core::tile::{CellCert, CellDecision};
use sinr_core::Network;
use sinr_geometry::{BBox, Point};

/// Below this many pixels a region skips certification and goes straight
/// to the batched per-pixel evaluation: a certificate costs at least a
/// candidate re-envelope pass, which cannot pay for itself on 1–3
/// pixels. Recursion therefore bottoms out at 2×2 cells — small enough
/// that the unresolved band hugs the zone boundaries at pixel scale.
const MIN_CERT_PIXELS: usize = 4;

/// Observability of one hierarchical rasterisation (the counters say
/// nothing about answers, which are always bit-identical to the dense
/// path of the same backend).
#[derive(Debug, Default, Clone, Copy)]
pub struct HierarchicalStats {
    /// Total pixels of the raster (`width · height`).
    pub pixels: u64,
    /// Pixels answered by the backend's per-point paths
    /// (`locate_in_cell` against the enclosing certificate, or the
    /// final `locate_batch`) because no cell-level certificate resolved
    /// them wholesale — the cost driver, and the numerator of
    /// [`HierarchicalStats::fraction`].
    pub cells_evaluated: u64,
    /// Interval certificates computed during refinement.
    pub certificates: u64,
    /// Of [`HierarchicalStats::cells_evaluated`], pixels answered by the
    /// per-point certified path ([`QueryEngine::locate_in_cell`] against
    /// the enclosing cell's certificate, `O(candidates)` each); the
    /// remainder went through the final `locate_batch`.
    pub point_certified: u64,
    /// Pixels resolved wholesale by a certified uniform cell decision.
    pub certified_pixels: u64,
}

impl HierarchicalStats {
    /// Fraction of pixels that paid a per-point engine evaluation
    /// (`cells_evaluated / pixels`) — the headline economy metric: the
    /// dense path is always exactly `1.0`.
    pub fn fraction(&self) -> f64 {
        if self.pixels == 0 {
            0.0
        } else {
            self.cells_evaluated as f64 / self.pixels as f64
        }
    }
}

/// The refinement worklist context: grid geometry, the accumulating
/// label buffer, and the deferred per-pixel batch.
struct Refiner<'a, E: QueryEngine + ?Sized> {
    engine: &'a E,
    window: &'a BBox,
    width: usize,
    height: usize,
    cells: Vec<PixelLabel>,
    /// Row-major indices of pixels no certificate resolved.
    unresolved: Vec<usize>,
    stats: HierarchicalStats,
}

impl<E: QueryEngine + ?Sized> Refiner<'_, E> {
    /// Refines the half-open pixel-index region `[c0, c1) × [r0, r1)`
    /// under a (contained) parent certificate.
    fn refine(&mut self, c0: usize, c1: usize, r0: usize, r1: usize, parent: Option<&CellCert>) {
        let count = (c1 - c0) * (r1 - r0);
        if count == 0 {
            return;
        }
        if count < MIN_CERT_PIXELS {
            self.defer(c0, c1, r0, r1, parent);
            return;
        }
        // The certified box spans the pixel *centres* of the region —
        // the only points the raster ever samples. (For 1-wide strips
        // this is a flat box; the certificate layer accepts it.)
        let lo = pixel_center(self.window, self.width, self.height, c0, r0);
        let hi = pixel_center(self.window, self.width, self.height, c1 - 1, r1 - 1);
        let cert = match self.engine.sinr_bounds_cell(lo, hi, parent) {
            Some(cert) => cert,
            // Certificate-less backend: dense-equivalent in one batch.
            None => {
                self.defer(c0, c1, r0, r1, None);
                return;
            }
        };
        self.stats.certificates += 1;
        match cert.decision() {
            CellDecision::Reception(i) => self.fill(c0, c1, r0, r1, PixelLabel::Heard(i)),
            CellDecision::Silent => self.fill(c0, c1, r0, r1, PixelLabel::Silent),
            CellDecision::Mixed => {
                // Subdivide (long-axis-only for strips) and push the
                // certificate down: children re-envelope only its
                // surviving candidates.
                let cm = if c1 - c0 > 1 { c0 + (c1 - c0) / 2 } else { c1 };
                let rm = if r1 - r0 > 1 { r0 + (r1 - r0) / 2 } else { r1 };
                self.refine(c0, cm, r0, rm, Some(&cert));
                if cm < c1 {
                    self.refine(cm, c1, r0, rm, Some(&cert));
                }
                if rm < r1 {
                    self.refine(c0, cm, rm, r1, Some(&cert));
                    if cm < c1 {
                        self.refine(cm, c1, rm, r1, Some(&cert));
                    }
                }
            }
        }
    }

    /// Resolves a whole region from a certified uniform decision.
    fn fill(&mut self, c0: usize, c1: usize, r0: usize, r1: usize, label: PixelLabel) {
        for row in r0..r1 {
            self.cells[row * self.width + c0..row * self.width + c1].fill(label);
        }
        self.stats.certified_pixels += ((c1 - c0) * (r1 - r0)) as u64;
    }

    /// Resolves a sub-certificate-sized region per pixel against its
    /// containing cell's certificate (candidate-only certified
    /// decisions — every `Some` bit-identical to `locate_batch`),
    /// queueing whatever the margins cannot pin for the final batch.
    /// The per-pixel attempt matters: boundary pixels are spatially
    /// scattered, so the final batch's Morton tiles span wide boxes and
    /// prune poorly, while the certificate in hand already names the
    /// few competitive stations.
    fn defer(&mut self, c0: usize, c1: usize, r0: usize, r1: usize, parent: Option<&CellCert>) {
        if let Some(cert) = parent {
            let count = (c1 - c0) * (r1 - r0);
            if count < MIN_CERT_PIXELS {
                let mut pts = [Point::ORIGIN; MIN_CERT_PIXELS - 1];
                let mut located = [None; MIN_CERT_PIXELS - 1];
                let mut k = 0usize;
                for row in r0..r1 {
                    for col in c0..c1 {
                        pts[k] = pixel_center(self.window, self.width, self.height, col, row);
                        k += 1;
                    }
                }
                if self
                    .engine
                    .locate_in_cell(cert, &pts[..k], &mut located[..k])
                {
                    let mut i = 0usize;
                    for row in r0..r1 {
                        for col in c0..c1 {
                            match located[i] {
                                Some(loc) => {
                                    self.stats.cells_evaluated += 1;
                                    self.stats.point_certified += 1;
                                    self.cells[row * self.width + col] = match loc {
                                        Located::Reception(id) => PixelLabel::Heard(id),
                                        Located::Uncertain(_) | Located::Silent => {
                                            PixelLabel::Silent
                                        }
                                    };
                                }
                                None => self.unresolved.push(row * self.width + col),
                            }
                            i += 1;
                        }
                    }
                    return;
                }
            }
        }
        for row in r0..r1 {
            for col in c0..c1 {
                self.unresolved.push(row * self.width + col);
            }
        }
    }
}

/// Rasterises any [`QueryEngine`] backend over a window by quadtree
/// refinement — the engine-generic worker behind
/// [`ReceptionMap::compute_hierarchical`], with the same
/// [`Located`]-to-[`PixelLabel`] projection as
/// [`ReceptionMap::compute_with_engine`] (uncertain pixels label
/// silent).
///
/// The raster is bit-identical to the dense
/// [`ReceptionMap::compute_with_engine`] on the same backend; the
/// returned [`HierarchicalStats`] reports how little of it was paid for
/// per-pixel.
///
/// # Panics
///
/// Panics if either dimension is zero or the window is degenerate (zero
/// width or height), exactly like the dense path.
pub fn hierarchical_map<E: QueryEngine + ?Sized>(
    engine: &E,
    window: BBox,
    width: usize,
    height: usize,
) -> (ReceptionMap, HierarchicalStats) {
    assert!(
        width > 0 && height > 0,
        "raster dimensions must be positive"
    );
    // Reuse the dense path's degenerate-window rejection (zero-extent
    // windows poison the pixel-centre arithmetic).
    let probe = crate::raster::pixel_centers(&window, 1, 1);
    drop(probe);
    let mut refiner = Refiner {
        engine,
        window: &window,
        width,
        height,
        cells: vec![PixelLabel::Silent; width * height],
        unresolved: Vec::new(),
        stats: HierarchicalStats {
            pixels: (width * height) as u64,
            ..HierarchicalStats::default()
        },
    };
    refiner.refine(0, width, 0, height, None);
    let unresolved = std::mem::take(&mut refiner.unresolved);
    refiner.stats.cells_evaluated += unresolved.len() as u64;
    if !unresolved.is_empty() {
        let centers: Vec<Point> = unresolved
            .iter()
            .map(|&idx| pixel_center(&window, width, height, idx % width, idx / width))
            .collect();
        let mut located = vec![Located::Silent; centers.len()];
        engine.locate_batch(&centers, &mut located);
        for (&idx, loc) in unresolved.iter().zip(located.iter()) {
            refiner.cells[idx] = match loc {
                Located::Reception(i) => PixelLabel::Heard(*i),
                Located::Uncertain(_) | Located::Silent => PixelLabel::Silent,
            };
        }
    }
    let stats = refiner.stats;
    (
        Raster::from_cells(window, width, height, refiner.cells),
        stats,
    )
}

impl ReceptionMap {
    /// Rasterises the SINR diagram by quadtree refinement: whole cells
    /// whose certified SINR interval lies strictly on one side of `β`
    /// are resolved from the certificate, and only boundary-straddling
    /// cells recurse down to pixel resolution — cost tracks zone
    /// *boundary length*, not window *area*, on megapixel grids.
    ///
    /// The pixels are bit-identical to [`ReceptionMap::compute`] on the
    /// same network; the stats report the evaluated fraction.
    pub fn compute_hierarchical(
        net: &Network,
        window: BBox,
        width: usize,
        height: usize,
    ) -> (Self, HierarchicalStats) {
        hierarchical_map(&net.query_engine(), window, width, height)
    }

    /// [`ReceptionMap::compute_hierarchical`] through a caller-supplied
    /// backend — the hierarchical counterpart of
    /// [`ReceptionMap::compute_with_engine`].
    pub fn compute_hierarchical_with_engine<E: QueryEngine + ?Sized>(
        engine: &E,
        window: BBox,
        width: usize,
        height: usize,
    ) -> (Self, HierarchicalStats) {
        hierarchical_map(engine, window, width, height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchical_matches_dense_and_prunes() {
        let net = sinr_core::gen::random_uniform_network(11, 160, 12.0, 0.01, 2.0).unwrap();
        let window = BBox::centered_square(12.0);
        let engine = net.query_engine();
        let dense = ReceptionMap::compute_with_engine(&engine, window, 128, 128);
        let (hier, stats) =
            ReceptionMap::compute_hierarchical_with_engine(&engine, window, 128, 128);
        assert_eq!(dense, hier);
        assert_eq!(stats.pixels, 128 * 128);
        assert_eq!(
            stats.cells_evaluated + stats.certified_pixels,
            stats.pixels,
            "every pixel is either certified or evaluated"
        );
        assert!(
            stats.fraction() < 0.5,
            "refinement should certify most pixels, evaluated fraction {}",
            stats.fraction()
        );
    }

    #[test]
    fn tiny_rasters_match_dense() {
        let net =
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 0.4).unwrap();
        let engine = net.query_engine();
        for (w, h) in [(1, 1), (1, 7), (3, 2), (5, 5)] {
            let window = BBox::centered_square(4.0);
            let dense = ReceptionMap::compute_with_engine(&engine, window, w, h);
            let (hier, stats) =
                ReceptionMap::compute_hierarchical_with_engine(&engine, window, w, h);
            assert_eq!(dense, hier, "{w}×{h}");
            assert_eq!(stats.pixels, (w * h) as u64);
        }
    }
}
