//! Raster-level measurements.
//!
//! Independent cross-checks for the analytic machinery: zone areas from
//! pixel counting, and a *convexity defect* comparing a zone's pixel set
//! against its convex hull — a second, geometry-free way to observe
//! Theorem 1 (defect ≈ 0 for `β ≥ 1`) and Figure 5 (positive defect for
//! `β < 1`).
//!
//! Two entry points:
//!
//! * [`measure_zone`] samples the zone membership predicate `p ∈ Hᵢ`
//!   directly — the right tool for zone geometry, including `β < 1`
//!   where zones overlap and a labelled diagram would show only the
//!   strongest station;
//! * [`measure_zone_map`] measures a labelled [`ReceptionMap`] region —
//!   the right tool for diagram statistics.

use crate::raster::{Raster, ReceptionMap};
use sinr_core::{Network, StationId};
use sinr_geometry::{convex_hull, BBox, Point};

/// Raster measurements of one station's zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneMeasure {
    /// Number of pixels in the zone.
    pub pixels: usize,
    /// Pixel-count area estimate.
    pub area: f64,
    /// Area of the convex hull of the zone's pixel centres.
    pub hull_area: f64,
    /// Convexity defect `(hull_area − area)/hull_area` — near 0 for a
    /// convex zone (up to pixelisation), positive for dented zones.
    pub convexity_defect: f64,
}

fn measure_points(pts: Vec<Point>, pixel_area: f64) -> Option<ZoneMeasure> {
    if pts.len() < 3 {
        return None;
    }
    let pixels = pts.len();
    let area = pixels as f64 * pixel_area;
    let hull = convex_hull(&pts)?;
    let hull_area = hull.area();
    let defect = ((hull_area - area) / hull_area).max(0.0);
    Some(ZoneMeasure {
        pixels,
        area,
        hull_area,
        convexity_defect: defect,
    })
}

/// Measures the reception zone `Hᵢ` by sampling `res × res` membership
/// tests over `window`.
///
/// Returns `None` when fewer than 3 sample points fall inside the zone.
pub fn measure_zone(net: &Network, i: StationId, window: BBox, res: usize) -> Option<ZoneMeasure> {
    let mask: Raster<bool> = Raster::compute_with(window, res, res, |p| net.is_heard(i, p));
    let pts: Vec<Point> = mask
        .iter()
        .filter(|(_, _, inside)| *inside)
        .map(|(c, r, _)| mask.pixel_center(c, r))
        .collect();
    measure_points(pts, mask.pixel_area())
}

/// Measures station `i`'s labelled region on a reception map (the pixels
/// where `i` is the station heard — for `β > 1` this *is* the zone, for
/// `β ≤ 1` it is the strongest-station region).
///
/// Returns `None` when the region has fewer than 3 pixels.
pub fn measure_zone_map(map: &ReceptionMap, i: StationId) -> Option<ZoneMeasure> {
    let pts: Vec<Point> = map
        .iter()
        .filter(|(_, _, l)| l.station() == Some(i))
        .map(|(c, r, _)| map.pixel_center(c, r))
        .collect();
    measure_points(pts, map.pixel_area())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::raster::ReceptionMap;
    use sinr_core::Network;

    #[test]
    fn convex_zone_has_tiny_defect() {
        let net = Network::uniform(
            vec![
                Point::new(-2.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 3.0),
            ],
            0.01,
            2.0,
        )
        .unwrap();
        // Window large enough to contain every zone (Δ ≤ κ/(√β−1) ≈ 9.7
        // around each station).
        let window = BBox::centered_square(14.0);
        for i in net.ids() {
            let m = measure_zone(&net, i, window, 301).expect("zone visible");
            assert!(
                m.convexity_defect < 0.03,
                "{i}: defect {} (area {}, hull {})",
                m.convexity_defect,
                m.area,
                m.hull_area
            );
        }
    }

    #[test]
    fn figure5_zone_has_visible_defect() {
        let fig = crate::figures::figure5();
        // β = 0.3, N = 0.05: the noise-limited radius is 1/√(βN) ≈ 8.2, so
        // sample a window that contains the zones.
        let window = BBox::centered_square(12.0);
        let worst = |net: &Network| {
            net.ids()
                .filter_map(|i| measure_zone(net, i, window, 301))
                .map(|m| m.convexity_defect)
                .fold(0.0f64, f64::max)
        };
        let defect_low_beta = worst(&fig.network);
        // Self-calibrate against the same station geometry with β > 1
        // (convex by Theorem 1): any defect there is pixelisation noise.
        let convex_ref =
            Network::uniform(fig.network.positions().to_vec(), fig.network.noise(), 1.2).unwrap();
        let noise_floor = worst(&convex_ref);
        assert!(
            defect_low_beta > 3.0 * noise_floor && defect_low_beta > 0.005,
            "β < 1 defect {defect_low_beta} should clearly exceed the convex noise floor {noise_floor}"
        );
    }

    #[test]
    fn raster_area_matches_analytic() {
        let net =
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.0, 3.0).unwrap();
        // H0 extends to Δ = 4/(√3−1) ≈ 5.46 from s0 = (−2, 0).
        let window = BBox::centered_square(9.0);
        let m = measure_zone(&net, StationId(0), window, 401).unwrap();
        let analytic = net.reception_zone(StationId(0)).area_estimate(512).unwrap();
        assert!(
            (m.area - analytic).abs() < 0.05 * analytic,
            "raster {} vs analytic {analytic}",
            m.area
        );
    }

    #[test]
    fn map_and_direct_agree_for_beta_over_one() {
        // For β > 1 the labelled region equals the zone.
        let net =
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 2.0).unwrap();
        let window = BBox::centered_square(8.0);
        let map = ReceptionMap::compute(&net, window, 201, 201);
        for i in net.ids() {
            let a = measure_zone(&net, i, window, 201).unwrap();
            let b = measure_zone_map(&map, i).unwrap();
            assert_eq!(a.pixels, b.pixels, "{i}");
        }
    }

    #[test]
    fn invisible_zone_returns_none() {
        let net =
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.0, 3.0).unwrap();
        // Window far away from both zones.
        let window = BBox::new(Point::new(50.0, 50.0), Point::new(60.0, 60.0));
        assert!(measure_zone(&net, StationId(0), window, 50).is_none());
        let map = ReceptionMap::compute(&net, window, 50, 50);
        assert!(measure_zone_map(&map, StationId(0)).is_none());
    }
}
