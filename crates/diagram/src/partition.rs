//! Rendering the Theorem 3 partition — the paper's **Figure 6**.
//!
//! Figure 6 shows the plane partitioned into the guaranteed-reception
//! zones `Hᵢ⁺` (dark gray in the paper), the uncertainty bands `Hᵢ?`
//! (light gray) and the guaranteed-silent remainder `H⁻` (white). This
//! module rasterises exactly that partition from a built
//! [`PointLocator`].

use crate::raster::Raster;
use sinr_core::Network;
use sinr_geometry::BBox;
use sinr_pointloc::{Located, PointLocator};
use std::io::{self, Write};

/// A rasterised Theorem 3 partition (`Located` per pixel).
pub type PartitionMap = Raster<Located>;

/// Rasterises the point-location partition over a window.
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_diagram::partition;
/// use sinr_geometry::{BBox, Point};
/// use sinr_pointloc::{PointLocator, QdsConfig};
///
/// let net = Network::uniform(
///     vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 2.0).unwrap();
/// let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
/// let map = partition::compute(&ds, BBox::centered_square(5.0), 64, 32);
/// let art = partition::ascii(&map);
/// assert_eq!(art.lines().count(), 32);
/// ```
pub fn compute(ds: &PointLocator, window: BBox, width: usize, height: usize) -> PartitionMap {
    // One batched pass through the shared QueryEngine interface
    // (work-stolen across cores) instead of a scalar locate per pixel.
    crate::raster::locate_raster(ds, window, width, height)
}

/// ASCII rendering of a partition: station digit for `Hᵢ⁺`, `?` for the
/// uncertainty bands, `.` for `H⁻` — the text analogue of Figure 6's
/// dark-gray / light-gray / white.
pub fn ascii(map: &PartitionMap) -> String {
    let mut out = String::with_capacity((map.width() + 1) * map.height());
    for row in (0..map.height()).rev() {
        for col in 0..map.width() {
            out.push(match map.at(col, row) {
                Located::Silent => '.',
                Located::Uncertain(_) => '?',
                Located::Reception(i) => {
                    let digits = b"0123456789abcdefghijklmnopqrstuvwxyz";
                    *digits.get(i.index()).unwrap_or(&b'#') as char
                }
            });
        }
        out.push('\n');
    }
    out
}

/// Writes the partition as a colour PPM: zone hues for `Hᵢ⁺`, light gray
/// for `Hᵢ?`, white for `H⁻` (Figure 6's colour scheme).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ppm<W: Write>(map: &PartitionMap, mut w: W) -> io::Result<()> {
    writeln!(w, "P3")?;
    writeln!(w, "{} {}", map.width(), map.height())?;
    writeln!(w, "255")?;
    for row in (0..map.height()).rev() {
        for col in 0..map.width() {
            let (r, g, b) = match map.at(col, row) {
                Located::Silent => (255, 255, 255),
                Located::Uncertain(_) => (210, 210, 210),
                Located::Reception(i) => {
                    const COLORS: [(u8, u8, u8); 8] = [
                        (60, 90, 160),
                        (160, 100, 40),
                        (70, 130, 70),
                        (150, 60, 60),
                        (110, 80, 140),
                        (100, 80, 70),
                        (160, 90, 140),
                        (90, 90, 90),
                    ];
                    COLORS[i.index() % COLORS.len()]
                }
            };
            writeln!(w, "{r} {g} {b}")?;
        }
    }
    Ok(())
}

/// Per-class pixel statistics of a partition map, cross-checkable against
/// the analytic guarantees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionCounts {
    /// Pixels in some `Hᵢ⁺`.
    pub reception: usize,
    /// Pixels in some `Hᵢ?`.
    pub uncertain: usize,
    /// Pixels in `H⁻`.
    pub silent: usize,
}

impl PartitionCounts {
    /// Total pixels counted.
    pub fn total(&self) -> usize {
        self.reception + self.uncertain + self.silent
    }

    /// Fraction of pixels that are uncertain.
    pub fn uncertain_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.uncertain as f64 / self.total() as f64
        }
    }
}

/// Counts the partition classes over a map.
pub fn counts(map: &PartitionMap) -> PartitionCounts {
    let mut c = PartitionCounts::default();
    for (_, _, l) in map.iter() {
        match l {
            Located::Reception(_) => c.reception += 1,
            Located::Uncertain(_) => c.uncertain += 1,
            Located::Silent => c.silent += 1,
        }
    }
    c
}

/// Sanity-checks a partition map against direct SINR evaluation:
/// every `Reception` pixel must be heard, every `Silent` pixel must not.
/// Returns the number of violations (0 when Theorem 3's guarantees hold).
pub fn verify_against(map: &PartitionMap, net: &Network) -> usize {
    let mut violations = 0usize;
    for (col, row, l) in map.iter() {
        let p = map.pixel_center(col, row);
        match l {
            Located::Reception(i) => {
                if !net.is_heard(i, p) {
                    violations += 1;
                }
            }
            Located::Silent => {
                if net.heard_at(p).is_some() {
                    violations += 1;
                }
            }
            Located::Uncertain(_) => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point;
    use sinr_pointloc::QdsConfig;

    fn setup() -> (Network, PointLocator) {
        let net = Network::uniform(
            vec![
                Point::new(-2.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(0.0, 3.0),
            ],
            0.02,
            2.0,
        )
        .unwrap();
        let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
        (net, ds)
    }

    #[test]
    fn figure6_partition_is_sound() {
        let (net, ds) = setup();
        let map = compute(&ds, BBox::centered_square(6.0), 121, 121);
        assert_eq!(
            verify_against(&map, &net),
            0,
            "Theorem 3 guarantees violated"
        );
        let c = counts(&map);
        assert!(c.reception > 0 && c.silent > 0 && c.uncertain > 0);
        // The uncertainty bands are thin relative to the picture.
        assert!(c.uncertain_fraction() < 0.2, "{}", c.uncertain_fraction());
    }

    #[test]
    fn ascii_legend() {
        let (_, ds) = setup();
        let map = compute(&ds, BBox::centered_square(6.0), 48, 24);
        let art = ascii(&map);
        assert_eq!(art.lines().count(), 24);
        assert!(art.contains('0'));
        assert!(art.contains('?'));
        assert!(art.contains('.'));
    }

    #[test]
    fn ppm_has_pixel_triples() {
        let (_, ds) = setup();
        let map = compute(&ds, BBox::centered_square(6.0), 16, 8);
        let mut buf = Vec::new();
        write_ppm(&map, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("P3\n16 8\n255\n"));
        assert_eq!(text.lines().count(), 3 + 16 * 8);
    }
}
