//! # sinr-diagram
//!
//! Rasterised SINR diagrams and the paper's numerically generated figures.
//!
//! An *SINR diagram* is the partition of the plane into the reception
//! zones `H₀ … H_{n−1}` and the silent remainder `H_∅` (paper, Section 1).
//! This crate renders that partition:
//!
//! * [`ReceptionMap`] — a pixel raster labelling each sample point with
//!   the station heard there (SINR or protocol model);
//! * [`quadtree`] — hierarchical rasterisation: interval-certified
//!   quadtree refinement that resolves whole cells away from the zone
//!   boundaries and stays bit-identical to the dense path;
//! * [`render`] — ASCII, PGM/PPM and CSV writers for reception maps;
//! * [`figures`] — the exact scenes of the paper's Figures 1–5 with
//!   their narrated reception outcomes, used by the reproduction harness;
//! * [`partition`] — the Theorem 3 partition `H⁺ / H? / H⁻` of Figure 6,
//!   rasterised from a built point locator;
//! * [`measure`] — raster-level measurements (zone areas, convexity
//!   defect against the pixel convex hull) used to cross-check the
//!   analytic machinery in `sinr-core`.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod figures;
pub mod measure;
pub mod partition;
pub mod quadtree;
pub mod raster;
pub mod render;

pub use quadtree::HierarchicalStats;
pub use raster::{PixelLabel, Raster, ReceptionMap};
