//! Reception-map rasterisation.
//!
//! The paper's figures are "numerically generated": a dense grid of
//! receiver points, each labelled by the station heard there (if any).
//! [`ReceptionMap::compute`] reproduces exactly that on top of the
//! batched query engine of `sinr_core`: all pixel centres are collected
//! once and answered through
//! [`QueryEngine::locate_batch`](sinr_core::QueryEngine::locate_batch) —
//! work-stolen across cores, with the Observation 2.2 nearest-station
//! dispatch for uniform power networks. Any backend works; see
//! [`locate_raster`].

use sinr_core::engine::{Located, QueryEngine};
use sinr_core::{Network, StationId};
use sinr_geometry::{BBox, Point};
use sinr_graphs::ProtocolModel;

/// The label of one raster pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PixelLabel {
    /// No station is heard at the pixel (the `H_∅` zone).
    Silent,
    /// The given station is heard.
    Heard(StationId),
}

impl PixelLabel {
    /// The heard station, if any.
    pub fn station(&self) -> Option<StationId> {
        match self {
            PixelLabel::Silent => None,
            PixelLabel::Heard(i) => Some(*i),
        }
    }
}

/// A rectangular raster of values over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct Raster<T> {
    window: BBox,
    width: usize,
    height: usize,
    cells: Vec<T>,
}

impl<T: Copy> Raster<T> {
    /// Creates a raster by evaluating `f` at every pixel centre.
    ///
    /// Pixels are laid out row-major, bottom row first (`y` grows with the
    /// row index, matching plot conventions).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the window is degenerate
    /// (zero width or height — every pixel centre would collapse onto one
    /// line, or go `NaN` under further arithmetic).
    pub fn compute_with(
        window: BBox,
        width: usize,
        height: usize,
        mut f: impl FnMut(Point) -> T,
    ) -> Self {
        assert!(
            width > 0 && height > 0,
            "raster dimensions must be positive"
        );
        assert_window(&window);
        let mut cells = Vec::with_capacity(width * height);
        for row in 0..height {
            for col in 0..width {
                cells.push(f(pixel_center(&window, width, height, col, row)));
            }
        }
        Raster {
            window,
            width,
            height,
            cells,
        }
    }

    /// The sampling window.
    pub fn window(&self) -> &BBox {
        &self.window
    }

    /// Raster width in pixels.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Raster height in pixels.
    pub fn height(&self) -> usize {
        self.height
    }

    /// The value at pixel `(col, row)` (row 0 = bottom).
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn at(&self, col: usize, row: usize) -> T {
        assert!(col < self.width && row < self.height);
        self.cells[row * self.width + col]
    }

    /// The centre point of pixel `(col, row)`.
    pub fn pixel_center(&self, col: usize, row: usize) -> Point {
        pixel_center(&self.window, self.width, self.height, col, row)
    }

    /// The area represented by one pixel.
    pub fn pixel_area(&self) -> f64 {
        (self.window.width() / self.width as f64) * (self.window.height() / self.height as f64)
    }

    /// Iterates over `(col, row, value)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, T)> + '_ {
        (0..self.height)
            .flat_map(move |row| (0..self.width).map(move |col| (col, row, self.at(col, row))))
    }
}

impl<T> Raster<T> {
    /// Wraps precomputed row-major cells (bottom row first) — the batched
    /// counterpart of [`Raster::compute_with`].
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero, the window is degenerate
    /// (zero width or height), or `cells.len() != width * height`.
    pub fn from_cells(window: BBox, width: usize, height: usize, cells: Vec<T>) -> Self {
        assert!(
            width > 0 && height > 0,
            "raster dimensions must be positive"
        );
        assert_window(&window);
        assert_eq!(cells.len(), width * height, "cell count mismatch");
        Raster {
            window,
            width,
            height,
            cells,
        }
    }
}

/// Rejects sampling windows no pixel grid can span: a zero-width or
/// zero-height `BBox` (e.g. built via `BBox::from_points` over collinear
/// points) would collapse every pixel centre onto one line and poison
/// any later division by the pixel extent with `NaN`/`∞`. `BBox::new`
/// only forbids *inverted* corners, so the raster layer must check this.
fn assert_window(window: &BBox) {
    assert!(
        window.width() > 0.0 && window.height() > 0.0,
        "degenerate raster window {window}: width and height must both be positive"
    );
}

/// All pixel centres of a raster, row-major bottom-first — the batch the
/// query engine consumes.
///
/// # Panics
///
/// Panics if the window is degenerate (zero width or height).
pub fn pixel_centers(window: &BBox, width: usize, height: usize) -> Vec<Point> {
    assert_window(window);
    let mut centers = Vec::with_capacity(width * height);
    for row in 0..height {
        for col in 0..width {
            centers.push(pixel_center(window, width, height, col, row));
        }
    }
    centers
}

/// Rasterises any [`QueryEngine`] backend over a window with one
/// `locate_batch` call — exact backends yield reception maps, the
/// Theorem-3 locator yields `H⁺ / H? / H⁻` partitions.
///
/// # Panics
///
/// Panics if either dimension is zero or the window is degenerate (zero
/// width or height).
pub fn locate_raster<E: QueryEngine + ?Sized>(
    engine: &E,
    window: BBox,
    width: usize,
    height: usize,
) -> Raster<Located> {
    assert!(
        width > 0 && height > 0,
        "raster dimensions must be positive"
    );
    let centers = pixel_centers(&window, width, height);
    let mut located = vec![Located::Silent; centers.len()];
    engine.locate_batch(&centers, &mut located);
    Raster::from_cells(window, width, height, located)
}

pub(crate) fn pixel_center(
    window: &BBox,
    width: usize,
    height: usize,
    col: usize,
    row: usize,
) -> Point {
    Point::new(
        window.min.x + (col as f64 + 0.5) * window.width() / width as f64,
        window.min.y + (row as f64 + 0.5) * window.height() / height as f64,
    )
}

/// A rasterised SINR (or protocol-model) diagram.
pub type ReceptionMap = Raster<PixelLabel>;

impl ReceptionMap {
    /// Rasterises the SINR diagram of a network.
    ///
    /// All pixels are answered in one
    /// [`locate_batch`](QueryEngine::locate_batch) pass through the
    /// network's recommended engine — kd-tree nearest-station dispatch
    /// (Observation 2.2) for uniform power, the exact SoA scan otherwise,
    /// work-stolen across cores either way.
    pub fn compute(net: &Network, window: BBox, width: usize, height: usize) -> Self {
        ReceptionMap::compute_with_engine(&net.query_engine(), window, width, height)
    }

    /// Rasterises the diagram through a caller-supplied exact backend.
    ///
    /// The backend must answer definitely ([`Located::Uncertain`] pixels
    /// are labelled silent — use [`locate_raster`] to rasterise an
    /// approximate backend's full partition instead).
    pub fn compute_with_engine<E: QueryEngine + ?Sized>(
        engine: &E,
        window: BBox,
        width: usize,
        height: usize,
    ) -> Self {
        let located = locate_raster(engine, window, width, height);
        let cells = located
            .cells
            .iter()
            .map(|l| match l {
                Located::Reception(i) => PixelLabel::Heard(*i),
                Located::Uncertain(_) | Located::Silent => PixelLabel::Silent,
            })
            .collect();
        Raster::from_cells(window, width, height, cells)
    }

    /// Rasterises the UDG / protocol-model diagram for a transmit mask.
    pub fn compute_protocol(
        model: &ProtocolModel,
        transmitting: &[bool],
        window: BBox,
        width: usize,
        height: usize,
    ) -> Self {
        Raster::compute_with(window, width, height, |p| {
            match model.heard_at(transmitting, p) {
                Some(i) => PixelLabel::Heard(StationId(i)),
                None => PixelLabel::Silent,
            }
        })
    }

    /// Number of pixels labelled with each station (index = station) plus
    /// the silent count, returned as `(per_station, silent)`.
    pub fn label_counts(&self, n_stations: usize) -> (Vec<usize>, usize) {
        let mut per = vec![0usize; n_stations];
        let mut silent = 0usize;
        for (_, _, label) in self.iter() {
            match label {
                PixelLabel::Silent => silent += 1,
                PixelLabel::Heard(i) => per[i.index()] += 1,
            }
        }
        (per, silent)
    }

    /// Estimated area of one station's reception zone (pixel count times
    /// pixel area).
    pub fn zone_area(&self, i: StationId) -> f64 {
        let count = self
            .iter()
            .filter(|(_, _, l)| l.station() == Some(i))
            .count();
        count as f64 * self.pixel_area()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net2() -> Network {
        Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.0, 2.0).unwrap()
    }

    #[test]
    fn raster_layout() {
        let window = BBox::centered_square(2.0);
        let r = Raster::compute_with(window, 4, 2, |p| p);
        assert_eq!(r.width(), 4);
        assert_eq!(r.height(), 2);
        // bottom-left pixel centre
        let p = r.at(0, 0);
        assert!((p.x - (-1.5)).abs() < 1e-12 && (p.y - (-1.0)).abs() < 1e-12);
        // top-right pixel centre
        let p = r.at(3, 1);
        assert!((p.x - 1.5).abs() < 1e-12 && (p.y - 1.0).abs() < 1e-12);
        assert!((r.pixel_area() - 2.0).abs() < 1e-12);
        assert_eq!(r.iter().count(), 8);
    }

    #[test]
    fn reception_map_labels_match_model() {
        let net = net2();
        let map = ReceptionMap::compute(&net, BBox::centered_square(5.0), 41, 41);
        for (col, row, label) in map.iter() {
            let p = map.pixel_center(col, row);
            assert_eq!(label.station(), net.heard_at(p), "at {p}");
        }
    }

    #[test]
    fn shortcut_agrees_with_full_scan_nonuniform_path() {
        // A β < 1 network takes the full-scan path; results still match
        // heard_at.
        let net =
            Network::uniform(vec![Point::new(-1.0, 0.0), Point::new(1.0, 0.0)], 0.05, 0.5).unwrap();
        let map = ReceptionMap::compute(&net, BBox::centered_square(3.0), 31, 31);
        for (col, row, label) in map.iter() {
            let p = map.pixel_center(col, row);
            assert_eq!(label.station(), net.heard_at(p));
        }
    }

    #[test]
    fn counts_and_areas() {
        let net = net2();
        // Each zone extends Δ = 4/(√2−1) ≈ 9.66 away from its station at
        // ±2, so a window of half-width 14 contains both zones fully.
        let map = ReceptionMap::compute(&net, BBox::centered_square(14.0), 141, 141);
        let (per, silent) = map.label_counts(2);
        assert_eq!(per.iter().sum::<usize>() + silent, 141 * 141);
        // Symmetric configuration ⇒ nearly equal zone pixel counts.
        let diff = (per[0] as i64 - per[1] as i64).abs();
        assert!(diff <= 282, "zones should be symmetric, diff {diff}");
        // Zone areas agree with the analytic estimate within raster error.
        let analytic = net.reception_zone(StationId(0)).area_estimate(512).unwrap();
        let raster = map.zone_area(StationId(0));
        assert!(
            (analytic - raster).abs() < 0.15 * analytic,
            "analytic {analytic} vs raster {raster}"
        );
    }

    #[test]
    fn protocol_map() {
        let model = ProtocolModel::new(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 1.0);
        let map = ReceptionMap::compute_protocol(
            &model,
            &[true, true],
            BBox::centered_square(4.0),
            81,
            81,
        );
        for (col, row, label) in map.iter() {
            let p = map.pixel_center(col, row);
            assert_eq!(
                label.station().map(|s| s.index()),
                model.heard_at(&[true, true], p)
            );
        }
        // Two disjoint unit disks: ≈ 2π/64 of the window is covered.
        let (per, _) = map.label_counts(2);
        let covered = (per[0] + per[1]) as f64 * map.pixel_area();
        assert!(
            (covered - 2.0 * std::f64::consts::PI).abs() < 0.3,
            "covered {covered}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_dimensions_panic() {
        let _ = Raster::compute_with(BBox::centered_square(1.0), 0, 4, |_| 0u8);
    }

    #[test]
    #[should_panic(expected = "degenerate raster window")]
    fn zero_width_window_panics() {
        // BBox::new allows flat boxes (only inverted corners are
        // rejected) — e.g. BBox::from_points over collinear points.
        let flat = BBox::new(Point::new(1.0, -2.0), Point::new(1.0, 2.0));
        let _ = Raster::compute_with(flat, 8, 8, |_| 0u8);
    }

    #[test]
    #[should_panic(expected = "degenerate raster window")]
    fn zero_height_window_panics() {
        let flat = BBox::new(Point::new(-2.0, 1.0), Point::new(2.0, 1.0));
        let _ = pixel_centers(&flat, 8, 8);
    }

    #[test]
    #[should_panic(expected = "degenerate raster window")]
    fn locate_raster_rejects_degenerate_window() {
        let net = net2();
        let engine = net.query_engine();
        let flat = BBox::new(Point::ORIGIN, Point::new(0.0, 0.0));
        let _ = locate_raster(&engine, flat, 4, 4);
    }
}
