//! Text and image renderers for reception maps.
//!
//! All formats are dependency-free: ASCII art for terminals and tests,
//! PPM (P3) / PGM (P2) for image viewers, CSV for plotting tools.

use crate::raster::{PixelLabel, ReceptionMap};
use std::io::{self, Write};

/// Characters used for ASCII rendering: `.` for silence, then one symbol
/// per station.
const STATION_CHARS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Renders a reception map as ASCII art (top row first).
///
/// Stations beyond the 36th all render as `#`.
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_diagram::{render, ReceptionMap};
/// use sinr_geometry::{BBox, Point};
///
/// let net = Network::uniform(
///     vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.0, 2.0).unwrap();
/// let map = ReceptionMap::compute(&net, BBox::centered_square(4.0), 20, 10);
/// let art = render::ascii(&map);
/// assert_eq!(art.lines().count(), 10);
/// assert!(art.contains('0') && art.contains('1') && art.contains('.'));
/// ```
pub fn ascii(map: &ReceptionMap) -> String {
    let mut out = String::with_capacity((map.width() + 1) * map.height());
    for row in (0..map.height()).rev() {
        for col in 0..map.width() {
            let ch = match map.at(col, row) {
                PixelLabel::Silent => '.',
                PixelLabel::Heard(i) => *STATION_CHARS.get(i.index()).unwrap_or(&b'#') as char,
            };
            out.push(ch);
        }
        out.push('\n');
    }
    out
}

/// Writes a colour PPM (P3) image of the map to `w`.
///
/// Stations get distinct hues; silence is white. A `&mut Vec<u8>` or any
/// other writer can be passed by mutable reference.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_ppm<W: Write>(map: &ReceptionMap, mut w: W) -> io::Result<()> {
    writeln!(w, "P3")?;
    writeln!(w, "{} {}", map.width(), map.height())?;
    writeln!(w, "255")?;
    for row in (0..map.height()).rev() {
        for col in 0..map.width() {
            let (r, g, b) = match map.at(col, row) {
                PixelLabel::Silent => (255, 255, 255),
                PixelLabel::Heard(i) => palette(i.index()),
            };
            writeln!(w, "{r} {g} {b}")?;
        }
    }
    Ok(())
}

/// Writes a grayscale PGM (P2) image: silence is white (255), station `i`
/// is a gray level spreading the dynamic range over the stations.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_pgm<W: Write>(map: &ReceptionMap, n_stations: usize, mut w: W) -> io::Result<()> {
    writeln!(w, "P2")?;
    writeln!(w, "{} {}", map.width(), map.height())?;
    writeln!(w, "255")?;
    let step = 200 / n_stations.max(1);
    for row in (0..map.height()).rev() {
        for col in 0..map.width() {
            let v = match map.at(col, row) {
                PixelLabel::Silent => 255,
                PixelLabel::Heard(i) => (i.index() * step).min(200),
            };
            writeln!(w, "{v}")?;
        }
    }
    Ok(())
}

/// Writes `x,y,label` CSV rows (label `-1` for silence) to `w`.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(map: &ReceptionMap, mut w: W) -> io::Result<()> {
    writeln!(w, "x,y,station")?;
    for (col, row, label) in map.iter() {
        let p = map.pixel_center(col, row);
        let id = label.station().map(|s| s.index() as i64).unwrap_or(-1);
        writeln!(w, "{},{},{}", p.x, p.y, id)?;
    }
    Ok(())
}

/// A fixed distinct-hue palette (cycled beyond 8 stations).
fn palette(i: usize) -> (u8, u8, u8) {
    const COLORS: [(u8, u8, u8); 8] = [
        (31, 119, 180),
        (255, 127, 14),
        (44, 160, 44),
        (214, 39, 40),
        (148, 103, 189),
        (140, 86, 75),
        (227, 119, 194),
        (127, 127, 127),
    ];
    COLORS[i % COLORS.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_core::Network;
    use sinr_geometry::{BBox, Point};

    fn small_map() -> ReceptionMap {
        let net =
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.0, 2.0).unwrap();
        ReceptionMap::compute(&net, BBox::centered_square(4.0), 16, 8)
    }

    #[test]
    fn ascii_shape() {
        let art = ascii(&small_map());
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 8);
        assert!(lines.iter().all(|l| l.len() == 16));
        assert!(art.contains('0'));
        assert!(art.contains('1'));
    }

    #[test]
    fn ppm_format() {
        let mut buf = Vec::new();
        write_ppm(&small_map(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("P3"));
        assert_eq!(lines.next(), Some("16 8"));
        assert_eq!(lines.next(), Some("255"));
        // one RGB triple per pixel
        assert_eq!(text.lines().count(), 3 + 16 * 8);
    }

    #[test]
    fn pgm_format() {
        let mut buf = Vec::new();
        write_pgm(&small_map(), 2, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("P2\n16 8\n255\n"));
        assert_eq!(text.lines().count(), 3 + 16 * 8);
        // all pixel values are valid levels
        for v in text.lines().skip(3) {
            let x: u32 = v.parse().unwrap();
            assert!(x <= 255);
        }
    }

    #[test]
    fn csv_format() {
        let mut buf = Vec::new();
        write_csv(&small_map(), &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("x,y,station\n"));
        assert_eq!(text.lines().count(), 1 + 16 * 8);
        // labels are -1, 0 or 1
        for line in text.lines().skip(1) {
            let label: i64 = line.rsplit(',').next().unwrap().parse().unwrap();
            assert!((-1..=1).contains(&label));
        }
    }

    #[test]
    fn palette_cycles() {
        assert_eq!(palette(0), palette(8));
        assert_ne!(palette(0), palette(1));
    }
}
