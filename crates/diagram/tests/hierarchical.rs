//! Differential pinning of the hierarchical (quadtree-refined) raster.
//!
//! The contract under test: `ReceptionMap::compute_hierarchical_with_engine`
//! is **bit-identical** to the dense `ReceptionMap::compute_with_engine`
//! on the *same* backend — for every backend and SIMD kernel, for
//! hostile windows (degenerate-adjacent co-located stations, overflow
//! windows next to huge-coordinate stations, windows far outside every
//! zone), and for thresholds above/below every station's reach. The
//! certificates may only change *where* pixels are answered (wholesale
//! vs per-point), never *what* the answer is.
//!
//! Plus the interval-soundness property: every sampled SINR value lies
//! inside the cell's certified bracket, chained or not.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{BoxedEngine, ExactScan, QueryEngine, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::{gen, Network, SinrEvaluator, StationId};
use sinr_diagram::ReceptionMap;
use sinr_geometry::{BBox, Point};
use sinr_pointloc::{PointLocator, QdsConfig};

/// Every backend the workspace ships, boxed behind the trait object the
/// server serves through (the Theorem-3 locator is added by callers that
/// can build one).
fn backends(net: &Network) -> Vec<(String, Box<dyn QueryEngine>)> {
    let mut engines: Vec<(String, Box<dyn QueryEngine>)> = vec![
        ("ExactScan".into(), Box::new(ExactScan::new(net))),
        (
            "VoronoiAssisted".into(),
            Box::new(VoronoiAssisted::new(net)),
        ),
        (
            "BoxedEngine".into(),
            Box::new(BoxedEngine::new("exact_scan", ExactScan::new(net))),
        ),
    ];
    for kernel in SimdKernel::ALL.into_iter().filter(|k| k.is_supported()) {
        engines.push((
            format!("SimdScan/{kernel:?}"),
            Box::new(SimdScan::with_kernel(SinrEvaluator::new(net), kernel)),
        ));
    }
    engines
}

fn assert_hier_equals_dense(net: &Network, window: BBox, width: usize, height: usize, tag: &str) {
    for (name, engine) in backends(net) {
        let dense = ReceptionMap::compute_with_engine(engine.as_ref(), window, width, height);
        let (hier, stats) =
            ReceptionMap::compute_hierarchical_with_engine(engine.as_ref(), window, width, height);
        assert_eq!(
            dense, hier,
            "{tag}: hierarchical ≠ dense for {name} over {window} at {width}×{height}"
        );
        assert_eq!(stats.pixels, (width * height) as u64, "{tag}: {name}");
        assert_eq!(
            stats.cells_evaluated + stats.certified_pixels,
            stats.pixels,
            "{tag}: {name}: pixel accounting"
        );
    }
    // The approximate Theorem-3 locator has no certificates: the
    // hierarchical path must degrade to exactly the dense raster. (Its
    // boundary reconstruction asserts on overflow-scale coordinates, so
    // only modest networks exercise this leg.)
    let modest = net
        .ids()
        .all(|i| net.position(i).x.abs() < 1e6 && net.position(i).y.abs() < 1e6);
    // The locator build is also far too slow for large station counts
    // in debug builds — the certificate contract it pins (None ⇒
    // dense-equivalent) is station-count-independent anyway.
    if !modest || net.len() > 24 {
        return;
    }
    if let Ok(qds) = PointLocator::build(net, &QdsConfig::with_epsilon(0.2)) {
        let dense = ReceptionMap::compute_with_engine(&qds, window, width, height);
        let (hier, stats) =
            ReceptionMap::compute_hierarchical_with_engine(&qds, window, width, height);
        assert_eq!(dense, hier, "{tag}: Qds locator");
        assert_eq!(
            stats.certified_pixels, 0,
            "{tag}: a certificate-less backend cannot certify pixels"
        );
    }
}

#[test]
fn hierarchical_equals_dense_across_backends() {
    let nets = [
        (
            "uniform-beta2",
            gen::random_uniform_network(3, 150, 10.0, 0.0, 2.0).unwrap(),
        ),
        (
            "uniform-noisy-beta04",
            gen::random_uniform_network(4, 40, 8.0, 0.05, 0.4).unwrap(),
        ),
        (
            "nonuniform",
            Network::builder()
                .station_with_power(Point::new(0.0, 0.0), 4.0)
                .station(Point::new(3.0, 0.0))
                .station_with_power(Point::new(-1.0, 4.0), 0.5)
                .station_with_power(Point::new(2.0, -3.0), 1.5)
                .background_noise(0.01)
                .threshold(1.5)
                .build()
                .unwrap(),
        ),
        (
            "alpha4",
            Network::builder()
                .station(Point::new(0.0, 0.0))
                .station(Point::new(4.0, 1.0))
                .station(Point::new(-3.0, 2.0))
                .path_loss(4.0)
                .threshold(2.0)
                .build()
                .unwrap(),
        ),
    ];
    for (tag, net) in &nets {
        assert_hier_equals_dense(net, BBox::centered_square(9.0), 96, 96, tag);
        // Non-square raster + off-centre window.
        let window = BBox::new(Point::new(-7.0, -2.0), Point::new(5.0, 3.0));
        assert_hier_equals_dense(net, window, 60, 33, tag);
    }
}

#[test]
fn hostile_windows_degenerate_adjacent() {
    // Co-located pair (its coincidence point forces ∞ envelopes in any
    // containing cell) plus a normal station.
    let net = Network::uniform(
        vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
        0.0,
        2.0,
    )
    .unwrap();
    // Window centred exactly on the co-located pair…
    assert_hier_equals_dense(&net, BBox::centered_square(2.0), 33, 33, "colocated-center");
    // …and a window whose corner touches it.
    let window = BBox::new(Point::ORIGIN, Point::new(4.0, 4.0));
    assert_hier_equals_dense(&net, window, 32, 32, "colocated-corner");
    // Stations exactly on pixel centres: a 2-station net over a window
    // chosen so both stations are sampled (coincident query points take
    // the evaluators' special-case branches).
    let net =
        Network::uniform(vec![Point::new(-0.5, -0.5), Point::new(0.5, 0.5)], 0.0, 2.0).unwrap();
    assert_hier_equals_dense(&net, BBox::centered_square(1.0), 2, 2, "stations-on-pixels");
}

#[test]
fn hostile_windows_nonfinite_adjacent() {
    // Huge finite coordinates: squared distances overflow to ∞, rounded
    // energies collapse to 0 — every certificate degenerates but must
    // never make a wrong uniform claim.
    let net = Network::uniform(
        vec![
            Point::new(1e154, 0.0),
            Point::new(-1e154, 0.0),
            Point::new(0.0, 3.0),
        ],
        0.01,
        2.0,
    )
    .unwrap();
    assert_hier_equals_dense(&net, BBox::centered_square(6.0), 48, 48, "huge-stations");
    // Window itself at overflow scale, stations tiny in comparison.
    let window = BBox::new(Point::new(1e153, 1e153), Point::new(2e153, 2e153));
    assert_hier_equals_dense(&net, window, 16, 16, "overflow-window");
}

#[test]
fn beta_above_and_below_every_reach() {
    let pts = vec![
        Point::new(-2.0, 0.0),
        Point::new(2.0, 0.0),
        Point::new(0.0, 3.0),
    ];
    // β so large nobody is heard anywhere (noise floors every test).
    let deaf = Network::uniform(pts.clone(), 0.5, 1e12).unwrap();
    assert_hier_equals_dense(&deaf, BBox::centered_square(5.0), 64, 64, "beta-huge");
    // β so small everyone's zone is huge: the window splits between
    // stations with almost no silent area.
    let loud = Network::uniform(pts, 0.0, 1e-6).unwrap();
    assert_hier_equals_dense(&loud, BBox::centered_square(5.0), 64, 64, "beta-tiny");
    // Window entirely outside every zone (deep silence, certified at
    // the root or near it).
    let net =
        Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 2.0).unwrap();
    let window = BBox::new(Point::new(500.0, 500.0), Point::new(520.0, 520.0));
    for (name, engine) in backends(&net) {
        let (hier, stats) =
            ReceptionMap::compute_hierarchical_with_engine(engine.as_ref(), window, 64, 64);
        let dense = ReceptionMap::compute_with_engine(engine.as_ref(), window, 64, 64);
        assert_eq!(dense, hier, "far-silent: {name}");
        assert_eq!(
            stats.cells_evaluated, 0,
            "far-silent window must certify at the root for {name}"
        );
    }
}

/// Random small networks, uniform and non-uniform power.
fn networks() -> impl Strategy<Value = Network> {
    (2usize..7, any::<u64>(), any::<bool>()).prop_map(|(n, seed, uniform)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = Vec::new();
        let mut guard = 0;
        while pts.len() < n && guard < 10_000 {
            guard += 1;
            let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
            if pts.iter().all(|p| p.dist(cand) >= 0.6) {
                pts.push(cand);
            }
        }
        let mut b = Network::builder().background_noise(0.02).threshold(1.2);
        for p in pts {
            if uniform {
                b = b.station(p);
            } else {
                b = b.station_with_power(p, rng.gen_range(0.5..2.5));
            }
        }
        b.build().expect("≥ 2 separated stations")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Cell-interval soundness: for random cells and random sample
    /// points inside them, every scalar SINR value lies inside the
    /// certified interval — both for root certificates and for children
    /// chained through a containing parent.
    #[test]
    fn certified_intervals_contain_sampled_sinr(
        net in networks(),
        seed in any::<u64>(),
        cx in -6.0f64..6.0,
        cy in -6.0f64..6.0,
        half in 0.01f64..4.0,
    ) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let engine = ExactScan::new(&net);
        let eval = engine.evaluator();
        let min = Point::new(cx - half, cy - half);
        let max = Point::new(cx + half, cy + half);
        let root = engine
            .sinr_bounds_cell(min, max, None)
            .expect("exact backends certify");
        // A chained child: the inner quarter of the cell.
        let cmin = Point::new(cx - 0.5 * half, cy - 0.5 * half);
        let cmax = Point::new(cx + 0.5 * half, cy + 0.5 * half);
        let child = engine
            .sinr_bounds_cell(cmin, cmax, Some(&root))
            .expect("exact backends certify");
        for _ in 0..24 {
            let p = Point::new(
                rng.gen_range(min.x..=max.x),
                rng.gen_range(min.y..=max.y),
            );
            let in_child = (cmin.x..=cmax.x).contains(&p.x) && (cmin.y..=cmax.y).contains(&p.y);
            for j in 0..net.len() {
                let v = eval.sinr(StationId(j), p);
                let iv = root.sinr(StationId(j));
                prop_assert!(
                    iv.contains(v),
                    "root: sinr {} of station {} at {} outside [{}, {}]",
                    v, j, p, iv.lo, iv.hi
                );
                if in_child {
                    let iv = child.sinr(StationId(j));
                    prop_assert!(
                        iv.contains(v),
                        "child: sinr {} of station {} at {} outside [{}, {}]",
                        v, j, p, iv.lo, iv.hi
                    );
                }
            }
        }
    }

    /// Differential under proptest: random network, random window,
    /// random raster shape — hierarchical ≡ dense on the recommended
    /// engine.
    #[test]
    fn hierarchical_equals_dense_random(
        net in networks(),
        cx in -4.0f64..4.0,
        cy in -4.0f64..4.0,
        half in 0.5f64..8.0,
        width in 1usize..80,
        height in 1usize..80,
    ) {
        let window = BBox::new(
            Point::new(cx - half, cy - half),
            Point::new(cx + half, cy + half),
        );
        let engine = net.query_engine();
        let dense = ReceptionMap::compute_with_engine(&engine, window, width, height);
        let (hier, stats) =
            ReceptionMap::compute_hierarchical_with_engine(&engine, window, width, height);
        prop_assert_eq!(dense, hier);
        prop_assert_eq!(stats.cells_evaluated + stats.certified_pixels, stats.pixels);
    }
}
