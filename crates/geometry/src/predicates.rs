//! Basic geometric predicates.
//!
//! The only predicate the paper's algorithms rely on is orientation
//! (used by convex hulls, polygon clipping and the Voronoi substrate).
//! We implement it directly on `f64` with a tolerance-quantised sign;
//! the decisive boundary tests elsewhere in the workspace go through
//! Sturm sequences, not through these predicates, so adaptive exact
//! arithmetic is unnecessary here.

use crate::approx::Tolerance;
use crate::point::Point;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Counter-clockwise (left turn).
    CounterClockwise,
    /// Clockwise (right turn).
    Clockwise,
    /// Collinear within tolerance.
    Collinear,
}

/// Twice the signed area of triangle `(a, b, c)`.
///
/// Positive when the triple is counter-clockwise. This is the classical
/// `orient2d` determinant
///
/// ```text
/// | bx−ax  by−ay |
/// | cx−ax  cy−ay |
/// ```
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Point, predicates::signed_area2};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(1.0, 0.0);
/// let c = Point::new(0.0, 1.0);
/// assert_eq!(signed_area2(a, b, c), 1.0);
/// ```
#[inline]
pub fn signed_area2(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Classifies the orientation of the triple `(a, b, c)`.
///
/// The collinearity threshold scales with the magnitude of the coordinates
/// involved, so the predicate behaves sensibly both near the origin and far
/// from it.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{orient2d, Orientation, Point};
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(2.0, 0.0);
/// assert_eq!(orient2d(a, b, Point::new(1.0, 1.0)), Orientation::CounterClockwise);
/// assert_eq!(orient2d(a, b, Point::new(1.0, -1.0)), Orientation::Clockwise);
/// assert_eq!(orient2d(a, b, Point::new(5.0, 0.0)), Orientation::Collinear);
/// ```
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let det = signed_area2(a, b, c);
    // Scale-aware threshold: the determinant is a difference of products of
    // coordinate differences, so its rounding error is proportional to the
    // square of the coordinate spread.
    let scale = (b.x - a.x)
        .abs()
        .max((b.y - a.y).abs())
        .max((c.x - a.x).abs())
        .max((c.y - a.y).abs());
    let tol = Tolerance::new(1e-12 * scale * scale + f64::MIN_POSITIVE, 0.0);
    match tol.sign(det) {
        0 => Orientation::Collinear,
        1 => Orientation::CounterClockwise,
        _ => Orientation::Clockwise,
    }
}

/// Returns true if the triple is collinear within tolerance.
#[inline]
pub fn collinear(a: Point, b: Point, c: Point) -> bool {
    orient2d(a, b, c) == Orientation::Collinear
}

/// Returns true if point `q` lies inside (or on) the circle through `a`,
/// `b`, `c` given in counter-clockwise order.
///
/// Uses the classical 3×3 in-circle determinant lifted to the paraboloid.
/// Only used by tests and diagnostics; the paper's algorithms never need an
/// in-circle test.
pub fn in_circle(a: Point, b: Point, c: Point, q: Point) -> bool {
    debug_assert_ne!(
        orient2d(a, b, c),
        Orientation::Clockwise,
        "triangle must be CCW"
    );
    let (ax, ay) = (a.x - q.x, a.y - q.y);
    let (bx, by) = (b.x - q.x, b.y - q.y);
    let (cx, cy) = (c.x - q.x, c.y - q.y);
    let det = (ax * ax + ay * ay) * (bx * cy - cx * by) - (bx * bx + by * by) * (ax * cy - cx * ay)
        + (cx * cx + cy * cy) * (ax * by - bx * ay);
    det >= 0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orientation_basic() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orient2d(a, b, Point::new(0.5, 0.5)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(a, b, Point::new(0.5, -0.5)),
            Orientation::Clockwise
        );
        assert_eq!(orient2d(a, b, Point::new(2.0, 0.0)), Orientation::Collinear);
    }

    #[test]
    fn orientation_antisymmetry() {
        let a = Point::new(0.3, 1.7);
        let b = Point::new(-2.0, 0.4);
        let c = Point::new(5.5, -3.25);
        let abc = orient2d(a, b, c);
        let acb = orient2d(a, c, b);
        assert_ne!(abc, acb);
        assert_eq!(abc, Orientation::CounterClockwise);
        assert_eq!(acb, Orientation::Clockwise);
    }

    #[test]
    fn orientation_scale_invariance() {
        // The same shape at widely different scales classifies identically.
        for scale in [1e-6, 1.0, 1e6] {
            let a = Point::new(0.0, 0.0);
            let b = Point::new(scale, 0.0);
            let c = Point::new(scale, scale);
            assert_eq!(
                orient2d(a, b, c),
                Orientation::CounterClockwise,
                "scale {scale}"
            );
            let c2 = Point::new(2.0 * scale, 0.0);
            assert_eq!(orient2d(a, b, c2), Orientation::Collinear, "scale {scale}");
        }
    }

    #[test]
    fn in_circle_unit() {
        // CCW unit circle through these three points.
        let a = Point::new(1.0, 0.0);
        let b = Point::new(0.0, 1.0);
        let c = Point::new(-1.0, 0.0);
        assert!(in_circle(a, b, c, Point::new(0.0, 0.0)));
        assert!(in_circle(a, b, c, Point::new(0.5, 0.5)));
        assert!(!in_circle(a, b, c, Point::new(2.0, 2.0)));
    }

    #[test]
    fn signed_area_matches_shoelace() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(0.0, 3.0);
        assert_eq!(signed_area2(a, b, c), 12.0); // twice area 6
    }
}
