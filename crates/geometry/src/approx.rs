//! Tolerance-based floating point comparison.
//!
//! Geometric predicates on `f64` must decide "is this value zero?" in the
//! presence of rounding error. This module centralises that decision so that
//! every caller in the workspace applies the same policy: a mixed
//! absolute/relative test
//!
//! ```text
//! |x - y| <= abs_tol  ||  |x - y| <= rel_tol * max(|x|, |y|)
//! ```
//!
//! The absolute term handles values near zero (where relative comparison is
//! meaningless); the relative term handles large magnitudes (where a fixed
//! absolute epsilon is too strict).

/// Default absolute tolerance used by the free functions in this module.
pub const DEFAULT_ABS_TOL: f64 = 1e-9;

/// Default relative tolerance used by the free functions in this module.
pub const DEFAULT_REL_TOL: f64 = 1e-9;

/// A reusable tolerance policy combining absolute and relative thresholds.
///
/// # Examples
///
/// ```
/// use sinr_geometry::Tolerance;
///
/// let tol = Tolerance::default();
/// assert!(tol.eq(1.0, 1.0 + 1e-12));
/// assert!(!tol.eq(1.0, 1.0 + 1e-3));
/// assert!(tol.is_zero(1e-12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Absolute tolerance, effective near zero.
    pub abs: f64,
    /// Relative tolerance, effective at large magnitudes.
    pub rel: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Tolerance {
            abs: DEFAULT_ABS_TOL,
            rel: DEFAULT_REL_TOL,
        }
    }
}

impl Tolerance {
    /// Creates a tolerance policy with the given absolute and relative parts.
    ///
    /// # Panics
    ///
    /// Panics if either tolerance is negative or NaN.
    pub fn new(abs: f64, rel: f64) -> Self {
        assert!(abs >= 0.0 && rel >= 0.0, "tolerances must be non-negative");
        Tolerance { abs, rel }
    }

    /// Returns a policy with only an absolute component.
    pub fn absolute(abs: f64) -> Self {
        Tolerance::new(abs, 0.0)
    }

    /// Tests whether `x` and `y` are equal under this policy.
    #[inline]
    pub fn eq(&self, x: f64, y: f64) -> bool {
        let d = (x - y).abs();
        d <= self.abs || d <= self.rel * x.abs().max(y.abs())
    }

    /// Tests whether `x` is zero under this policy.
    #[inline]
    pub fn is_zero(&self, x: f64) -> bool {
        x.abs() <= self.abs
    }

    /// Returns the sign of `x` quantised by this policy: `-1`, `0`, or `1`.
    #[inline]
    pub fn sign(&self, x: f64) -> i8 {
        if self.is_zero(x) {
            0
        } else if x > 0.0 {
            1
        } else {
            -1
        }
    }

    /// Tests `x < y` strictly, i.e. `x` is smaller and they are not equal
    /// under the policy.
    #[inline]
    pub fn lt(&self, x: f64, y: f64) -> bool {
        x < y && !self.eq(x, y)
    }

    /// Tests `x <= y` up to the policy (true also when approximately equal).
    #[inline]
    pub fn le(&self, x: f64, y: f64) -> bool {
        x <= y || self.eq(x, y)
    }
}

/// Tests `x ≈ y` with the default [`Tolerance`].
///
/// # Examples
///
/// ```
/// assert!(sinr_geometry::approx_eq(0.1 + 0.2, 0.3));
/// ```
#[inline]
pub fn approx_eq(x: f64, y: f64) -> bool {
    Tolerance::default().eq(x, y)
}

/// Tests `x ≈ 0` with the default [`Tolerance`].
///
/// # Examples
///
/// ```
/// assert!(sinr_geometry::approx_zero(1e-15));
/// assert!(!sinr_geometry::approx_zero(1e-3));
/// ```
#[inline]
pub fn approx_zero(x: f64) -> bool {
    Tolerance::default().is_zero(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absolute_near_zero() {
        let tol = Tolerance::default();
        assert!(tol.eq(0.0, 1e-12));
        assert!(tol.eq(-1e-12, 1e-12));
        assert!(!tol.eq(0.0, 1e-6));
    }

    #[test]
    fn relative_at_scale() {
        let tol = Tolerance::default();
        let big = 1e12;
        assert!(tol.eq(big, big + 1.0)); // 1 part in 1e12
        assert!(!tol.eq(big, big * 1.001));
    }

    #[test]
    fn sign_quantisation() {
        let tol = Tolerance::default();
        assert_eq!(tol.sign(1e-15), 0);
        assert_eq!(tol.sign(0.5), 1);
        assert_eq!(tol.sign(-0.5), -1);
    }

    #[test]
    fn strict_and_loose_order() {
        let tol = Tolerance::default();
        assert!(tol.lt(1.0, 2.0));
        assert!(!tol.lt(1.0, 1.0 + 1e-15));
        assert!(tol.le(1.0, 1.0 + 1e-15));
        assert!(tol.le(1.0, 2.0));
        assert!(!tol.le(2.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn negative_tolerance_panics() {
        let _ = Tolerance::new(-1.0, 0.0);
    }

    #[test]
    fn absolute_only_policy() {
        let tol = Tolerance::absolute(0.5);
        assert!(tol.eq(10.0, 10.4));
        assert!(!tol.eq(10.0, 10.6));
    }
}
