//! # sinr-geometry
//!
//! A self-contained planar computational-geometry kernel used throughout the
//! `sinr-diagrams` workspace, the Rust reproduction of *"SINR Diagrams:
//! Towards Algorithmically Usable SINR Models of Wireless Networks"*
//! (Avin, Emek, Kantor, Lotker, Peleg, Roditty — PODC 2009).
//!
//! The paper works in the Euclidean plane `R²`: stations are points,
//! reception-zone boundaries are algebraic curves, the point-location data
//! structure of Theorem 3 lives on a `γ`-spaced grid, and the convexity
//! proof repeatedly applies rotation/translation/scaling maps (Lemma 2.3).
//! This crate provides exactly those primitives:
//!
//! * [`Point`] / [`Vector`] — affine points and displacement vectors;
//! * [`Segment`], [`Line`], [`Ray`] — linear objects, perpendicular
//!   bisectors ("separation lines" in the paper's terminology);
//! * [`Ball`] — closed disks `B(p, r)`, circle–circle and circle–line
//!   intersections (used by Lemma 3.10 and the noise-elimination reduction
//!   of Section 3.4);
//! * [`BBox`] — axis-aligned boxes;
//! * [`ConvexPolygon`] and [`convex_hull`] — convex polygon machinery used
//!   by the Voronoi substrate;
//! * [`Similarity`] — the rotation+translation+uniform-scaling maps of
//!   Lemma 2.3;
//! * [`Grid`] — the `γ`-spaced grid of Section 5.1 with the paper's exact
//!   cell tie-breaking rules and 9-cell (`♯C`) addressing.
//!
//! ## Numerical policy
//!
//! All computations are on `f64`. Comparisons with zero go through the
//! [`approx`] module, which implements mixed absolute/relative tolerances.
//! Exact predicates are not required by the algorithms in the paper (the
//! decisive tests are Sturm-sequence sign counts implemented in
//! `sinr-algebra`), so the kernel favours clarity and speed over adaptive
//! precision.
//!
//! ## Example
//!
//! ```
//! use sinr_geometry::{Point, Ball, Line};
//!
//! let s0 = Point::new(0.0, 0.0);
//! let s1 = Point::new(2.0, 0.0);
//! // The "separation line" of the paper: points equidistant from s0 and s1.
//! let bisector = Line::bisector(s0, s1).unwrap();
//! assert!(bisector.signed_distance(Point::new(1.0, 5.0)).abs() < 1e-12);
//!
//! // Circle-circle intersection (used when replacing two stations by one).
//! let b0 = Ball::new(s0, 1.5);
//! let b1 = Ball::new(s1, 1.5);
//! let hits = b0.circle_intersections(&b1);
//! assert_eq!(hits.len(), 2);
//! ```

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod approx;
pub mod ball;
pub mod bbox;
pub mod grid;
pub mod hull;
pub mod line;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod ray;
pub mod segment;
pub mod transform;

pub use approx::{approx_eq, approx_zero, Tolerance};
pub use ball::Ball;
pub use bbox::BBox;
pub use grid::{CellId, Grid, GridEdge, NineCell};
pub use hull::convex_hull;
pub use line::Line;
pub use point::{Point, Vector};
pub use polygon::ConvexPolygon;
pub use predicates::{orient2d, Orientation};
pub use ray::Ray;
pub use segment::Segment;
pub use transform::Similarity;
