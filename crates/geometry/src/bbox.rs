//! Axis-aligned bounding boxes.
//!
//! Bounding boxes bound the extent of reception zones (which are compact by
//! Observation 2.2), clip Voronoi cells to a finite window, and frame the
//! rasterised diagrams of the figure generators.

use crate::point::{Point, Vector};
use crate::segment::Segment;

/// A closed axis-aligned box `[min.x, max.x] × [min.y, max.y]`.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{BBox, Point};
///
/// let b = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 1.0));
/// assert!(b.contains(Point::new(1.0, 0.5)));
/// assert_eq!(b.area(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BBox {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl BBox {
    /// Creates a box from its lower-left and upper-right corners.
    ///
    /// # Panics
    ///
    /// Panics if `min.x > max.x` or `min.y > max.y`.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "invalid bbox corners {min} {max}"
        );
        BBox { min, max }
    }

    /// Creates the square box `[-half, half]²` centred at the origin.
    pub fn centered_square(half: f64) -> Self {
        assert!(half >= 0.0);
        BBox::new(Point::new(-half, -half), Point::new(half, half))
    }

    /// The smallest box containing all the given points.
    ///
    /// Returns `None` for an empty iterator.
    pub fn from_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = BBox {
            min: first,
            max: first,
        };
        for p in it {
            bb.expand_to(p);
        }
        Some(bb)
    }

    /// Grows the box (in place) to contain `p`.
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The box inflated by `margin` on every side.
    ///
    /// # Panics
    ///
    /// Panics if deflating (`margin < 0`) would invert the box.
    pub fn inflated(&self, margin: f64) -> BBox {
        BBox::new(
            Point::new(self.min.x - margin, self.min.y - margin),
            Point::new(self.max.x + margin, self.max.y + margin),
        )
    }

    /// Width along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point of the box.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Half of the diagonal length (circumradius of the box).
    #[inline]
    pub fn circumradius(&self) -> f64 {
        0.5 * (self.max - self.min).norm()
    }

    /// True if `p` lies in the closed box.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// True if `other` is entirely inside `self`.
    pub fn contains_bbox(&self, other: &BBox) -> bool {
        self.contains(other.min) && self.contains(other.max)
    }

    /// True if the two boxes intersect (closed intersection).
    pub fn intersects(&self, other: &BBox) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The union box of `self` and `other`.
    pub fn union(&self, other: &BBox) -> BBox {
        BBox {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The four corners in counter-clockwise order starting at `min`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// The four edges as segments, counter-clockwise.
    pub fn edges(&self) -> [Segment; 4] {
        let c = self.corners();
        [
            Segment::new(c[0], c[1]),
            Segment::new(c[1], c[2]),
            Segment::new(c[2], c[3]),
            Segment::new(c[3], c[0]),
        ]
    }

    /// Clamps a point into the box.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Returns the point at fractional coordinates `(u, v) ∈ [0,1]²` of the
    /// box (`(0,0)` ↦ `min`, `(1,1)` ↦ `max`).
    pub fn at_fraction(&self, u: f64, v: f64) -> Point {
        self.min + Vector::new(u * self.width(), v * self.height())
    }
}

impl std::fmt::Display for BBox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} — {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_points_bounds_all() {
        let pts = [
            Point::new(1.0, 5.0),
            Point::new(-2.0, 3.0),
            Point::new(0.0, -1.0),
        ];
        let bb = BBox::from_points(pts).unwrap();
        assert_eq!(bb.min, Point::new(-2.0, -1.0));
        assert_eq!(bb.max, Point::new(1.0, 5.0));
        for p in pts {
            assert!(bb.contains(p));
        }
        assert!(BBox::from_points(std::iter::empty()).is_none());
    }

    #[test]
    fn geometry_quantities() {
        let bb = BBox::new(Point::new(0.0, 0.0), Point::new(4.0, 2.0));
        assert_eq!(bb.width(), 4.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(bb.area(), 8.0);
        assert_eq!(bb.center(), Point::new(2.0, 1.0));
        assert!((bb.circumradius() - 5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn inflation_and_union() {
        let bb = BBox::centered_square(1.0);
        let big = bb.inflated(1.0);
        assert!(big.contains_bbox(&bb));
        assert_eq!(big.width(), 4.0);
        let other = BBox::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let u = bb.union(&other);
        assert!(u.contains_bbox(&bb) && u.contains_bbox(&other));
    }

    #[test]
    fn intersection_tests() {
        let a = BBox::centered_square(1.0);
        let b = BBox::new(Point::new(0.5, 0.5), Point::new(3.0, 3.0));
        let c = BBox::new(Point::new(2.0, 2.0), Point::new(3.0, 3.0));
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // touching edges count as intersecting (closed boxes)
        let d = BBox::new(Point::new(1.0, -1.0), Point::new(2.0, 1.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn corners_and_edges_ccw() {
        let bb = BBox::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let cs = bb.corners();
        assert_eq!(cs[0], Point::new(0.0, 0.0));
        assert_eq!(cs[2], Point::new(1.0, 1.0));
        let es = bb.edges();
        let total: f64 = es.iter().map(|e| e.length()).sum();
        assert!((total - 4.0).abs() < 1e-12);
        // consecutive edges share endpoints
        for i in 0..4 {
            assert_eq!(es[i].b, es[(i + 1) % 4].a);
        }
    }

    #[test]
    fn clamp_and_fraction() {
        let bb = BBox::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        assert_eq!(bb.clamp(Point::new(-1.0, 5.0)), Point::new(0.0, 2.0));
        assert_eq!(bb.at_fraction(0.5, 0.5), Point::new(1.0, 1.0));
        assert_eq!(bb.at_fraction(0.0, 1.0), Point::new(0.0, 2.0));
    }

    #[test]
    #[should_panic]
    fn inverted_box_panics() {
        let _ = BBox::new(Point::new(1.0, 0.0), Point::new(0.0, 1.0));
    }
}
