//! Convex polygons.
//!
//! Convex polygons serve two roles in the workspace: Voronoi cells (each is
//! an intersection of half-planes — Observation 2.2 places every reception
//! zone strictly inside the Voronoi cell of its station), and polygonal
//! approximations of reception-zone boundaries produced by ray-shooting.

use crate::approx::Tolerance;
use crate::bbox::BBox;
use crate::line::Line;
use crate::point::Point;
use crate::predicates::{orient2d, Orientation};
use crate::segment::Segment;

/// A convex polygon with vertices in counter-clockwise order.
///
/// The invariant (counter-clockwise convex vertex chain, no duplicate
/// consecutive vertices) is established at construction and preserved by
/// all operations.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{ConvexPolygon, Point};
///
/// let square = ConvexPolygon::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.0, 0.0),
///     Point::new(1.0, 1.0),
///     Point::new(0.0, 1.0),
/// ]).unwrap();
/// assert_eq!(square.area(), 1.0);
/// assert!(square.contains(Point::new(0.5, 0.5)));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Creates a convex polygon from vertices in counter-clockwise order.
    ///
    /// Returns `None` if fewer than 3 vertices remain after removing
    /// consecutive duplicates, or if the chain is not convex and
    /// counter-clockwise.
    pub fn new(vertices: Vec<Point>) -> Option<Self> {
        let vertices = dedup_ring(vertices);
        if vertices.len() < 3 {
            return None;
        }
        let poly = ConvexPolygon { vertices };
        if poly.is_convex_ccw() {
            Some(poly)
        } else {
            None
        }
    }

    /// The axis-aligned box as a polygon.
    pub fn from_bbox(bb: &BBox) -> Self {
        ConvexPolygon {
            vertices: bb.corners().to_vec(),
        }
    }

    /// The vertices in counter-clockwise order.
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Always false: a constructed polygon has at least 3 vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// The edges as segments, counter-clockwise.
    pub fn edges(&self) -> impl Iterator<Item = Segment> + '_ {
        let n = self.vertices.len();
        (0..n).map(move |i| Segment::new(self.vertices[i], self.vertices[(i + 1) % n]))
    }

    /// Signed area (positive for the counter-clockwise invariant).
    pub fn area(&self) -> f64 {
        shoelace(&self.vertices).abs()
    }

    /// Perimeter (sum of edge lengths).
    pub fn perimeter(&self) -> f64 {
        self.edges().map(|e| e.length()).sum()
    }

    /// Centroid (area-weighted barycentre).
    pub fn centroid(&self) -> Point {
        let n = self.vertices.len();
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut a = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
            a += w;
        }
        if a.abs() <= f64::MIN_POSITIVE {
            // Degenerate: average the vertices.
            let inv = 1.0 / n as f64;
            let (sx, sy) = self
                .vertices
                .iter()
                .fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
            return Point::new(sx * inv, sy * inv);
        }
        Point::new(cx / (3.0 * a), cy / (3.0 * a))
    }

    /// True if `p` lies in the closed polygon.
    pub fn contains(&self, p: Point) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if orient2d(a, b, p) == Orientation::Clockwise {
                return false;
            }
        }
        true
    }

    /// Maximum distance between any two vertices (the diameter).
    pub fn diameter(&self) -> f64 {
        let mut best: f64 = 0.0;
        for (i, p) in self.vertices.iter().enumerate() {
            for q in &self.vertices[i + 1..] {
                best = best.max(p.dist(*q));
            }
        }
        best
    }

    /// The smallest axis-aligned box containing the polygon.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.vertices.iter().copied()).expect("polygon is non-empty")
    }

    /// Clips the polygon with the half-plane `signed_distance ≤ 0`
    /// (the side the line's normal points *away* from).
    ///
    /// Returns `None` when the intersection is empty or degenerate (a point
    /// or a segment). This is one Sutherland–Hodgman step; iterating it over
    /// the perpendicular bisectors of a station against all other stations
    /// yields its Voronoi cell.
    pub fn clip_halfplane(&self, line: &Line) -> Option<ConvexPolygon> {
        let tol = Tolerance::new(1e-12 * (1.0 + self.bbox().circumradius()), 0.0);
        let n = self.vertices.len();
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..n {
            let cur = self.vertices[i];
            let nxt = self.vertices[(i + 1) % n];
            let dc = line.signed_distance(cur);
            let dn = line.signed_distance(nxt);
            let cur_in = dc <= tol.abs;
            let nxt_in = dn <= tol.abs;
            if cur_in {
                out.push(cur);
            }
            if cur_in != nxt_in {
                // Edge crosses the boundary; dc != dn since signs differ.
                let t = dc / (dc - dn);
                out.push(cur.lerp(nxt, t.clamp(0.0, 1.0)));
            }
        }
        ConvexPolygon::new(out)
    }

    /// Intersection of half-planes (each given as "the side of `line` where
    /// `signed_distance ≤ 0`"), seeded with a bounding window.
    ///
    /// Returns `None` when the intersection is empty or degenerate.
    pub fn from_halfplanes(window: &BBox, lines: &[Line]) -> Option<ConvexPolygon> {
        let mut poly = ConvexPolygon::from_bbox(window);
        for line in lines {
            poly = poly.clip_halfplane(line)?;
        }
        Some(poly)
    }

    fn is_convex_ccw(&self) -> bool {
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            let c = self.vertices[(i + 2) % n];
            if orient2d(a, b, c) == Orientation::Clockwise {
                return false;
            }
        }
        true
    }
}

/// Signed shoelace sum (twice the signed area is `2·shoelace`... no:
/// this returns the signed area itself).
fn shoelace(vs: &[Point]) -> f64 {
    let n = vs.len();
    let mut s = 0.0;
    for i in 0..n {
        let p = vs[i];
        let q = vs[(i + 1) % n];
        s += p.x * q.y - q.x * p.y;
    }
    0.5 * s
}

/// Removes consecutive (near-)duplicate vertices, treating the list as a ring.
fn dedup_ring(mut vs: Vec<Point>) -> Vec<Point> {
    let tol = Tolerance::default();
    vs.dedup_by(|a, b| tol.is_zero(a.dist(*b)));
    while vs.len() >= 2 && tol.is_zero(vs[0].dist(*vs.last().unwrap())) {
        vs.pop();
    }
    vs
}

impl std::fmt::Display for ConvexPolygon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Polygon[")?;
        for (i, v) in self.vertices.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_square() -> ConvexPolygon {
        ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(0.0, 1.0),
        ])
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(unit_square().area() > 0.0);
        // clockwise input rejected
        assert!(ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 1.0),
            Point::new(1.0, 1.0),
            Point::new(1.0, 0.0),
        ])
        .is_none());
        // non-convex input rejected
        assert!(ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 0.5), // dent
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ])
        .is_none());
        // too few points
        assert!(ConvexPolygon::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)]).is_none());
        // duplicate collapse
        assert!(ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ])
        .is_none());
    }

    #[test]
    fn area_perimeter_centroid() {
        let sq = unit_square();
        assert!((sq.area() - 1.0).abs() < 1e-12);
        assert!((sq.perimeter() - 4.0).abs() < 1e-12);
        let c = sq.centroid();
        assert!((c.x - 0.5).abs() < 1e-12 && (c.y - 0.5).abs() < 1e-12);
    }

    #[test]
    fn containment_boundary_inclusive() {
        let sq = unit_square();
        assert!(sq.contains(Point::new(0.5, 0.5)));
        assert!(sq.contains(Point::new(0.0, 0.5))); // on edge
        assert!(sq.contains(Point::new(0.0, 0.0))); // on vertex
        assert!(!sq.contains(Point::new(1.5, 0.5)));
        assert!(!sq.contains(Point::new(-0.1, -0.1)));
    }

    #[test]
    fn clip_halfplane_cuts_square() {
        let sq = unit_square();
        // Keep the left half: x ≤ 0.5  ⇔  1·x + 0·y − 0.5 ≤ 0.
        let line = Line::new(1.0, 0.0, -0.5).unwrap();
        let half = sq.clip_halfplane(&line).unwrap();
        assert!((half.area() - 0.5).abs() < 1e-9);
        assert!(half.contains(Point::new(0.25, 0.5)));
        assert!(!half.contains(Point::new(0.75, 0.5)));
    }

    #[test]
    fn clip_to_empty() {
        let sq = unit_square();
        // Half-plane x ≤ −1 misses the square entirely.
        let line = Line::new(1.0, 0.0, 1.0).unwrap();
        assert!(sq.clip_halfplane(&line).is_none());
    }

    #[test]
    fn clip_no_change_when_contained() {
        let sq = unit_square();
        let line = Line::new(1.0, 0.0, -10.0).unwrap(); // x ≤ 10
        let same = sq.clip_halfplane(&line).unwrap();
        assert!((same.area() - sq.area()).abs() < 1e-12);
    }

    #[test]
    fn halfplane_intersection_voronoi_style() {
        // The Voronoi cell of the origin among 4 symmetric neighbours is a
        // square of side 2 centred at the origin.
        let window = BBox::centered_square(10.0);
        let site = Point::ORIGIN;
        let others = [
            Point::new(2.0, 0.0),
            Point::new(-2.0, 0.0),
            Point::new(0.0, 2.0),
            Point::new(0.0, -2.0),
        ];
        let lines: Vec<Line> = others
            .iter()
            .map(|o| Line::bisector(site, *o).unwrap())
            .collect();
        let cell = ConvexPolygon::from_halfplanes(&window, &lines).unwrap();
        assert!((cell.area() - 4.0).abs() < 1e-9);
        assert!(cell.contains(Point::new(0.9, 0.9)));
        assert!(!cell.contains(Point::new(1.5, 0.0)));
    }

    #[test]
    fn diameter_and_bbox() {
        let sq = unit_square();
        assert!((sq.diameter() - 2f64.sqrt()).abs() < 1e-12);
        let bb = sq.bbox();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(1.0, 1.0));
    }

    #[test]
    fn edges_form_closed_ring() {
        let sq = unit_square();
        let edges: Vec<Segment> = sq.edges().collect();
        assert_eq!(edges.len(), 4);
        for i in 0..4 {
            assert_eq!(edges[i].b, edges[(i + 1) % 4].a);
        }
    }
}
