//! Closed line segments.
//!
//! Segments appear throughout the paper: the convexity proofs argue about
//! `p₁p₂ ⊆ H₀`, and the point-location structure of Section 5 applies its
//! *segment test* to grid-cell edges. The [`Segment`] type carries the two
//! endpoints and exposes the affine parametrisation `p(t) = a + t·(b − a)`
//! for `t ∈ [0, 1]`, which is also how `sinr-algebra` restricts the
//! characteristic polynomial to a segment.

use crate::approx::Tolerance;
use crate::point::{Point, Vector};

/// A closed segment between two endpoints.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Point, Segment};
///
/// let s = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
/// assert_eq!(s.length(), 4.0);
/// assert_eq!(s.point_at(0.25), Point::new(1.0, 0.0));
/// assert_eq!(s.dist_to_point(Point::new(2.0, 3.0)), 3.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint (parameter `t = 0`).
    pub a: Point,
    /// Second endpoint (parameter `t = 1`).
    pub b: Point,
}

/// Result of a segment–segment intersection query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SegmentIntersection {
    /// The segments do not intersect.
    None,
    /// The segments intersect in a single point.
    Point(Point),
    /// The segments overlap along a (possibly degenerate) sub-segment.
    Overlap(Segment),
}

impl Segment {
    /// Creates a segment between `a` and `b` (degenerate segments allowed).
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.dist(self.b)
    }

    /// Squared length of the segment.
    #[inline]
    pub fn length_sq(&self) -> f64 {
        self.a.dist_sq(self.b)
    }

    /// Direction vector `b − a` (not normalised).
    #[inline]
    pub fn direction(&self) -> Vector {
        self.b - self.a
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// The point at parameter `t`: `a + t·(b−a)`.
    ///
    /// `t` outside `[0, 1]` extrapolates onto the supporting line.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// The segment with endpoints swapped (parameter direction reversed).
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }

    /// True if the segment is degenerate (endpoints coincide within
    /// tolerance).
    #[inline]
    pub fn is_degenerate(&self) -> bool {
        Tolerance::default().is_zero(self.length())
    }

    /// Parameter of the orthogonal projection of `p` onto the supporting
    /// line, unclamped. For a degenerate segment returns `0`.
    pub fn project_param(&self, p: Point) -> f64 {
        let d = self.direction();
        let len2 = d.norm_sq();
        if len2 <= f64::MIN_POSITIVE {
            0.0
        } else {
            (p - self.a).dot(d) / len2
        }
    }

    /// The point of the segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let t = self.project_param(p).clamp(0.0, 1.0);
        self.point_at(t)
    }

    /// Euclidean distance from `p` to the segment.
    pub fn dist_to_point(&self, p: Point) -> f64 {
        self.closest_point(p).dist(p)
    }

    /// True if `p` lies on the segment within tolerance `tol`.
    pub fn contains_point(&self, p: Point, tol: f64) -> bool {
        self.dist_to_point(p) <= tol
    }

    /// Intersects two segments.
    ///
    /// Returns [`SegmentIntersection::Point`] for a transversal or endpoint
    /// intersection, [`SegmentIntersection::Overlap`] when the segments are
    /// collinear with a shared sub-segment, and
    /// [`SegmentIntersection::None`] otherwise.
    pub fn intersect(&self, other: &Segment) -> SegmentIntersection {
        let r = self.direction();
        let s = other.direction();
        let qp = other.a - self.a;
        let denom = r.cross(s);
        let tol = Tolerance::new(1e-12 * (1.0 + r.norm() * s.norm()), 0.0);

        if tol.is_zero(denom) {
            // Parallel. Collinear?
            if !tol.is_zero(qp.cross(r)) {
                return SegmentIntersection::None;
            }
            // Collinear: project other's endpoints onto self's parameter.
            let len2 = r.norm_sq();
            if len2 <= f64::MIN_POSITIVE {
                // self is a point.
                return if other.contains_point(self.a, 1e-9) {
                    SegmentIntersection::Point(self.a)
                } else {
                    SegmentIntersection::None
                };
            }
            let t0 = qp.dot(r) / len2;
            let t1 = t0 + s.dot(r) / len2;
            let (lo, hi) = if t0 <= t1 { (t0, t1) } else { (t1, t0) };
            let lo = lo.max(0.0);
            let hi = hi.min(1.0);
            if lo > hi + 1e-12 {
                SegmentIntersection::None
            } else if (hi - lo).abs() <= 1e-12 {
                SegmentIntersection::Point(self.point_at(lo))
            } else {
                SegmentIntersection::Overlap(Segment::new(self.point_at(lo), self.point_at(hi)))
            }
        } else {
            let t = qp.cross(s) / denom;
            let u = qp.cross(r) / denom;
            let eps = 1e-12;
            if t >= -eps && t <= 1.0 + eps && u >= -eps && u <= 1.0 + eps {
                SegmentIntersection::Point(self.point_at(t.clamp(0.0, 1.0)))
            } else {
                SegmentIntersection::None
            }
        }
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} — {}]", self.a, self.b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_midpoint_direction() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.length_sq(), 25.0);
        assert_eq!(s.midpoint(), Point::new(1.5, 2.0));
        assert_eq!(s.direction(), Vector::new(3.0, 4.0));
        assert_eq!(s.reversed().direction(), Vector::new(-3.0, -4.0));
    }

    #[test]
    fn closest_point_cases() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // interior projection
        assert_eq!(s.closest_point(Point::new(3.0, 5.0)), Point::new(3.0, 0.0));
        // clamped to endpoints
        assert_eq!(s.closest_point(Point::new(-4.0, 2.0)), Point::new(0.0, 0.0));
        assert_eq!(
            s.closest_point(Point::new(15.0, -2.0)),
            Point::new(10.0, 0.0)
        );
        assert!(approx_eq(s.dist_to_point(Point::new(15.0, 0.0)), 5.0));
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert!(s.is_degenerate());
        assert_eq!(s.closest_point(Point::new(9.0, 9.0)), Point::new(1.0, 1.0));
        assert_eq!(s.project_param(Point::new(9.0, 9.0)), 0.0);
    }

    #[test]
    fn transversal_intersection() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        match s1.intersect(&s2) {
            SegmentIntersection::Point(p) => {
                assert!(approx_eq(p.x, 1.0) && approx_eq(p.y, 1.0));
            }
            other => panic!("expected point intersection, got {other:?}"),
        }
    }

    #[test]
    fn miss_is_none() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
        // lines would cross, segments do not
        let s3 = seg(5.0, -1.0, 5.0, 1.0);
        assert_eq!(s1.intersect(&s3), SegmentIntersection::None);
    }

    #[test]
    fn endpoint_touch() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        match s1.intersect(&s2) {
            SegmentIntersection::Point(p) => assert_eq!(p, Point::new(1.0, 0.0)),
            other => panic!("expected endpoint touch, got {other:?}"),
        }
    }

    #[test]
    fn collinear_overlap() {
        let s1 = seg(0.0, 0.0, 4.0, 0.0);
        let s2 = seg(2.0, 0.0, 6.0, 0.0);
        match s1.intersect(&s2) {
            SegmentIntersection::Overlap(o) => {
                assert!(approx_eq(o.a.x.min(o.b.x), 2.0));
                assert!(approx_eq(o.a.x.max(o.b.x), 4.0));
            }
            other => panic!("expected overlap, got {other:?}"),
        }
        // collinear but disjoint
        let s3 = seg(5.0, 0.0, 6.0, 0.0);
        assert_eq!(s1.intersect(&s3), SegmentIntersection::None);
        // collinear, touching at one point
        let s4 = seg(4.0, 0.0, 6.0, 0.0);
        match s1.intersect(&s4) {
            SegmentIntersection::Point(p) => assert!(approx_eq(p.x, 4.0)),
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn parallel_non_collinear() {
        let s1 = seg(0.0, 0.0, 4.0, 4.0);
        let s2 = seg(1.0, 0.0, 5.0, 4.0);
        assert_eq!(s1.intersect(&s2), SegmentIntersection::None);
    }

    #[test]
    fn contains_point_tolerance() {
        let s = seg(0.0, 0.0, 1.0, 1.0);
        assert!(s.contains_point(Point::new(0.5, 0.5), 1e-9));
        assert!(s.contains_point(Point::new(0.5, 0.5 + 1e-10), 1e-9));
        assert!(!s.contains_point(Point::new(0.5, 0.6), 1e-9));
    }

    #[test]
    fn param_roundtrip() {
        let s = seg(-1.0, 2.0, 3.0, -2.0);
        for &t in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            let p = s.point_at(t);
            assert!(approx_eq(s.project_param(p), t));
        }
    }
}
