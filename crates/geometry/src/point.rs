//! Points and vectors in the Euclidean plane.
//!
//! The paper denotes stations and receivers as points `p = (x, y) ∈ R²` and
//! works with Euclidean distances `dist(p, q) = ‖q − p‖`. We keep the usual
//! affine distinction: [`Point`] is a location, [`Vector`] is a
//! displacement. `Point - Point = Vector`, `Point + Vector = Point`.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the Euclidean plane `R²`.
///
/// # Examples
///
/// ```
/// use sinr_geometry::Point;
///
/// let p = Point::new(3.0, 4.0);
/// assert_eq!(p.dist(Point::ORIGIN), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement vector in the Euclidean plane `R²`.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Point, Vector};
///
/// let v = Point::new(1.0, 2.0) - Point::new(0.0, 0.0);
/// assert_eq!(v, Vector::new(1.0, 2.0));
/// assert!((v.norm() - 5.0_f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance `dist(self, other)`.
    ///
    /// This is the `dist(p, q)` of the paper's Section 2.1.
    #[inline]
    pub fn dist(self, other: Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper; avoids the square root).
    ///
    /// With path-loss exponent `α = 2` the received energy is exactly
    /// `ψ / dist²`, so squared distances are the natural currency of the
    /// whole workspace.
    #[inline]
    pub fn dist_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The displacement vector from `self` to `other`.
    #[inline]
    pub fn to(self, other: Point) -> Vector {
        other - self
    }

    /// Midpoint of the segment `self other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: returns `(1−t)·self + t·other`.
    ///
    /// `t = 0` gives `self`, `t = 1` gives `other`; values outside `[0, 1]`
    /// extrapolate along the supporting line.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + t * (other.x - self.x),
            self.y + t * (other.y - self.y),
        )
    }

    /// Converts to the position vector from the origin.
    #[inline]
    pub fn to_vector(self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// Returns true if both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Unit vector along +x.
    pub const UNIT_X: Vector = Vector { x: 1.0, y: 0.0 };

    /// Unit vector along +y.
    pub const UNIT_Y: Vector = Vector { x: 0.0, y: 1.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Dot product `self · other`.
    #[inline]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the `z` component of the 3-D cross product).
    ///
    /// Positive when `other` is counter-clockwise from `self`.
    #[inline]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm `‖self‖`.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean norm.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Returns the unit vector with the same direction, or `None` for a
    /// (near-)zero vector where the direction is undefined.
    #[inline]
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n <= f64::EPSILON * 4.0 {
            None
        } else {
            Some(self / n)
        }
    }

    /// The vector rotated by +90° (counter-clockwise): `(x, y) ↦ (−y, x)`.
    #[inline]
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// The vector rotated by angle `theta` (radians, counter-clockwise).
    #[inline]
    pub fn rotated(self, theta: f64) -> Vector {
        let (s, c) = theta.sin_cos();
        Vector::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }

    /// The polar angle of the vector in `(−π, π]`.
    #[inline]
    pub fn angle(self) -> f64 {
        self.y.atan2(self.x)
    }

    /// Unit vector at polar angle `theta` (radians).
    #[inline]
    pub fn from_angle(theta: f64) -> Vector {
        let (s, c) = theta.sin_cos();
        Vector::new(c, s)
    }

    /// Converts to a point (interpreting the vector as a position vector).
    #[inline]
    pub fn to_point(self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Returns true if both components are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

// ---------------------------------------------------------------------------
// Operator overloads (C-OVERLOAD: affine-space semantics, no surprises).
// ---------------------------------------------------------------------------

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vector {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{}, {}⟩", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

impl From<(f64, f64)> for Vector {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Vector::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        let r = Point::new(-3.0, 0.5);
        assert!(approx_eq(p.dist(q), q.dist(p)));
        assert!(p.dist(r) <= p.dist(q) + q.dist(r) + 1e-12);
        assert_eq!(p.dist(q), 5.0);
        assert_eq!(p.dist_sq(q), 25.0);
    }

    #[test]
    fn affine_ops_roundtrip() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.5, -0.5);
        let q = p + v;
        assert_eq!(q - p, v);
        assert_eq!(q - v, p);
        let mut m = p;
        m += v;
        assert_eq!(m, q);
        m -= v;
        assert_eq!(m, p);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(2.0, 4.0);
        assert_eq!(p.lerp(q, 0.0), p);
        assert_eq!(p.lerp(q, 1.0), q);
        assert_eq!(p.lerp(q, 0.5), p.midpoint(q));
        // extrapolation
        assert_eq!(p.lerp(q, 2.0), Point::new(4.0, 8.0));
    }

    #[test]
    fn dot_cross_identities() {
        let a = Vector::new(3.0, 1.0);
        let b = Vector::new(-2.0, 5.0);
        // Lagrange identity: (a·b)² + (a×b)² = |a|²|b|²
        let lhs = a.dot(b).powi(2) + a.cross(b).powi(2);
        assert!(approx_eq(lhs, a.norm_sq() * b.norm_sq()));
        assert!(approx_eq(a.cross(b), -b.cross(a)));
        assert_eq!(a.perp().dot(a), 0.0);
    }

    #[test]
    fn normalization() {
        let v = Vector::new(3.0, 4.0);
        let u = v.normalized().unwrap();
        assert!(approx_eq(u.norm(), 1.0));
        assert!(Vector::ZERO.normalized().is_none());
        assert!(Vector::new(1e-300, 0.0).normalized().is_none());
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vector::new(2.0, -7.0);
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let r = v.rotated(theta);
            assert!(approx_eq(r.norm(), v.norm()));
        }
        // quarter turn equals perp
        let r = v.rotated(std::f64::consts::FRAC_PI_2);
        assert!(approx_eq(r.x, v.perp().x));
        assert!(approx_eq(r.y, v.perp().y));
    }

    #[test]
    fn angles_roundtrip() {
        for k in -7..8 {
            let theta = k as f64 * 0.4;
            let v = Vector::from_angle(theta);
            assert!(approx_eq(v.norm(), 1.0));
            let diff = (v.angle() - theta).rem_euclid(2.0 * std::f64::consts::PI);
            assert!(diff < 1e-9 || (2.0 * std::f64::consts::PI - diff) < 1e-9);
        }
    }

    #[test]
    fn conversions() {
        let p: Point = (1.0, 2.0).into();
        let (x, y): (f64, f64) = p.into();
        assert_eq!((x, y), (1.0, 2.0));
        assert_eq!(p.to_vector().to_point(), p);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
        assert!(!format!("{}", Vector::ZERO).is_empty());
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Vector::new(f64::INFINITY, 0.0).is_finite());
    }
}
