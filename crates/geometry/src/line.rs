//! Infinite lines and perpendicular bisectors.
//!
//! A [`Line`] is stored in normalised implicit form `a·x + b·y + c = 0`
//! with `a² + b² = 1`, so [`Line::signed_distance`] is a true Euclidean
//! distance. The paper's *separation line* of two points `p₁, p₂`
//! (Section 2.1: the locus `dist(p₁, q) = dist(p₂, q)`) is exactly the
//! perpendicular bisector, provided by [`Line::bisector`].

use crate::approx::Tolerance;
use crate::point::{Point, Vector};
use crate::segment::Segment;

/// An infinite line in normalised implicit form `a·x + b·y + c = 0`.
///
/// The unit normal is `(a, b)`; the direction `(−b, a)` is the normal
/// rotated by +90°. Points with positive [`Line::signed_distance`] lie on
/// the side the normal points into.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Line, Point};
///
/// let l = Line::from_points(Point::new(0.0, 0.0), Point::new(1.0, 0.0)).unwrap();
/// assert!((l.signed_distance(Point::new(0.5, 2.0)).abs() - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    a: f64,
    b: f64,
    c: f64,
}

impl Line {
    /// Creates a line from implicit coefficients `a·x + b·y + c = 0`.
    ///
    /// The coefficients are normalised so that `(a, b)` is a unit vector.
    /// Returns `None` when `(a, b)` is (nearly) zero, i.e. the equation does
    /// not describe a line.
    pub fn new(a: f64, b: f64, c: f64) -> Option<Self> {
        let n = (a * a + b * b).sqrt();
        if n <= f64::EPSILON * 4.0 {
            None
        } else {
            Some(Line {
                a: a / n,
                b: b / n,
                c: c / n,
            })
        }
    }

    /// The line through two distinct points.
    ///
    /// Returns `None` when the points coincide within tolerance.
    pub fn from_points(p: Point, q: Point) -> Option<Self> {
        let d = q - p;
        // normal is the direction rotated by -90°: (dy, -dx)
        Line::new(d.y, -d.x, -(d.y * p.x - d.x * p.y))
    }

    /// The line through `p` with direction `dir`.
    ///
    /// Returns `None` when `dir` is (nearly) zero.
    pub fn from_point_dir(p: Point, dir: Vector) -> Option<Self> {
        Line::from_points(p, p + dir)
    }

    /// The *separation line* of `p` and `q`: the perpendicular bisector,
    /// i.e. the locus of points equidistant from both (paper, Section 2.1).
    ///
    /// The normal points from `p` towards `q`, so
    /// `signed_distance(x) < 0` means `x` is strictly closer to `p`.
    ///
    /// Returns `None` when `p` and `q` coincide within tolerance.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_geometry::{Line, Point};
    ///
    /// let p = Point::new(0.0, 0.0);
    /// let q = Point::new(4.0, 0.0);
    /// let sep = Line::bisector(p, q).unwrap();
    /// // Points closer to p are on the negative side.
    /// assert!(sep.signed_distance(Point::new(1.0, 3.0)) < 0.0);
    /// assert!(sep.signed_distance(Point::new(3.0, -3.0)) > 0.0);
    /// assert!(sep.signed_distance(Point::new(2.0, 7.0)).abs() < 1e-12);
    /// ```
    pub fn bisector(p: Point, q: Point) -> Option<Self> {
        let n = q - p;
        let m = p.midpoint(q);
        Line::new(n.x, n.y, -(n.x * m.x + n.y * m.y))
    }

    /// The unit normal `(a, b)`.
    #[inline]
    pub fn normal(&self) -> Vector {
        Vector::new(self.a, self.b)
    }

    /// A unit direction vector of the line (the normal rotated +90°).
    #[inline]
    pub fn direction(&self) -> Vector {
        Vector::new(-self.b, self.a)
    }

    /// The implicit coefficients `(a, b, c)` with `a² + b² = 1`.
    #[inline]
    pub fn coefficients(&self) -> (f64, f64, f64) {
        (self.a, self.b, self.c)
    }

    /// Signed Euclidean distance from `p` to the line (positive on the
    /// normal side).
    #[inline]
    pub fn signed_distance(&self, p: Point) -> f64 {
        self.a * p.x + self.b * p.y + self.c
    }

    /// Absolute Euclidean distance from `p` to the line.
    #[inline]
    pub fn distance(&self, p: Point) -> f64 {
        self.signed_distance(p).abs()
    }

    /// True if `p` lies on the line within tolerance `tol`.
    #[inline]
    pub fn contains_point(&self, p: Point, tol: f64) -> bool {
        self.distance(p) <= tol
    }

    /// Orthogonal projection of `p` onto the line.
    pub fn project(&self, p: Point) -> Point {
        p - self.normal() * self.signed_distance(p)
    }

    /// An arbitrary point on the line (the projection of the origin).
    pub fn any_point(&self) -> Point {
        self.project(Point::ORIGIN)
    }

    /// Intersection point of two lines, or `None` when (nearly) parallel.
    pub fn intersect(&self, other: &Line) -> Option<Point> {
        let det = self.a * other.b - other.a * self.b;
        if Tolerance::new(1e-12, 0.0).is_zero(det) {
            None
        } else {
            Some(Point::new(
                (self.b * other.c - other.b * self.c) / det,
                (other.a * self.c - self.a * other.c) / det,
            ))
        }
    }

    /// The same line with the normal (and thus the sign of
    /// [`Line::signed_distance`]) flipped.
    pub fn flipped(&self) -> Line {
        Line {
            a: -self.a,
            b: -self.b,
            c: -self.c,
        }
    }

    /// The line parallel to `self` passing through `p`.
    pub fn parallel_through(&self, p: Point) -> Line {
        Line {
            a: self.a,
            b: self.b,
            c: -(self.a * p.x + self.b * p.y),
        }
    }

    /// The line perpendicular to `self` passing through `p`.
    pub fn perpendicular_through(&self, p: Point) -> Line {
        // New normal = old direction.
        let d = self.direction();
        Line {
            a: d.x,
            b: d.y,
            c: -(d.x * p.x + d.y * p.y),
        }
    }

    /// Clips the line to the segment between parameters where it crosses the
    /// given axis-aligned box `[x0, x1] × [y0, y1]`, returning the chord or
    /// `None` if the line misses the box.
    pub fn clip_to_box(&self, x0: f64, y0: f64, x1: f64, y1: f64) -> Option<Segment> {
        let p0 = self.any_point();
        let d = self.direction();
        // Liang–Barsky on the parametric form p0 + t d, t ∈ (−∞, ∞).
        let mut t_min = f64::NEG_INFINITY;
        let mut t_max = f64::INFINITY;
        let checks = [
            (-d.x, p0.x - x0),
            (d.x, x1 - p0.x),
            (-d.y, p0.y - y0),
            (d.y, y1 - p0.y),
        ];
        for (den, num) in checks {
            if den.abs() <= f64::MIN_POSITIVE {
                if num < 0.0 {
                    return None;
                }
            } else {
                let t = num / den;
                if den < 0.0 {
                    t_min = t_min.max(t);
                } else {
                    t_max = t_max.min(t);
                }
            }
        }
        if t_min > t_max {
            None
        } else {
            Some(Segment::new(p0 + d * t_min, p0 + d * t_max))
        }
    }
}

impl std::fmt::Display for Line {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}·x + {}·y + {} = 0", self.a, self.b, self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn normalisation() {
        let l = Line::new(3.0, 4.0, 10.0).unwrap();
        let (a, b, c) = l.coefficients();
        assert!(approx_eq(a * a + b * b, 1.0));
        assert!(approx_eq(c, 2.0));
        assert!(Line::new(0.0, 0.0, 5.0).is_none());
    }

    #[test]
    fn from_points_contains_both() {
        let p = Point::new(1.0, 2.0);
        let q = Point::new(-3.0, 5.0);
        let l = Line::from_points(p, q).unwrap();
        assert!(l.contains_point(p, 1e-12));
        assert!(l.contains_point(q, 1e-12));
        assert!(Line::from_points(p, p).is_none());
    }

    #[test]
    fn bisector_equidistance() {
        let p = Point::new(-1.0, 4.0);
        let q = Point::new(3.0, -2.0);
        let l = Line::bisector(p, q).unwrap();
        // Every point on the bisector is equidistant from p and q.
        let pt = l.any_point();
        assert!(approx_eq(pt.dist(p), pt.dist(q)));
        let pt2 = pt + l.direction() * 17.3;
        assert!(approx_eq(pt2.dist(p), pt2.dist(q)));
        // Sign convention: negative side is closer to p.
        assert!(l.signed_distance(p) < 0.0);
        assert!(l.signed_distance(q) > 0.0);
    }

    #[test]
    fn projection_is_idempotent_and_orthogonal() {
        let l = Line::from_points(Point::new(0.0, 1.0), Point::new(2.0, 3.0)).unwrap();
        let p = Point::new(5.0, -4.0);
        let pr = l.project(p);
        assert!(l.contains_point(pr, 1e-9));
        assert!(approx_eq(l.project(pr).dist(pr), 0.0));
        // p − pr is parallel to the normal
        assert!(approx_eq((p - pr).cross(l.normal()), 0.0));
    }

    #[test]
    fn intersection() {
        let l1 = Line::from_points(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let l2 = Line::from_points(Point::new(0.0, 2.0), Point::new(1.0, 1.0)).unwrap();
        let p = l1.intersect(&l2).unwrap();
        assert!(approx_eq(p.x, 1.0) && approx_eq(p.y, 1.0));
        // parallel lines
        let l3 = l1.parallel_through(Point::new(0.0, 5.0));
        assert!(l1.intersect(&l3).is_none());
    }

    #[test]
    fn perpendicular_and_parallel() {
        let l = Line::from_points(Point::new(0.0, 0.0), Point::new(2.0, 1.0)).unwrap();
        let p = Point::new(3.0, 3.0);
        let par = l.parallel_through(p);
        let perp = l.perpendicular_through(p);
        assert!(par.contains_point(p, 1e-12));
        assert!(perp.contains_point(p, 1e-12));
        assert!(approx_eq(par.direction().cross(l.direction()), 0.0));
        assert!(approx_eq(perp.direction().dot(l.direction()), 0.0));
    }

    #[test]
    fn flipped_negates_distance() {
        let l = Line::new(1.0, 2.0, -3.0).unwrap();
        let p = Point::new(4.0, -1.0);
        assert!(approx_eq(
            l.signed_distance(p),
            -l.flipped().signed_distance(p)
        ));
    }

    #[test]
    fn clip_to_box_hits_and_misses() {
        let l = Line::from_points(Point::new(0.0, 0.5), Point::new(1.0, 0.5)).unwrap();
        let chord = l.clip_to_box(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(approx_eq(chord.length(), 1.0));
        // horizontal line above the box misses
        let l2 = Line::from_points(Point::new(0.0, 2.0), Point::new(1.0, 2.0)).unwrap();
        assert!(l2.clip_to_box(0.0, 0.0, 1.0, 1.0).is_none());
        // diagonal through the corners
        let l3 = Line::from_points(Point::new(0.0, 0.0), Point::new(1.0, 1.0)).unwrap();
        let chord3 = l3.clip_to_box(0.0, 0.0, 1.0, 1.0).unwrap();
        assert!(approx_eq(chord3.length(), 2f64.sqrt()));
    }

    #[test]
    fn display_nonempty() {
        let l = Line::new(1.0, 0.0, 0.0).unwrap();
        assert!(!format!("{l}").is_empty());
    }
}
