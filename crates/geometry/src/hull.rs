//! Convex hulls (Andrew's monotone chain).
//!
//! Used by diagnostics and tests: e.g. the convex hull of sampled
//! reception-zone boundary points should have (nearly) the same area as the
//! zone itself when Theorem 1 holds, which gives an independent convexity
//! check for rasterised diagrams.

use crate::point::Point;
use crate::polygon::ConvexPolygon;
use crate::predicates::signed_area2;

/// Computes the convex hull of a point set.
///
/// Returns the hull as a [`ConvexPolygon`] (vertices counter-clockwise), or
/// `None` when the input has fewer than 3 non-collinear points.
///
/// Runs in `O(n log n)`. Collinear points on the hull boundary are dropped
/// (the hull is strictly convex).
///
/// # Examples
///
/// ```
/// use sinr_geometry::{convex_hull, Point};
///
/// let pts = vec![
///     Point::new(0.0, 0.0),
///     Point::new(2.0, 0.0),
///     Point::new(2.0, 2.0),
///     Point::new(0.0, 2.0),
///     Point::new(1.0, 1.0), // interior
/// ];
/// let hull = convex_hull(&pts).unwrap();
/// assert_eq!(hull.len(), 4);
/// assert_eq!(hull.area(), 4.0);
/// ```
pub fn convex_hull(points: &[Point]) -> Option<ConvexPolygon> {
    if points.len() < 3 {
        return None;
    }
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|p, q| {
        p.x.partial_cmp(&q.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(p.y.partial_cmp(&q.y).unwrap_or(std::cmp::Ordering::Equal))
    });
    pts.dedup_by(|a, b| a.dist_sq(*b) <= 1e-24);
    if pts.len() < 3 {
        return None;
    }

    let n = pts.len();
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);

    // Lower hull.
    for &p in &pts {
        while hull.len() >= 2 && signed_area2(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && signed_area2(hull[hull.len() - 2], hull[hull.len() - 1], p) <= 0.0
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // last point equals the first

    ConvexPolygon::new(hull)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let mut pts = vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        for i in 1..4 {
            for j in 1..4 {
                pts.push(Point::new(i as f64, j as f64));
            }
        }
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 4);
        assert!((hull.area() - 16.0).abs() < 1e-12);
    }

    #[test]
    fn collinear_points_have_no_hull() {
        let pts: Vec<Point> = (0..10)
            .map(|i| Point::new(i as f64, 2.0 * i as f64))
            .collect();
        assert!(convex_hull(&pts).is_none());
    }

    #[test]
    fn too_few_points() {
        assert!(convex_hull(&[]).is_none());
        assert!(convex_hull(&[Point::ORIGIN]).is_none());
        assert!(convex_hull(&[Point::ORIGIN, Point::new(1.0, 0.0)]).is_none());
    }

    #[test]
    fn duplicates_collapse() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 1.0),
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 3);
    }

    #[test]
    fn hull_contains_all_inputs() {
        // pseudo-random points (deterministic LCG to avoid a rand dev-dep here)
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
        };
        let pts: Vec<Point> = (0..200)
            .map(|_| Point::new(10.0 * next(), 10.0 * next()))
            .collect();
        let hull = convex_hull(&pts).unwrap();
        for p in &pts {
            assert!(hull.contains(*p), "hull must contain input point {p}");
        }
    }

    #[test]
    fn hull_is_minimal_triangle() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(0.0, 3.0),
            Point::new(0.5, 0.5),
            Point::new(1.0, 1.0),
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 3);
        assert!((hull.area() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn collinear_boundary_points_dropped() {
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0), // collinear on the bottom edge
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ];
        let hull = convex_hull(&pts).unwrap();
        assert_eq!(hull.len(), 4);
    }
}
