//! Closed balls (disks) `B(p, r)`.
//!
//! Balls are ubiquitous in the paper: the fatness parameter compares the
//! largest inscribed and smallest enclosing balls centred at a station
//! (Section 2.1); the convexity proofs intersect circles of equal received
//! energy (Lemma 3.10); and the noise-elimination step of Section 3.4
//! places a replacement station at an intersection point of two circles of
//! radius `1/√N`.

use crate::approx::Tolerance;
use crate::line::Line;
use crate::point::Point;

/// A closed ball `B(center, radius) = { q : dist(center, q) ≤ radius }`.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Ball, Point};
///
/// let b = Ball::new(Point::ORIGIN, 2.0);
/// assert!(b.contains(Point::new(1.0, 1.0)));
/// assert!(!b.contains(Point::new(2.0, 2.0)));
/// assert!((b.area() - 4.0 * std::f64::consts::PI).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ball {
    /// Centre of the ball.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Ball {
    /// Creates a ball with the given centre and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or NaN.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(
            radius >= 0.0,
            "ball radius must be non-negative, got {radius}"
        );
        Ball { center, radius }
    }

    /// True if `p` lies in the closed ball.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.dist_sq(p) <= self.radius * self.radius
    }

    /// True if `p` lies strictly inside the open ball.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        self.center.dist_sq(p) < self.radius * self.radius
    }

    /// True if `p` lies on the boundary circle within tolerance `tol`
    /// (measured as distance from the circle, not from the centre).
    #[inline]
    pub fn on_boundary(&self, p: Point, tol: f64) -> bool {
        (self.center.dist(p) - self.radius).abs() <= tol
    }

    /// Area `π·r²`.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// Perimeter (circumference) `2π·r`.
    #[inline]
    pub fn perimeter(&self) -> f64 {
        2.0 * std::f64::consts::PI * self.radius
    }

    /// True if `other` is entirely contained in `self` (closed containment).
    pub fn contains_ball(&self, other: &Ball) -> bool {
        self.center.dist(other.center) + other.radius <= self.radius + 1e-12
    }

    /// True if the two closed balls intersect.
    pub fn intersects(&self, other: &Ball) -> bool {
        self.center.dist(other.center) <= self.radius + other.radius + 1e-12
    }

    /// Intersection points of the two boundary *circles* `∂B₁ ∩ ∂B₂`.
    ///
    /// Returns 0, 1 (tangency) or 2 points. Concentric circles (even equal
    /// ones) return an empty vector: the degenerate "infinitely many points"
    /// case has no meaningful finite answer.
    ///
    /// This is the construction used in Lemma 3.10 (the replacement station
    /// `s*` lies on `∂B₁ ∩ ∂B₂`) and in the noise-elimination reduction of
    /// Section 3.4.
    ///
    /// # Examples
    ///
    /// ```
    /// use sinr_geometry::{Ball, Point};
    ///
    /// let b1 = Ball::new(Point::new(0.0, 0.0), 1.0);
    /// let b2 = Ball::new(Point::new(1.0, 0.0), 1.0);
    /// let pts = b1.circle_intersections(&b2);
    /// assert_eq!(pts.len(), 2);
    /// for p in pts {
    ///     assert!(b1.on_boundary(p, 1e-9) && b2.on_boundary(p, 1e-9));
    /// }
    /// ```
    pub fn circle_intersections(&self, other: &Ball) -> Vec<Point> {
        let d = self.center.dist(other.center);
        let tol = Tolerance::default();
        if tol.is_zero(d) {
            return Vec::new(); // concentric
        }
        let (r1, r2) = (self.radius, other.radius);
        // Too far apart or one inside the other without touching.
        if d > r1 + r2 + tol.abs || d < (r1 - r2).abs() - tol.abs {
            return Vec::new();
        }
        // Distance from self.center to the radical line along the
        // centre-to-centre axis.
        let a = (r1 * r1 - r2 * r2 + d * d) / (2.0 * d);
        let h2 = r1 * r1 - a * a;
        let u = (other.center - self.center) / d;
        let mid = self.center + u * a;
        if h2 <= tol.abs {
            // Tangent (internally or externally).
            return vec![mid];
        }
        let h = h2.sqrt();
        let n = u.perp() * h;
        vec![mid + n, mid - n]
    }

    /// Intersection points of the boundary circle with a line.
    ///
    /// Returns 0, 1 (tangency) or 2 points.
    pub fn line_intersections(&self, line: &Line) -> Vec<Point> {
        let d = line.signed_distance(self.center);
        let tol = Tolerance::default();
        let r = self.radius;
        if d.abs() > r + tol.abs {
            return Vec::new();
        }
        let foot = self.center - line.normal() * d;
        let h2 = r * r - d * d;
        if h2 <= tol.abs {
            return vec![foot];
        }
        let h = h2.sqrt();
        let dir = line.direction();
        vec![foot + dir * h, foot - dir * h]
    }

    /// The ball scaled about its own centre by factor `k ≥ 0`.
    pub fn scaled(&self, k: f64) -> Ball {
        Ball::new(self.center, self.radius * k)
    }
}

impl std::fmt::Display for Ball {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "B({}, {})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::point::Vector;

    #[test]
    fn containment() {
        let b = Ball::new(Point::ORIGIN, 1.0);
        assert!(b.contains(Point::new(1.0, 0.0))); // boundary included
        assert!(!b.contains_strict(Point::new(1.0, 0.0)));
        assert!(b.contains_strict(Point::new(0.5, 0.5)));
        assert!(!b.contains(Point::new(0.8, 0.8)));
    }

    #[test]
    fn two_point_circle_intersection() {
        let b1 = Ball::new(Point::new(0.0, 0.0), 5.0);
        let b2 = Ball::new(Point::new(6.0, 0.0), 5.0);
        let pts = b1.circle_intersections(&b2);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(b1.on_boundary(*p, 1e-9));
            assert!(b2.on_boundary(*p, 1e-9));
        }
        // symmetric about the x-axis
        assert!(approx_eq(pts[0].y, -pts[1].y));
        assert!(approx_eq(pts[0].x, 3.0));
    }

    #[test]
    fn tangent_circles() {
        // external tangency
        let b1 = Ball::new(Point::new(0.0, 0.0), 1.0);
        let b2 = Ball::new(Point::new(3.0, 0.0), 2.0);
        let pts = b1.circle_intersections(&b2);
        assert_eq!(pts.len(), 1);
        assert!(approx_eq(pts[0].x, 1.0) && approx_eq(pts[0].y, 0.0));
        // internal tangency
        let b3 = Ball::new(Point::new(0.5, 0.0), 0.5);
        let pts = b1.circle_intersections(&b3);
        assert_eq!(pts.len(), 1);
        assert!(approx_eq(pts[0].x, 1.0));
    }

    #[test]
    fn disjoint_and_nested_circles() {
        let b1 = Ball::new(Point::new(0.0, 0.0), 1.0);
        let far = Ball::new(Point::new(10.0, 0.0), 1.0);
        assert!(b1.circle_intersections(&far).is_empty());
        let nested = Ball::new(Point::new(0.1, 0.0), 0.2);
        assert!(b1.circle_intersections(&nested).is_empty());
        let concentric = Ball::new(Point::new(0.0, 0.0), 2.0);
        assert!(b1.circle_intersections(&concentric).is_empty());
    }

    #[test]
    fn ball_containment_and_overlap() {
        let big = Ball::new(Point::ORIGIN, 10.0);
        let small = Ball::new(Point::new(3.0, 0.0), 2.0);
        assert!(big.contains_ball(&small));
        assert!(!small.contains_ball(&big));
        assert!(big.intersects(&small));
        let far = Ball::new(Point::new(100.0, 0.0), 1.0);
        assert!(!big.intersects(&far));
    }

    #[test]
    fn line_circle_intersections() {
        let b = Ball::new(Point::ORIGIN, 5.0);
        let l = Line::from_points(Point::new(-10.0, 3.0), Point::new(10.0, 3.0)).unwrap();
        let pts = b.line_intersections(&l);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(b.on_boundary(*p, 1e-9));
            assert!(approx_eq(p.y, 3.0));
        }
        // tangent line
        let t = Line::from_points(Point::new(-10.0, 5.0), Point::new(10.0, 5.0)).unwrap();
        assert_eq!(b.line_intersections(&t).len(), 1);
        // missing line
        let m = Line::from_points(Point::new(-10.0, 7.0), Point::new(10.0, 7.0)).unwrap();
        assert!(b.line_intersections(&m).is_empty());
    }

    #[test]
    fn lemma_3_10_star_point_exists() {
        // Two overlapping balls centred at p1, p2 with radii 1/sqrt(E_i):
        // an intersection point of the boundary circles always exists when
        // neither ball contains the other (Proposition 3.11).
        let p1 = Point::new(0.0, 0.0);
        let p2 = Point::new(4.0, 0.0);
        let b1 = Ball::new(p1, 3.0);
        let b2 = Ball::new(p2, 2.0);
        let stars = b1.circle_intersections(&b2);
        assert!(!stars.is_empty());
        for s in stars {
            // The replacement station produces exactly the prescribed
            // energies at p1 and p2.
            assert!(approx_eq(s.dist(p1), 3.0));
            assert!(approx_eq(s.dist(p2), 2.0));
        }
    }

    #[test]
    fn scaled() {
        let b = Ball::new(Point::new(1.0, 1.0), 2.0).scaled(1.5);
        assert_eq!(b.radius, 3.0);
        assert_eq!(b.center, Point::new(1.0, 1.0));
    }

    #[test]
    #[should_panic]
    fn negative_radius_panics() {
        let _ = Ball::new(Point::ORIGIN, -1.0);
    }

    #[test]
    fn area_perimeter() {
        let b = Ball::new(Point::ORIGIN, 3.0);
        assert!(approx_eq(b.area(), 9.0 * std::f64::consts::PI));
        assert!(approx_eq(b.perimeter(), 6.0 * std::f64::consts::PI));
        let _ = Vector::ZERO; // silence unused import in some cfgs
    }
}
