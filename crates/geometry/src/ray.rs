//! Rays (half-lines).
//!
//! Rays drive the reception-zone boundary probing in `sinr-core`: by
//! Lemma 3.1 the SINR of a station is monotone along any ray emanating from
//! it, so the boundary radius in a direction `θ` is found by bisection along
//! `Ray { origin: s₀, dir: u(θ) }`.

use crate::point::{Point, Vector};
use crate::segment::Segment;

/// A ray: all points `origin + t·dir` for `t ≥ 0`.
///
/// The direction is normalised on construction.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Point, Ray, Vector};
///
/// let r = Ray::new(Point::ORIGIN, Vector::new(3.0, 0.0)).unwrap();
/// assert_eq!(r.point_at(2.0), Point::new(2.0, 0.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// The apex of the ray (`t = 0`).
    pub origin: Point,
    /// Unit direction vector.
    dir: Vector,
}

impl Ray {
    /// Creates a ray from an origin and a (not necessarily unit) direction.
    ///
    /// Returns `None` when the direction is (nearly) zero.
    pub fn new(origin: Point, dir: Vector) -> Option<Self> {
        dir.normalized().map(|dir| Ray { origin, dir })
    }

    /// Creates a ray from an origin and a polar angle (radians).
    pub fn from_angle(origin: Point, theta: f64) -> Self {
        Ray {
            origin,
            dir: Vector::from_angle(theta),
        }
    }

    /// The unit direction vector.
    #[inline]
    pub fn direction(&self) -> Vector {
        self.dir
    }

    /// The point at arc-length parameter `t ≥ 0`.
    ///
    /// Because the direction is a unit vector, `t` is the Euclidean distance
    /// from the origin of the ray.
    #[inline]
    pub fn point_at(&self, t: f64) -> Point {
        debug_assert!(t >= 0.0, "ray parameter must be non-negative");
        self.origin + self.dir * t
    }

    /// The sub-segment between parameters `t0 ≤ t1`.
    pub fn segment(&self, t0: f64, t1: f64) -> Segment {
        debug_assert!(0.0 <= t0 && t0 <= t1);
        Segment::new(self.point_at(t0), self.point_at(t1))
    }

    /// Parameter of the orthogonal projection of `p` onto the supporting
    /// line (may be negative if `p` is behind the ray).
    pub fn project_param(&self, p: Point) -> f64 {
        (p - self.origin).dot(self.dir)
    }
}

impl std::fmt::Display for Ray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} + t·{}", self.origin, self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn construction_normalises() {
        let r = Ray::new(Point::new(1.0, 1.0), Vector::new(0.0, -5.0)).unwrap();
        assert!(approx_eq(r.direction().norm(), 1.0));
        assert_eq!(r.point_at(2.0), Point::new(1.0, -1.0));
        assert!(Ray::new(Point::ORIGIN, Vector::ZERO).is_none());
    }

    #[test]
    fn from_angle_quadrants() {
        use std::f64::consts::{FRAC_PI_2, PI};
        let o = Point::ORIGIN;
        let east = Ray::from_angle(o, 0.0).point_at(1.0);
        let north = Ray::from_angle(o, FRAC_PI_2).point_at(1.0);
        let west = Ray::from_angle(o, PI).point_at(1.0);
        assert!(approx_eq(east.x, 1.0) && approx_eq(east.y, 0.0));
        assert!(approx_eq(north.x, 0.0) && approx_eq(north.y, 1.0));
        assert!(approx_eq(west.x, -1.0) && approx_eq(west.y, 0.0));
    }

    #[test]
    fn param_is_arclength() {
        let r = Ray::from_angle(Point::new(2.0, 3.0), 0.7);
        for &t in &[0.0, 0.5, 1.7, 10.0] {
            assert!(approx_eq(r.point_at(t).dist(r.origin), t));
        }
    }

    #[test]
    fn projection() {
        let r = Ray::from_angle(Point::ORIGIN, 0.0);
        assert!(approx_eq(r.project_param(Point::new(3.0, 4.0)), 3.0));
        assert!(r.project_param(Point::new(-2.0, 1.0)) < 0.0);
    }

    #[test]
    fn sub_segment() {
        let r = Ray::from_angle(Point::ORIGIN, 0.0);
        let s = r.segment(1.0, 3.0);
        assert_eq!(s.a, Point::new(1.0, 0.0));
        assert_eq!(s.b, Point::new(3.0, 0.0));
        assert!(approx_eq(s.length(), 2.0));
    }
}
