//! The `γ`-spaced grid of Section 5.1.
//!
//! The approximate point-location structure (Theorem 3) imposes a grid
//! `G_γ` on the plane, *aligned so that the station `s` is a grid vertex*.
//! Cells partition the plane with the paper's exact tie-breaking:
//!
//! > "each cell contains all points on its south edge except its south east
//! > corner and all points on its west edge except its north west corner
//! > (the cell does contain its south west corner)"
//!
//! i.e. cell `(i, j)` is the half-open square
//! `[x_i, x_{i+1}) × [y_j, y_{j+1})`. The *9-cell* `♯C` of a cell `C` is
//! the 3×3 block of cells centred at `C`.

use crate::bbox::BBox;
use crate::point::Point;
use crate::segment::Segment;

/// Integer coordinates of a grid cell (column `i`, row `j`).
///
/// Cell `(i, j)` covers `[origin.x + i·γ, origin.x + (i+1)·γ) ×
/// [origin.y + j·γ, origin.y + (j+1)·γ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId {
    /// Column index (x direction).
    pub i: i64,
    /// Row index (y direction).
    pub j: i64,
}

impl CellId {
    /// Creates a cell id.
    pub const fn new(i: i64, j: i64) -> Self {
        CellId { i, j }
    }

    /// The 8 neighbouring cells plus `self` — the paper's 9-cell `♯C`.
    pub fn nine_cell(self) -> NineCell {
        NineCell { center: self, k: 0 }
    }

    /// The 8 neighbouring cells (excluding `self`).
    pub fn neighbors(self) -> impl Iterator<Item = CellId> {
        let c = self;
        (-1..=1).flat_map(move |dj| {
            (-1..=1).filter_map(move |di| {
                if di == 0 && dj == 0 {
                    None
                } else {
                    Some(CellId::new(c.i + di, c.j + dj))
                }
            })
        })
    }

    /// Chebyshev (L∞) distance between cell indices.
    pub fn chebyshev(self, other: CellId) -> i64 {
        (self.i - other.i).abs().max((self.j - other.j).abs())
    }
}

impl std::fmt::Display for CellId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C({}, {})", self.i, self.j)
    }
}

/// Iterator over the 9 cells of a 9-cell block (row-major, SW to NE).
#[derive(Debug, Clone)]
pub struct NineCell {
    center: CellId,
    k: u8,
}

impl Iterator for NineCell {
    type Item = CellId;

    fn next(&mut self) -> Option<CellId> {
        if self.k >= 9 {
            return None;
        }
        let di = (self.k % 3) as i64 - 1;
        let dj = (self.k / 3) as i64 - 1;
        self.k += 1;
        Some(CellId::new(self.center.i + di, self.center.j + dj))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (9 - self.k) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for NineCell {}

/// One of the four edges of a grid cell.
///
/// Edges are oriented so that traversing `(a, b)` keeps the cell on a
/// consistent side; for the segment tests only the geometry matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridEdge {
    /// The south (bottom) edge.
    South,
    /// The east (right) edge.
    East,
    /// The north (top) edge.
    North,
    /// The west (left) edge.
    West,
}

impl GridEdge {
    /// All four edges.
    pub const ALL: [GridEdge; 4] = [
        GridEdge::South,
        GridEdge::East,
        GridEdge::North,
        GridEdge::West,
    ];
}

/// A `γ`-spaced grid aligned to a given origin vertex (paper: "the grid is
/// aligned so that the point `s` is a grid vertex").
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Grid, Point, CellId};
///
/// let g = Grid::new(Point::ORIGIN, 0.5);
/// assert_eq!(g.cell_of(Point::new(0.2, 0.7)), CellId::new(0, 1));
/// // South-west corner belongs to the cell …
/// assert_eq!(g.cell_of(Point::new(0.5, 0.5)), CellId::new(1, 1));
/// // … and the cell's box spans one γ in each direction.
/// assert_eq!(g.cell_bbox(CellId::new(1, 1)).width(), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid {
    origin: Point,
    gamma: f64,
}

impl Grid {
    /// Creates a grid with spacing `gamma` aligned so `origin` is a vertex.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is not strictly positive and finite.
    pub fn new(origin: Point, gamma: f64) -> Self {
        assert!(
            gamma > 0.0 && gamma.is_finite(),
            "grid spacing must be positive, got {gamma}"
        );
        Grid { origin, gamma }
    }

    /// The grid spacing `γ`.
    #[inline]
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The alignment origin (a grid vertex).
    #[inline]
    pub fn origin(&self) -> Point {
        self.origin
    }

    /// The cell containing `p` under the paper's half-open convention.
    pub fn cell_of(&self, p: Point) -> CellId {
        CellId::new(
            ((p.x - self.origin.x) / self.gamma).floor() as i64,
            ((p.y - self.origin.y) / self.gamma).floor() as i64,
        )
    }

    /// The grid vertex at integer coordinates `(i, j)`.
    pub fn vertex(&self, i: i64, j: i64) -> Point {
        Point::new(
            self.origin.x + i as f64 * self.gamma,
            self.origin.y + j as f64 * self.gamma,
        )
    }

    /// The closed bounding box of a cell.
    ///
    /// Note the *box* is closed even though the *cell* (as a point set in
    /// the partition) is half-open; the box is what segment tests and area
    /// accounting need.
    pub fn cell_bbox(&self, c: CellId) -> BBox {
        BBox::new(self.vertex(c.i, c.j), self.vertex(c.i + 1, c.j + 1))
    }

    /// The centre point of a cell.
    pub fn cell_center(&self, c: CellId) -> Point {
        self.vertex(c.i, c.j) + crate::point::Vector::new(0.5 * self.gamma, 0.5 * self.gamma)
    }

    /// One edge of a cell as a segment.
    pub fn cell_edge(&self, c: CellId, e: GridEdge) -> Segment {
        let sw = self.vertex(c.i, c.j);
        let se = self.vertex(c.i + 1, c.j);
        let ne = self.vertex(c.i + 1, c.j + 1);
        let nw = self.vertex(c.i, c.j + 1);
        match e {
            GridEdge::South => Segment::new(sw, se),
            GridEdge::East => Segment::new(se, ne),
            GridEdge::North => Segment::new(nw, ne),
            GridEdge::West => Segment::new(sw, nw),
        }
    }

    /// The four corner vertices of a cell: `[SW, SE, NE, NW]`.
    pub fn cell_corners(&self, c: CellId) -> [Point; 4] {
        [
            self.vertex(c.i, c.j),
            self.vertex(c.i + 1, c.j),
            self.vertex(c.i + 1, c.j + 1),
            self.vertex(c.i, c.j + 1),
        ]
    }

    /// Area of a single cell, `γ²`.
    #[inline]
    pub fn cell_area(&self) -> f64 {
        self.gamma * self.gamma
    }

    /// Iterates over all cells whose boxes intersect the given window.
    pub fn cells_in(&self, window: &BBox) -> impl Iterator<Item = CellId> + '_ {
        let lo = self.cell_of(window.min);
        let hi = self.cell_of(window.max);
        (lo.j..=hi.j).flat_map(move |j| (lo.i..=hi.i).map(move |i| CellId::new(i, j)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_of_tie_breaking() {
        let g = Grid::new(Point::ORIGIN, 1.0);
        // interior point
        assert_eq!(g.cell_of(Point::new(0.5, 0.5)), CellId::new(0, 0));
        // south-west corner belongs to the cell
        assert_eq!(g.cell_of(Point::new(1.0, 1.0)), CellId::new(1, 1));
        // south edge (except SE corner) belongs to the cell
        assert_eq!(g.cell_of(Point::new(1.5, 1.0)), CellId::new(1, 1));
        // west edge (except NW corner) belongs to the cell
        assert_eq!(g.cell_of(Point::new(1.0, 1.5)), CellId::new(1, 1));
        // the SE corner belongs to the eastern neighbour
        assert_eq!(g.cell_of(Point::new(2.0, 1.0)), CellId::new(2, 1));
        // the NW corner belongs to the northern neighbour
        assert_eq!(g.cell_of(Point::new(1.0, 2.0)), CellId::new(1, 2));
        // negative coordinates
        assert_eq!(g.cell_of(Point::new(-0.5, -0.5)), CellId::new(-1, -1));
    }

    #[test]
    fn origin_is_a_vertex() {
        let o = Point::new(3.25, -1.5);
        let g = Grid::new(o, 0.25);
        assert_eq!(g.vertex(0, 0), o);
        assert_eq!(g.cell_of(o), CellId::new(0, 0));
    }

    #[test]
    fn cell_bbox_roundtrip() {
        let g = Grid::new(Point::new(0.5, 0.5), 2.0);
        let c = CellId::new(3, -2);
        let bb = g.cell_bbox(c);
        assert_eq!(bb.width(), 2.0);
        assert_eq!(bb.height(), 2.0);
        assert_eq!(g.cell_of(bb.center()), c);
        assert_eq!(g.cell_center(c), bb.center());
        assert_eq!(g.cell_area(), 4.0);
    }

    #[test]
    fn nine_cell_block() {
        let c = CellId::new(5, 5);
        let cells: Vec<CellId> = c.nine_cell().collect();
        assert_eq!(cells.len(), 9);
        assert!(cells.contains(&c));
        for cell in &cells {
            assert!(c.chebyshev(*cell) <= 1);
        }
        // all distinct
        let mut sorted = cells.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
    }

    #[test]
    fn neighbors_excludes_self() {
        let c = CellId::new(0, 0);
        let n: Vec<CellId> = c.neighbors().collect();
        assert_eq!(n.len(), 8);
        assert!(!n.contains(&c));
    }

    #[test]
    fn cell_edges_bound_the_cell() {
        let g = Grid::new(Point::ORIGIN, 1.0);
        let c = CellId::new(2, 3);
        let bb = g.cell_bbox(c);
        for e in GridEdge::ALL {
            let seg = g.cell_edge(c, e);
            assert!(bb.contains(seg.a) && bb.contains(seg.b));
            assert_eq!(seg.length(), 1.0);
        }
        // corners agree with bbox corners
        let corners = g.cell_corners(c);
        assert_eq!(corners[0], bb.min);
        assert_eq!(corners[2], bb.max);
    }

    #[test]
    fn cells_in_window() {
        let g = Grid::new(Point::ORIGIN, 1.0);
        let window = BBox::new(Point::new(0.1, 0.1), Point::new(2.9, 1.9));
        let cells: Vec<CellId> = g.cells_in(&window).collect();
        assert_eq!(cells.len(), 6); // 3 columns × 2 rows
        assert!(cells.contains(&CellId::new(0, 0)));
        assert!(cells.contains(&CellId::new(2, 1)));
    }

    #[test]
    #[should_panic]
    fn zero_gamma_panics() {
        let _ = Grid::new(Point::ORIGIN, 0.0);
    }

    #[test]
    fn partition_property_sampled() {
        // Every sampled point belongs to exactly one cell, and that cell's
        // closed box contains it.
        let g = Grid::new(Point::new(-0.3, 0.7), 0.37);
        let mut state: u64 = 42;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 20.0 - 10.0
        };
        for _ in 0..500 {
            let p = Point::new(next(), next());
            let c = g.cell_of(p);
            assert!(
                g.cell_bbox(c).contains(p),
                "cell box must contain its point"
            );
        }
    }
}
