//! Similarity transforms: rotation + uniform scaling + translation.
//!
//! Lemma 2.3 of the paper states that applying a map `f` consisting of
//! rotation, translation and scaling by `σ > 0` to a network (and dividing
//! the background noise by `σ²`) leaves every SINR value unchanged:
//! `SINR_A(s_i, p) = SINR_{f(A)}(f(s_i), f(p))`.
//!
//! The convexity and fatness proofs use this repeatedly to normalise
//! configurations ("assume `s₀` is at the origin and the line is `y = 1`").
//! [`Similarity`] is the code form of that `f`, and `sinr-core` exposes the
//! corresponding network transform.

use crate::point::{Point, Vector};

/// An orientation-preserving similarity of the plane:
/// `f(p) = σ·R(θ)·p + t`.
///
/// # Examples
///
/// ```
/// use sinr_geometry::{Point, Similarity, Vector};
///
/// // Move s0 to the origin and rotate p onto the positive x-axis —
/// // the normalisation used throughout Section 3 of the paper.
/// let s0 = Point::new(3.0, 4.0);
/// let p = Point::new(3.0, 6.0);
/// let f = Similarity::normalizing(s0, p).unwrap();
/// let fp = f.apply(p);
/// assert!((f.apply(s0).dist(Point::ORIGIN)) < 1e-12);
/// assert!((fp.y).abs() < 1e-12 && fp.x > 0.0);
/// // Distances scale uniformly by the scale factor (here 1).
/// assert!((fp.dist(Point::ORIGIN) - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Similarity {
    /// cos θ · σ
    m00: f64,
    /// −sin θ · σ
    m01: f64,
    /// translation
    t: Vector,
    /// σ (cached for scale queries)
    scale: f64,
}

impl Similarity {
    /// The identity transform.
    pub fn identity() -> Self {
        Similarity {
            m00: 1.0,
            m01: 0.0,
            t: Vector::ZERO,
            scale: 1.0,
        }
    }

    /// A pure translation by `t`.
    pub fn translation(t: Vector) -> Self {
        Similarity {
            m00: 1.0,
            m01: 0.0,
            t,
            scale: 1.0,
        }
    }

    /// A rotation by `theta` radians about the origin.
    pub fn rotation(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Similarity {
            m00: c,
            m01: -s,
            t: Vector::ZERO,
            scale: 1.0,
        }
    }

    /// A uniform scaling about the origin by `sigma > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn scaling(sigma: f64) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "scale must be positive, got {sigma}"
        );
        Similarity {
            m00: sigma,
            m01: 0.0,
            t: Vector::ZERO,
            scale: sigma,
        }
    }

    /// General constructor: rotation by `theta`, then scaling by `sigma`,
    /// then translation by `t`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is not strictly positive and finite.
    pub fn new(theta: f64, sigma: f64, t: Vector) -> Self {
        assert!(
            sigma > 0.0 && sigma.is_finite(),
            "scale must be positive, got {sigma}"
        );
        let (s, c) = theta.sin_cos();
        Similarity {
            m00: c * sigma,
            m01: -s * sigma,
            t,
            scale: sigma,
        }
    }

    /// The normalising map of the paper's proofs: sends `anchor` to the
    /// origin and rotates so that `toward` lands on the positive x-axis.
    /// No scaling is applied.
    ///
    /// Returns `None` when `anchor == toward` (no direction to align).
    pub fn normalizing(anchor: Point, toward: Point) -> Option<Self> {
        let d = (toward - anchor).normalized()?;
        let theta = -d.angle();
        let rot = Similarity::rotation(theta);
        let shifted = rot.apply(anchor);
        Some(Similarity {
            t: -shifted.to_vector(),
            ..rot
        })
    }

    /// The scale factor `σ`.
    #[inline]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Applies the transform to a point.
    #[inline]
    pub fn apply(&self, p: Point) -> Point {
        // R(θ)·σ matrix is [[m00, m01], [−m01, m00]].
        Point::new(
            self.m00 * p.x + self.m01 * p.y + self.t.x,
            -self.m01 * p.x + self.m00 * p.y + self.t.y,
        )
    }

    /// Applies the transform to a direction vector (translation ignored).
    #[inline]
    pub fn apply_vector(&self, v: Vector) -> Vector {
        Vector::new(
            self.m00 * v.x + self.m01 * v.y,
            -self.m01 * v.x + self.m00 * v.y,
        )
    }

    /// Composition `self ∘ other` (apply `other` first, then `self`).
    pub fn compose(&self, other: &Similarity) -> Similarity {
        // self(other(p)) = M_s (M_o p + t_o) + t_s
        let m00 = self.m00 * other.m00 + self.m01 * -other.m01;
        let m01 = self.m00 * other.m01 + self.m01 * other.m00;
        let t = self.apply_vector(other.t) + self.t;
        Similarity {
            m00,
            m01,
            t,
            scale: self.scale * other.scale,
        }
    }

    /// The inverse transform.
    pub fn inverse(&self) -> Similarity {
        let s2 = self.scale * self.scale;
        // Inverse of [[a, b], [−b, a]] is [[a, −b], [b, a]] / (a² + b²).
        let a = self.m00 / s2;
        let b = self.m01 / s2;
        let inv = Similarity {
            m00: a,
            m01: -b,
            t: Vector::ZERO,
            scale: 1.0 / self.scale,
        };
        let t = -inv.apply_vector(self.t);
        Similarity { t, ..inv }
    }
}

impl Default for Similarity {
    fn default() -> Self {
        Similarity::identity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn assert_pt(p: Point, q: Point) {
        assert!(approx_eq(p.x, q.x) && approx_eq(p.y, q.y), "{p} != {q}");
    }

    #[test]
    fn identity_and_translation() {
        let id = Similarity::identity();
        let p = Point::new(2.0, -3.0);
        assert_pt(id.apply(p), p);
        let tr = Similarity::translation(Vector::new(1.0, 1.0));
        assert_pt(tr.apply(p), Point::new(3.0, -2.0));
    }

    #[test]
    fn rotation_quarter_turn() {
        let rot = Similarity::rotation(std::f64::consts::FRAC_PI_2);
        assert_pt(rot.apply(Point::new(1.0, 0.0)), Point::new(0.0, 1.0));
        assert_pt(rot.apply(Point::new(0.0, 1.0)), Point::new(-1.0, 0.0));
    }

    #[test]
    fn scaling_scales_distances() {
        let f = Similarity::scaling(3.0);
        let p = Point::new(1.0, 2.0);
        let q = Point::new(4.0, 6.0);
        assert!(approx_eq(f.apply(p).dist(f.apply(q)), 3.0 * p.dist(q)));
        assert!(approx_eq(f.scale(), 3.0));
    }

    #[test]
    fn general_distance_scaling() {
        // Lemma 2.3 precondition: any similarity scales all distances by σ.
        let f = Similarity::new(0.83, 2.5, Vector::new(-4.0, 7.0));
        let p = Point::new(1.3, -0.7);
        let q = Point::new(-2.0, 5.5);
        assert!(approx_eq(f.apply(p).dist(f.apply(q)), 2.5 * p.dist(q)));
    }

    #[test]
    fn inverse_roundtrip() {
        let f = Similarity::new(1.1, 0.7, Vector::new(3.0, -2.0));
        let g = f.inverse();
        for &(x, y) in &[(0.0, 0.0), (1.0, 2.0), (-5.0, 3.3)] {
            let p = Point::new(x, y);
            assert_pt(g.apply(f.apply(p)), p);
            assert_pt(f.apply(g.apply(p)), p);
        }
        assert!(approx_eq(g.scale(), 1.0 / 0.7));
    }

    #[test]
    fn composition_matches_sequential_application() {
        let f = Similarity::new(0.4, 2.0, Vector::new(1.0, 0.0));
        let g = Similarity::new(-1.2, 0.5, Vector::new(0.0, 3.0));
        let fg = f.compose(&g);
        let p = Point::new(2.0, -1.0);
        assert_pt(fg.apply(p), f.apply(g.apply(p)));
        assert!(approx_eq(fg.scale(), 1.0));
    }

    #[test]
    fn normalizing_map() {
        let s0 = Point::new(-2.0, 5.0);
        let p = Point::new(1.0, 9.0);
        let f = Similarity::normalizing(s0, p).unwrap();
        assert_pt(f.apply(s0), Point::ORIGIN);
        let fp = f.apply(p);
        assert!(fp.x > 0.0 && approx_eq(fp.y, 0.0));
        assert!(approx_eq(fp.x, s0.dist(p))); // no scaling
        assert!(Similarity::normalizing(s0, s0).is_none());
    }

    #[test]
    #[should_panic]
    fn zero_scale_panics() {
        let _ = Similarity::scaling(0.0);
    }

    #[test]
    fn vectors_ignore_translation() {
        let f = Similarity::new(0.0, 1.0, Vector::new(100.0, 100.0));
        let v = Vector::new(1.0, 2.0);
        assert!(approx_eq(f.apply_vector(v).x, 1.0));
        assert!(approx_eq(f.apply_vector(v).y, 2.0));
    }
}
