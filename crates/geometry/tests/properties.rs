//! Property-based tests for the geometry kernel.

use proptest::prelude::*;
use sinr_geometry::{
    convex_hull, BBox, Ball, ConvexPolygon, Grid, Line, Point, Segment, Similarity, Vector,
};

fn pt() -> impl Strategy<Value = Point> {
    ((-100i32..100), (-100i32..100)).prop_map(|(x, y)| Point::new(x as f64 / 10.0, y as f64 / 10.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The bisector ("separation line") is the equidistance locus and its
    /// sign convention is "negative ⇒ closer to the first point".
    #[test]
    fn bisector_separates(p in pt(), q in pt(), probe in pt()) {
        prop_assume!(p.dist(q) > 1e-6);
        let line = Line::bisector(p, q).unwrap();
        let d = line.signed_distance(probe);
        let dp = probe.dist(p);
        let dq = probe.dist(q);
        if d < -1e-9 {
            prop_assert!(dp < dq);
        } else if d > 1e-9 {
            prop_assert!(dp > dq);
        } else {
            prop_assert!((dp - dq).abs() < 1e-6);
        }
    }

    /// Segment closest-point is no farther than both endpoints and the
    /// midpoint.
    #[test]
    fn segment_closest_point_minimal(a in pt(), b in pt(), probe in pt()) {
        let seg = Segment::new(a, b);
        let d = seg.dist_to_point(probe);
        prop_assert!(d <= probe.dist(a) + 1e-12);
        prop_assert!(d <= probe.dist(b) + 1e-12);
        prop_assert!(d <= probe.dist(seg.midpoint()) + 1e-12);
    }

    /// The convex hull contains every input point and is no larger than
    /// the bounding box.
    #[test]
    fn hull_sandwich(points in prop::collection::vec(pt(), 3..40)) {
        let Some(hull) = convex_hull(&points) else { return Ok(()); };
        for p in &points {
            prop_assert!(hull.contains(*p), "hull must contain {p}");
        }
        let bb = BBox::from_points(points.iter().copied()).unwrap();
        prop_assert!(hull.area() <= bb.area() + 1e-9);
    }

    /// Clipping by a half-plane never increases the area, and clipping by
    /// a half-plane containing the polygon leaves it unchanged.
    #[test]
    fn clip_monotone(points in prop::collection::vec(pt(), 3..20), a in pt(), b in pt()) {
        prop_assume!(a.dist(b) > 1e-6);
        let Some(hull) = convex_hull(&points) else { return Ok(()); };
        let line = Line::from_points(a, b).unwrap();
        if let Some(clipped) = hull.clip_halfplane(&line) {
            prop_assert!(clipped.area() <= hull.area() + 1e-9);
        }
        // A line far below everything keeps the polygon whole.
        let far = Line::new(0.0, 1.0, 1e6).unwrap().flipped(); // y ≥ −1e6 side is kept: −y −1e6 ≤ 0
        if let Some(same) = hull.clip_halfplane(&far) {
            prop_assert!((same.area() - hull.area()).abs() < 1e-6);
        }
    }

    /// Circle–circle intersections lie on both circles.
    #[test]
    fn circle_intersections_on_both(c1 in pt(), r1 in 0.1f64..5.0, c2 in pt(), r2 in 0.1f64..5.0) {
        let b1 = Ball::new(c1, r1);
        let b2 = Ball::new(c2, r2);
        for p in b1.circle_intersections(&b2) {
            prop_assert!(b1.on_boundary(p, 1e-6), "{p} not on first circle");
            prop_assert!(b2.on_boundary(p, 1e-6), "{p} not on second circle");
        }
    }

    /// Similarity maps scale all distances uniformly and invert exactly.
    #[test]
    fn similarity_distance_scaling(
        theta in 0.0f64..std::f64::consts::TAU,
        sigma in 0.1f64..10.0,
        tx in -5.0f64..5.0, ty in -5.0f64..5.0,
        p in pt(), q in pt(),
    ) {
        let f = Similarity::new(theta, sigma, Vector::new(tx, ty));
        let scaled = f.apply(p).dist(f.apply(q));
        prop_assert!((scaled - sigma * p.dist(q)).abs() < 1e-7 * (1.0 + scaled));
        let inv = f.inverse();
        let back = inv.apply(f.apply(p));
        prop_assert!(back.dist(p) < 1e-7);
    }

    /// Grid partition: every point belongs to exactly one cell whose box
    /// contains it, and cell/9-cell relations are consistent.
    #[test]
    fn grid_partition(origin in pt(), gamma in 0.05f64..3.0, p in pt()) {
        let g = Grid::new(origin, gamma);
        let c = g.cell_of(p);
        prop_assert!(g.cell_bbox(c).contains(p));
        // the half-open convention: p is NOT in the east/north neighbour
        let east = sinr_geometry::CellId::new(c.i + 1, c.j);
        prop_assert!(p.x < g.cell_bbox(east).min.x + gamma);
        // 9-cell of c contains c and has 9 distinct members
        let nine: Vec<_> = c.nine_cell().collect();
        prop_assert_eq!(nine.len(), 9);
        prop_assert!(nine.contains(&c));
    }

    /// Polygon area is invariant under vertex rotation of the ring.
    #[test]
    fn polygon_ring_rotation(points in prop::collection::vec(pt(), 3..15), k in 0usize..14) {
        let Some(hull) = convex_hull(&points) else { return Ok(()); };
        let verts = hull.vertices().to_vec();
        let k = k % verts.len();
        let rotated: Vec<Point> = verts[k..].iter().chain(verts[..k].iter()).copied().collect();
        let rot = ConvexPolygon::new(rotated).expect("rotation preserves convexity");
        prop_assert!((rot.area() - hull.area()).abs() < 1e-9);
        prop_assert!((rot.perimeter() - hull.perimeter()).abs() < 1e-9);
    }

    /// Ball line intersections lie on the circle and on the line.
    #[test]
    fn ball_line_intersections(c in pt(), r in 0.1f64..5.0, a in pt(), b in pt()) {
        prop_assume!(a.dist(b) > 1e-6);
        let ball = Ball::new(c, r);
        let line = Line::from_points(a, b).unwrap();
        for p in ball.line_intersections(&line) {
            prop_assert!(ball.on_boundary(p, 1e-6));
            prop_assert!(line.distance(p) < 1e-6);
        }
    }
}
