//! The tiled executor's no-silent-reorder contract.
//!
//! PR 5's spatially-coherent tiled batch executor (`sinr_core::tile`)
//! reorders *scheduling* — Morton tiles, shared candidate pruning,
//! certified decisions — but must never reorder or change *answers*.
//! These suites pin exactly that, at scales where the pruned path
//! actually engages (`TILED_MIN_STATIONS` stations and
//! `PARALLEL_BATCH_THRESHOLD` points and beyond):
//!
//! * **tiled ≡ serial** — `locate_batch` answers are bit-identical to a
//!   serial loop of `locate` calls, for every backend and every
//!   supported SIMD kernel (including `avx512` where the CPU has it);
//! * **permutation invariance** — running the same point set through
//!   `locate_batch`/`sinr_batch` in any input order yields bit-identical
//!   per-point answers (`f64` compared by bits);
//! * the certified executor driven directly with hostile configs (tiny
//!   tiles, forced engagement) still matches the serial kernel, and its
//!   stats prove the pruned path ran (candidate sets strictly smaller
//!   than the network);
//! * non-finite query points take the wholesale-fallback tile and still
//!   match the serial path.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::PARALLEL_BATCH_THRESHOLD;
use sinr_core::engine::{ExactScan, Located, QueryEngine, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::tile::{self, Select, TileConfig, TILED_MIN_STATIONS};
use sinr_core::{gen, Network, SinrEvaluator, StationId};
use sinr_geometry::Point;

/// A random network big enough to engage the pruned tiled path.
fn big_network(seed: u64, n: usize, uniform: bool) -> Network {
    let half = 2.0 * (n as f64).sqrt();
    if uniform {
        gen::random_uniform_network(seed, n, half, 0.01, 2.0).unwrap()
    } else {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Network::builder().background_noise(0.01).threshold(1.6);
        let mut placed = 0;
        while placed < n {
            let p = Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half));
            b = b.station_with_power(p, rng.gen_range(0.5..2.0));
            placed += 1;
        }
        b.build().unwrap()
    }
}

/// A query batch mixing area coverage, station positions (the `{sᵢ}`
/// clause and `d² = 0` kernels), near-boundary jitter and duplicates.
fn query_batch(net: &Network, len: usize, seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let half = 2.2 * (net.len() as f64).sqrt();
    let mut pts = Vec::with_capacity(len);
    for i in net.ids().take(64) {
        let s = net.position(i);
        pts.push(s);
        // Near-station jitter lands inside/near zones.
        pts.push(Point::new(s.x + rng.gen_range(-0.5..0.5), s.y + 1e-3));
    }
    while pts.len() < len {
        pts.push(Point::new(
            rng.gen_range(-half..half),
            rng.gen_range(-half..half),
        ));
    }
    pts.truncate(len);
    pts
}

fn assert_tiled_equals_serial<E: QueryEngine>(name: &str, engine: &E, points: &[Point]) {
    let mut batch = vec![Located::Silent; points.len()];
    engine.locate_batch(points, &mut batch);
    for (p, got) in points.iter().zip(&batch) {
        assert_eq!(
            *got,
            engine.locate(*p),
            "{name}: batch/serial mismatch at {p}"
        );
    }
}

#[test]
fn tiled_locate_batch_equals_serial_for_every_backend_and_kernel() {
    for (seed, uniform) in [(11u64, true), (12, false)] {
        let net = big_network(seed, TILED_MIN_STATIONS + 72, uniform);
        let points = query_batch(&net, PARALLEL_BATCH_THRESHOLD + 513, seed ^ 0xFF);
        assert_tiled_equals_serial("ExactScan", &ExactScan::new(&net), &points);
        assert_tiled_equals_serial("VoronoiAssisted", &VoronoiAssisted::new(&net), &points);
        for kernel in SimdKernel::ALL {
            if !kernel.is_supported() {
                continue;
            }
            let simd = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            assert_tiled_equals_serial(kernel.name(), &simd, &points);
        }
    }
}

#[test]
fn tiled_locate_batch_handles_non_finite_points() {
    let net = big_network(21, TILED_MIN_STATIONS + 8, true);
    let mut points = query_batch(&net, PARALLEL_BATCH_THRESHOLD + 64, 0xA5);
    points[17] = Point::new(f64::NAN, 0.0);
    points[PARALLEL_BATCH_THRESHOLD] = Point::new(f64::INFINITY, -3.0);
    points[100] = Point::new(2.0, f64::NEG_INFINITY);
    for kernel in SimdKernel::ALL.into_iter().filter(|k| k.is_supported()) {
        let engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
        assert_tiled_equals_serial(kernel.name(), &engine, &points);
    }
    assert_tiled_equals_serial("ExactScan", &ExactScan::new(&net), &points);
}

#[test]
fn locate_batch_is_permutation_invariant_for_every_backend_and_kernel() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(777);
    for uniform in [true, false] {
        let net = big_network(31 + uniform as u64, TILED_MIN_STATIONS + 40, uniform);
        let points = query_batch(&net, PARALLEL_BATCH_THRESHOLD + 321, 0xBEEF);
        // A deterministic shuffle of the same point set.
        let mut perm: Vec<usize> = (0..points.len()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<Point> = perm.iter().map(|&i| points[i]).collect();

        let engines: Vec<(String, Box<dyn QueryEngine>)> = {
            let mut v: Vec<(String, Box<dyn QueryEngine>)> = vec![
                ("exact_scan".into(), Box::new(ExactScan::new(&net))),
                (
                    "voronoi_assisted".into(),
                    Box::new(VoronoiAssisted::new(&net)),
                ),
            ];
            for kernel in SimdKernel::ALL.into_iter().filter(|k| k.is_supported()) {
                v.push((
                    format!("simd_{}", kernel.name()),
                    Box::new(SimdScan::with_kernel(SinrEvaluator::new(&net), kernel)),
                ));
            }
            v
        };
        for (name, engine) in &engines {
            let mut base = vec![Located::Silent; points.len()];
            engine.locate_batch(&points, &mut base);
            let mut shuf = vec![Located::Silent; points.len()];
            engine.locate_batch(&shuffled, &mut shuf);
            for (slot, &orig) in perm.iter().enumerate() {
                assert_eq!(
                    shuf[slot], base[orig],
                    "{name}: ordering changed the answer for point {orig} ({})",
                    points[orig]
                );
            }
        }
    }
}

#[test]
fn sinr_batch_is_permutation_invariant_bit_for_bit() {
    let net = big_network(41, TILED_MIN_STATIONS + 16, true);
    let points = query_batch(&net, PARALLEL_BATCH_THRESHOLD + 100, 0xCAFE);
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut perm: Vec<usize> = (0..points.len()).collect();
    for i in (1..perm.len()).rev() {
        perm.swap(i, rng.gen_range(0..=i));
    }
    let shuffled: Vec<Point> = perm.iter().map(|&i| points[i]).collect();
    let eval = SinrEvaluator::new(&net);
    let station = StationId(3);
    let mut base = vec![0.0f64; points.len()];
    eval.sinr_batch(station, &points, &mut base);
    let mut shuf = vec![0.0f64; points.len()];
    eval.sinr_batch(station, &shuffled, &mut shuf);
    for (slot, &orig) in perm.iter().enumerate() {
        assert_eq!(
            shuf[slot].to_bits(),
            base[orig].to_bits(),
            "sinr value for point {orig} changed under reordering"
        );
        // And bit-identical to the serial call.
        assert_eq!(
            base[orig].to_bits(),
            eval.sinr(station, points[orig]).to_bits()
        );
    }
}

/// Driving the executor directly with hostile configs: tiny tiles and
/// forced engagement on small batches must still match the serial
/// kernel bit-for-bit, and the stats must show real pruning.
#[test]
fn direct_executor_matches_serial_under_custom_configs() {
    let net = big_network(51, 300, true);
    let eval = SinrEvaluator::new(&net);
    let points = query_batch(&net, 1500, 0xD00D);
    for tile_points in [1usize, 7, 64, 512, 4096] {
        let cfg = TileConfig {
            tile_points,
            min_stations: 2,
            min_points: 1,
        };
        let mut out = vec![Located::Silent; points.len()];
        let stats = tile::locate_batch_tiled(
            &eval,
            SimdKernel::detect(),
            Select::MaxEnergy,
            &points,
            &mut out,
            &cfg,
            |p| eval.locate(p),
        );
        assert_eq!(stats.points as usize, points.len());
        assert_eq!(stats.tiles as usize, points.len().div_ceil(tile_points));
        for (p, got) in points.iter().zip(&out) {
            assert_eq!(*got, eval.locate(*p), "tile_points={tile_points} at {p}");
        }
        // With 1500 points, tiles of ≤ 64 points have bounding boxes
        // small enough (relative to the window) that pruning must
        // engage; bigger tiles may legitimately cover too much area.
        if tile_points <= 64 {
            assert!(stats.pruned_tiles > 0, "no tile pruned at {tile_points}");
            let mean = stats.mean_candidates().unwrap();
            assert!(
                mean < net.len() as f64 * 0.9,
                "candidate sets not smaller than the network: {mean}"
            );
        }
    }
}

/// Nearest-mode certification against the kd-tree serial path, driven
/// directly (uniform power only — the Observation-2.2 precondition).
#[test]
fn direct_executor_nearest_matches_tree_path() {
    let net = big_network(61, 256, true);
    let engine = VoronoiAssisted::new(&net);
    let eval = SinrEvaluator::new(&net);
    let points = query_batch(&net, 3000, 0xF00);
    let cfg = TileConfig {
        tile_points: 128,
        min_stations: 2,
        min_points: 1,
    };
    let mut out = vec![Located::Silent; points.len()];
    tile::locate_batch_tiled(
        &eval,
        SimdKernel::detect(),
        Select::Nearest,
        &points,
        &mut out,
        &cfg,
        |p| engine.locate(p),
    );
    for (p, got) in points.iter().zip(&out) {
        assert_eq!(*got, engine.locate(*p), "nearest-mode mismatch at {p}");
    }
}

/// Max-energy-mode certification against the *weighted* kd-tree serial
/// path, driven directly on a non-uniform network — the power-diagram
/// analogue of the nearest-mode test above: the tiled executor's
/// candidate argmax and the tree's best-first `strongest` walk must
/// select the same dominator everywhere.
#[test]
fn direct_executor_max_energy_matches_weighted_tree_path() {
    let net = big_network(62, 256, false);
    assert!(!net.is_uniform_power());
    let engine = VoronoiAssisted::new(&net);
    let eval = SinrEvaluator::new(&net);
    let points = query_batch(&net, 3000, 0xF01);
    let cfg = TileConfig {
        tile_points: 128,
        min_stations: 2,
        min_points: 1,
    };
    let mut out = vec![Located::Silent; points.len()];
    tile::locate_batch_tiled(
        &eval,
        SimdKernel::detect(),
        Select::MaxEnergy,
        &points,
        &mut out,
        &cfg,
        |p| engine.locate(p),
    );
    for (p, got) in points.iter().zip(&out) {
        assert_eq!(*got, engine.locate(*p), "max-energy-mode mismatch at {p}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random permutations of random batches over random tiled-scale
    /// networks: every backend answers every point identically in every
    /// order.
    #[test]
    fn permutation_invariance_proptest(
        seed in any::<u64>(),
        uniform in any::<bool>(),
    ) {
        let net = big_network(seed % 1000, TILED_MIN_STATIONS, uniform);
        let points = query_batch(&net, PARALLEL_BATCH_THRESHOLD + (seed % 700) as usize, seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5A5A);
        let mut perm: Vec<usize> = (0..points.len()).collect();
        for i in (1..perm.len()).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<Point> = perm.iter().map(|&i| points[i]).collect();
        let exact = ExactScan::new(&net);
        let voronoi = VoronoiAssisted::new(&net);
        let simd = SimdScan::new(&net);
        let mut base = vec![Located::Silent; points.len()];
        let mut shuf = vec![Located::Silent; points.len()];
        for (name, engine) in [
            ("exact", &exact as &dyn QueryEngine),
            ("voronoi", &voronoi),
            ("simd", &simd),
        ] {
            engine.locate_batch(&points, &mut base);
            engine.locate_batch(&shuffled, &mut shuf);
            for (slot, &orig) in perm.iter().enumerate() {
                prop_assert_eq!(
                    shuf[slot],
                    base[orig],
                    "{} not permutation-invariant at original index {}",
                    name,
                    orig
                );
            }
        }
    }
}
