//! Serial/parallel crossover regression tests for the batch drivers.
//!
//! `batch_map` switches from a serial loop to the parallel scheduler at
//! [`PARALLEL_BATCH_THRESHOLD`]; historically that boundary is where
//! splitting bugs live (the PR-1 static split spawned dozens of
//! near-empty threads for `len` barely above the threshold). These tests
//! pin, for batch lengths `THRESHOLD − 1`, `THRESHOLD` and
//! `THRESHOLD + 1`:
//!
//! * `locate_batch` ≡ per-point serial `locate`, **exactly** (`assert_eq`
//!   on `Located`, no tolerance), for every backend — [`ExactScan`],
//!   [`VoronoiAssisted`], every supported [`SimdScan`] kernel, and the
//!   Theorem-3 `PointLocator`;
//! * the work-stealing `batch_map` and the legacy clamped
//!   `batch_map_chunked` compute identical results.
//!
//! Exactness holds because batch and serial answers run the *same*
//! kernel per point — parallel scheduling must never change which code
//! computes an answer, only where it runs.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{
    batch_map, batch_map_chunked, ExactScan, Located, QueryEngine, VoronoiAssisted, BATCH_TILE,
    PARALLEL_BATCH_THRESHOLD,
};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::tile::{TileConfig, TILED_MIN_STATIONS};
use sinr_core::{gen, Network, SinrEvaluator};
use sinr_geometry::Point;
use sinr_pointloc::{PointLocator, QdsConfig};

/// The three batch lengths that straddle the serial/parallel crossover.
const BOUNDARY_LENS: [usize; 3] = [
    PARALLEL_BATCH_THRESHOLD - 1,
    PARALLEL_BATCH_THRESHOLD,
    PARALLEL_BATCH_THRESHOLD + 1,
];

/// A deterministic query batch of exactly `len` points spread over the
/// window, including points at and just off the stations.
fn query_batch(net: &Network, len: usize, seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(len);
    for i in net.ids() {
        pts.push(net.position(i));
    }
    while pts.len() < len {
        pts.push(Point::new(
            rng.gen_range(-6.0..6.0),
            rng.gen_range(-6.0..6.0),
        ));
    }
    pts.truncate(len);
    pts
}

/// Random small networks, uniform and non-uniform power.
fn networks() -> impl Strategy<Value = Network> {
    (2usize..6, any::<u64>(), any::<bool>()).prop_map(|(n, seed, uniform)| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = Vec::new();
        let mut guard = 0;
        while pts.len() < n && guard < 10_000 {
            guard += 1;
            let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
            if pts.iter().all(|p| p.dist(cand) >= 0.8) {
                pts.push(cand);
            }
        }
        let mut b = Network::builder().background_noise(0.02).threshold(1.5);
        for p in pts {
            if uniform {
                b = b.station(p);
            } else {
                b = b.station_with_power(p, rng.gen_range(0.5..2.5));
            }
        }
        b.build().expect("≥ 2 separated stations")
    })
}

fn assert_batch_equals_serial<E: QueryEngine>(
    name: &str,
    engine: &E,
    points: &[Point],
) -> Result<(), TestCaseError> {
    let mut batch = vec![Located::Silent; points.len()];
    engine.locate_batch(points, &mut batch);
    for (p, got) in points.iter().zip(&batch) {
        let serial = engine.locate(*p);
        prop_assert_eq!(
            *got,
            serial,
            "{} batch/serial mismatch at {} (len {})",
            name,
            p,
            points.len()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Every backend answers a batch exactly like a serial loop of
    /// `locate` calls at all three crossover lengths.
    #[test]
    fn locate_batch_equals_serial_at_threshold_boundaries(
        net in networks(),
        seed in any::<u64>(),
    ) {
        for len in BOUNDARY_LENS {
            let points = query_batch(&net, len, seed);
            assert_batch_equals_serial("ExactScan", &ExactScan::new(&net), &points)?;
            assert_batch_equals_serial("VoronoiAssisted", &VoronoiAssisted::new(&net), &points)?;
            for kernel in SimdKernel::ALL {
                if !kernel.is_supported() {
                    continue;
                }
                let simd = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
                assert_batch_equals_serial(kernel.name(), &simd, &points)?;
            }
        }
    }

    /// The work-stealing scheduler and the legacy clamped static split
    /// produce identical outputs at the crossover lengths (and the
    /// serial path below the threshold is the same loop for both).
    #[test]
    fn schedulers_agree_at_threshold_boundaries(offset in 0u64..1024) {
        for len in BOUNDARY_LENS {
            let inputs: Vec<u64> = (offset..offset + len as u64).collect();
            let mut stolen = vec![0u64; len];
            let mut chunked = vec![u64::MAX; len];
            batch_map(&inputs, &mut stolen, |x| x.rotate_left(7) ^ 0xA5A5);
            batch_map_chunked(&inputs, &mut chunked, |x| x.rotate_left(7) ^ 0xA5A5);
            prop_assert_eq!(&stolen, &chunked, "schedulers disagree at len {}", len);
        }
    }
}

/// The PR-5 spatial tiler and the work-stealing scheduler share one
/// batch-granularity knob: `TileConfig`'s default tile size IS
/// `BATCH_TILE`, and its default engagement thresholds are the
/// documented constants. A drift here means someone re-introduced a
/// second knob.
#[test]
fn tile_config_defaults_share_the_batch_knob() {
    let cfg = TileConfig::default();
    assert_eq!(cfg.tile_points, BATCH_TILE);
    assert_eq!(cfg.min_points, PARALLEL_BATCH_THRESHOLD);
    assert_eq!(cfg.min_stations, TILED_MIN_STATIONS);
    assert!(cfg.engages(PARALLEL_BATCH_THRESHOLD, TILED_MIN_STATIONS));
    assert!(!cfg.engages(PARALLEL_BATCH_THRESHOLD - 1, TILED_MIN_STATIONS));
    assert!(!cfg.engages(PARALLEL_BATCH_THRESHOLD, TILED_MIN_STATIONS - 1));
}

/// The tiled-executor crossover: at `TILED_MIN_STATIONS ± 1` stations
/// and `PARALLEL_BATCH_THRESHOLD ± 1` points — every combination of
/// which path (serial / per-point parallel / tiled) runs — all backends
/// and kernels stay bit-identical to the serial per-point loop.
#[test]
fn tiled_executor_threshold_boundaries_stay_serial_identical() {
    for stations in [TILED_MIN_STATIONS - 1, TILED_MIN_STATIONS] {
        let half = 2.0 * (stations as f64).sqrt();
        let net = gen::random_uniform_network(0x71E5 + stations as u64, stations, half, 0.01, 2.0)
            .unwrap();
        for len in BOUNDARY_LENS {
            let points = query_batch_window(&net, len, 0xAB, half * 1.1);
            assert_batch_equals_serial_exact("ExactScan", &ExactScan::new(&net), &points);
            assert_batch_equals_serial_exact(
                "VoronoiAssisted",
                &VoronoiAssisted::new(&net),
                &points,
            );
            for kernel in SimdKernel::ALL {
                if !kernel.is_supported() {
                    continue;
                }
                let simd = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
                assert_batch_equals_serial_exact(kernel.name(), &simd, &points);
            }
        }
    }
}

/// Like `query_batch` but spread over the given window (the tiled-scale
/// networks live in larger windows than the ±6 proptest nets).
fn query_batch_window(net: &Network, len: usize, seed: u64, half: f64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts = Vec::with_capacity(len);
    for i in net.ids().take(32) {
        pts.push(net.position(i));
    }
    while pts.len() < len {
        pts.push(Point::new(
            rng.gen_range(-half..half),
            rng.gen_range(-half..half),
        ));
    }
    pts.truncate(len);
    pts
}

fn assert_batch_equals_serial_exact<E: QueryEngine>(name: &str, engine: &E, points: &[Point]) {
    let mut batch = vec![Located::Silent; points.len()];
    engine.locate_batch(points, &mut batch);
    for (p, got) in points.iter().zip(&batch) {
        assert_eq!(
            *got,
            engine.locate(*p),
            "{name} batch/serial mismatch at {p} (len {})",
            points.len()
        );
    }
}

/// The Theorem-3 QDS backend at the crossover lengths: its batch driver
/// rides the same `batch_map`, and its per-point answers (including
/// `Uncertain`) are deterministic, so batch ≡ serial exactly.
#[test]
fn qds_backend_batch_equals_serial_at_threshold_boundaries() {
    let net = Network::uniform(
        vec![
            Point::new(-2.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(0.0, 3.0),
        ],
        0.02,
        2.0,
    )
    .unwrap();
    let ds = PointLocator::build(&net, &QdsConfig::with_epsilon(0.3)).unwrap();
    for len in BOUNDARY_LENS {
        let points = query_batch(&net, len, 0xD5);
        let mut batch = vec![Located::Silent; points.len()];
        QueryEngine::locate_batch(&ds, &points, &mut batch);
        for (p, got) in points.iter().zip(&batch) {
            assert_eq!(*got, ds.locate(*p), "QDS batch/serial mismatch at {p}");
        }
    }
}
