//! Property-based tests for the paper's theorem-level invariants on random
//! uniform-power networks with `α = 2`:
//!
//! * **Theorem 1** — reception zones are convex for `β ≥ 1`;
//! * **Lemma 2.1 route** — no line crosses a zone boundary more than twice;
//! * **Lemma 3.1** — SINR is monotone along rays from the station;
//! * **Theorems 4.1 / 4.2** — measured `δ`, `Δ` and fatness respect the
//!   closed-form bounds;
//! * the characteristic polynomial's sign agrees with direct SINR
//!   evaluation.

use proptest::prelude::*;
use sinr_core::{bounds, charpoly, convexity, Network, StationId};
use sinr_geometry::{Point, Segment, Vector};

/// Station layouts with a minimum pairwise separation so zones are
/// non-degenerate and the numerics are honest.
fn separated_points(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Point>> {
    (n, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pts: Vec<Point> = Vec::with_capacity(n);
        let mut guard = 0;
        while pts.len() < n && guard < 10_000 {
            guard += 1;
            let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
            if pts.iter().all(|p| p.dist(cand) >= 0.7) {
                pts.push(cand);
            }
        }
        pts
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: convexity of every zone for β ≥ 1 (uniform, α = 2),
    /// with and without noise — verified by segment sampling.
    #[test]
    fn theorem1_zones_convex(
        pts in separated_points(2..7),
        beta in 1.0f64..8.0,
        noise in 0.0f64..0.1,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        prop_assume!(!net.is_trivial());
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if let Some(report) = convexity::check_zone_convexity(&zone, 14, 8, 1e-7) {
                prop_assert!(
                    report.is_convex(),
                    "{} violations for {} in {}",
                    report.violations.len(), i, net
                );
            }
        }
    }

    /// Lemma 2.1 route to Theorem 1: Sturm-counted boundary crossings of
    /// any line are at most 2 for β ≥ 1.
    #[test]
    fn theorem1_line_crossings(
        pts in separated_points(2..6),
        beta in 1.05f64..6.0,
        noise in 0.0f64..0.05,
        ox in -6.0f64..6.0,
        oy in -6.0f64..6.0,
        angle in 0.0f64..std::f64::consts::PI,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        let dir = Vector::from_angle(angle);
        for i in net.ids() {
            let crossings = convexity::boundary_crossings_on_line(
                &net, i, Point::new(ox, oy), dir, -60.0, 60.0);
            prop_assert!(crossings <= 2,
                "{crossings} crossings for {i}: origin ({ox},{oy}) angle {angle}");
        }
    }

    /// Lemma 3.1: within the zone (where SINR ≥ β ≥ 1), SINR strictly
    /// increases toward the station along the connecting segment.
    #[test]
    fn lemma31_monotone_along_rays(
        pts in separated_points(2..7),
        beta in 1.0f64..6.0,
        noise in 0.0f64..0.1,
        theta in 0.0f64..std::f64::consts::TAU,
        frac in 0.05f64..0.95,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        let i = StationId(0);
        let zone = net.reception_zone(i);
        prop_assume!(!zone.is_degenerate());
        let Some(r) = zone.boundary_radius(theta) else { return Ok(()); };
        prop_assume!(r > 1e-9);
        let p = zone.center() + Vector::from_angle(theta) * (r * 0.999);
        prop_assume!(net.sinr(i, p) >= 1.0);
        // Walk inwards: SINR must increase monotonically.
        let mut last = net.sinr(i, p);
        let mut x = 0.999;
        while x > frac {
            x -= 0.05;
            let q = zone.center() + Vector::from_angle(theta) * (r * x);
            let s = net.sinr(i, q);
            prop_assert!(s >= last - 1e-9 * last.abs(),
                "SINR decreased toward the station: {s} < {last} at x={x}");
            last = s;
        }
    }

    /// Theorems 4.1 and 4.2: δ ≥ lower bound, Δ ≤ upper bound,
    /// φ ≤ (√β+1)/(√β−1) and φ ≤ O(√n) bound.
    #[test]
    fn theorem4_bounds_hold(
        pts in separated_points(2..7),
        beta in 1.2f64..8.0,
        noise in 0.0f64..0.1,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        for i in net.ids() {
            let zb = bounds::zone_bounds(&net, i);
            let Some(profile) = net.reception_zone(i).radial_profile(128) else {
                continue;
            };
            prop_assert!(profile.delta() >= zb.delta_lower - 1e-9,
                "{i}: δ={} < {}", profile.delta(), zb.delta_lower);
            if let Some(up) = zb.delta_upper {
                prop_assert!(profile.big_delta() <= up + 1e-9,
                    "{i}: Δ={} > {}", profile.big_delta(), up);
            }
            if let Some(phi) = profile.fatness() {
                prop_assert!(phi <= zb.fatness_const.unwrap() + 1e-6,
                    "{i}: φ={phi} > {}", zb.fatness_const.unwrap());
                prop_assert!(phi <= zb.fatness_sqrt_n.unwrap() + 1e-6);
            }
        }
    }

    /// The restricted characteristic polynomial's sign matches reception
    /// along random segments (away from numerically ambiguous points).
    #[test]
    fn charpoly_sign_contract(
        pts in separated_points(2..7),
        beta in 1.0f64..6.0,
        noise in 0.0f64..0.1,
        ax in -6.0f64..6.0, ay in -6.0f64..6.0,
        bx in -6.0f64..6.0, by in -6.0f64..6.0,
    ) {
        prop_assume!(pts.len() >= 2);
        let net = Network::uniform(pts, noise, beta).unwrap();
        let seg = Segment::new(Point::new(ax, ay), Point::new(bx, by));
        prop_assume!(seg.length() > 1e-6);
        for i in net.ids().take(2) {
            let h = charpoly::restricted_to_segment(&net, i, &seg);
            for k in 0..=20 {
                let t = k as f64 / 20.0;
                let p = seg.point_at(t);
                let s = net.sinr(i, p);
                if !s.is_finite() || (s - beta).abs() < 1e-5 * beta {
                    continue;
                }
                let (v, bound) = h.eval_with_error_bound(t);
                let construction = 1e-10 * (1.0 + h.max_coeff_abs());
                if v.abs() <= bound.max(construction) {
                    continue;
                }
                prop_assert_eq!(v <= 0.0, s >= beta,
                    "sign mismatch at t={} (H={}, SINR={})", t, v, s);
            }
        }
    }

    /// β < 1 networks may be non-convex (Figure 5); the checker must be
    /// *able* to detect violations — i.e. the machinery is not vacuously
    /// reporting convex. (Not all β < 1 configurations are non-convex, so
    /// this asserts only that reports are internally consistent.)
    #[test]
    fn convexity_reports_consistent(
        pts in separated_points(3..6),
        beta in 0.2f64..0.9,
    ) {
        prop_assume!(pts.len() >= 3);
        let net = Network::uniform(pts, 0.05, beta).unwrap();
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if let Some(report) = convexity::check_zone_convexity(&zone, 16, 8, 1e-7) {
                for v in &report.violations {
                    // Every reported violation is genuine: endpoints inside,
                    // witness outside.
                    prop_assert!(zone.contains(v.p1) && zone.contains(v.p2));
                    prop_assert!(!zone.contains(v.witness));
                    prop_assert!(v.sinr < beta);
                }
            }
        }
    }
}
