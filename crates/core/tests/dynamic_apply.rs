//! Dynamic-update equivalence: incremental [`QueryEngine::apply`] must be
//! **bit-for-bit** indistinguishable from rebuilding the engine from the
//! mutated network, for every backend and every supported SIMD kernel,
//! across arbitrary add / move / remove / power-change sequences.
//!
//! The guarantee is exact (`assert_eq!` on [`Located`], `==` on `f64`
//! SINR values), not tolerance-based: an incrementally patched engine
//! runs the *same* kernels over the *same* SoA contents in the same
//! order as a freshly built one — the network's swap-remove index
//! discipline is mirrored one-for-one by the engine patch, and the
//! dynamic kd-tree's tombstone/overflow search uses the fresh tree's tie
//! rule. Any divergence is a bug in the patch path, not rounding.
//!
//! Also pinned here: the staleness contract (a mutated-but-unsynced
//! engine refuses to answer), delta ordering (skipped deltas are
//! [`SyncError::RevisionMismatch`]), delta provenance (foreign deltas
//! are rejected), and remove-then-re-add of the same index.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{ExactScan, Located, QueryEngine, SyncError, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::{Network, NetworkDelta, SinrEvaluator, StationId};
use sinr_geometry::{Point, Vector};

/// Separated stations (non-degenerate zones, honest numerics).
fn separated_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
        if pts.iter().all(|p| p.dist(cand) >= 0.8) {
            pts.push(cand);
        }
    }
    pts
}

/// Initial networks: uniform and non-uniform power, α ∈ {2, 3, 4}, β
/// above and below 1 — the full space the engines claim.
fn networks() -> impl Strategy<Value = Network> {
    (
        3usize..7,
        any::<u64>(),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, seed, alpha_idx, uniform, beta_low)| {
            let pts = separated_points(seed, n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD11A);
            let beta = if beta_low { 0.6 } else { 1.8 };
            let mut b = Network::builder()
                .background_noise(0.02)
                .threshold(beta)
                .path_loss([2.0, 3.0, 4.0][alpha_idx]);
            for p in pts {
                if uniform {
                    b = b.station(p);
                } else {
                    b = b.station_with_power(p, rng.gen_range(0.5..2.5));
                }
            }
            b.build().expect("≥ 3 separated stations")
        })
}

/// One random surgery op applied to `net`, returning its delta.
fn random_op(rng: &mut rand::rngs::StdRng, net: &mut Network) -> NetworkDelta {
    let choice: usize = rng.gen_range(0..8);
    match choice {
        // Adds: half uniform power (keeps VoronoiAssisted on the
        // proximity path), half weighted (exercises the fallback
        // transition).
        0 | 1 => {
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            let power = if choice == 0 {
                1.0
            } else {
                rng.gen_range(0.5..2.5)
            };
            net.add_station(p, power).expect("valid add")
        }
        2 | 3 if net.len() > 2 => {
            let i = rng.gen_range(0..net.len());
            net.remove_station(StationId(i)).expect("valid remove")
        }
        4 | 5 => {
            let i = rng.gen_range(0..net.len());
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            net.move_station(StationId(i), p).expect("valid move")
        }
        6 => {
            let i = rng.gen_range(0..net.len());
            let power = rng.gen_range(0.5..2.5);
            net.set_power(StationId(i), power).expect("valid power")
        }
        // Power back to 1 (also the 2|3 guard fallthrough): exercises
        // the non-uniform → uniform transition (VoronoiAssisted must
        // re-enable the kd-tree).
        _ => {
            let i = rng.gen_range(0..net.len());
            net.set_power(StationId(i), 1.0).expect("valid power")
        }
    }
}

/// Query sample: a grid over the churn window plus points at and just
/// off every station (the degenerate corners).
fn sample_points(net: &Network) -> Vec<Point> {
    let mut pts = Vec::new();
    for a in -9..=9 {
        for b in -9..=9 {
            pts.push(Point::new(a as f64 * 0.7, b as f64 * 0.7));
        }
    }
    for i in net.ids() {
        let s = net.position(i);
        pts.push(s);
        pts.push(s + Vector::new(1e-7, -1e-7));
        pts.push(s + Vector::new(0.25, 0.15));
    }
    pts
}

/// `assert_eq!` on every locate answer and every `sinr_batch` value —
/// exact f64 equality, no tolerance.
fn assert_bit_identical<A: QueryEngine, B: QueryEngine>(
    name: &str,
    incremental: &A,
    fresh: &B,
    net: &Network,
) -> Result<(), TestCaseError> {
    let points = sample_points(net);
    let mut inc_out = vec![Located::Silent; points.len()];
    let mut fresh_out = vec![Located::Silent; points.len()];
    incremental.locate_batch(&points, &mut inc_out);
    fresh.locate_batch(&points, &mut fresh_out);
    for (p, (a, b)) in points.iter().zip(inc_out.iter().zip(&fresh_out)) {
        prop_assert_eq!(
            *a,
            *b,
            "{}: incremental vs rebuild diverge at {} in {}",
            name,
            p,
            net
        );
    }
    let mut inc_sinr = vec![0.0; points.len()];
    let mut fresh_sinr = vec![0.0; points.len()];
    for i in net.ids() {
        incremental.sinr_batch(i, &points, &mut inc_sinr);
        fresh.sinr_batch(i, &points, &mut fresh_sinr);
        for (p, (a, b)) in points.iter().zip(inc_sinr.iter().zip(&fresh_sinr)) {
            // Exact equality (infinities compare equal to themselves).
            prop_assert!(
                a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum()),
                "{}: sinr({}, {}) diverges: {} vs {}",
                name,
                i,
                p,
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ExactScan: a long mixed surgery sequence, checked after every op.
    #[test]
    fn exact_scan_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut engine = ExactScan::new(&net);
        for _ in 0..12 {
            let delta = random_op(&mut rng, &mut net);
            prop_assert!(engine.is_stale());
            engine.apply(&delta).expect("delta applies in order");
            prop_assert!(!engine.is_stale());
            prop_assert_eq!(engine.revision(), net.revision());
        }
        assert_bit_identical("ExactScan", &engine, &ExactScan::new(&net), &net)?;
    }

    /// SimdScan: every supported kernel, checked at the end of the
    /// sequence (the kernels share the evaluator patch path).
    #[test]
    fn simd_scan_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        for kernel in [SimdKernel::Avx2, SimdKernel::Sse2, SimdKernel::Portable] {
            if !kernel.is_supported() {
                continue;
            }
            let mut net = net.clone();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            for _ in 0..12 {
                let delta = random_op(&mut rng, &mut net);
                engine.apply(&delta).expect("delta applies in order");
            }
            prop_assert_eq!(engine.kernel(), kernel, "kernel must survive apply");
            let fresh = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            assert_bit_identical(kernel.name(), &engine, &fresh, &net)?;
        }
    }

    /// VoronoiAssisted: the tombstone/overflow kd-tree (plus its rebuild
    /// heuristic and the uniform ↔ non-uniform dispatch transitions) must
    /// be indistinguishable from a fresh tree — checked after every op so
    /// intermediate tombstone states are exercised, not just the final
    /// one.
    #[test]
    fn voronoi_assisted_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut engine = VoronoiAssisted::new(&net);
        for _ in 0..14 {
            let delta = random_op(&mut rng, &mut net);
            engine.apply(&delta).expect("delta applies in order");
            let fresh = VoronoiAssisted::new(&net);
            prop_assert_eq!(
                engine.uses_proximity_dispatch(),
                net.is_uniform_power(),
                "dispatch contract after delta in {}", net
            );
            prop_assert_eq!(
                fresh.uses_proximity_dispatch(),
                engine.uses_proximity_dispatch()
            );
            assert_bit_identical("VoronoiAssisted", &engine, &fresh, &net)?;
        }
    }

    /// Remove-then-re-add of the same index: the swap-remove slot is
    /// immediately reused by a new station, both at the old last index
    /// and in the middle — the classic aliasing trap for SoA patching.
    #[test]
    fn remove_then_re_add_same_index(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DD);
        let mut exact = ExactScan::new(&net);
        let mut voronoi = VoronoiAssisted::new(&net);
        let mut simd = SimdScan::new(&net);
        // Remove the last station (swap-remove degenerates to pop), then
        // a middle one, re-adding after each removal — the re-added
        // station takes the just-vacated index both times.
        for victim in [net.len() - 1, 1] {
            let removed_at = net.position(StationId(victim));
            let d1 = net.remove_station(StationId(victim)).expect("n > 2");
            // Re-add at a fresh position, then move it onto the removed
            // station's exact coordinates to also pin position aliasing.
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            let d2 = net.add_station(p, 1.0).expect("valid add");
            let d3 = net
                .move_station(StationId(net.len() - 1), removed_at)
                .expect("valid move");
            for d in [&d1, &d2, &d3] {
                exact.apply(d).expect("in order");
                voronoi.apply(d).expect("in order");
                simd.apply(d).expect("in order");
            }
            assert_bit_identical("ExactScan", &exact, &ExactScan::new(&net), &net)?;
            assert_bit_identical("VoronoiAssisted", &voronoi, &VoronoiAssisted::new(&net), &net)?;
            assert_bit_identical("SimdScan", &simd, &SimdScan::new(&net), &net)?;
        }
    }
}

#[test]
fn stale_engine_refuses_to_answer() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap();
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(ExactScan::new(&net)),
        Box::new(SimdScan::new(&net)),
        Box::new(VoronoiAssisted::new(&net)),
    ];
    net.move_station(StationId(0), Point::new(-1.0, 0.0))
        .unwrap();
    for engine in engines {
        assert!(engine.is_stale());
        // A stale engine must never answer — locate panics with the
        // revision mismatch rather than returning a possibly-wrong zone.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.locate(Point::new(0.5, 0.0))
        }))
        .expect_err("stale engine answered");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("stale query engine") && msg.contains("revision"),
            "unexpected panic message: {msg}"
        );
    }
}

#[test]
fn skipped_and_foreign_deltas_are_rejected() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut engine = ExactScan::new(&net);
    let d1 = net
        .move_station(StationId(0), Point::new(-1.0, 0.0))
        .unwrap();
    let d2 = net
        .move_station(StationId(1), Point::new(5.0, 0.0))
        .unwrap();
    // Skipping d1 is a revision mismatch…
    assert_eq!(
        engine.apply(&d2),
        Err(SyncError::RevisionMismatch {
            engine_revision: 0,
            delta_from: 1
        })
    );
    // …in order works…
    engine.apply(&d1).unwrap();
    engine.apply(&d2).unwrap();
    // …and replaying is again a mismatch.
    assert!(matches!(
        engine.apply(&d2),
        Err(SyncError::RevisionMismatch { .. })
    ));
    // A delta from a clone (same data, different instance) is foreign.
    let mut other = net.clone();
    let foreign = other
        .move_station(StationId(0), Point::new(0.5, 0.5))
        .unwrap();
    assert_eq!(engine.apply(&foreign), Err(SyncError::ForeignDelta));
    // sync() is the catch-up path after any rejection.
    engine.sync(&other).unwrap();
    assert_eq!(engine.revision(), other.revision());
    assert!(!engine.is_stale());
}

#[test]
fn sync_retargets_and_unstales() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap();
    let mut engine = VoronoiAssisted::new(&net);
    for _ in 0..3 {
        net.add_station(Point::new(2.0, -2.0), 1.0).unwrap();
        net.remove_station(StationId(0)).unwrap();
    }
    assert!(engine.is_stale());
    engine.sync(&net).unwrap();
    assert!(!engine.is_stale());
    let fresh = VoronoiAssisted::new(&net);
    for p in [
        Point::new(0.3, 0.2),
        Point::new(2.0, 0.0),
        Point::new(9.0, 9.0),
    ] {
        assert_eq!(engine.locate(p), fresh.locate(p));
    }
}
