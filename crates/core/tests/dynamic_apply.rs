//! Dynamic-update equivalence: incremental [`QueryEngine::apply`] must be
//! **bit-for-bit** indistinguishable from rebuilding the engine from the
//! mutated network, for every backend and every supported SIMD kernel,
//! across arbitrary add / move / remove / power-change sequences.
//!
//! The guarantee is exact (`assert_eq!` on [`Located`], `==` on `f64`
//! SINR values), not tolerance-based: an incrementally patched engine
//! runs the *same* kernels over the *same* SoA contents in the same
//! order as a freshly built one — the network's swap-remove index
//! discipline is mirrored one-for-one by the engine patch, and the
//! dynamic kd-tree's tombstone/overflow search uses the fresh tree's tie
//! rule. Any divergence is a bug in the patch path, not rounding.
//!
//! Also pinned here: the staleness contract (a mutated-but-unsynced
//! engine refuses to answer), delta ordering (skipped deltas are
//! [`SyncError::RevisionMismatch`]), delta provenance (foreign deltas
//! are rejected), and remove-then-re-add of the same index.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{ExactScan, Located, QueryEngine, SyncError, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::{gen, Network, NetworkDelta, NetworkError, SinrEvaluator, StationId, SurgeryOp};
use sinr_geometry::{Point, Vector};

/// Separated stations (non-degenerate zones, honest numerics).
fn separated_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
        if pts.iter().all(|p| p.dist(cand) >= 0.8) {
            pts.push(cand);
        }
    }
    pts
}

/// Initial networks: uniform and non-uniform power, α ∈ {2, 3, 4}, β
/// above and below 1 — the full space the engines claim.
fn networks() -> impl Strategy<Value = Network> {
    (
        3usize..7,
        any::<u64>(),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(n, seed, alpha_idx, uniform, beta_low)| {
            let pts = separated_points(seed, n);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD11A);
            let beta = if beta_low { 0.6 } else { 1.8 };
            let mut b = Network::builder()
                .background_noise(0.02)
                .threshold(beta)
                .path_loss([2.0, 3.0, 4.0][alpha_idx]);
            for p in pts {
                if uniform {
                    b = b.station(p);
                } else {
                    b = b.station_with_power(p, rng.gen_range(0.5..2.5));
                }
            }
            b.build().expect("≥ 3 separated stations")
        })
}

/// One random surgery op applied to `net`, returning its delta.
fn random_op(rng: &mut rand::rngs::StdRng, net: &mut Network) -> NetworkDelta {
    let choice: usize = rng.gen_range(0..8);
    match choice {
        // Adds: half uniform power (keeps VoronoiAssisted on the
        // nearest walk), half weighted (exercises the power-diagram
        // dispatch and the re-weighting transition).
        0 | 1 => {
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            let power = if choice == 0 {
                1.0
            } else {
                rng.gen_range(0.5..2.5)
            };
            net.add_station(p, power).expect("valid add")
        }
        2 | 3 if net.len() > 2 => {
            let i = rng.gen_range(0..net.len());
            net.remove_station(StationId(i)).expect("valid remove")
        }
        4 | 5 => {
            let i = rng.gen_range(0..net.len());
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            net.move_station(StationId(i), p).expect("valid move")
        }
        6 => {
            let i = rng.gen_range(0..net.len());
            let power = rng.gen_range(0.5..2.5);
            net.set_power(StationId(i), power).expect("valid power")
        }
        // Power back to 1 (also the 2|3 guard fallthrough): exercises
        // the non-uniform → uniform transition (VoronoiAssisted must
        // switch back to the nearest walk without dropping the tree).
        _ => {
            let i = rng.gen_range(0..net.len());
            net.set_power(StationId(i), 1.0).expect("valid power")
        }
    }
}

/// A random *timestep* of surgery as a plain [`SurgeryOp`] list,
/// generated against (and applied to) a scratch mirror so every op in
/// the list is valid by construction when replayed in order.
fn random_op_list(
    rng: &mut rand::rngs::StdRng,
    scratch: &mut Network,
    steps: usize,
) -> Vec<SurgeryOp> {
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let op = match rng.gen_range(0..8) {
            0 | 1 => SurgeryOp::Add {
                position: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
                power: if rng.gen_range(0..2) == 0 {
                    1.0
                } else {
                    rng.gen_range(0.5..2.5)
                },
            },
            2 | 3 if scratch.len() > 2 => SurgeryOp::Remove {
                id: StationId(rng.gen_range(0..scratch.len())),
            },
            4 | 5 => SurgeryOp::Move {
                id: StationId(rng.gen_range(0..scratch.len())),
                to: Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0)),
            },
            6 => SurgeryOp::SetPower {
                id: StationId(rng.gen_range(0..scratch.len())),
                power: rng.gen_range(0.5..2.5),
            },
            _ => SurgeryOp::SetPower {
                id: StationId(rng.gen_range(0..scratch.len())),
                power: 1.0,
            },
        };
        scratch.apply_op(&op).expect("op valid against the scratch");
        ops.push(op);
    }
    ops
}

/// Query sample: a grid over the churn window plus points at and just
/// off every station (the degenerate corners).
fn sample_points(net: &Network) -> Vec<Point> {
    let mut pts = Vec::new();
    for a in -9..=9 {
        for b in -9..=9 {
            pts.push(Point::new(a as f64 * 0.7, b as f64 * 0.7));
        }
    }
    for i in net.ids() {
        let s = net.position(i);
        pts.push(s);
        pts.push(s + Vector::new(1e-7, -1e-7));
        pts.push(s + Vector::new(0.25, 0.15));
    }
    pts
}

/// `assert_eq!` on every locate answer and every `sinr_batch` value —
/// exact f64 equality, no tolerance.
fn assert_bit_identical<A: QueryEngine, B: QueryEngine>(
    name: &str,
    incremental: &A,
    fresh: &B,
    net: &Network,
) -> Result<(), TestCaseError> {
    let points = sample_points(net);
    let mut inc_out = vec![Located::Silent; points.len()];
    let mut fresh_out = vec![Located::Silent; points.len()];
    incremental.locate_batch(&points, &mut inc_out);
    fresh.locate_batch(&points, &mut fresh_out);
    for (p, (a, b)) in points.iter().zip(inc_out.iter().zip(&fresh_out)) {
        prop_assert_eq!(
            *a,
            *b,
            "{}: incremental vs rebuild diverge at {} in {}",
            name,
            p,
            net
        );
    }
    let mut inc_sinr = vec![0.0; points.len()];
    let mut fresh_sinr = vec![0.0; points.len()];
    for i in net.ids() {
        incremental.sinr_batch(i, &points, &mut inc_sinr);
        fresh.sinr_batch(i, &points, &mut fresh_sinr);
        for (p, (a, b)) in points.iter().zip(inc_sinr.iter().zip(&fresh_sinr)) {
            // Exact equality (infinities compare equal to themselves).
            prop_assert!(
                a == b || (a.is_infinite() && b.is_infinite() && a.signum() == b.signum()),
                "{}: sinr({}, {}) diverges: {} vs {}",
                name,
                i,
                p,
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// ExactScan: a long mixed surgery sequence, checked after every op.
    #[test]
    fn exact_scan_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut engine = ExactScan::new(&net);
        for _ in 0..12 {
            let delta = random_op(&mut rng, &mut net);
            prop_assert!(engine.is_stale());
            engine.apply(&delta).expect("delta applies in order");
            prop_assert!(!engine.is_stale());
            prop_assert_eq!(engine.revision(), net.revision());
        }
        assert_bit_identical("ExactScan", &engine, &ExactScan::new(&net), &net)?;
    }

    /// SimdScan: every supported kernel, checked at the end of the
    /// sequence (the kernels share the evaluator patch path).
    #[test]
    fn simd_scan_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        for kernel in SimdKernel::ALL {
            if !kernel.is_supported() {
                continue;
            }
            let mut net = net.clone();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let mut engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            for _ in 0..12 {
                let delta = random_op(&mut rng, &mut net);
                engine.apply(&delta).expect("delta applies in order");
            }
            prop_assert_eq!(engine.kernel(), kernel, "kernel must survive apply");
            let fresh = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            assert_bit_identical(kernel.name(), &engine, &fresh, &net)?;
        }
    }

    /// VoronoiAssisted: the tombstone/overflow weighted kd-tree (plus
    /// its rebuild heuristic and uniform ↔ non-uniform power
    /// transitions, which since the power-diagram dispatch re-weight the
    /// index instead of dropping it) must be indistinguishable from a
    /// fresh tree — checked after every op so intermediate tombstone
    /// states are exercised, not just the final one.
    #[test]
    fn voronoi_assisted_apply_equals_rebuild(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut engine = VoronoiAssisted::new(&net);
        for _ in 0..14 {
            let delta = random_op(&mut rng, &mut net);
            engine.apply(&delta).expect("delta applies in order");
            let fresh = VoronoiAssisted::new(&net);
            // The weighted tree serves every power assignment — the
            // proximity dispatch survives every delta, power changes
            // included.
            prop_assert!(
                engine.uses_proximity_dispatch(),
                "dispatch dropped after delta in {}", net
            );
            prop_assert!(fresh.uses_proximity_dispatch());
            assert_bit_identical("VoronoiAssisted", &engine, &fresh, &net)?;
        }
    }

    /// Scripted uniform → non-uniform → uniform power round trip: the
    /// power-diagram dispatch must keep the tree through both
    /// transitions and stay bit-identical to a fresh rebuild (and to
    /// ExactScan) at every step — the regression this PR's re-weighting
    /// `apply` path exists for (the old contract dropped and rebuilt the
    /// tree at each transition).
    #[test]
    fn power_transitions_keep_tree_and_match_rebuild(seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9D1A);
        let n = rng.gen_range(4usize..12);
        let mut net = gen::random_uniform_network(seed ^ 0x77, n, 8.0, 0.01, 1.8)
            .expect("valid uniform network");
        prop_assert!(net.is_uniform_power());
        let mut engine = VoronoiAssisted::new(&net);
        let apply_all = |engine: &mut VoronoiAssisted, deltas: Vec<NetworkDelta>| {
            for d in deltas {
                engine.apply(&d).expect("delta applies in order");
            }
        };
        // Uniform → non-uniform: scatter distinct powers.
        let mut deltas = Vec::new();
        for i in 0..net.len() {
            let p = rng.gen_range(0.5..2.5);
            deltas.push(net.set_power(StationId(i), p).expect("valid power"));
        }
        apply_all(&mut engine, deltas);
        prop_assert!(!net.is_uniform_power());
        prop_assert!(engine.uses_proximity_dispatch());
        assert_bit_identical("non-uniform leg", &engine, &VoronoiAssisted::new(&net), &net)?;
        // Interleave a structural op while non-uniform.
        let p = Point::new(rng.gen_range(-8.0..8.0), rng.gen_range(-8.0..8.0));
        let d = net.add_station(p, rng.gen_range(0.5..2.5)).expect("valid add");
        apply_all(&mut engine, vec![d]);
        assert_bit_identical("non-uniform add", &engine, &VoronoiAssisted::new(&net), &net)?;
        // Non-uniform → uniform: reset every power to 1.
        let mut deltas = Vec::new();
        for i in 0..net.len() {
            deltas.push(net.set_power(StationId(i), 1.0).expect("valid power"));
        }
        apply_all(&mut engine, deltas);
        prop_assert!(net.is_uniform_power());
        prop_assert!(engine.uses_proximity_dispatch());
        assert_bit_identical("uniform again", &engine, &VoronoiAssisted::new(&net), &net)?;
    }

    /// Remove-then-re-add of the same index: the swap-remove slot is
    /// immediately reused by a new station, both at the old last index
    /// and in the middle — the classic aliasing trap for SoA patching.
    #[test]
    fn remove_then_re_add_same_index(net in networks(), seed in any::<u64>()) {
        let mut net = net;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x0DD);
        let mut exact = ExactScan::new(&net);
        let mut voronoi = VoronoiAssisted::new(&net);
        let mut simd = SimdScan::new(&net);
        // Remove the last station (swap-remove degenerates to pop), then
        // a middle one, re-adding after each removal — the re-added
        // station takes the just-vacated index both times.
        for victim in [net.len() - 1, 1] {
            let removed_at = net.position(StationId(victim));
            let d1 = net.remove_station(StationId(victim)).expect("n > 2");
            // Re-add at a fresh position, then move it onto the removed
            // station's exact coordinates to also pin position aliasing.
            let p = Point::new(rng.gen_range(-6.0..6.0), rng.gen_range(-6.0..6.0));
            let d2 = net.add_station(p, 1.0).expect("valid add");
            let d3 = net
                .move_station(StationId(net.len() - 1), removed_at)
                .expect("valid move");
            for d in [&d1, &d2, &d3] {
                exact.apply(d).expect("in order");
                voronoi.apply(d).expect("in order");
                simd.apply(d).expect("in order");
            }
            assert_bit_identical("ExactScan", &exact, &ExactScan::new(&net), &net)?;
            assert_bit_identical("VoronoiAssisted", &voronoi, &VoronoiAssisted::new(&net), &net)?;
            assert_bit_identical("SimdScan", &simd, &SimdScan::new(&net), &net)?;
        }
    }

    /// `Network::apply_ops` (a whole timestep in one call) must be
    /// indistinguishable — network state, revision trail, and every
    /// backend's answers, bit-for-bit — from applying the same ops one
    /// at a time through `Network::apply_op`.
    #[test]
    fn apply_ops_equals_one_at_a_time(net in networks(), seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBA7C);
        let mut scratch = net.clone();
        let ops = random_op_list(&mut rng, &mut scratch, 10);

        // One-at-a-time path: its own network instance + engines.
        let mut one = net.clone();
        let mut one_exact = ExactScan::new(&one);
        let mut one_voronoi = VoronoiAssisted::new(&one);
        let mut one_simd = SimdScan::new(&one);
        for op in &ops {
            let delta = one.apply_op(op).expect("valid by construction");
            one_exact.apply(&delta).expect("in order");
            one_voronoi.apply(&delta).expect("in order");
            one_simd.apply(&delta).expect("in order");
        }

        // Batched path: one call, every delta returned in order.
        let mut batched = net.clone();
        let mut b_exact = ExactScan::new(&batched);
        let mut b_voronoi = VoronoiAssisted::new(&batched);
        let mut b_simd = SimdScan::new(&batched);
        let deltas = batched.apply_ops(&ops).expect("valid by construction");
        prop_assert_eq!(deltas.len(), ops.len());
        for (k, delta) in deltas.iter().enumerate() {
            prop_assert_eq!(delta.from_revision(), k as u64, "gapless revision chain");
            prop_assert_eq!(delta.to_revision(), k as u64 + 1);
            b_exact.apply(delta).expect("in order");
            b_voronoi.apply(delta).expect("in order");
            b_simd.apply(delta).expect("in order");
        }

        // Same physics, same revision, and (scratch took the same ops
        // through yet another path) same as the generator's mirror.
        prop_assert_eq!(&one, &batched, "network state diverged");
        prop_assert_eq!(&scratch, &batched, "scratch mirror diverged");
        prop_assert_eq!(one.revision(), batched.revision());

        // Every backend answers identically under both application
        // styles, and identically to a fresh rebuild.
        assert_bit_identical("ExactScan one-vs-batch", &one_exact, &b_exact, &batched)?;
        assert_bit_identical("Voronoi one-vs-batch", &one_voronoi, &b_voronoi, &batched)?;
        assert_bit_identical("Simd one-vs-batch", &one_simd, &b_simd, &batched)?;
        assert_bit_identical("ExactScan batch-vs-fresh", &b_exact, &ExactScan::new(&batched), &batched)?;
        assert_bit_identical("Voronoi batch-vs-fresh", &b_voronoi, &VoronoiAssisted::new(&batched), &batched)?;
        assert_bit_identical("Simd batch-vs-fresh", &b_simd, &SimdScan::new(&batched), &batched)?;
    }
}

#[test]
fn apply_ops_partial_failure_keeps_prefix_and_reports_index() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap();
    let mut engine = VoronoiAssisted::new(&net);
    let ops = [
        SurgeryOp::Move {
            id: StationId(0),
            to: Point::new(-1.0, 0.0),
        },
        SurgeryOp::Add {
            position: Point::new(2.0, 2.0),
            power: 1.0,
        },
        // Fails: no station 50.
        SurgeryOp::SetPower {
            id: StationId(50),
            power: 2.0,
        },
        // Never reached.
        SurgeryOp::Remove { id: StationId(0) },
    ];
    let err = net.apply_ops(&ops).expect_err("op #2 is invalid");
    assert_eq!(err.index, 2);
    assert_eq!(err.applied.len(), 2);
    assert!(matches!(err.error, NetworkError::StationOutOfRange(50)));
    // The error is a real std error with the cause chained.
    assert!(std::error::Error::source(&err).is_some());
    assert!(err.to_string().contains("op #2"));

    // The prefix really was applied: revision 2, the move + add visible,
    // the suffix not.
    assert_eq!(net.revision(), 2);
    assert_eq!(net.len(), 4);
    assert_eq!(net.position(StationId(0)), Point::new(-1.0, 0.0));

    // Engines catch up from the error's deltas and agree with a rebuild.
    for delta in &err.applied {
        engine.apply(delta).expect("prefix deltas are in order");
    }
    assert!(!engine.is_stale());
    let fresh = VoronoiAssisted::new(&net);
    for p in [
        Point::new(0.3, 0.2),
        Point::new(2.0, 2.0),
        Point::new(-4.0, 1.0),
    ] {
        assert_eq!(engine.locate(p), fresh.locate(p));
    }
}

#[test]
fn surgery_op_wire_round_trip() {
    let ops = [
        SurgeryOp::Add {
            position: Point::new(1.5, -2.25),
            power: 0.75,
        },
        SurgeryOp::Remove { id: StationId(7) },
        SurgeryOp::Move {
            id: StationId(3),
            to: Point::new(-0.5, 9.0),
        },
        SurgeryOp::SetPower {
            id: StationId(0),
            power: 2.5,
        },
    ];
    // Concatenated encoding decodes back op-for-op.
    let mut buf = Vec::new();
    for op in &ops {
        op.encode_into(&mut buf);
    }
    let mut at = 0;
    for op in &ops {
        let (decoded, used) = SurgeryOp::decode(&buf[at..]).expect("decodes");
        assert_eq!(&decoded, op);
        at += used;
    }
    assert_eq!(at, buf.len(), "no trailing bytes");

    // Every proper prefix of the first op (a 25-byte Add) is a typed
    // truncation error, never a panic.
    for cut in 0..25 {
        assert!(
            matches!(
                SurgeryOp::decode(&buf[..cut]),
                Err(sinr_core::WireError::Truncated { .. })
            ),
            "prefix of {cut} bytes must be Truncated"
        );
    }
    assert!(matches!(
        SurgeryOp::decode(&[]),
        Err(sinr_core::WireError::Truncated { missing: 1 })
    ));
    assert!(matches!(
        SurgeryOp::decode(&[0, 1, 2]),
        Err(sinr_core::WireError::Truncated { .. })
    ));
    assert!(matches!(
        SurgeryOp::decode(&[42, 0, 0, 0, 0]),
        Err(sinr_core::WireError::UnknownOpTag(42))
    ));
}

#[test]
fn stale_engine_refuses_to_answer() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap();
    let engines: Vec<Box<dyn QueryEngine>> = vec![
        Box::new(ExactScan::new(&net)),
        Box::new(SimdScan::new(&net)),
        Box::new(VoronoiAssisted::new(&net)),
    ];
    net.move_station(StationId(0), Point::new(-1.0, 0.0))
        .unwrap();
    for engine in engines {
        assert!(engine.is_stale());
        // A stale engine must never answer — locate panics with the
        // revision mismatch rather than returning a possibly-wrong zone.
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.locate(Point::new(0.5, 0.0))
        }))
        .expect_err("stale engine answered");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(
            msg.contains("stale query engine") && msg.contains("revision"),
            "unexpected panic message: {msg}"
        );
    }
}

#[test]
fn skipped_and_foreign_deltas_are_rejected() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.0,
        2.0,
    )
    .unwrap();
    let mut engine = ExactScan::new(&net);
    let d1 = net
        .move_station(StationId(0), Point::new(-1.0, 0.0))
        .unwrap();
    let d2 = net
        .move_station(StationId(1), Point::new(5.0, 0.0))
        .unwrap();
    // Skipping d1 is a revision mismatch…
    assert_eq!(
        engine.apply(&d2),
        Err(SyncError::RevisionMismatch {
            engine_revision: 0,
            delta_from: 1
        })
    );
    // …in order works…
    engine.apply(&d1).unwrap();
    engine.apply(&d2).unwrap();
    // …and replaying is again a mismatch.
    assert!(matches!(
        engine.apply(&d2),
        Err(SyncError::RevisionMismatch { .. })
    ));
    // A delta from a clone (same data, different instance) is foreign.
    let mut other = net.clone();
    let foreign = other
        .move_station(StationId(0), Point::new(0.5, 0.5))
        .unwrap();
    assert_eq!(engine.apply(&foreign), Err(SyncError::ForeignDelta));
    // sync() is the catch-up path after any rejection.
    engine.sync(&other).unwrap();
    assert_eq!(engine.revision(), other.revision());
    assert!(!engine.is_stale());
}

#[test]
fn sync_retargets_and_unstales() {
    let mut net = Network::uniform(
        vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(1.0, 3.0),
        ],
        0.01,
        1.5,
    )
    .unwrap();
    let mut engine = VoronoiAssisted::new(&net);
    for _ in 0..3 {
        net.add_station(Point::new(2.0, -2.0), 1.0).unwrap();
        net.remove_station(StationId(0)).unwrap();
    }
    assert!(engine.is_stale());
    engine.sync(&net).unwrap();
    assert!(!engine.is_stale());
    let fresh = VoronoiAssisted::new(&net);
    for p in [
        Point::new(0.3, 0.2),
        Point::new(2.0, 0.0),
        Point::new(9.0, 9.0),
    ] {
        assert_eq!(engine.locate(p), fresh.locate(p));
    }
}
