//! Contract suite of the stochastic channel layer (`sinr_core::channel`).
//!
//! * **Degenerate-channel contract** (proptest): every identity /
//!   zero-variance channel makes `reception_probability_batch` return
//!   exactly `0.0` / `1.0`, matching `locate_batch` bit-for-bit on every
//!   backend and every supported SIMD kernel — the stochastic path may
//!   never disagree with the deterministic one.
//! * **Replay differential**: the Monte-Carlo executor (tiled, pruned,
//!   SoA-reusing) is pinned bit-for-bit against a naive baseline that
//!   rebuilds a scaled `Network` + fresh engine per trial by replaying
//!   the public `gains_for_trial` stream.
//! * **Determinism**: same `(model, seed, trials)` → identical
//!   probabilities across repeated calls, backends, and SIMD kernels;
//!   different seeds decorrelate.
//! * **Quantiles**: deterministic channels collapse every quantile onto
//!   the `sinr_batch` value bitwise; stochastic quantiles are monotone
//!   in the quantile level.
//! * **Typed errors**: stale engines, malformed models, and backends
//!   without the stochastic path all answer with the right
//!   `ChannelError`.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::channel::{ChannelError, ChannelModel, McConfig};
use sinr_core::engine::{ExactScan, Located, QueryEngine, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::tile::TILED_MIN_STATIONS;
use sinr_core::{gen, Network, SinrEvaluator, StationId};
use sinr_geometry::Point;

fn big_network(seed: u64, n: usize, uniform: bool) -> Network {
    let half = 2.0 * (n as f64).sqrt();
    if uniform {
        gen::random_uniform_network(seed, n, half, 0.01, 2.0).unwrap()
    } else {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = Network::builder().background_noise(0.01).threshold(1.6);
        for _ in 0..n {
            let p = Point::new(rng.gen_range(-half..half), rng.gen_range(-half..half));
            b = b.station_with_power(p, rng.gen_range(0.5..2.0));
        }
        b.build().unwrap()
    }
}

/// Query points mixing area coverage, exact station positions (the
/// `{sᵢ}` clause) and near-station jitter.
fn query_batch(net: &Network, len: usize, seed: u64) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let half = 2.2 * (net.len() as f64).sqrt();
    let mut pts = Vec::with_capacity(len);
    for i in net.ids().take(32) {
        let s = net.position(i);
        pts.push(s);
        pts.push(Point::new(s.x + rng.gen_range(-0.5..0.5), s.y + 1e-3));
    }
    while pts.len() < len {
        pts.push(Point::new(
            rng.gen_range(-half..half),
            rng.gen_range(-half..half),
        ));
    }
    pts.truncate(len);
    pts
}

fn identity_models(n: usize) -> Vec<ChannelModel> {
    vec![
        ChannelModel::Deterministic,
        ChannelModel::LogNormalShadowing { sigma_db: 0.0 },
        ChannelModel::FixedGains {
            gains: vec![1.0; n],
        },
        ChannelModel::Composed(vec![
            ChannelModel::Deterministic,
            ChannelModel::LogNormalShadowing { sigma_db: 0.0 },
        ]),
    ]
}

#[test]
fn degenerate_channel_matches_locate_batch_on_fixtures() {
    for (seed, uniform) in [(3u64, true), (4, false)] {
        let net = big_network(seed, TILED_MIN_STATIONS + 37, uniform);
        let points = query_batch(&net, 700, seed ^ 0xAA);
        run_identity_contract(&net, &points);
    }
    // Small network: the untiled per-point path.
    let net = big_network(9, 24, true);
    let points = query_batch(&net, 300, 0x17);
    run_identity_contract(&net, &points);
}

fn run_identity_contract(net: &Network, points: &[Point]) {
    let n = net.len();
    let check = |name: &str, engine: &dyn QueryEngine| {
        let mut located = vec![Located::Silent; points.len()];
        engine.locate_batch(points, &mut located);
        for model in identity_models(n) {
            let mut probs = vec![f64::NAN; points.len()];
            engine
                .reception_probability_batch(
                    &model,
                    McConfig::new(17, 0xDEAD_BEEF),
                    points,
                    &mut probs,
                )
                .unwrap();
            for (i, (p, l)) in probs.iter().zip(&located).enumerate() {
                let expect: f64 = if l.station().is_some() { 1.0 } else { 0.0 };
                assert_eq!(
                    p.to_bits(),
                    expect.to_bits(),
                    "{name}: identity channel {model:?} disagrees with locate_batch at point {i}"
                );
            }
        }
    };
    check("ExactScan", &ExactScan::new(net));
    check("VoronoiAssisted", &VoronoiAssisted::new(net));
    for kernel in SimdKernel::ALL {
        if !kernel.is_supported() {
            continue;
        }
        check(
            kernel.name(),
            &SimdScan::with_kernel(SinrEvaluator::new(net), kernel),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The degenerate-channel contract over random networks, batch
    /// sizes, seeds, and both power regimes.
    #[test]
    fn degenerate_channel_proptest(seed in any::<u64>(), uniform in any::<bool>()) {
        let n = TILED_MIN_STATIONS + (seed % 50) as usize;
        let net = big_network(seed % 1000, n, uniform);
        let points = query_batch(&net, 400 + (seed % 300) as usize, seed);
        run_identity_contract(&net, &points);
    }
}

/// The executor against a from-scratch replay: per trial, rebuild a
/// `Network` with the gain-scaled powers (via the public
/// `gains_for_trial` stream) and a fresh `ExactScan`, count receptions
/// per point. Probabilities must agree bit-for-bit — this exercises the
/// cached-envelope scaling, candidate pruning, and certified decisions
/// of the real Monte-Carlo path against unarguable ground truth.
#[test]
fn monte_carlo_matches_rebuild_per_trial_replay() {
    // Log-normal only: its gains are always finite and positive, so the
    // naive baseline can rebuild a valid `Network` per trial.
    let model = ChannelModel::LogNormalShadowing { sigma_db: 5.0 };
    let trials = 24u32;
    let mc = McConfig::new(trials, 0x5EED);
    for (n, points_len) in [(TILED_MIN_STATIONS + 72, 400), (40, 200)] {
        let net = big_network(77, n, true);
        let points = query_batch(&net, points_len, 0x123);
        let engine = ExactScan::new(&net);
        let mut probs = vec![f64::NAN; points.len()];
        engine
            .reception_probability_batch(&model, mc, &points, &mut probs)
            .unwrap();

        let positions: Vec<Point> = net.ids().map(|i| net.position(i)).collect();
        let powers: Vec<f64> = net.ids().map(|i| net.power(i)).collect();
        let mut counts = vec![0u32; points.len()];
        let mut gains = vec![1.0; n];
        for t in 0..trials {
            model.gains_for_trial(mc.seed, t, &mut gains);
            let mut b = Network::builder()
                .background_noise(net.noise())
                .threshold(net.beta());
            for (p, (w, g)) in positions.iter().zip(powers.iter().zip(&gains)) {
                b = b.station_with_power(*p, w * g);
            }
            let scaled = ExactScan::new(&b.build().unwrap());
            for (c, p) in counts.iter_mut().zip(&points) {
                if scaled.locate(*p).station().is_some() {
                    *c += 1;
                }
            }
        }
        for (i, (got, c)) in probs.iter().zip(&counts).enumerate() {
            let expect = *c as f64 / trials as f64;
            assert_eq!(
                got.to_bits(),
                expect.to_bits(),
                "n={n}: MC executor disagrees with rebuild-per-trial replay at point {i}"
            );
        }
    }
}

/// Fixed per-station gain offsets are gain-deterministic: one trial,
/// exact 0/1 probabilities, equal to a fresh engine on the statically
/// scaled network.
#[test]
fn fixed_gains_match_statically_scaled_network() {
    let n = TILED_MIN_STATIONS + 16;
    let net = big_network(55, n, true);
    let points = query_batch(&net, 500, 0x77);
    // Powers of two: `w * g` is exact, so the two constructions agree
    // bit-for-bit with no rounding caveats.
    let gains: Vec<f64> = (0..n).map(|j| [0.5, 1.0, 2.0, 4.0][j % 4]).collect();
    let model = ChannelModel::FixedGains {
        gains: gains.clone(),
    };
    let mut b = Network::builder()
        .background_noise(net.noise())
        .threshold(net.beta());
    for (i, g) in net.ids().zip(&gains) {
        b = b.station_with_power(net.position(i), net.power(i) * g);
    }
    let scaled_engine = ExactScan::new(&b.build().unwrap());
    let mut located = vec![Located::Silent; points.len()];
    scaled_engine.locate_batch(&points, &mut located);

    for kernel in SimdKernel::ALL.into_iter().filter(|k| k.is_supported()) {
        let engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
        let mut probs = vec![f64::NAN; points.len()];
        engine
            .reception_probability_batch(&model, McConfig::new(64, 1), &points, &mut probs)
            .unwrap();
        for (i, (p, l)) in probs.iter().zip(&located).enumerate() {
            let expect: f64 = if l.station().is_some() { 1.0 } else { 0.0 };
            assert_eq!(
                p.to_bits(),
                expect.to_bits(),
                "{}: fixed-gain channel disagrees with scaled network at point {i}",
                kernel.name()
            );
        }
    }
}

/// Same `(model, seed)` must replay identical probabilities across
/// calls, backends, and SIMD kernels; a different seed must decorrelate.
#[test]
fn seeded_answers_are_reproducible_across_backends_and_kernels() {
    let net = big_network(13, TILED_MIN_STATIONS + 30, true);
    let points = query_batch(&net, 600, 0x44);
    let model = ChannelModel::Composed(vec![
        ChannelModel::LogNormalShadowing { sigma_db: 4.0 },
        ChannelModel::RayleighFading,
    ]);
    let mc = McConfig::new(48, 0xC0FFEE);
    let run = |engine: &dyn QueryEngine| {
        let mut probs = vec![f64::NAN; points.len()];
        engine
            .reception_probability_batch(&model, mc, &points, &mut probs)
            .unwrap();
        probs
    };
    let exact = ExactScan::new(&net);
    let reference = run(&exact);
    assert_eq!(reference, run(&exact), "repeat call must replay exactly");
    assert_eq!(
        reference,
        run(&VoronoiAssisted::new(&net)),
        "VoronoiAssisted must replay the seeded answer"
    );
    for kernel in SimdKernel::ALL.into_iter().filter(|k| k.is_supported()) {
        assert_eq!(
            reference,
            run(&SimdScan::with_kernel(SinrEvaluator::new(&net), kernel)),
            "{} must replay the seeded answer",
            kernel.name()
        );
    }
    let mut other = vec![f64::NAN; points.len()];
    exact
        .reception_probability_batch(&model, McConfig::new(48, 0xC0FFEF), &points, &mut other)
        .unwrap();
    assert_ne!(reference, other, "different seeds must decorrelate");

    // Sanity: every probability is an integer count over the trials, a
    // station's own position always receives, and values stay in [0,1].
    for (i, p) in reference.iter().enumerate() {
        assert!((0.0..=1.0).contains(p), "probability out of range: {p}");
        let scaled = p * 48.0;
        assert_eq!(scaled, scaled.round(), "non-integral trial count at {i}");
    }
    let station_probe = [net.position(StationId(0))];
    let mut at_station = [0.0];
    exact
        .reception_probability_batch(&model, mc, &station_probe, &mut at_station)
        .unwrap();
    assert_eq!(
        at_station[0], 1.0,
        "a point at a station's position receives in every trial"
    );
}

#[test]
fn quantiles_collapse_for_deterministic_channels_and_are_monotone() {
    let net = big_network(29, 60, true);
    let points = query_batch(&net, 120, 0x31);
    let station = StationId(3);
    let quantiles = [0.0, 0.25, 0.5, 0.75, 1.0];
    let engine = SimdScan::new(&net);

    let mut expected = vec![0.0; points.len()];
    engine.sinr_batch(station, &points, &mut expected);
    let mut out = vec![f64::NAN; points.len() * quantiles.len()];
    engine
        .sinr_quantiles_batch(
            &ChannelModel::Deterministic,
            McConfig::new(32, 9),
            station,
            &points,
            &quantiles,
            &mut out,
        )
        .unwrap();
    for (i, e) in expected.iter().enumerate() {
        for (qi, _) in quantiles.iter().enumerate() {
            assert_eq!(
                out[i * quantiles.len() + qi].to_bits(),
                e.to_bits(),
                "deterministic quantiles must equal sinr_batch bitwise"
            );
        }
    }

    engine
        .sinr_quantiles_batch(
            &ChannelModel::RayleighFading,
            McConfig::new(64, 9),
            station,
            &points,
            &quantiles,
            &mut out,
        )
        .unwrap();
    for i in 0..points.len() {
        let row = &out[i * quantiles.len()..(i + 1) * quantiles.len()];
        for w in row.windows(2) {
            assert!(
                w[0] <= w[1] || (w[0].is_nan() && w[1].is_nan()),
                "quantiles must be monotone, got {row:?}"
            );
        }
    }
}

#[test]
fn typed_errors_for_stale_invalid_and_unsupported() {
    let mut net = big_network(41, 20, true);
    let engine = ExactScan::new(&net);
    let points = [Point::new(0.5, 0.5)];
    let mut out = [0.0];

    // Invalid models and configs.
    let bad_sigma = ChannelModel::LogNormalShadowing { sigma_db: -2.0 };
    assert!(matches!(
        engine.reception_probability_batch(&bad_sigma, McConfig::new(4, 0), &points, &mut out),
        Err(ChannelError::InvalidChannel(_))
    ));
    let wrong_len = ChannelModel::FixedGains { gains: vec![2.0] };
    assert!(matches!(
        engine.reception_probability_batch(&wrong_len, McConfig::new(4, 0), &points, &mut out),
        Err(ChannelError::InvalidChannel(_))
    ));
    assert!(matches!(
        engine.reception_probability_batch(
            &ChannelModel::RayleighFading,
            McConfig::new(0, 0),
            &points,
            &mut out
        ),
        Err(ChannelError::InvalidChannel(_))
    ));
    assert!(matches!(
        engine.sinr_quantiles_batch(
            &ChannelModel::RayleighFading,
            McConfig::new(4, 0),
            StationId(0),
            &points,
            &[1.5],
            &mut out
        ),
        Err(ChannelError::InvalidChannel(_))
    ));

    // Staleness: mutate the source network, leave the engine behind.
    net.set_power(StationId(0), 3.0).unwrap();
    assert!(matches!(
        engine.reception_probability_batch(
            &ChannelModel::RayleighFading,
            McConfig::new(4, 0),
            &points,
            &mut out
        ),
        Err(ChannelError::Stale(_))
    ));

    // Backends without the stochastic path keep the default `Unsupported`.
    struct NoChannels;
    impl QueryEngine for NoChannels {
        fn locate(&self, _p: Point) -> Located {
            Located::Silent
        }
        fn sinr_batch(&self, _i: StationId, _points: &[Point], out: &mut [f64]) {
            out.fill(0.0);
        }
        fn freshness(&self) -> Result<(), sinr_core::LocateError> {
            Ok(())
        }
        fn revision(&self) -> u64 {
            0
        }
        fn is_stale(&self) -> bool {
            false
        }
        fn apply(&mut self, _delta: &sinr_core::NetworkDelta) -> Result<(), sinr_core::SyncError> {
            Ok(())
        }
        fn sync(&mut self, _net: &Network) -> Result<(), sinr_core::SyncError> {
            Ok(())
        }
    }
    assert!(matches!(
        NoChannels.reception_probability_batch(
            &ChannelModel::Deterministic,
            McConfig::new(1, 0),
            &points,
            &mut out
        ),
        Err(ChannelError::Unsupported(_))
    ));
}
