//! Backend-equivalence property tests for the query engine.
//!
//! For random networks — uniform and non-uniform power, `α ∈ {2, 3, 4}`,
//! `β` above and below 1 — every [`QueryEngine`] backend must agree with
//! the scalar ground truth [`sinr_core::sinr::heard_at`] on a dense point
//! sample:
//!
//! * [`ExactScan`] and [`VoronoiAssisted`] are exact backends: they must
//!   match everywhere except within numeric tolerance of a reception
//!   boundary (where the amortized one-pass arithmetic may round the
//!   `SINR = β` tie the other way);
//! * the Theorem-3 `PointLocator` (crate `sinr-pointloc`) may answer
//!   `Uncertain`, but only near the zone boundary `∂Hᵢ`; its definite
//!   answers must be correct.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use sinr_core::engine::{ExactScan, Located, QueryEngine, VoronoiAssisted};
use sinr_core::simd::{SimdKernel, SimdScan};
use sinr_core::{Network, SinrEvaluator};
use sinr_geometry::{Point, Vector};
use sinr_pointloc::{PointLocator, QdsConfig};

/// Separated station layouts (non-degenerate zones, honest numerics).
fn separated_points(seed: u64, n: usize) -> Vec<Point> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pts: Vec<Point> = Vec::with_capacity(n);
    let mut guard = 0;
    while pts.len() < n && guard < 10_000 {
        guard += 1;
        let cand = Point::new(rng.gen_range(-5.0..=5.0), rng.gen_range(-5.0..=5.0));
        if pts.iter().all(|p| p.dist(cand) >= 0.8) {
            pts.push(cand);
        }
    }
    pts
}

/// Random networks across the whole parameter space the engine claims to
/// support: uniform and per-station power, `α ∈ {2, 3, 4}`, `β` above and
/// below 1, with and without noise.
fn networks() -> impl Strategy<Value = Network> {
    (
        2usize..7,
        any::<u64>(),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
        0.0f64..0.05,
    )
        .prop_map(|(n, seed, alpha_idx, uniform, beta_low, noise)| {
            let pts = separated_points(seed, n);
            let alpha = [2.0, 3.0, 4.0][alpha_idx];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xBEEF);
            let beta = if beta_low {
                rng.gen_range(0.3..0.9)
            } else {
                rng.gen_range(1.2..4.0)
            };
            let mut b = Network::builder()
                .background_noise(noise)
                .threshold(beta)
                .path_loss(alpha);
            for p in pts {
                if uniform {
                    b = b.station(p);
                } else {
                    b = b.station_with_power(p, rng.gen_range(0.5..2.5));
                }
            }
            b.build().expect("separated_points yields ≥ 2 stations")
        })
}

/// The dense query sample: a grid over the station window plus points at
/// and just off every station (the degenerate corners).
fn sample_points(net: &Network) -> Vec<Point> {
    let mut pts = Vec::new();
    for a in -12..=12 {
        for b in -12..=12 {
            pts.push(Point::new(a as f64 * 0.5, b as f64 * 0.5));
        }
    }
    for i in net.ids() {
        let s = net.position(i);
        pts.push(s);
        pts.push(s + Vector::new(1e-7, -1e-7));
        pts.push(s + Vector::new(0.3, 0.2));
    }
    pts
}

/// True when the scalar model puts `p` within numeric tolerance of some
/// reception boundary (where one-pass and per-station arithmetic may
/// legitimately round a `SINR = β` tie differently).
fn near_decision_boundary(net: &Network, p: Point) -> bool {
    net.ids().any(|i| {
        let s = net.sinr(i, p);
        s.is_finite() && (s - net.beta()).abs() <= 1e-9 * (1.0 + net.beta())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// ExactScan, SimdScan and VoronoiAssisted agree with the scalar
    /// ground truth on the full parameter space (modulo boundary-rounding
    /// ties).
    #[test]
    fn exact_backends_match_scalar_ground_truth(net in networks()) {
        let exact = ExactScan::new(&net);
        let simd = SimdScan::new(&net);
        let voronoi = VoronoiAssisted::new(&net);
        // The weighted tree serves every power assignment.
        prop_assert!(voronoi.uses_proximity_dispatch());

        let points = sample_points(&net);
        let mut exact_out = vec![Located::Silent; points.len()];
        let mut simd_out = vec![Located::Silent; points.len()];
        let mut voronoi_out = vec![Located::Silent; points.len()];
        exact.locate_batch(&points, &mut exact_out);
        simd.locate_batch(&points, &mut simd_out);
        voronoi.locate_batch(&points, &mut voronoi_out);

        for (k, p) in points.iter().enumerate() {
            let truth = net.heard_at(*p);
            for (name, got) in [
                ("ExactScan", exact_out[k]),
                ("SimdScan", simd_out[k]),
                ("VoronoiAssisted", voronoi_out[k]),
            ] {
                prop_assert!(
                    !matches!(got, Located::Uncertain(_)),
                    "{} answered Uncertain at {} — exact backends never do", name, p
                );
                if got.station() != truth && !near_decision_boundary(&net, *p) {
                    prop_assert!(
                        false,
                        "{} disagrees with heard_at at {} in {}: {:?} vs {:?}",
                        name, p, net, got.station(), truth
                    );
                }
            }
        }
    }

    /// The weighted (power-diagram) dispatch: a network with any
    /// non-uniform power assignment dispatches through the kd-tree's
    /// nearest-*dominator* walk (`argmax Pᵢ · att(d²)` — the
    /// Observation-2.2 analogue of Kantor et al.), and its answers are
    /// **bit-identical** to `SimdScan` pinned to the same kernel (the
    /// candidate sum rides the same lanes in the same order), hence
    /// identical to `ExactScan` everywhere but `SINR = β` boundary
    /// rounding.
    #[test]
    fn non_uniform_power_uses_weighted_dispatch(
        (n, seed) in (2usize..7, any::<u64>()),
    ) {
        let pts = separated_points(seed, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xD15C);
        let mut b = Network::builder().background_noise(0.01).threshold(1.5);
        // At least one station with power ≠ 1 makes the assignment
        // non-uniform by construction.
        for (m, p) in pts.into_iter().enumerate() {
            let power = if m == 0 { 3.0 } else { rng.gen_range(0.5..2.5) };
            b = b.station_with_power(p, power);
        }
        let net = b.build().expect("≥ 2 separated stations");
        prop_assert!(!net.is_uniform_power());

        let voronoi = VoronoiAssisted::new(&net);
        prop_assert!(
            voronoi.uses_proximity_dispatch(),
            "non-uniform network dropped the weighted dispatch: {}", net
        );
        let simd = SimdScan::with_kernel(SinrEvaluator::new(&net), voronoi.kernel());
        let exact = ExactScan::new(&net);
        let points = sample_points(&net);
        let mut voronoi_out = vec![Located::Silent; points.len()];
        let mut simd_out = vec![Located::Silent; points.len()];
        let mut exact_out = vec![Located::Silent; points.len()];
        voronoi.locate_batch(&points, &mut voronoi_out);
        simd.locate_batch(&points, &mut simd_out);
        exact.locate_batch(&points, &mut exact_out);
        // Same kernel, same summation order, same argmax: exact
        // equality, boundaries included.
        prop_assert_eq!(&voronoi_out, &simd_out);
        for (k, p) in points.iter().enumerate() {
            if voronoi_out[k] != exact_out[k] {
                prop_assert!(
                    near_decision_boundary(&net, *p),
                    "weighted dispatch disagrees with ExactScan off-boundary at {} in {}: {:?} vs {:?}",
                    p, net, voronoi_out[k], exact_out[k]
                );
            }
        }
    }

    /// Per-kernel pinning of the weighted path: for every supported SIMD
    /// kernel, a `VoronoiAssisted`-shaped candidate dispatch must agree
    /// with that kernel's full scan bit-for-bit on non-uniform networks.
    /// (`VoronoiAssisted` itself always runs the detected kernel; the
    /// per-kernel loop pins the shared `candidate_scan` lanes on every
    /// width the machine has, avx512 included.)
    #[test]
    fn weighted_dispatch_bit_identical_per_kernel(
        (n, seed) in (3usize..8, any::<u64>()),
    ) {
        let pts = separated_points(seed, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xA11A);
        let mut b = Network::builder()
            .background_noise(0.02)
            .threshold(1.2)
            .path_loss(if n % 2 == 0 { 2.0 } else { 3.0 });
        for p in pts {
            b = b.station_with_power(p, rng.gen_range(0.25..4.0));
        }
        let net = b.build().expect("≥ 3 separated stations");
        let voronoi = VoronoiAssisted::new(&net);
        let points = sample_points(&net);
        let mut voronoi_out = vec![Located::Silent; points.len()];
        voronoi.locate_batch(&points, &mut voronoi_out);
        for kernel in SimdKernel::ALL {
            if !kernel.is_supported() || kernel == voronoi.kernel() {
                continue;
            }
            let simd = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
            let mut simd_out = vec![Located::Silent; points.len()];
            simd.locate_batch(&points, &mut simd_out);
            for (k, p) in points.iter().enumerate() {
                if voronoi_out[k] != simd_out[k] {
                    prop_assert!(
                        near_decision_boundary(&net, *p),
                        "kernel {} disagrees with weighted dispatch off-boundary at {}",
                        kernel.name(), p
                    );
                }
            }
        }
    }

    /// The scalar-consistency of `sinr_batch` across backends.
    #[test]
    fn sinr_batch_matches_scalar(net in networks()) {
        let exact = ExactScan::new(&net);
        let points = sample_points(&net);
        let mut out = vec![0.0; points.len()];
        for i in net.ids() {
            exact.sinr_batch(i, &points, &mut out);
            for (p, got) in points.iter().zip(&out) {
                let expected = net.sinr(i, *p);
                if expected.is_finite() {
                    prop_assert!(
                        (got - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                        "sinr_batch({}, {}) = {} vs scalar {}", i, p, got, expected
                    );
                } else {
                    prop_assert!(got.is_infinite(), "sinr_batch({}, {}) = {} vs ∞", i, p, got);
                }
            }
        }
    }
}

/// Theorem-3 preconditions: uniform power, `α = 2`, `β > 1`.
fn theorem3_networks() -> impl Strategy<Value = Network> {
    (2usize..5, any::<u64>(), 0.0f64..0.03).prop_map(|(n, seed, noise)| {
        let pts = separated_points(seed, n);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xF00D);
        let beta = rng.gen_range(1.3..3.5);
        Network::uniform(pts, noise, beta).expect("valid network")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The QDS backend through the shared `QueryEngine` interface:
    /// definite answers match the scalar ground truth; `Uncertain` is
    /// only allowed near `∂Hᵢ` (checked radially against the zone's
    /// boundary radius — the `ε = 0.2` band is far narrower than the
    /// 50% slack asserted here).
    #[test]
    fn qds_backend_definite_answers_correct_uncertain_only_near_boundary(
        net in theorem3_networks(),
    ) {
        let ds = match PointLocator::build(&net, &QdsConfig::with_epsilon(0.2)) {
            Ok(ds) => ds,
            // Resource-budget failures are a build concern, not an
            // equivalence concern.
            Err(_) => return Ok(()),
        };
        let points = sample_points(&net);
        let mut out = vec![Located::Silent; points.len()];
        QueryEngine::locate_batch(&ds, &points, &mut out);

        for (p, got) in points.iter().zip(&out) {
            match got {
                Located::Reception(i) => prop_assert!(
                    net.is_heard(*i, *p),
                    "QDS claimed reception of {} at {} in {}", i, p, net
                ),
                Located::Silent => prop_assert_eq!(
                    net.heard_at(*p), None,
                    "QDS claimed silence at {} in {}", p, net
                ),
                Located::Uncertain(i) => {
                    // Near-boundary check: the point's radial distance
                    // from the station is within 50% of the zone's
                    // boundary radius along the same direction.
                    let s = net.position(*i);
                    let r = s.dist(*p);
                    prop_assert!(r > 0.0, "Uncertain at the station itself");
                    let dir = *p - s;
                    let theta = dir.y.atan2(dir.x);
                    let zone = net.reception_zone(*i);
                    let rb = zone.boundary_radius(theta);
                    prop_assert!(
                        rb.is_some(),
                        "Uncertain({}) at {} but the zone has no boundary radius", i, p
                    );
                    let rb = rb.unwrap();
                    prop_assert!(
                        (r - rb).abs() <= 0.5 * rb + 1e-9,
                        "Uncertain({}) at {} is not near ∂H: r = {}, boundary radius = {}",
                        i, p, r, rb
                    );
                }
            }
        }
    }
}
