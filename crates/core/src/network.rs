//! The wireless network `A = ⟨S, ψ, N, β⟩` and its builder.

use crate::power::PowerAssignment;
use crate::sinr;
use crate::station::{Station, StationId};
use crate::zone::ReceptionZone;
use sinr_geometry::{BBox, Point, Similarity};
use std::fmt;

/// Errors produced when building or transforming a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The paper's model assumes at least two stations (`n ≥ 2`).
    TooFewStations(usize),
    /// Background noise must be non-negative and finite.
    InvalidNoise(f64),
    /// The reception threshold must be strictly positive and finite.
    InvalidThreshold(f64),
    /// The path-loss exponent must be strictly positive and finite.
    InvalidPathLoss(f64),
    /// A transmit power was invalid (message carries details).
    InvalidPower(String),
    /// A station position was not finite.
    InvalidPosition(usize),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::TooFewStations(n) => {
                write!(f, "network needs at least 2 stations, got {n}")
            }
            NetworkError::InvalidNoise(v) => write!(f, "background noise must be ≥ 0, got {v}"),
            NetworkError::InvalidThreshold(v) => {
                write!(f, "reception threshold must be > 0, got {v}")
            }
            NetworkError::InvalidPathLoss(v) => {
                write!(f, "path-loss exponent must be > 0, got {v}")
            }
            NetworkError::InvalidPower(msg) => write!(f, "invalid power assignment: {msg}"),
            NetworkError::InvalidPosition(i) => {
                write!(f, "station {i} has a non-finite position")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A wireless network `A = ⟨S, ψ, N, β⟩` with path-loss exponent `α`.
///
/// Immutable once built; the "surgery" methods (silencing, adding or
/// relocating stations — the moves used throughout the paper's proofs and
/// figures) return new networks.
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_geometry::Point;
///
/// // Figure 1-style network: three uniform stations.
/// let net = Network::builder()
///     .station(Point::new(-2.0, 0.0))
///     .station(Point::new(2.0, 0.0))
///     .station(Point::new(0.0, 3.0))
///     .background_noise(0.01)
///     .threshold(1.5)
///     .build()?;
/// assert_eq!(net.len(), 3);
/// assert!(net.is_uniform_power());
/// # Ok::<(), sinr_core::NetworkError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    positions: Vec<Point>,
    power: PowerAssignment,
    noise: f64,
    beta: f64,
    alpha: f64,
}

impl Network {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// Convenience constructor for a *uniform power* network with the
    /// paper's default path loss `α = 2`.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if validation fails (see
    /// [`NetworkBuilder::build`]).
    pub fn uniform(positions: Vec<Point>, noise: f64, beta: f64) -> Result<Network, NetworkError> {
        let mut b = Network::builder().background_noise(noise).threshold(beta);
        for p in positions {
            b = b.station(p);
        }
        b.build()
    }

    /// Number of stations `n`.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the network has no stations (never true for a built
    /// network, which has `n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: StationId) -> Point {
        self.positions[i.0]
    }

    /// All station positions in index order.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The station record for index `i`.
    pub fn station(&self, i: StationId) -> Station {
        Station::new(i, self.positions[i.0], self.power.power(i.0))
    }

    /// Iterates over all stations.
    pub fn stations(&self) -> impl Iterator<Item = Station> + '_ {
        (0..self.len()).map(|i| self.station(StationId(i)))
    }

    /// All station ids `s₀ … s_{n−1}`.
    pub fn ids(&self) -> impl Iterator<Item = StationId> {
        (0..self.len()).map(StationId)
    }

    /// The transmit power `ψᵢ` of station `i`.
    pub fn power(&self, i: StationId) -> f64 {
        self.power.power(i.0)
    }

    /// The power assignment.
    pub fn power_assignment(&self) -> &PowerAssignment {
        &self.power
    }

    /// Background noise `N ≥ 0`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Reception threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Path-loss exponent `α` (2 unless overridden).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when every station transmits with power 1 (`ψ = 1̄`).
    pub fn is_uniform_power(&self) -> bool {
        self.power.is_uniform()
    }

    /// True for the paper's *trivial* network: `|S| = 2`, `N = 0`, `β = 1`
    /// (and uniform power). Trivial networks are the single case with
    /// unbounded reception zones (each `Hᵢ` is a half-plane).
    pub fn is_trivial(&self) -> bool {
        self.len() == 2 && self.noise == 0.0 && self.beta == 1.0 && self.is_uniform_power()
    }

    /// True when the theorem preconditions of the paper hold: uniform
    /// power, `α = 2`, `β ≥ 1`. Under these, Theorem 1 guarantees convex
    /// reception zones (and for `β > 1`, Theorem 2 guarantees fatness).
    pub fn satisfies_convexity_preconditions(&self) -> bool {
        self.is_uniform_power() && self.alpha == 2.0 && self.beta >= 1.0
    }

    /// The minimum distance from station `i` to any other station — the
    /// `κ` of Theorem 4.1.
    ///
    /// Returns 0 when another station shares the location.
    pub fn kappa(&self, i: StationId) -> f64 {
        let p = self.position(i);
        self.positions
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i.0)
            .map(|(_, q)| p.dist(*q))
            .fold(f64::INFINITY, f64::min)
    }

    /// True if some other station shares the location of `i` (then
    /// `Hᵢ = {sᵢ}` degenerates to a point).
    pub fn is_colocated(&self, i: StationId) -> bool {
        self.kappa(i) == 0.0
    }

    /// The bounding box of the station positions.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.positions.iter().copied()).expect("n ≥ 2")
    }

    // --- Reception API (delegates to the sinr module) -------------------

    /// Energy `E(sᵢ, p) = ψᵢ·dist(sᵢ, p)^{−α}` (infinite at `p = sᵢ`).
    pub fn energy(&self, i: StationId, p: Point) -> f64 {
        sinr::energy(self, i, p)
    }

    /// Interference to `sᵢ` at `p`: `I(sᵢ, p) = Σ_{j≠i} E(sⱼ, p)`.
    pub fn interference(&self, i: StationId, p: Point) -> f64 {
        sinr::interference(self, i, p)
    }

    /// The SINR of station `i` at `p` (Eq. (1) of the paper).
    pub fn sinr(&self, i: StationId, p: Point) -> f64 {
        sinr::sinr(self, i, p)
    }

    /// The fundamental reception rule: is `sᵢ` heard at `p`?
    /// (`SINR(sᵢ, p) ≥ β`, with `sᵢ ∈ Hᵢ` by definition.)
    pub fn is_heard(&self, i: StationId, p: Point) -> bool {
        sinr::is_heard(self, i, p)
    }

    /// Which station (if any) is heard at `p`?
    ///
    /// For `β > 1` at most one station can be heard anywhere, so the
    /// answer is unique; for `β ≤ 1` the strongest heard station is
    /// returned.
    pub fn heard_at(&self, p: Point) -> Option<StationId> {
        sinr::heard_at(self, p)
    }

    /// A handle onto the reception zone `Hᵢ`.
    pub fn reception_zone(&self, i: StationId) -> ReceptionZone<'_> {
        ReceptionZone::new(self, i)
    }

    /// The recommended batched query backend for this network: a
    /// [`VoronoiAssisted`](crate::engine::VoronoiAssisted) engine
    /// (kd-tree dispatch for uniform power, exact-scan fallback
    /// otherwise). Build it once, then use
    /// [`QueryEngine::locate_batch`](crate::engine::QueryEngine::locate_batch)
    /// for many points — `O(n)` per point instead of the scalar `O(n²)`.
    pub fn query_engine(&self) -> crate::engine::VoronoiAssisted {
        crate::engine::VoronoiAssisted::new(self)
    }

    // --- Surgery (the paper's proof moves) -------------------------------

    /// The network with station `i` removed ("silenced", as in
    /// Figure 1(C)). Station indices above `i` shift down by one.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooFewStations`] if fewer than two stations
    /// would remain.
    pub fn without_station(&self, i: StationId) -> Result<Network, NetworkError> {
        if self.len() <= 2 {
            return Err(NetworkError::TooFewStations(self.len().saturating_sub(1)));
        }
        let keep: Vec<bool> = (0..self.len()).map(|j| j != i.0).collect();
        let positions = self
            .positions
            .iter()
            .zip(keep.iter())
            .filter_map(|(p, k)| k.then_some(*p))
            .collect();
        Ok(Network {
            positions,
            power: self.power.filtered(&keep),
            ..self.clone()
        })
    }

    /// The network with an extra station at `position` with power `power`
    /// (used by the noise-elimination reduction of Section 3.4 and by
    /// Lemma 3.10's replacement construction).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on an invalid power or position.
    pub fn with_station(&self, position: Point, power: f64) -> Result<Network, NetworkError> {
        if !(power > 0.0 && power.is_finite()) {
            return Err(NetworkError::InvalidPower(format!("power {power}")));
        }
        if !position.is_finite() {
            return Err(NetworkError::InvalidPosition(self.len()));
        }
        let mut positions = self.positions.clone();
        positions.push(position);
        Ok(Network {
            power: self.power.extended(self.positions.len(), power),
            positions,
            ..self.clone()
        })
    }

    /// The network with station `i` moved to `position` (Figure 1(B)).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidPosition`] for a non-finite target.
    pub fn with_station_moved(
        &self,
        i: StationId,
        position: Point,
    ) -> Result<Network, NetworkError> {
        if !position.is_finite() {
            return Err(NetworkError::InvalidPosition(i.0));
        }
        let mut positions = self.positions.clone();
        positions[i.0] = position;
        Ok(Network {
            positions,
            ..self.clone()
        })
    }

    /// The network with the background noise replaced.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidNoise`] for negative or non-finite
    /// noise.
    pub fn with_noise(&self, noise: f64) -> Result<Network, NetworkError> {
        if !(noise >= 0.0 && noise.is_finite()) {
            return Err(NetworkError::InvalidNoise(noise));
        }
        Ok(Network {
            noise,
            ..self.clone()
        })
    }

    /// Applies a similarity map `f` to the network per **Lemma 2.3**: all
    /// stations are mapped through `f` and the noise is divided by `σ²`
    /// (where `σ` is the scale of `f`), so that
    /// `SINR_A(sᵢ, p) = SINR_{f(A)}(f(sᵢ), f(p))` for all `i, p`.
    pub fn transformed(&self, f: &Similarity) -> Network {
        let sigma = f.scale();
        Network {
            positions: self.positions.iter().map(|p| f.apply(*p)).collect(),
            noise: self.noise / (sigma * sigma),
            ..self.clone()
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, N={}, β={}, α={}, {})",
            self.len(),
            self.noise,
            self.beta,
            self.alpha,
            if self.is_uniform_power() {
                "uniform"
            } else {
                "per-station power"
            }
        )
    }
}

/// Builder for [`Network`] (non-consuming, per C-BUILDER).
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_geometry::Point;
///
/// let mut b = Network::builder().threshold(6.0); // β ≈ 6, the textbook value
/// for k in 0..4 {
///     b = b.station(Point::new(k as f64, 0.0));
/// }
/// let net = b.build()?;
/// assert_eq!(net.len(), 4);
/// assert_eq!(net.beta(), 6.0);
/// assert_eq!(net.alpha(), 2.0);
/// # Ok::<(), sinr_core::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    positions: Vec<Point>,
    powers: Option<Vec<f64>>,
    noise: f64,
    beta: f64,
    alpha: f64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder::new()
    }
}

impl NetworkBuilder {
    /// Creates a builder with the paper's defaults: no noise, `β = 1`,
    /// `α = 2`, uniform power.
    pub fn new() -> Self {
        NetworkBuilder {
            positions: Vec::new(),
            powers: None,
            noise: 0.0,
            beta: 1.0,
            alpha: 2.0,
        }
    }

    /// Adds a station with power 1 at `position`.
    pub fn station(mut self, position: Point) -> Self {
        self.positions.push(position);
        if let Some(ps) = &mut self.powers {
            ps.push(1.0);
        }
        self
    }

    /// Adds a station with the given transmit power at `position`.
    pub fn station_with_power(mut self, position: Point, power: f64) -> Self {
        if self.powers.is_none() {
            self.powers = Some(vec![1.0; self.positions.len()]);
        }
        self.positions.push(position);
        self.powers.as_mut().expect("just initialised").push(power);
        self
    }

    /// Adds many uniform-power stations.
    pub fn stations<I: IntoIterator<Item = Point>>(mut self, positions: I) -> Self {
        for p in positions {
            self = self.station(p);
        }
        self
    }

    /// Sets the background noise `N ≥ 0` (default 0).
    pub fn background_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the reception threshold `β` (default 1). The paper's theorems
    /// need `β ≥ 1`; smaller values are allowed for experiments such as
    /// the non-convex diagram of Figure 5.
    pub fn threshold(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the path-loss exponent `α` (default 2 — the paper's setting;
    /// `2 ≤ α ≤ 4` is the physically plausible range).
    pub fn path_loss(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Validates and builds the network.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::TooFewStations`] — fewer than 2 stations;
    /// * [`NetworkError::InvalidNoise`] — negative or non-finite noise;
    /// * [`NetworkError::InvalidThreshold`] — non-positive threshold;
    /// * [`NetworkError::InvalidPathLoss`] — non-positive exponent;
    /// * [`NetworkError::InvalidPower`] — a non-positive station power;
    /// * [`NetworkError::InvalidPosition`] — a non-finite coordinate.
    pub fn build(&self) -> Result<Network, NetworkError> {
        if self.positions.len() < 2 {
            return Err(NetworkError::TooFewStations(self.positions.len()));
        }
        if !(self.noise >= 0.0 && self.noise.is_finite()) {
            return Err(NetworkError::InvalidNoise(self.noise));
        }
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(NetworkError::InvalidThreshold(self.beta));
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(NetworkError::InvalidPathLoss(self.alpha));
        }
        for (i, p) in self.positions.iter().enumerate() {
            if !p.is_finite() {
                return Err(NetworkError::InvalidPosition(i));
            }
        }
        let power = match &self.powers {
            None => PowerAssignment::Uniform,
            Some(v) => {
                let pa = PowerAssignment::PerStation(v.clone());
                pa.validate(self.positions.len())
                    .map_err(NetworkError::InvalidPower)?;
                if pa.is_uniform() {
                    PowerAssignment::Uniform
                } else {
                    pa
                }
            }
        };
        Ok(Network {
            positions: self.positions.clone(),
            power,
            noise: self.noise,
            beta: self.beta,
            alpha: self.alpha,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_station_net(beta: f64) -> Network {
        Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, beta).unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Network::builder().station(Point::ORIGIN).build(),
            Err(NetworkError::TooFewStations(1))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .background_noise(-1.0)
                .build(),
            Err(NetworkError::InvalidNoise(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .threshold(0.0)
                .build(),
            Err(NetworkError::InvalidThreshold(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .path_loss(-2.0)
                .build(),
            Err(NetworkError::InvalidPathLoss(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station_with_power(Point::new(1.0, 0.0), -5.0)
                .build(),
            Err(NetworkError::InvalidPower(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(f64::NAN, 0.0))
                .build(),
            Err(NetworkError::InvalidPosition(1))
        ));
    }

    #[test]
    fn accessors() {
        let net = two_station_net(2.0);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.position(StationId(1)), Point::new(4.0, 0.0));
        assert_eq!(net.power(StationId(0)), 1.0);
        assert_eq!(net.beta(), 2.0);
        assert_eq!(net.alpha(), 2.0);
        assert_eq!(net.noise(), 0.0);
        assert!(net.is_uniform_power());
        assert_eq!(net.stations().count(), 2);
        assert_eq!(net.ids().count(), 2);
        assert_eq!(net.kappa(StationId(0)), 4.0);
        assert!(!net.is_colocated(StationId(0)));
    }

    #[test]
    fn triviality() {
        assert!(two_station_net(1.0).is_trivial());
        assert!(!two_station_net(2.0).is_trivial());
        let noisy = Network::uniform(vec![Point::ORIGIN, Point::new(1.0, 0.0)], 0.5, 1.0).unwrap();
        assert!(!noisy.is_trivial());
    }

    #[test]
    fn preconditions() {
        assert!(two_station_net(1.0).satisfies_convexity_preconditions());
        assert!(two_station_net(6.0).satisfies_convexity_preconditions());
        assert!(!two_station_net(0.3).satisfies_convexity_preconditions());
        let nonuniform = Network::builder()
            .station(Point::ORIGIN)
            .station_with_power(Point::new(1.0, 0.0), 2.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert!(!nonuniform.satisfies_convexity_preconditions());
        let alpha4 = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(1.0, 0.0))
            .path_loss(4.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert!(!alpha4.satisfies_convexity_preconditions());
    }

    #[test]
    fn surgery_remove_add_move() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::new(4.0, 0.0), Point::new(0.0, 4.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let smaller = net.without_station(StationId(2)).unwrap();
        assert_eq!(smaller.len(), 2);
        assert_eq!(smaller.position(StationId(1)), Point::new(4.0, 0.0));
        // removing from a 2-station network fails
        assert!(smaller.without_station(StationId(0)).is_err());
        // adding
        let bigger = net.with_station(Point::new(2.0, 2.0), 1.0).unwrap();
        assert_eq!(bigger.len(), 4);
        assert!(bigger.is_uniform_power());
        let weighted = net.with_station(Point::new(2.0, 2.0), 3.0).unwrap();
        assert!(!weighted.is_uniform_power());
        assert_eq!(weighted.power(StationId(3)), 3.0);
        assert!(net.with_station(Point::new(1.0, 1.0), 0.0).is_err());
        // moving
        let moved = net
            .with_station_moved(StationId(0), Point::new(-1.0, -1.0))
            .unwrap();
        assert_eq!(moved.position(StationId(0)), Point::new(-1.0, -1.0));
        assert_eq!(moved.len(), 3);
    }

    #[test]
    fn lemma_2_3_invariance() {
        // SINR is invariant under rotation+translation+scaling with noise
        // divided by σ².
        let net = Network::uniform(
            vec![
                Point::new(1.0, 2.0),
                Point::new(-2.0, 0.5),
                Point::new(3.0, -1.0),
            ],
            0.07,
            1.8,
        )
        .unwrap();
        let f = Similarity::new(0.9, 2.5, sinr_geometry::Vector::new(3.0, -4.0));
        let mapped = net.transformed(&f);
        assert!((mapped.noise() - 0.07 / 6.25).abs() < 1e-12);
        for &(x, y) in &[(0.3, 0.4), (-1.0, 2.0), (2.0, 2.0)] {
            let p = Point::new(x, y);
            for i in net.ids() {
                let lhs = net.sinr(i, p);
                let rhs = mapped.sinr(i, f.apply(p));
                assert!(
                    (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()),
                    "Lemma 2.3 violated at {p} for {i}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn bbox_and_display() {
        let net = two_station_net(2.0);
        let bb = net.bbox();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(4.0, 0.0));
        assert!(format!("{net}").contains("n=2"));
    }

    #[test]
    fn colocated_stations_detected() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(1.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        assert!(net.is_colocated(StationId(0)));
        assert!(net.is_colocated(StationId(1)));
        assert!(!net.is_colocated(StationId(2)));
    }
}
