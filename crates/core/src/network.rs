//! The wireless network `A = ⟨S, ψ, N, β⟩`, its builder, and the
//! epoch-versioned dynamic-surgery machinery.
//!
//! ## Epochs and deltas
//!
//! The paper notes that the SINR diagram "changes dynamically with time"
//! (Section 1.1) and leaves dynamic settings open (Section 1.4). This
//! module makes the model *mutable in place*: every [`Network`] carries a
//! monotonically increasing **revision** counter (its *epoch*), and the
//! in-place surgery operations — [`Network::add_station`],
//! [`Network::remove_station`], [`Network::move_station`],
//! [`Network::set_power`] — bump it and emit a [`NetworkDelta`]
//! describing exactly what changed. Query engines record the revision
//! they were built at and **refuse to answer for a stale network**
//! (checked at query time); a delta can be
//! [`apply`](crate::engine::QueryEngine::apply)-ed to bring an engine
//! back in sync incrementally instead of rebuilding it.
//!
//! Removal is by **swap-remove**: the last station moves into the freed
//! index, so only one index is disturbed per removal (and engines can
//! patch their structure-of-arrays columns in `O(1)`). Callers that need
//! to follow a station across removals use the stable
//! [`StationKey`](crate::StationKey) handles
//! ([`Network::station_key`] / [`Network::station_by_key`]).
//!
//! The classic immutable surgery ([`Network::with_station`],
//! [`Network::with_station_moved`], [`Network::without_station`]) remains
//! as the escape hatch for the paper's proof moves; the first two are now
//! thin wrappers over the delta machinery (clone + in-place op).

use crate::power::PowerAssignment;
use crate::sinr;
use crate::station::{Station, StationId, StationKey};
use crate::zone::ReceptionZone;
use sinr_geometry::{BBox, Point, Similarity};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Errors produced when building or transforming a [`Network`].
#[derive(Debug, Clone, PartialEq)]
pub enum NetworkError {
    /// The paper's model assumes at least two stations (`n ≥ 2`).
    TooFewStations(usize),
    /// Background noise must be non-negative and finite.
    InvalidNoise(f64),
    /// The reception threshold must be strictly positive and finite.
    InvalidThreshold(f64),
    /// The path-loss exponent must be strictly positive and finite.
    InvalidPathLoss(f64),
    /// A transmit power was invalid (message carries details).
    InvalidPower(String),
    /// A station position was not finite.
    InvalidPosition(usize),
    /// A surgery operation named a station index the network does not
    /// have.
    StationOutOfRange(usize),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::TooFewStations(n) => {
                write!(f, "network needs at least 2 stations, got {n}")
            }
            NetworkError::InvalidNoise(v) => write!(f, "background noise must be ≥ 0, got {v}"),
            NetworkError::InvalidThreshold(v) => {
                write!(f, "reception threshold must be > 0, got {v}")
            }
            NetworkError::InvalidPathLoss(v) => {
                write!(f, "path-loss exponent must be > 0, got {v}")
            }
            NetworkError::InvalidPower(msg) => write!(f, "invalid power assignment: {msg}"),
            NetworkError::InvalidPosition(i) => {
                write!(f, "station {i} has a non-finite position")
            }
            NetworkError::StationOutOfRange(i) => {
                write!(f, "station index {i} is out of range")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// One in-place surgery step, described precisely enough for a query
/// engine to patch itself instead of rebuilding.
///
/// Produced by [`Network::add_station`], [`Network::remove_station`],
/// [`Network::move_station`] and [`Network::set_power`]; consumed by
/// [`QueryEngine::apply`](crate::engine::QueryEngine::apply). A delta is
/// bound to the network instance that emitted it (engines reject deltas
/// from any other network) and to one revision step
/// ([`NetworkDelta::from_revision`] → [`NetworkDelta::to_revision`]), so
/// deltas must be applied in emission order with none skipped.
#[derive(Debug, Clone)]
pub struct NetworkDelta {
    from_revision: u64,
    to_revision: u64,
    uniform_after: bool,
    op: DeltaOp,
    /// Identity of the emitting network (pointer-compared by engines so a
    /// delta can never be applied to an engine of a different network).
    source: Arc<AtomicU64>,
}

impl NetworkDelta {
    /// The network revision this delta applies on top of.
    pub fn from_revision(&self) -> u64 {
        self.from_revision
    }

    /// The network revision reached after this delta.
    pub fn to_revision(&self) -> u64 {
        self.to_revision
    }

    /// Whether the power assignment is uniform *after* this delta (the
    /// [`VoronoiAssisted`](crate::engine::VoronoiAssisted) dispatch
    /// contract is re-checked against this on every application).
    pub fn uniform_after(&self) -> bool {
        self.uniform_after
    }

    /// What changed.
    pub fn op(&self) -> &DeltaOp {
        &self.op
    }

    /// True when `cell` is the epoch cell of the emitting network.
    pub(crate) fn is_from(&self, cell: &Arc<AtomicU64>) -> bool {
        Arc::ptr_eq(&self.source, cell)
    }
}

/// The operation a [`NetworkDelta`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// A station was appended at index `id` (the previous station count).
    Add {
        /// Index of the new station.
        id: StationId,
        /// Its stable key.
        key: StationKey,
        /// Its position.
        position: Point,
        /// Its transmit power.
        power: f64,
    },
    /// Station `id` was removed by swap-remove: the station formerly at
    /// `last_index` (the old `n − 1`) now occupies index `id` (unless
    /// `id == last_index`, in which case nothing moved).
    Remove {
        /// Index the station was removed from.
        id: StationId,
        /// The old last index whose station swapped into `id`.
        last_index: usize,
        /// Position of the removed station.
        position: Point,
        /// Power of the removed station.
        power: f64,
    },
    /// Station `id` was relocated.
    Move {
        /// The station.
        id: StationId,
        /// Where it was.
        from: Point,
        /// Where it is now.
        to: Point,
    },
    /// Station `id` changed transmit power.
    SetPower {
        /// The station.
        id: StationId,
        /// The previous power.
        from: f64,
        /// The new power.
        to: f64,
    },
}

/// A requested in-place surgery step, in plain serializable form.
///
/// [`SurgeryOp`] is the *request* shape of the dynamic path, the way
/// [`DeltaOp`] is the *record* shape: a caller (a test harness, a replay
/// log, a network client of `sinr-server`) describes what it wants done,
/// [`Network::apply_op`] performs it, and the emitted [`NetworkDelta`]
/// records what actually happened (swap-remove index discipline,
/// uniformity after, revision fencing).
///
/// Ops carry no revision and no instance binding — validation happens at
/// application time against the network they are applied to. The binary
/// wire encoding ([`SurgeryOp::encode_into`] / [`SurgeryOp::decode`]) is
/// what `sinr-server`'s `Mutate` frames carry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurgeryOp {
    /// Append a station (mirrors [`Network::add_station`]).
    Add {
        /// Where the new station transmits from.
        position: Point,
        /// Its transmit power.
        power: f64,
    },
    /// Remove the station at `id` by swap-remove (mirrors
    /// [`Network::remove_station`]).
    Remove {
        /// The station to remove.
        id: StationId,
    },
    /// Relocate station `id` (mirrors [`Network::move_station`]).
    Move {
        /// The station to move.
        id: StationId,
        /// Its new position.
        to: Point,
    },
    /// Change station `id`'s transmit power (mirrors
    /// [`Network::set_power`]).
    SetPower {
        /// The station.
        id: StationId,
        /// Its new power.
        power: f64,
    },
}

/// Wire tags of the [`SurgeryOp`] variants (one byte each).
const OP_TAG_ADD: u8 = 0;
const OP_TAG_REMOVE: u8 = 1;
const OP_TAG_MOVE: u8 = 2;
const OP_TAG_SET_POWER: u8 = 3;

/// Why a [`SurgeryOp`] could not be decoded from bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the op did.
    Truncated {
        /// How many more bytes the op needed.
        missing: usize,
    },
    /// The leading tag byte does not name a [`SurgeryOp`] variant.
    UnknownOpTag(u8),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { missing } => {
                write!(f, "surgery op truncated: {missing} more bytes needed")
            }
            WireError::UnknownOpTag(tag) => write!(f, "unknown surgery-op tag {tag:#04x}"),
        }
    }
}

impl std::error::Error for WireError {}

impl SurgeryOp {
    /// Appends the op's binary wire form (tag byte + little-endian
    /// fields) to `buf`. The inverse of [`SurgeryOp::decode`].
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        match self {
            SurgeryOp::Add { position, power } => {
                buf.push(OP_TAG_ADD);
                buf.extend_from_slice(&position.x.to_le_bytes());
                buf.extend_from_slice(&position.y.to_le_bytes());
                buf.extend_from_slice(&power.to_le_bytes());
            }
            SurgeryOp::Remove { id } => {
                buf.push(OP_TAG_REMOVE);
                buf.extend_from_slice(&(id.0 as u32).to_le_bytes());
            }
            SurgeryOp::Move { id, to } => {
                buf.push(OP_TAG_MOVE);
                buf.extend_from_slice(&(id.0 as u32).to_le_bytes());
                buf.extend_from_slice(&to.x.to_le_bytes());
                buf.extend_from_slice(&to.y.to_le_bytes());
            }
            SurgeryOp::SetPower { id, power } => {
                buf.push(OP_TAG_SET_POWER);
                buf.extend_from_slice(&(id.0 as u32).to_le_bytes());
                buf.extend_from_slice(&power.to_le_bytes());
            }
        }
    }

    /// Decodes one op from the front of `bytes`, returning it together
    /// with the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// [`WireError::Truncated`] when `bytes` ends mid-op;
    /// [`WireError::UnknownOpTag`] for an unrecognized tag byte. Decoding
    /// never panics on adversarial input (non-finite floats are *not*
    /// rejected here — they fail [`Network::apply_op`]'s validation, the
    /// single authority on model invariants).
    pub fn decode(bytes: &[u8]) -> Result<(SurgeryOp, usize), WireError> {
        fn f64_at(bytes: &[u8], at: usize) -> Result<f64, WireError> {
            let end = at + 8;
            if bytes.len() < end {
                return Err(WireError::Truncated {
                    missing: end - bytes.len(),
                });
            }
            Ok(f64::from_le_bytes(bytes[at..end].try_into().expect("8")))
        }
        fn u32_at(bytes: &[u8], at: usize) -> Result<u32, WireError> {
            let end = at + 4;
            if bytes.len() < end {
                return Err(WireError::Truncated {
                    missing: end - bytes.len(),
                });
            }
            Ok(u32::from_le_bytes(bytes[at..end].try_into().expect("4")))
        }
        let Some(&tag) = bytes.first() else {
            return Err(WireError::Truncated { missing: 1 });
        };
        match tag {
            OP_TAG_ADD => Ok((
                SurgeryOp::Add {
                    position: Point::new(f64_at(bytes, 1)?, f64_at(bytes, 9)?),
                    power: f64_at(bytes, 17)?,
                },
                25,
            )),
            OP_TAG_REMOVE => Ok((
                SurgeryOp::Remove {
                    id: StationId(u32_at(bytes, 1)? as usize),
                },
                5,
            )),
            OP_TAG_MOVE => Ok((
                SurgeryOp::Move {
                    id: StationId(u32_at(bytes, 1)? as usize),
                    to: Point::new(f64_at(bytes, 5)?, f64_at(bytes, 13)?),
                },
                21,
            )),
            OP_TAG_SET_POWER => Ok((
                SurgeryOp::SetPower {
                    id: StationId(u32_at(bytes, 1)? as usize),
                    power: f64_at(bytes, 5)?,
                },
                13,
            )),
            other => Err(WireError::UnknownOpTag(other)),
        }
    }
}

/// A batched surgery application that failed partway (see
/// [`Network::apply_ops`]): the ops before `index` were applied and
/// their deltas are returned so engines can still be brought in sync
/// with the partially mutated network.
#[derive(Debug, Clone)]
pub struct BatchSurgeryError {
    /// Deltas of the successfully applied prefix (in emission order).
    pub applied: Vec<NetworkDelta>,
    /// Index of the op that failed.
    pub index: usize,
    /// Why it failed.
    pub error: NetworkError,
}

impl fmt::Display for BatchSurgeryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "surgery op #{} failed after {} applied: {}",
            self.index,
            self.applied.len(),
            self.error
        )
    }
}

impl std::error::Error for BatchSurgeryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// A wireless network `A = ⟨S, ψ, N, β⟩` with path-loss exponent `α`.
///
/// The *physics* fields are immutable after [`NetworkBuilder::build`];
/// the station set is mutable through the epoch-versioned in-place
/// surgery ops ([`Network::add_station`], [`Network::remove_station`],
/// [`Network::move_station`], [`Network::set_power`] — see the [module
/// docs](self)), while the classic copying surgery (silencing, adding or
/// relocating stations — the moves used throughout the paper's proofs
/// and figures) returns new networks.
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_geometry::Point;
///
/// // Figure 1-style network: three uniform stations.
/// let net = Network::builder()
///     .station(Point::new(-2.0, 0.0))
///     .station(Point::new(2.0, 0.0))
///     .station(Point::new(0.0, 3.0))
///     .background_noise(0.01)
///     .threshold(1.5)
///     .build()?;
/// assert_eq!(net.len(), 3);
/// assert!(net.is_uniform_power());
/// # Ok::<(), sinr_core::NetworkError>(())
/// ```
#[derive(Debug)]
pub struct Network {
    positions: Vec<Point>,
    power: PowerAssignment,
    noise: f64,
    beta: f64,
    alpha: f64,
    /// Stable per-station keys, index-aligned with `positions`.
    keys: Vec<StationKey>,
    /// The next key [`Network::add_station`] hands out (never reused).
    next_key: u64,
    /// The shared epoch cell: bumped by every in-place mutation and
    /// observed by the engines built from this network, which is how a
    /// stale engine detects it must not answer.
    epoch: Arc<AtomicU64>,
}

impl Clone for Network {
    /// Clones the network **data** with a fresh, independent epoch cell:
    /// mutating a clone never invalidates engines built from the
    /// original (and vice versa).
    fn clone(&self) -> Self {
        Network {
            positions: self.positions.clone(),
            power: self.power.clone(),
            noise: self.noise,
            beta: self.beta,
            alpha: self.alpha,
            keys: self.keys.clone(),
            next_key: self.next_key,
            epoch: Arc::new(AtomicU64::new(self.epoch.load(Ordering::Relaxed))),
        }
    }
}

impl PartialEq for Network {
    /// Physics equality: `⟨S, ψ, N, β⟩` and `α`. The epoch counter and
    /// the stable keys (which record churn *history*, not current
    /// physics) do not participate.
    fn eq(&self, other: &Self) -> bool {
        self.positions == other.positions
            && self.power == other.power
            && self.noise == other.noise
            && self.beta == other.beta
            && self.alpha == other.alpha
    }
}

impl Network {
    /// Starts building a network.
    pub fn builder() -> NetworkBuilder {
        NetworkBuilder::new()
    }

    /// Convenience constructor for a *uniform power* network with the
    /// paper's default path loss `α = 2`.
    ///
    /// # Errors
    ///
    /// Returns a [`NetworkError`] if validation fails (see
    /// [`NetworkBuilder::build`]).
    pub fn uniform(positions: Vec<Point>, noise: f64, beta: f64) -> Result<Network, NetworkError> {
        let mut b = Network::builder().background_noise(noise).threshold(beta);
        for p in positions {
            b = b.station(p);
        }
        b.build()
    }

    /// Number of stations `n`.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the network has no stations (never true for a built
    /// network, which has `n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The position of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: StationId) -> Point {
        self.positions[i.0]
    }

    /// All station positions in index order.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The station record for index `i`.
    pub fn station(&self, i: StationId) -> Station {
        Station::new(i, self.positions[i.0], self.power.power(i.0))
    }

    /// Iterates over all stations.
    pub fn stations(&self) -> impl Iterator<Item = Station> + '_ {
        (0..self.len()).map(|i| self.station(StationId(i)))
    }

    /// All station ids `s₀ … s_{n−1}`.
    pub fn ids(&self) -> impl Iterator<Item = StationId> {
        (0..self.len()).map(StationId)
    }

    /// The transmit power `ψᵢ` of station `i`.
    pub fn power(&self, i: StationId) -> f64 {
        self.power.power(i.0)
    }

    /// The power assignment.
    pub fn power_assignment(&self) -> &PowerAssignment {
        &self.power
    }

    /// Background noise `N ≥ 0`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Reception threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Path-loss exponent `α` (2 unless overridden).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when every station transmits with power 1 (`ψ = 1̄`).
    pub fn is_uniform_power(&self) -> bool {
        self.power.is_uniform()
    }

    /// True for the paper's *trivial* network: `|S| = 2`, `N = 0`, `β = 1`
    /// (and uniform power). Trivial networks are the single case with
    /// unbounded reception zones (each `Hᵢ` is a half-plane).
    pub fn is_trivial(&self) -> bool {
        self.len() == 2 && self.noise == 0.0 && self.beta == 1.0 && self.is_uniform_power()
    }

    /// True when the theorem preconditions of the paper hold: uniform
    /// power, `α = 2`, `β ≥ 1`. Under these, Theorem 1 guarantees convex
    /// reception zones (and for `β > 1`, Theorem 2 guarantees fatness).
    pub fn satisfies_convexity_preconditions(&self) -> bool {
        self.is_uniform_power() && self.alpha == 2.0 && self.beta >= 1.0
    }

    /// The minimum distance from station `i` to any other station — the
    /// `κ` of Theorem 4.1.
    ///
    /// Returns 0 when another station shares the location.
    pub fn kappa(&self, i: StationId) -> f64 {
        let p = self.position(i);
        self.positions
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i.0)
            .map(|(_, q)| p.dist(*q))
            .fold(f64::INFINITY, f64::min)
    }

    /// True if some other station shares the location of `i` (then
    /// `Hᵢ = {sᵢ}` degenerates to a point).
    pub fn is_colocated(&self, i: StationId) -> bool {
        self.kappa(i) == 0.0
    }

    /// The bounding box of the station positions.
    pub fn bbox(&self) -> BBox {
        BBox::from_points(self.positions.iter().copied()).expect("n ≥ 2")
    }

    // --- Reception API (delegates to the sinr module) -------------------

    /// Energy `E(sᵢ, p) = ψᵢ·dist(sᵢ, p)^{−α}` (infinite at `p = sᵢ`).
    pub fn energy(&self, i: StationId, p: Point) -> f64 {
        sinr::energy(self, i, p)
    }

    /// Interference to `sᵢ` at `p`: `I(sᵢ, p) = Σ_{j≠i} E(sⱼ, p)`.
    pub fn interference(&self, i: StationId, p: Point) -> f64 {
        sinr::interference(self, i, p)
    }

    /// The SINR of station `i` at `p` (Eq. (1) of the paper).
    pub fn sinr(&self, i: StationId, p: Point) -> f64 {
        sinr::sinr(self, i, p)
    }

    /// The fundamental reception rule: is `sᵢ` heard at `p`?
    /// (`SINR(sᵢ, p) ≥ β`, with `sᵢ ∈ Hᵢ` by definition.)
    pub fn is_heard(&self, i: StationId, p: Point) -> bool {
        sinr::is_heard(self, i, p)
    }

    /// Which station (if any) is heard at `p`?
    ///
    /// For `β > 1` at most one station can be heard anywhere, so the
    /// answer is unique; for `β ≤ 1` the strongest heard station is
    /// returned.
    pub fn heard_at(&self, p: Point) -> Option<StationId> {
        sinr::heard_at(self, p)
    }

    /// A handle onto the reception zone `Hᵢ`.
    pub fn reception_zone(&self, i: StationId) -> ReceptionZone<'_> {
        ReceptionZone::new(self, i)
    }

    /// The recommended batched query backend for this network: a
    /// [`VoronoiAssisted`](crate::engine::VoronoiAssisted) engine
    /// (kd-tree dispatch for uniform power, exact-scan fallback
    /// otherwise). Build it once, then use
    /// [`QueryEngine::locate_batch`](crate::engine::QueryEngine::locate_batch)
    /// for many points — `O(n)` per point instead of the scalar `O(n²)`.
    pub fn query_engine(&self) -> crate::engine::VoronoiAssisted {
        crate::engine::VoronoiAssisted::new(self)
    }

    // --- Epochs and in-place surgery (the dynamic path) ------------------

    /// The network's current revision (its *epoch*). Starts at 0 for a
    /// freshly built network and increases by one per in-place surgery
    /// op. Engines record this at build/sync time and refuse to answer
    /// once it has moved on.
    pub fn revision(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    /// The shared epoch cell engines subscribe to (see
    /// [`crate::engine`]).
    pub(crate) fn epoch_cell(&self) -> &Arc<AtomicU64> {
        &self.epoch
    }

    /// The stable key of the station currently at index `i` (see
    /// [`StationKey`]).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn station_key(&self, i: StationId) -> StationKey {
        self.keys[i.0]
    }

    /// Resolves a stable key to the station's *current* index, or `None`
    /// if the station has been removed.
    pub fn station_by_key(&self, key: StationKey) -> Option<StationId> {
        self.keys.iter().position(|k| *k == key).map(StationId)
    }

    /// Bumps the epoch and returns `(from, to)` for the delta.
    fn bump_epoch(&mut self) -> (u64, u64) {
        let from = self.epoch.load(Ordering::Relaxed);
        self.epoch.store(from + 1, Ordering::Relaxed);
        (from, from + 1)
    }

    fn delta(&self, (from, to): (u64, u64), op: DeltaOp) -> NetworkDelta {
        NetworkDelta {
            from_revision: from,
            to_revision: to,
            uniform_after: self.power.is_uniform(),
            op,
            source: Arc::clone(&self.epoch),
        }
    }

    /// Appends a station **in place** at `position` with transmit power
    /// `power`, bumping the epoch. The new station's index is the old
    /// station count.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on an invalid power or position (the
    /// network is left untouched and the epoch does not move).
    pub fn add_station(
        &mut self,
        position: Point,
        power: f64,
    ) -> Result<NetworkDelta, NetworkError> {
        if !(power > 0.0 && power.is_finite()) {
            return Err(NetworkError::InvalidPower(format!("power {power}")));
        }
        if !position.is_finite() {
            return Err(NetworkError::InvalidPosition(self.len()));
        }
        let id = StationId(self.len());
        let key = StationKey(self.next_key);
        self.next_key += 1;
        self.power = self.power.extended(self.positions.len(), power);
        self.positions.push(position);
        self.keys.push(key);
        let rev = self.bump_epoch();
        Ok(self.delta(
            rev,
            DeltaOp::Add {
                id,
                key,
                position,
                power,
            },
        ))
    }

    /// Removes station `i` **in place** by swap-remove (the last station
    /// moves into index `i`; see [`DeltaOp::Remove`]), bumping the epoch.
    ///
    /// Contrast with [`Network::without_station`], which preserves the
    /// relative order of the survivors by shifting every index above `i`
    /// down — the right semantics for the paper's proof narrations, but
    /// `O(n)` index churn that no engine can patch incrementally.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::TooFewStations`] — fewer than two stations would
    ///   remain;
    /// * [`NetworkError::StationOutOfRange`] — no station at `i`.
    pub fn remove_station(&mut self, i: StationId) -> Result<NetworkDelta, NetworkError> {
        if self.len() <= 2 {
            return Err(NetworkError::TooFewStations(self.len().saturating_sub(1)));
        }
        if i.0 >= self.len() {
            return Err(NetworkError::StationOutOfRange(i.0));
        }
        let last_index = self.len() - 1;
        let power = self.power.power(i.0);
        let position = self.positions.swap_remove(i.0);
        self.power.swap_remove(i.0);
        self.keys.swap_remove(i.0);
        let rev = self.bump_epoch();
        Ok(self.delta(
            rev,
            DeltaOp::Remove {
                id: i,
                last_index,
                position,
                power,
            },
        ))
    }

    /// Moves station `i` **in place** to `position`, bumping the epoch.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::InvalidPosition`] — non-finite target;
    /// * [`NetworkError::StationOutOfRange`] — no station at `i`.
    pub fn move_station(
        &mut self,
        i: StationId,
        position: Point,
    ) -> Result<NetworkDelta, NetworkError> {
        if !position.is_finite() {
            return Err(NetworkError::InvalidPosition(i.0));
        }
        if i.0 >= self.len() {
            return Err(NetworkError::StationOutOfRange(i.0));
        }
        let from = self.positions[i.0];
        self.positions[i.0] = position;
        let rev = self.bump_epoch();
        Ok(self.delta(
            rev,
            DeltaOp::Move {
                id: i,
                from,
                to: position,
            },
        ))
    }

    /// Changes the transmit power of station `i` **in place**, bumping
    /// the epoch. Power changes can flip the network between uniform and
    /// non-uniform — engines re-check their dispatch contracts on every
    /// applied power delta.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::InvalidPower`] — non-positive or non-finite;
    /// * [`NetworkError::StationOutOfRange`] — no station at `i`.
    pub fn set_power(&mut self, i: StationId, power: f64) -> Result<NetworkDelta, NetworkError> {
        if !(power > 0.0 && power.is_finite()) {
            return Err(NetworkError::InvalidPower(format!("power {power}")));
        }
        if i.0 >= self.len() {
            return Err(NetworkError::StationOutOfRange(i.0));
        }
        let from = self.power.power(i.0);
        self.power.set(i.0, power, self.len());
        let rev = self.bump_epoch();
        Ok(self.delta(
            rev,
            DeltaOp::SetPower {
                id: i,
                from,
                to: power,
            },
        ))
    }

    /// Performs one requested [`SurgeryOp`] — the dynamic dispatch
    /// counterpart of calling [`Network::add_station`] /
    /// [`Network::remove_station`] / [`Network::move_station`] /
    /// [`Network::set_power`] directly.
    ///
    /// # Errors
    ///
    /// The respective op's [`NetworkError`]; the network is untouched and
    /// the epoch does not move on error.
    pub fn apply_op(&mut self, op: &SurgeryOp) -> Result<NetworkDelta, NetworkError> {
        match op {
            SurgeryOp::Add { position, power } => self.add_station(*position, *power),
            SurgeryOp::Remove { id } => self.remove_station(*id),
            SurgeryOp::Move { id, to } => self.move_station(*id, *to),
            SurgeryOp::SetPower { id, power } => self.set_power(*id, *power),
        }
    }

    /// Applies a whole timestep of surgery ops in one pass, returning
    /// every emitted delta in order — the batched/coalesced counterpart
    /// of calling [`Network::apply_op`] in a loop, and the application
    /// path of `sinr-server`'s `Mutate` frames.
    ///
    /// Ops are applied strictly in sequence (later ops see the index
    /// shifts of earlier ones, exactly as the one-at-a-time path would),
    /// and each op bumps the epoch by one, so the returned deltas chain
    /// `from_revision → to_revision` gaplessly and feed
    /// [`QueryEngine::apply`](crate::engine::QueryEngine::apply)
    /// unchanged. Equivalence with the one-at-a-time path is pinned
    /// bit-for-bit (per backend) by `tests/dynamic_apply.rs`.
    ///
    /// # Errors
    ///
    /// On the first failing op the batch stops: the *prefix stays
    /// applied* (this is in-place surgery, not a transaction) and the
    /// returned [`BatchSurgeryError`] carries the prefix's deltas, the
    /// failing index and the underlying [`NetworkError`], so callers can
    /// still bring their engines in sync with the partially mutated
    /// network.
    pub fn apply_ops(&mut self, ops: &[SurgeryOp]) -> Result<Vec<NetworkDelta>, BatchSurgeryError> {
        let mut applied = Vec::with_capacity(ops.len());
        for (index, op) in ops.iter().enumerate() {
            match self.apply_op(op) {
                Ok(delta) => applied.push(delta),
                Err(error) => {
                    return Err(BatchSurgeryError {
                        applied,
                        index,
                        error,
                    })
                }
            }
        }
        Ok(applied)
    }

    // --- Surgery (the paper's proof moves) -------------------------------

    /// The network with station `i` removed ("silenced", as in
    /// Figure 1(C)). Station indices above `i` shift down by one.
    ///
    /// This is the *immutable, order-preserving* removal used by the
    /// paper's reductions; the dynamic path is
    /// [`Network::remove_station`] (in place, swap-remove, emits a
    /// [`NetworkDelta`]).
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::TooFewStations`] if fewer than two stations
    /// would remain.
    pub fn without_station(&self, i: StationId) -> Result<Network, NetworkError> {
        if self.len() <= 2 {
            return Err(NetworkError::TooFewStations(self.len().saturating_sub(1)));
        }
        let keep: Vec<bool> = (0..self.len()).map(|j| j != i.0).collect();
        let positions = self
            .positions
            .iter()
            .zip(keep.iter())
            .filter_map(|(p, k)| k.then_some(*p))
            .collect();
        let keys = self
            .keys
            .iter()
            .zip(keep.iter())
            .filter_map(|(key, k)| k.then_some(*key))
            .collect();
        Ok(Network {
            positions,
            power: self.power.filtered(&keep),
            keys,
            ..self.clone()
        })
    }

    /// The network with an extra station at `position` with power `power`
    /// (used by the noise-elimination reduction of Section 3.4 and by
    /// Lemma 3.10's replacement construction).
    ///
    /// The immutable counterpart of [`Network::add_station`] — and since
    /// this PR a thin wrapper over it (clone + in-place op), so the two
    /// paths cannot drift.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError`] on an invalid power or position.
    pub fn with_station(&self, position: Point, power: f64) -> Result<Network, NetworkError> {
        let mut next = self.clone();
        next.add_station(position, power)?;
        Ok(next)
    }

    /// The network with station `i` moved to `position` (Figure 1(B)) —
    /// the immutable counterpart of (and a thin wrapper over)
    /// [`Network::move_station`].
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidPosition`] for a non-finite target
    /// and [`NetworkError::StationOutOfRange`] for a missing station.
    pub fn with_station_moved(
        &self,
        i: StationId,
        position: Point,
    ) -> Result<Network, NetworkError> {
        let mut next = self.clone();
        next.move_station(i, position)?;
        Ok(next)
    }

    /// The network with the background noise replaced.
    ///
    /// # Errors
    ///
    /// Returns [`NetworkError::InvalidNoise`] for negative or non-finite
    /// noise.
    pub fn with_noise(&self, noise: f64) -> Result<Network, NetworkError> {
        if !(noise >= 0.0 && noise.is_finite()) {
            return Err(NetworkError::InvalidNoise(noise));
        }
        Ok(Network {
            noise,
            ..self.clone()
        })
    }

    /// Applies a similarity map `f` to the network per **Lemma 2.3**: all
    /// stations are mapped through `f` and the noise is divided by `σ²`
    /// (where `σ` is the scale of `f`), so that
    /// `SINR_A(sᵢ, p) = SINR_{f(A)}(f(sᵢ), f(p))` for all `i, p`.
    pub fn transformed(&self, f: &Similarity) -> Network {
        let sigma = f.scale();
        Network {
            positions: self.positions.iter().map(|p| f.apply(*p)).collect(),
            noise: self.noise / (sigma * sigma),
            ..self.clone()
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Network(n={}, N={}, β={}, α={}, {})",
            self.len(),
            self.noise,
            self.beta,
            self.alpha,
            if self.is_uniform_power() {
                "uniform"
            } else {
                "per-station power"
            }
        )
    }
}

/// Builder for [`Network`] (non-consuming, per C-BUILDER).
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_geometry::Point;
///
/// let mut b = Network::builder().threshold(6.0); // β ≈ 6, the textbook value
/// for k in 0..4 {
///     b = b.station(Point::new(k as f64, 0.0));
/// }
/// let net = b.build()?;
/// assert_eq!(net.len(), 4);
/// assert_eq!(net.beta(), 6.0);
/// assert_eq!(net.alpha(), 2.0);
/// # Ok::<(), sinr_core::NetworkError>(())
/// ```
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    positions: Vec<Point>,
    powers: Option<Vec<f64>>,
    noise: f64,
    beta: f64,
    alpha: f64,
}

impl Default for NetworkBuilder {
    fn default() -> Self {
        NetworkBuilder::new()
    }
}

impl NetworkBuilder {
    /// Creates a builder with the paper's defaults: no noise, `β = 1`,
    /// `α = 2`, uniform power.
    pub fn new() -> Self {
        NetworkBuilder {
            positions: Vec::new(),
            powers: None,
            noise: 0.0,
            beta: 1.0,
            alpha: 2.0,
        }
    }

    /// Adds a station with power 1 at `position`.
    pub fn station(mut self, position: Point) -> Self {
        self.positions.push(position);
        if let Some(ps) = &mut self.powers {
            ps.push(1.0);
        }
        self
    }

    /// Adds a station with the given transmit power at `position`.
    pub fn station_with_power(mut self, position: Point, power: f64) -> Self {
        if self.powers.is_none() {
            self.powers = Some(vec![1.0; self.positions.len()]);
        }
        self.positions.push(position);
        self.powers.as_mut().expect("just initialised").push(power);
        self
    }

    /// Adds many uniform-power stations.
    pub fn stations<I: IntoIterator<Item = Point>>(mut self, positions: I) -> Self {
        for p in positions {
            self = self.station(p);
        }
        self
    }

    /// Sets the background noise `N ≥ 0` (default 0).
    pub fn background_noise(mut self, noise: f64) -> Self {
        self.noise = noise;
        self
    }

    /// Sets the reception threshold `β` (default 1). The paper's theorems
    /// need `β ≥ 1`; smaller values are allowed for experiments such as
    /// the non-convex diagram of Figure 5.
    pub fn threshold(mut self, beta: f64) -> Self {
        self.beta = beta;
        self
    }

    /// Sets the path-loss exponent `α` (default 2 — the paper's setting;
    /// `2 ≤ α ≤ 4` is the physically plausible range).
    pub fn path_loss(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Validates and builds the network.
    ///
    /// # Errors
    ///
    /// * [`NetworkError::TooFewStations`] — fewer than 2 stations;
    /// * [`NetworkError::InvalidNoise`] — negative or non-finite noise;
    /// * [`NetworkError::InvalidThreshold`] — non-positive threshold;
    /// * [`NetworkError::InvalidPathLoss`] — non-positive exponent;
    /// * [`NetworkError::InvalidPower`] — a non-positive station power;
    /// * [`NetworkError::InvalidPosition`] — a non-finite coordinate.
    pub fn build(&self) -> Result<Network, NetworkError> {
        if self.positions.len() < 2 {
            return Err(NetworkError::TooFewStations(self.positions.len()));
        }
        if !(self.noise >= 0.0 && self.noise.is_finite()) {
            return Err(NetworkError::InvalidNoise(self.noise));
        }
        if !(self.beta > 0.0 && self.beta.is_finite()) {
            return Err(NetworkError::InvalidThreshold(self.beta));
        }
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err(NetworkError::InvalidPathLoss(self.alpha));
        }
        for (i, p) in self.positions.iter().enumerate() {
            if !p.is_finite() {
                return Err(NetworkError::InvalidPosition(i));
            }
        }
        let power = match &self.powers {
            None => PowerAssignment::Uniform,
            Some(v) => {
                let pa = PowerAssignment::PerStation(v.clone());
                pa.validate(self.positions.len())
                    .map_err(NetworkError::InvalidPower)?;
                if pa.is_uniform() {
                    PowerAssignment::Uniform
                } else {
                    pa
                }
            }
        };
        Ok(Network {
            keys: (0..self.positions.len() as u64).map(StationKey).collect(),
            next_key: self.positions.len() as u64,
            positions: self.positions.clone(),
            power,
            noise: self.noise,
            beta: self.beta,
            alpha: self.alpha,
            epoch: Arc::new(AtomicU64::new(0)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_station_net(beta: f64) -> Network {
        Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, beta).unwrap()
    }

    #[test]
    fn builder_validation() {
        assert!(matches!(
            Network::builder().station(Point::ORIGIN).build(),
            Err(NetworkError::TooFewStations(1))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .background_noise(-1.0)
                .build(),
            Err(NetworkError::InvalidNoise(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .threshold(0.0)
                .build(),
            Err(NetworkError::InvalidThreshold(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(1.0, 0.0))
                .path_loss(-2.0)
                .build(),
            Err(NetworkError::InvalidPathLoss(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station_with_power(Point::new(1.0, 0.0), -5.0)
                .build(),
            Err(NetworkError::InvalidPower(_))
        ));
        assert!(matches!(
            Network::builder()
                .station(Point::ORIGIN)
                .station(Point::new(f64::NAN, 0.0))
                .build(),
            Err(NetworkError::InvalidPosition(1))
        ));
    }

    #[test]
    fn accessors() {
        let net = two_station_net(2.0);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
        assert_eq!(net.position(StationId(1)), Point::new(4.0, 0.0));
        assert_eq!(net.power(StationId(0)), 1.0);
        assert_eq!(net.beta(), 2.0);
        assert_eq!(net.alpha(), 2.0);
        assert_eq!(net.noise(), 0.0);
        assert!(net.is_uniform_power());
        assert_eq!(net.stations().count(), 2);
        assert_eq!(net.ids().count(), 2);
        assert_eq!(net.kappa(StationId(0)), 4.0);
        assert!(!net.is_colocated(StationId(0)));
    }

    #[test]
    fn triviality() {
        assert!(two_station_net(1.0).is_trivial());
        assert!(!two_station_net(2.0).is_trivial());
        let noisy = Network::uniform(vec![Point::ORIGIN, Point::new(1.0, 0.0)], 0.5, 1.0).unwrap();
        assert!(!noisy.is_trivial());
    }

    #[test]
    fn preconditions() {
        assert!(two_station_net(1.0).satisfies_convexity_preconditions());
        assert!(two_station_net(6.0).satisfies_convexity_preconditions());
        assert!(!two_station_net(0.3).satisfies_convexity_preconditions());
        let nonuniform = Network::builder()
            .station(Point::ORIGIN)
            .station_with_power(Point::new(1.0, 0.0), 2.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert!(!nonuniform.satisfies_convexity_preconditions());
        let alpha4 = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(1.0, 0.0))
            .path_loss(4.0)
            .threshold(2.0)
            .build()
            .unwrap();
        assert!(!alpha4.satisfies_convexity_preconditions());
    }

    #[test]
    fn surgery_remove_add_move() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::new(4.0, 0.0), Point::new(0.0, 4.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let smaller = net.without_station(StationId(2)).unwrap();
        assert_eq!(smaller.len(), 2);
        assert_eq!(smaller.position(StationId(1)), Point::new(4.0, 0.0));
        // removing from a 2-station network fails
        assert!(smaller.without_station(StationId(0)).is_err());
        // adding
        let bigger = net.with_station(Point::new(2.0, 2.0), 1.0).unwrap();
        assert_eq!(bigger.len(), 4);
        assert!(bigger.is_uniform_power());
        let weighted = net.with_station(Point::new(2.0, 2.0), 3.0).unwrap();
        assert!(!weighted.is_uniform_power());
        assert_eq!(weighted.power(StationId(3)), 3.0);
        assert!(net.with_station(Point::new(1.0, 1.0), 0.0).is_err());
        // moving
        let moved = net
            .with_station_moved(StationId(0), Point::new(-1.0, -1.0))
            .unwrap();
        assert_eq!(moved.position(StationId(0)), Point::new(-1.0, -1.0));
        assert_eq!(moved.len(), 3);
    }

    #[test]
    fn in_place_surgery_emits_sequential_deltas() {
        let mut net = Network::uniform(
            vec![Point::ORIGIN, Point::new(4.0, 0.0), Point::new(0.0, 4.0)],
            0.01,
            2.0,
        )
        .unwrap();
        assert_eq!(net.revision(), 0);

        let d1 = net.add_station(Point::new(2.0, 2.0), 1.0).unwrap();
        assert_eq!((d1.from_revision(), d1.to_revision()), (0, 1));
        assert!(d1.uniform_after());
        assert!(matches!(
            d1.op(),
            DeltaOp::Add { id: StationId(3), power, .. } if *power == 1.0
        ));
        assert_eq!(net.len(), 4);
        assert_eq!(net.revision(), 1);

        let d2 = net
            .move_station(StationId(0), Point::new(-1.0, 0.0))
            .unwrap();
        assert_eq!((d2.from_revision(), d2.to_revision()), (1, 2));
        assert_eq!(net.position(StationId(0)), Point::new(-1.0, 0.0));

        let d3 = net.set_power(StationId(1), 3.0).unwrap();
        assert!(!d3.uniform_after());
        assert!(!net.is_uniform_power());
        assert_eq!(net.power(StationId(1)), 3.0);

        // Swap-remove: the last station (index 3) moves into slot 1.
        let before_last = net.position(StationId(3));
        let d4 = net.remove_station(StationId(1)).unwrap();
        assert!(matches!(
            d4.op(),
            DeltaOp::Remove {
                id: StationId(1),
                last_index: 3,
                ..
            }
        ));
        assert_eq!(net.len(), 3);
        assert_eq!(net.position(StationId(1)), before_last);
        // The non-uniform power left with the removed station.
        assert!(d4.uniform_after());
        assert_eq!(net.revision(), 4);
    }

    #[test]
    fn in_place_surgery_validation_leaves_epoch_alone() {
        let mut net = two_station_net(2.0);
        assert!(net.add_station(Point::new(1.0, 1.0), 0.0).is_err());
        assert!(net.add_station(Point::new(f64::NAN, 0.0), 1.0).is_err());
        assert!(net.move_station(StationId(7), Point::ORIGIN).is_err());
        assert!(net.set_power(StationId(0), f64::INFINITY).is_err());
        assert!(matches!(
            net.remove_station(StationId(0)),
            Err(NetworkError::TooFewStations(1))
        ));
        assert_eq!(net.revision(), 0);
        let mut net3 = net.with_station(Point::new(0.0, 3.0), 1.0).unwrap();
        assert!(matches!(
            net3.remove_station(StationId(9)),
            Err(NetworkError::StationOutOfRange(9))
        ));
    }

    #[test]
    fn stable_keys_survive_swap_remove() {
        let mut net = Network::uniform(
            vec![Point::ORIGIN, Point::new(4.0, 0.0), Point::new(0.0, 4.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let k2 = net.station_key(StationId(2));
        net.remove_station(StationId(0)).unwrap();
        assert_eq!(net.station_by_key(k2), Some(StationId(0)));
        // Fresh keys are never reused.
        let d = net.add_station(Point::new(1.0, 1.0), 1.0).unwrap();
        let DeltaOp::Add { key, .. } = d.op() else {
            panic!("expected Add");
        };
        assert_ne!(*key, k2);
        assert_eq!(net.station_by_key(*key), Some(StationId(2)));
    }

    #[test]
    fn clone_isolates_the_epoch() {
        let mut net = Network::uniform(
            vec![Point::ORIGIN, Point::new(4.0, 0.0), Point::new(0.0, 4.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let clone = net.clone();
        net.move_station(StationId(0), Point::new(1.0, 1.0))
            .unwrap();
        assert_eq!(net.revision(), 1);
        assert_eq!(clone.revision(), 0);
        // Immutable surgery (clone + op) never disturbs the original.
        let bigger = clone.with_station(Point::new(2.0, 2.0), 1.0).unwrap();
        assert_eq!(clone.revision(), 0);
        assert_eq!(bigger.len(), 4);
        assert_eq!(bigger.revision(), 1);
    }

    #[test]
    fn lemma_2_3_invariance() {
        // SINR is invariant under rotation+translation+scaling with noise
        // divided by σ².
        let net = Network::uniform(
            vec![
                Point::new(1.0, 2.0),
                Point::new(-2.0, 0.5),
                Point::new(3.0, -1.0),
            ],
            0.07,
            1.8,
        )
        .unwrap();
        let f = Similarity::new(0.9, 2.5, sinr_geometry::Vector::new(3.0, -4.0));
        let mapped = net.transformed(&f);
        assert!((mapped.noise() - 0.07 / 6.25).abs() < 1e-12);
        for &(x, y) in &[(0.3, 0.4), (-1.0, 2.0), (2.0, 2.0)] {
            let p = Point::new(x, y);
            for i in net.ids() {
                let lhs = net.sinr(i, p);
                let rhs = mapped.sinr(i, f.apply(p));
                assert!(
                    (lhs - rhs).abs() <= 1e-9 * (1.0 + lhs.abs()),
                    "Lemma 2.3 violated at {p} for {i}: {lhs} vs {rhs}"
                );
            }
        }
    }

    #[test]
    fn bbox_and_display() {
        let net = two_station_net(2.0);
        let bb = net.bbox();
        assert_eq!(bb.min, Point::new(0.0, 0.0));
        assert_eq!(bb.max, Point::new(4.0, 0.0));
        assert!(format!("{net}").contains("n=2"));
    }

    #[test]
    fn colocated_stations_detected() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(1.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        assert!(net.is_colocated(StationId(0)));
        assert!(net.is_colocated(StationId(1)));
        assert!(!net.is_colocated(StationId(2)));
    }
}
