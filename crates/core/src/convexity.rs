//! Convexity verification (Theorem 1 / Lemma 2.1).
//!
//! Theorem 1 states that in a uniform power network with `α = 2` and
//! `β ≥ 1`, every reception zone is convex — and Figure 5 shows the claim
//! genuinely fails for `β < 1`. This module provides two independent
//! verifiers used by the reproduction harness:
//!
//! * **Segment sampling** ([`check_zone_convexity`]) — sample boundary
//!   points slightly inside the zone and verify every connecting segment
//!   stays inside (the definition of convexity);
//! * **Line intersection counting** ([`boundary_crossings_on_line`],
//!   [`max_line_crossings`]) — Lemma 2.1: a thick set is convex iff every
//!   line meets its boundary at most twice. The crossing count is computed
//!   *algebraically*, by Sturm root counting on the restricted
//!   characteristic polynomial — exactly the argument of Section 3.2.

use crate::charpoly;
use crate::network::Network;
use crate::station::StationId;
use crate::zone::ReceptionZone;
use sinr_algebra::SturmChain;
use sinr_geometry::{Point, Vector};

/// A witnessed convexity violation: two zone points whose connecting
/// segment leaves the zone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConvexityViolation {
    /// First endpoint (inside the zone).
    pub p1: Point,
    /// Second endpoint (inside the zone).
    pub p2: Point,
    /// Interpolation parameter of the violating point.
    pub t: f64,
    /// The violating point `p1 + t·(p2 − p1)` (outside the zone).
    pub witness: Point,
    /// The SINR of the station at the witness (below `β`).
    pub sinr: f64,
}

/// Result of a convexity check.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvexityReport {
    /// Number of point pairs whose segments were examined.
    pub pairs_tested: usize,
    /// Number of interior sample points examined in total.
    pub points_tested: usize,
    /// All violations found (empty for a convex zone).
    pub violations: Vec<ConvexityViolation>,
}

impl ConvexityReport {
    /// True when no violation was found.
    pub fn is_convex(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ConvexityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} pairs / {} points tested, {} violations",
            self.pairs_tested,
            self.points_tested,
            self.violations.len()
        )
    }
}

/// Verifies convexity of a zone by segment sampling.
///
/// `boundary_samples` points are taken on the zone boundary, pulled inward
/// by the relative `margin` (so that knife-edge numerical noise at the
/// boundary itself cannot produce false positives), and every pair is
/// connected; `segment_samples` interior points per segment are tested for
/// membership.
///
/// Returns `None` when the zone is unbounded (trivial networks) — the
/// sampling construction needs a bounded boundary.
///
/// # Examples
///
/// ```
/// use sinr_core::{convexity, Network, StationId};
/// use sinr_geometry::Point;
///
/// let net = Network::uniform(
///     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0), Point::new(1.0, 5.0)],
///     0.0, 2.0).unwrap();
/// let zone = net.reception_zone(StationId(0));
/// let report = convexity::check_zone_convexity(&zone, 24, 12, 1e-6).unwrap();
/// assert!(report.is_convex()); // Theorem 1: β ≥ 1, uniform, α = 2
/// ```
pub fn check_zone_convexity(
    zone: &ReceptionZone<'_>,
    boundary_samples: usize,
    segment_samples: usize,
    margin: f64,
) -> Option<ConvexityReport> {
    assert!(boundary_samples >= 2, "need at least two boundary samples");
    if zone.is_degenerate() {
        // A single point is trivially convex.
        return Some(ConvexityReport {
            pairs_tested: 0,
            points_tested: 0,
            violations: Vec::new(),
        });
    }
    let c = zone.center();
    let mut pts = Vec::with_capacity(boundary_samples);
    for k in 0..boundary_samples {
        let theta = 2.0 * std::f64::consts::PI * k as f64 / boundary_samples as f64;
        let r = zone.boundary_radius(theta)?;
        pts.push(c + Vector::from_angle(theta) * (r * (1.0 - margin)));
    }

    let mut report = ConvexityReport {
        pairs_tested: 0,
        points_tested: 0,
        violations: Vec::new(),
    };
    for a in 0..pts.len() {
        for b in (a + 1)..pts.len() {
            report.pairs_tested += 1;
            for s in 1..segment_samples {
                let t = s as f64 / segment_samples as f64;
                let q = pts[a].lerp(pts[b], t);
                report.points_tested += 1;
                if !zone.contains(q) {
                    report.violations.push(ConvexityViolation {
                        p1: pts[a],
                        p2: pts[b],
                        t,
                        witness: q,
                        sinr: zone.network().sinr(zone.station_id(), q),
                    });
                }
            }
        }
    }
    Some(report)
}

/// Counts the distinct intersections of `∂Hᵢ` with the line
/// `p(t) = origin + t·dir` for `t ∈ [t_min, t_max]`, via Sturm root
/// counting on the restricted characteristic polynomial — the algebraic
/// machinery of Section 3.2 / Theorem 3.6.
///
/// # Panics
///
/// Panics if the network's path loss is not `α = 2` or if
/// `t_min > t_max`.
pub fn boundary_crossings_on_line(
    net: &Network,
    i: StationId,
    origin: Point,
    dir: Vector,
    t_min: f64,
    t_max: f64,
) -> usize {
    let h = charpoly::restricted_to_line(net, i, origin, dir);
    SturmChain::new(&h).count_roots_in(t_min, t_max)
}

/// Sweeps `lines` random-direction lines through the zone's neighbourhood
/// and returns the maximum number of boundary crossings observed on any of
/// them. Lemma 2.1: convex ⟺ the maximum is ≤ 2.
///
/// The sweep takes lines through points on circles around the station at
/// several radii, with rotating directions — a deterministic family that
/// covers tangent, secant and missing lines.
pub fn max_line_crossings(net: &Network, i: StationId, lines: usize) -> usize {
    let c = net.position(i);
    let kappa = net.kappa(i).max(1e-6);
    let mut worst = 0usize;
    for k in 0..lines {
        let a1 = 2.399963229728653 * k as f64; // golden angle: well-spread
        let a2 = 1.0 + 0.7 * ((k % 17) as f64);
        let radius = kappa * (0.05 + 2.0 * ((k % 13) as f64 / 13.0));
        let origin = c + Vector::from_angle(a1) * radius;
        let dir = Vector::from_angle(a1 * 0.37 + a2);
        // Window wide enough to cover any bounded zone: ±(40κ + 4)/|dir|,
        // since Δ ≤ κ/(√β − 1) bounds the zone radius for β > 1.
        let t_half = (40.0 * kappa + 4.0) / dir.norm();
        let crossings = boundary_crossings_on_line(net, i, origin, dir, -t_half, t_half);
        worst = worst.max(crossings);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    /// The exact network of the paper's Figure 5: three uniform stations,
    /// `β = 0.3 < 1`, `N = 0.05` — visibly non-convex zones.
    pub fn figure5_network() -> Network {
        Network::uniform(
            vec![
                Point::new(-2.0, 1.0),
                Point::new(2.5, 1.2),
                Point::new(0.0, -2.0),
            ],
            0.05,
            0.3,
        )
        .unwrap()
    }

    #[test]
    fn theorem_1_holds_on_small_networks() {
        // Deterministic layouts, β ≥ 1, uniform, α = 2 ⇒ convex.
        let layouts: Vec<Vec<Point>> = vec![
            vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)],
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(1.0, 2.5),
            ],
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.5),
                Point::new(-1.0, 2.0),
                Point::new(0.5, -2.2),
            ],
        ];
        for pts in layouts {
            for beta in [1.0, 1.5, 3.0, 6.0] {
                let net = Network::uniform(pts.clone(), 0.01, beta).unwrap();
                for i in net.ids() {
                    let zone = net.reception_zone(i);
                    let report = check_zone_convexity(&zone, 20, 10, 1e-7).unwrap();
                    assert!(
                        report.is_convex(),
                        "β={beta}, station {i}: {report} (first: {:?})",
                        report.violations.first()
                    );
                }
            }
        }
    }

    #[test]
    fn figure_5_beta_below_one_is_nonconvex() {
        let net = figure5_network();
        let mut any_violation = false;
        for i in net.ids() {
            let zone = net.reception_zone(i);
            if let Some(report) = check_zone_convexity(&zone, 48, 24, 1e-7) {
                any_violation |= !report.is_convex();
            }
        }
        assert!(
            any_violation,
            "β = 0.3 should produce a non-convex zone (paper Fig. 5)"
        );
    }

    #[test]
    fn line_crossings_at_most_two_when_convex() {
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 1.0),
                Point::new(-2.0, 2.0),
                Point::new(1.0, -3.0),
            ],
            0.02,
            2.0,
        )
        .unwrap();
        for i in net.ids() {
            let worst = max_line_crossings(&net, i, 60);
            assert!(worst <= 2, "station {i}: {worst} crossings on a line");
        }
    }

    #[test]
    fn line_crossings_exceed_two_for_figure5() {
        // Lemma 2.1's converse: a non-convex thick zone has some line with
        // more than two boundary crossings. Aim the line through a
        // violation found by segment sampling: both endpoints are inside
        // the zone with an outside point between them, so the supporting
        // line must cross the boundary at least twice *strictly between*
        // them — and, the zone being bounded, at least twice more outside.
        let net = figure5_network();
        let mut witnessed = false;
        for i in net.ids() {
            let zone = net.reception_zone(i);
            let Some(report) = check_zone_convexity(&zone, 48, 24, 1e-7) else {
                continue;
            };
            if let Some(v) = report.violations.first() {
                let dir = v.p2 - v.p1;
                let crossings = boundary_crossings_on_line(&net, i, v.p1, dir, -50.0, 51.0);
                assert!(
                    crossings > 2,
                    "station {i}: line through a violation has only {crossings} crossings"
                );
                witnessed = true;
            }
        }
        assert!(witnessed, "no violation found to aim a line through");
    }

    #[test]
    fn specific_line_count_two_stations() {
        // Stations at 0 and 4, β=2: along the x-axis the zone H0 is an
        // interval, so the line meets ∂H0 exactly twice.
        let net =
            Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap();
        let n = boundary_crossings_on_line(
            &net,
            StationId(0),
            Point::new(0.0, 0.0),
            Vector::UNIT_X,
            -100.0,
            100.0,
        );
        assert_eq!(n, 2);
        // A line far above the zone misses it entirely.
        let n = boundary_crossings_on_line(
            &net,
            StationId(0),
            Point::new(0.0, 50.0),
            Vector::UNIT_X,
            -100.0,
            100.0,
        );
        assert_eq!(n, 0);
    }

    #[test]
    fn degenerate_zone_report() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(2.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let zone = net.reception_zone(StationId(0));
        let report = check_zone_convexity(&zone, 8, 4, 1e-7).unwrap();
        assert!(report.is_convex());
        assert_eq!(report.pairs_tested, 0);
    }

    #[test]
    fn trivial_network_returns_none() {
        let net = Network::uniform(vec![Point::ORIGIN, Point::new(2.0, 0.0)], 0.0, 1.0).unwrap();
        let zone = net.reception_zone(StationId(0));
        assert!(check_zone_convexity(&zone, 8, 4, 1e-7).is_none());
    }
}
