//! Closed-form zone bounds: Theorems 4.1 and 4.2 of the paper.
//!
//! For a uniform power network with constant `β > 1` and `κ` the minimum
//! distance from `s₀` to any other station, Theorem 4.1 gives
//!
//! ```text
//! δ(s₀, H₀) ≥ κ / (√(β(n−1+N·κ²)) + 1)
//! Δ(s₀, H₀) ≤ κ / (√(β(1+N·κ²)) − 1)
//! ```
//!
//! whence `φ = Δ/δ = O(√n)`; Theorem 4.2 improves the fatness bound to the
//! constant `(√β + 1)/(√β − 1)`.
//!
//! Besides the paper's closed forms, this module hosts the *per-tile*
//! distance/energy envelopes the tiled batch executor ([`crate::tile`])
//! builds its pruning certificates from: the same zone-radius reasoning
//! (energy is monotone in distance, so distance bounds become energy
//! bounds), applied to the bounding box of a query tile instead of a
//! single station's `κ`.

use crate::engine::PathLoss;
use crate::network::Network;
use crate::station::StationId;

/// Theorem 4.1 lower bound on `δ(s₀, H₀)`:
/// `κ / (√(β(n−1+N·κ²)) + 1)`.
///
/// # Panics
///
/// Panics if `n < 2`, `kappa < 0`, `noise < 0` or `beta <= 0`.
pub fn delta_lower_bound(kappa: f64, n: usize, noise: f64, beta: f64) -> f64 {
    assert!(n >= 2, "the bound is stated for n ≥ 2 stations");
    assert!(kappa >= 0.0 && noise >= 0.0 && beta > 0.0);
    kappa / ((beta * ((n - 1) as f64 + noise * kappa * kappa)).sqrt() + 1.0)
}

/// Theorem 4.1 upper bound on `Δ(s₀, H₀)`:
/// `κ / (√(β(1+N·κ²)) − 1)`.
///
/// Returns `None` when `β(1 + N·κ²) ≤ 1`, where the bound degenerates (the
/// zone may be unbounded — e.g. the trivial network `β = 1, N = 0`).
///
/// # Panics
///
/// Panics if `kappa < 0`, `noise < 0` or `beta <= 0`.
pub fn delta_upper_bound(kappa: f64, noise: f64, beta: f64) -> Option<f64> {
    assert!(kappa >= 0.0 && noise >= 0.0 && beta > 0.0);
    let root = (beta * (1.0 + noise * kappa * kappa)).sqrt();
    if root <= 1.0 {
        None
    } else {
        Some(kappa / (root - 1.0))
    }
}

/// The `O(√n)` fatness bound implied by Theorem 4.1:
/// `(√(β(n−1)) + 1) / (√β − 1)`.
///
/// Returns `None` for `β ≤ 1` where the denominator degenerates.
pub fn fatness_bound_sqrt_n(n: usize, beta: f64) -> Option<f64> {
    assert!(n >= 2 && beta > 0.0);
    if beta <= 1.0 {
        None
    } else {
        Some(((beta * (n - 1) as f64).sqrt() + 1.0) / (beta.sqrt() - 1.0))
    }
}

/// Theorem 4.2's constant fatness bound `(√β + 1)/(√β − 1)`.
///
/// Returns `None` for `β ≤ 1` (footnote 4: the fatness parameter is not
/// even defined for trivial networks at `β = 1`).
///
/// # Examples
///
/// ```
/// let bound = sinr_core::bounds::fatness_bound(4.0).unwrap();
/// assert_eq!(bound, 3.0); // (2+1)/(2−1)
/// ```
pub fn fatness_bound(beta: f64) -> Option<f64> {
    assert!(beta > 0.0);
    if beta <= 1.0 {
        None
    } else {
        Some((beta.sqrt() + 1.0) / (beta.sqrt() - 1.0))
    }
}

/// The closed-form one-dimensional zone endpoints of **Lemma 4.3**
/// (Section 4.2.1): two stations on a line, `s₀` at 0 with power 1 and
/// `s₁` at 1 with power `ψ₁ ≥ 1`, no noise. The reception zone of `s₀`
/// restricted to the line is the interval `[μ_l, μ_r]` with
///
/// ```text
/// μ_r = (√(βψ₁) − 1)/(βψ₁ − 1)    μ_l = −(√(βψ₁) + 1)/(βψ₁ − 1)
/// ```
///
/// and `Δ/δ = −μ_l/μ_r = (√(βψ₁)+1)/(√(βψ₁)−1) ≤ (√β+1)/(√β−1)`, with
/// equality at `ψ₁ = 1` — the configuration where Theorem 4.2's bound is
/// attained.
///
/// Returns `(μ_l, μ_r)`, or `None` when `βψ₁ ≤ 1` (the zone degenerates
/// to a half-line).
///
/// # Panics
///
/// Panics unless `beta > 0` and `psi1 > 0`.
///
/// # Examples
///
/// ```
/// let (mu_l, mu_r) = sinr_core::bounds::lemma43_interval(4.0, 1.0).unwrap();
/// assert!((mu_r - 1.0 / 3.0).abs() < 1e-12); // (2−1)/(4−1)
/// assert!((mu_l + 1.0).abs() < 1e-12);       // −(2+1)/(4−1)
/// ```
pub fn lemma43_interval(beta: f64, psi1: f64) -> Option<(f64, f64)> {
    assert!(beta > 0.0 && psi1 > 0.0);
    let bp = beta * psi1;
    if bp <= 1.0 {
        return None;
    }
    let root = bp.sqrt();
    Some((-(root + 1.0) / (bp - 1.0), (root - 1.0) / (bp - 1.0)))
}

/// The squared-distance envelope `(min d², max d²)` from any point of
/// the axis-aligned box `[min_x, max_x] × [min_y, max_y]` to the point
/// `(x, y)`.
///
/// The minimum clamps to the box (0 when the point is inside), the
/// maximum is attained at a box corner. Both are elementary rounded
/// expressions over finite inputs, so their relative error is a few
/// ulps — callers that need *certified* one-sided bounds (the tiled
/// executor's pruning, see [`energy_envelope`]) must widen by an
/// explicit margin.
pub fn dist2_range_to_box(
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    x: f64,
    y: f64,
) -> (f64, f64) {
    let dx_out = (min_x - x).max(x - max_x).max(0.0);
    let dy_out = (min_y - y).max(y - max_y).max(0.0);
    let dx_far = (x - min_x).max(max_x - x);
    let dy_far = (y - min_y).max(max_y - y);
    (
        dx_out * dx_out + dy_out * dy_out,
        dx_far * dx_far + dy_far * dy_far,
    )
}

/// A certified energy envelope `[lo, hi]` of one station (power `w`,
/// path loss `k`) over a query region with squared-distance envelope
/// `(min_d2, max_d2)`: for every point `p` of the region, the
/// floating-point energy any scan kernel computes for this station
/// satisfies `lo ≤ e(p) ≤ hi`.
///
/// Energy is monotone decreasing in distance (the same monotonicity
/// behind the Theorem 4.1 zone radii above), so the distance envelope
/// becomes an energy envelope; `margin` widens both sides
/// multiplicatively to absorb the rounding of this computation *and* of
/// the kernels' `RN(RN(attenuation)·ψ)` (a relative `margin` of `1e-12`
/// dwarfs the few-ulp worst case). A station inside the region
/// (`min_d2 = 0`) gets `hi = ∞` — it can never be pruned.
pub fn energy_envelope<K: PathLoss>(
    k: K,
    w: f64,
    min_d2: f64,
    max_d2: f64,
    margin: f64,
) -> (f64, f64) {
    let lo = if max_d2 > 0.0 {
        k.attenuation(max_d2) * w * (1.0 - margin)
    } else {
        f64::INFINITY
    };
    let hi = if min_d2 > 0.0 {
        k.attenuation(min_d2) * w * (1.0 + margin)
    } else {
        f64::INFINITY
    };
    (lo, hi)
}

/// All closed-form bounds for one station of a network, bundled.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneBounds {
    /// The minimum distance `κ` from the station to any other.
    pub kappa: f64,
    /// Theorem 4.1 lower bound on `δ`.
    pub delta_lower: f64,
    /// Theorem 4.1 upper bound on `Δ` (`None` ⇒ possibly unbounded).
    pub delta_upper: Option<f64>,
    /// Theorem 4.1's `O(√n)` fatness bound (`None` for `β ≤ 1`).
    pub fatness_sqrt_n: Option<f64>,
    /// Theorem 4.2's constant fatness bound (`None` for `β ≤ 1`).
    pub fatness_const: Option<f64>,
}

/// Computes the [`ZoneBounds`] of station `i` in a network.
///
/// The bounds are proven for uniform power networks with `α = 2`; for
/// other networks the returned values are *not* guaranteed and the caller
/// should consult [`Network::satisfies_convexity_preconditions`].
pub fn zone_bounds(net: &Network, i: StationId) -> ZoneBounds {
    let kappa = net.kappa(i);
    let n = net.len();
    let noise = net.noise();
    let beta = net.beta();
    ZoneBounds {
        kappa,
        delta_lower: delta_lower_bound(kappa, n, noise, beta),
        delta_upper: delta_upper_bound(kappa, noise, beta),
        fatness_sqrt_n: if beta > 1.0 {
            fatness_bound_sqrt_n(n, beta)
        } else {
            None
        },
        fatness_const: fatness_bound(beta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sinr_geometry::Point;

    #[test]
    fn noiseless_closed_forms() {
        // N = 0: δ ≥ κ/(√(β(n−1))+1), Δ ≤ κ/(√β − 1).
        let d = delta_lower_bound(2.0, 3, 0.0, 4.0);
        assert!((d - 2.0 / (8f64.sqrt() + 1.0)).abs() < 1e-12);
        let up = delta_upper_bound(2.0, 0.0, 4.0).unwrap();
        assert!((up - 2.0).abs() < 1e-12); // 2/(2−1)
    }

    #[test]
    fn degenerate_upper_bound() {
        assert!(delta_upper_bound(1.0, 0.0, 1.0).is_none()); // trivial network
        assert!(delta_upper_bound(1.0, 0.0, 0.5).is_none());
        // noise rescues boundedness even at β = 1
        assert!(delta_upper_bound(1.0, 1.0, 1.0).is_some());
    }

    #[test]
    fn fatness_bounds_monotone_in_beta() {
        // Larger β ⇒ rounder zones ⇒ smaller bound.
        let mut last = f64::INFINITY;
        for beta in [1.2, 1.5, 2.0, 4.0, 6.0, 10.0, 100.0] {
            let b = fatness_bound(beta).unwrap();
            assert!(b < last, "bound should decrease: {b} at β={beta}");
            assert!(b > 1.0);
            last = b;
        }
        assert!(fatness_bound(1.0).is_none());
        assert!(fatness_bound(0.5).is_none());
    }

    #[test]
    fn sqrt_n_bound_grows_like_sqrt_n() {
        let beta = 2.0;
        let b4 = fatness_bound_sqrt_n(4, beta).unwrap();
        let b16 = fatness_bound_sqrt_n(16, beta).unwrap();
        let b64 = fatness_bound_sqrt_n(64, beta).unwrap();
        // Ratios approach 2 = √4 as n grows.
        assert!((b16 / b4) > 1.5 && (b16 / b4) < 2.5);
        assert!((b64 / b16) > 1.7 && (b64 / b16) < 2.3);
    }

    #[test]
    fn bounds_hold_for_measured_zone() {
        // Measured δ, Δ of an actual network respect the closed forms.
        let net = crate::Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(-1.0, 3.0),
                Point::new(4.0, -2.0),
            ],
            0.05,
            3.0,
        )
        .unwrap();
        for i in net.ids() {
            let b = zone_bounds(&net, i);
            let profile = net.reception_zone(i).radial_profile(256).unwrap();
            assert!(
                profile.delta() >= b.delta_lower - 1e-9,
                "{i}: δ={} < lower bound {}",
                profile.delta(),
                b.delta_lower
            );
            let upper = b.delta_upper.unwrap();
            assert!(
                profile.big_delta() <= upper + 1e-9,
                "{i}: Δ={} > upper bound {}",
                profile.big_delta(),
                upper
            );
            let phi = profile.fatness().unwrap();
            assert!(phi <= b.fatness_const.unwrap() + 1e-6);
            assert!(phi <= b.fatness_sqrt_n.unwrap() + 1e-6);
        }
    }

    #[test]
    fn theorem_41_observation_inequality() {
        // The paper's helper observation: √(a+c)+1 over √(b+c)−1 ≤ (√a+1)/(√b−1)
        // for a ≥ b > 1, c > 0 — spot-check the inequality as stated.
        for (a, b, c) in [(4.0f64, 2.0f64, 1.0), (9.0, 9.0, 5.0), (100.0, 2.0, 0.1)] {
            let lhs = ((a + c).sqrt() + 1.0) / ((b + c).sqrt() - 1.0);
            let rhs = (a.sqrt() + 1.0) / (b.sqrt() - 1.0);
            assert!(lhs <= rhs + 1e-12, "a={a} b={b} c={c}: {lhs} > {rhs}");
        }
    }

    #[test]
    #[should_panic]
    fn bad_n_panics() {
        let _ = delta_lower_bound(1.0, 1, 0.0, 2.0);
    }

    #[test]
    fn lemma43_matches_measured_zone() {
        // Two stations at distance 1, uniform power: the measured boundary
        // radii along the axis equal the closed-form μ_r and −μ_l.
        for beta in [1.5, 2.0, 4.0, 9.0] {
            let net = crate::Network::uniform(
                vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)],
                0.0,
                beta,
            )
            .unwrap();
            let zone = net.reception_zone(crate::StationId(0));
            let (mu_l, mu_r) = lemma43_interval(beta, 1.0).unwrap();
            let toward = zone.boundary_radius(0.0).unwrap();
            let away = zone.boundary_radius(std::f64::consts::PI).unwrap();
            assert!(
                (toward - mu_r).abs() < 1e-9,
                "β={beta}: {toward} vs μ_r={mu_r}"
            );
            assert!(
                (away + mu_l).abs() < 1e-9,
                "β={beta}: {away} vs −μ_l={}",
                -mu_l
            );
        }
    }

    #[test]
    fn lemma43_ratio_attains_fatness_bound() {
        // Equality at ψ₁ = 1; strictly below for ψ₁ > 1.
        for beta in [1.5f64, 2.0, 6.0] {
            let (mu_l, mu_r) = lemma43_interval(beta, 1.0).unwrap();
            let bound = fatness_bound(beta).unwrap();
            assert!(((-mu_l / mu_r) - bound).abs() < 1e-12);
            let (ml2, mr2) = lemma43_interval(beta, 3.0).unwrap();
            assert!(-ml2 / mr2 < bound);
        }
    }

    #[test]
    fn box_distance_envelope() {
        // Point inside the box: min 0, max at the far corner.
        let (lo, hi) = dist2_range_to_box(0.0, 0.0, 4.0, 2.0, 1.0, 1.0);
        assert_eq!(lo, 0.0);
        // Farthest corner is (4, 2): 3² + 1².
        assert_eq!(hi, 9.0 + 1.0);
        // Point left of the box.
        let (lo, hi) = dist2_range_to_box(0.0, 0.0, 4.0, 2.0, -3.0, 1.0);
        assert_eq!(lo, 9.0);
        // Farthest corners are (4, 0) and (4, 2): 7² + 1².
        assert_eq!(hi, 49.0 + 1.0);
        // Degenerate box = point-to-point distance both ways.
        let (lo, hi) = dist2_range_to_box(1.0, 1.0, 1.0, 1.0, 4.0, 5.0);
        assert_eq!(lo, 25.0);
        assert_eq!(hi, 25.0);
        // Envelope brackets the true distance for sampled points.
        for t in 0..=10 {
            let p = Point::new(t as f64 * 0.4, t as f64 * 0.2);
            let (lo, hi) = dist2_range_to_box(0.0, 0.0, 4.0, 2.0, 7.0, -3.0);
            let d2 = p.dist_sq(Point::new(7.0, -3.0));
            assert!(lo <= d2 && d2 <= hi, "{p}: {d2} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn energy_envelope_brackets_kernel_energies() {
        use crate::engine::{GeneralAlpha, InverseSquare, PathLoss};
        let margin = 1e-12;
        for (d_min, d_max) in [(0.25, 9.0), (1.0, 1.0), (4.0, 1e6)] {
            let (lo, hi) = energy_envelope(InverseSquare, 1.5, d_min, d_max, margin);
            // The exact kernel energies at both ends are inside.
            assert!(lo <= InverseSquare.attenuation(d_max) * 1.5);
            assert!(hi >= InverseSquare.attenuation(d_min) * 1.5);
            assert!(lo <= hi);
            let k = GeneralAlpha::new(3.0);
            let (lo, hi) = energy_envelope(k, 2.0, d_min, d_max, margin);
            assert!(lo <= k.attenuation(d_max) * 2.0);
            assert!(hi >= k.attenuation(d_min) * 2.0);
        }
        // A station touching the region can never be pruned: top = ∞.
        let (_, hi) = energy_envelope(InverseSquare, 1.0, 0.0, 4.0, margin);
        assert_eq!(hi, f64::INFINITY);
        let (lo, hi) = energy_envelope(InverseSquare, 1.0, 0.0, 0.0, margin);
        assert_eq!((lo, hi), (f64::INFINITY, f64::INFINITY));
        // Infinitely far: contributes nothing, prunable at zero.
        let (lo, _) = energy_envelope(InverseSquare, 1.0, f64::INFINITY, f64::INFINITY, margin);
        assert_eq!(lo, 0.0);
    }

    #[test]
    fn lemma43_degenerate() {
        assert!(lemma43_interval(1.0, 1.0).is_none());
        assert!(lemma43_interval(0.5, 1.5).is_none());
        assert!(lemma43_interval(0.5, 3.0).is_some()); // βψ₁ = 1.5 > 1
    }
}
