//! The proof reductions of Section 3, made executable.
//!
//! The convexity proof of Theorem 1 rests on two constructions that this
//! module implements directly, so their guarantees can be *checked* on
//! concrete inputs rather than only trusted:
//!
//! * **Lemma 3.10** — given two stations `s₁, s₂` and two points
//!   `p₁, p₂` with `E(s₀, pᵢ) ≥ E({s₁,s₂}, pᵢ)`, there is a single
//!   replacement location `s*` producing *exactly* the pair's energy at
//!   both points and *at least* it on the whole segment `p₁p₂`. The
//!   construction: `s*` is an intersection point of the circles
//!   `∂B(pᵢ, 1/√E({s₁,s₂}, pᵢ))` (Proposition 3.11 guarantees they
//!   intersect).
//! * **Section 3.4 (noise elimination)** — a network with noise `N > 0`
//!   whose station `s₀` is heard at `p₁` and `p₂` embeds into a noiseless
//!   network with one extra unit-power station placed on
//!   `∂B(p₁, 1/√N) ∩ ∂B(p₂, 1/√N)`; the new station contributes exactly
//!   `N` at `p₁, p₂` and at least `N` on the segment between them.
//!
//! Iterating Lemma 3.10 reduces any uniform network to the three-station
//! case of Section 3.2, which is settled by Sturm's condition — the shape
//! of the whole Theorem 1 proof.

use crate::network::Network;
use crate::sinr;
use crate::station::StationId;
use sinr_geometry::{Ball, Point};

/// The replacement location `s*` of **Lemma 3.10**: produces energy
/// exactly `E({s₁, s₂}, pᵢ)` at both `pᵢ` and at least that much on the
/// segment `p₁p₂`.
///
/// `energies = (E₁, E₂)` are the pair's combined energies at `p₁`, `p₂`
/// (unit power, `α = 2` semantics: a station at distance `d` contributes
/// `1/d²`).
///
/// Returns `None` when the two circles do not intersect — which, per
/// Proposition 3.11, cannot happen when some station location `s₀`
/// satisfies `E(s₀, pᵢ) ≥ Eᵢ` for both points (the preconditions of the
/// lemma); the `None` branch exists for callers probing arbitrary inputs.
///
/// # Panics
///
/// Panics unless both energies are strictly positive and the points are
/// distinct.
///
/// # Examples
///
/// ```
/// use sinr_core::reductions::replacement_station;
/// use sinr_geometry::Point;
///
/// let p1 = Point::new(0.0, 0.0);
/// let p2 = Point::new(4.0, 0.0);
/// let s_star = replacement_station(p1, p2, (1.0 / 9.0, 1.0 / 4.0)).unwrap();
/// // E(s*, p1) = 1/9 ⇔ dist(s*, p1) = 3; E(s*, p2) = 1/4 ⇔ dist = 2.
/// assert!((s_star.dist(p1) - 3.0).abs() < 1e-9);
/// assert!((s_star.dist(p2) - 2.0).abs() < 1e-9);
/// ```
pub fn replacement_station(p1: Point, p2: Point, energies: (f64, f64)) -> Option<Point> {
    let (e1, e2) = energies;
    assert!(e1 > 0.0 && e2 > 0.0, "energies must be positive");
    assert!(p1 != p2, "points must be distinct");
    let b1 = Ball::new(p1, 1.0 / e1.sqrt());
    let b2 = Ball::new(p2, 1.0 / e2.sqrt());
    b1.circle_intersections(&b2).into_iter().next()
}

/// Applies Lemma 3.10 to a uniform network: replaces stations `a` and `b`
/// by a single station at the replacement location for the two witness
/// points, returning the reduced network (one station fewer).
///
/// The returned network preserves the interference to every *other*
/// station at `p₁` and `p₂` exactly, and does not decrease it anywhere on
/// the segment — the invariant the induction of Lemma 3.9 needs.
///
/// # Errors
///
/// Returns `None` when the circle intersection is empty (preconditions of
/// the lemma violated) or the network is not uniform power.
pub fn merge_stations(
    net: &Network,
    a: StationId,
    b: StationId,
    p1: Point,
    p2: Point,
) -> Option<Network> {
    if !net.is_uniform_power() || a == b {
        return None;
    }
    let pair = [a, b];
    let e1 = sinr::energy_of_set(net, pair.iter().copied(), p1);
    let e2 = sinr::energy_of_set(net, pair.iter().copied(), p2);
    if !(e1.is_finite() && e2.is_finite()) {
        return None;
    }
    let s_star = replacement_station(p1, p2, (e1, e2))?;
    // Remove the higher index first so the lower one stays valid.
    let (hi, lo) = if a.index() > b.index() {
        (a, b)
    } else {
        (b, a)
    };
    let without_hi = net.without_station(hi).ok()?;
    let without_both = without_hi.without_station(lo).ok()?;
    without_both.with_station(s_star, 1.0).ok()
}

/// The noise-elimination embedding of **Section 3.4**: converts a noisy
/// uniform network into a noiseless one with an extra unit-power station
/// whose energy is exactly `N` at `p₁` and `p₂` and at least `N` on the
/// segment between them.
///
/// Requires `dist(p₁, p₂) < 2/√N` (guaranteed when `s₀` is heard at both
/// points — the paper's argument); returns `None` otherwise or when
/// `N = 0`.
pub fn eliminate_noise(net: &Network, p1: Point, p2: Point) -> Option<Network> {
    let noise = net.noise();
    if noise <= 0.0 || p1 == p2 {
        return None;
    }
    let r = 1.0 / noise.sqrt();
    let b1 = Ball::new(p1, r);
    let b2 = Ball::new(p2, r);
    let s_n = b1.circle_intersections(&b2).into_iter().next()?;
    net.with_noise(0.0).ok()?.with_station(s_n, 1.0).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn lemma_3_10_energy_guarantees() {
        // Random pairs: the replacement matches energies at the endpoints
        // and dominates along the segment.
        let net = gen::random_separated_network(3, 4, 4.0, 1.0, 0.0, 2.0).unwrap();
        let (a, b) = (StationId(1), StationId(2));
        // Witness points inside H0 (the lemma's use site) — approximate by
        // points near s0.
        let s0 = net.position(StationId(0));
        let p1 = Point::new(s0.x + 0.2, s0.y);
        let p2 = Point::new(s0.x - 0.15, s0.y + 0.18);
        let e_pair = |p: Point| sinr::energy_of_set(&net, [a, b].iter().copied(), p);
        let s_star = replacement_station(p1, p2, (e_pair(p1), e_pair(p2))).unwrap();

        // (1) exact energies at the endpoints
        for p in [p1, p2] {
            let e_star = 1.0 / s_star.dist_sq(p);
            assert!(
                (e_star - e_pair(p)).abs() < 1e-9 * e_pair(p),
                "endpoint energy mismatch at {p}"
            );
        }
        // (2) domination on the segment (Lemma 3.3 behind the scenes)
        for k in 1..40 {
            let q = p1.lerp(p2, k as f64 / 40.0);
            let e_star = 1.0 / s_star.dist_sq(q);
            assert!(
                e_star >= e_pair(q) * (1.0 - 1e-9),
                "segment domination fails at {q}: {e_star} < {}",
                e_pair(q)
            );
        }
    }

    #[test]
    fn merge_preserves_reception_structure() {
        // After merging two interferers, SINR of s0 is unchanged at the
        // witness points and not larger along the segment — so reception
        // at the endpoints transfers and convexity arguments compose.
        let net = gen::random_separated_network(11, 5, 4.0, 1.1, 0.0, 1.6).unwrap();
        let s0 = net.position(StationId(0));
        let zone = net.reception_zone(StationId(0));
        let r1 = zone.boundary_radius(0.3).unwrap();
        let r2 = zone.boundary_radius(2.4).unwrap();
        let p1 = s0 + sinr_geometry::Vector::from_angle(0.3) * (0.9 * r1);
        let p2 = s0 + sinr_geometry::Vector::from_angle(2.4) * (0.9 * r2);
        let merged = merge_stations(&net, StationId(2), StationId(3), p1, p2).unwrap();
        assert_eq!(merged.len(), net.len() - 1);
        for p in [p1, p2] {
            let before = net.sinr(StationId(0), p);
            let after = merged.sinr(StationId(0), p);
            assert!(
                (before - after).abs() < 1e-6 * before,
                "SINR changed at witness {p}: {before} vs {after}"
            );
        }
        for k in 1..30 {
            let q = p1.lerp(p2, k as f64 / 30.0);
            assert!(
                merged.sinr(StationId(0), q) <= net.sinr(StationId(0), q) * (1.0 + 1e-9),
                "merged interference must dominate at {q}"
            );
        }
    }

    #[test]
    fn noise_elimination_invariants() {
        let net = gen::random_separated_network(7, 4, 4.0, 1.2, 0.05, 1.5).unwrap();
        let s0 = net.position(StationId(0));
        let p1 = Point::new(s0.x + 0.3, s0.y - 0.1);
        let p2 = Point::new(s0.x - 0.2, s0.y + 0.25);
        let noiseless = eliminate_noise(&net, p1, p2).unwrap();
        assert_eq!(noiseless.noise(), 0.0);
        assert_eq!(noiseless.len(), net.len() + 1);
        let s_n = StationId(net.len());
        // Exactly N at the witness points…
        for p in [p1, p2] {
            let e = noiseless.energy(s_n, p);
            assert!((e - net.noise()).abs() < 1e-9, "energy {e} ≠ N at {p}");
            // …so the SINR of s0 is unchanged there.
            let before = net.sinr(StationId(0), p);
            let after = noiseless.sinr(StationId(0), p);
            assert!((before - after).abs() < 1e-9 * before);
        }
        // ≥ N on the segment.
        for k in 1..30 {
            let q = p1.lerp(p2, k as f64 / 30.0);
            assert!(noiseless.energy(s_n, q) >= net.noise() * (1.0 - 1e-12));
        }
    }

    #[test]
    fn degenerate_inputs() {
        let net = gen::random_separated_network(9, 3, 4.0, 1.5, 0.0, 2.0).unwrap();
        // No noise to eliminate.
        assert!(eliminate_noise(&net, Point::new(0.0, 0.0), Point::new(1.0, 0.0)).is_none());
        // Same station twice.
        assert!(merge_stations(
            &net,
            StationId(1),
            StationId(1),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0)
        )
        .is_none());
        // Far-apart points with huge required radii: circles still meet if
        // energies small; probe the None branch with incompatible demands.
        assert!(replacement_station(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            (1e6, 1e6) // radii 1e-3 each: circles cannot reach each other
        )
        .is_none());
    }

    #[test]
    #[should_panic]
    fn coincident_points_panic() {
        let _ = replacement_station(Point::ORIGIN, Point::ORIGIN, (1.0, 1.0));
    }
}
