//! Reception-zone geometry: boundary ray-shooting, `δ`, `Δ` and fatness.
//!
//! For a station `sᵢ` whose location is not shared, Lemma 3.1 of the paper
//! makes the SINR *strictly decreasing along every ray from `sᵢ`* (within
//! the region where it exceeds 1), so the boundary `∂Hᵢ` is crossed exactly
//! once per direction and can be located by bisection. On top of that
//! primitive this module computes the quantities of Section 2.1:
//!
//! * `δ(sᵢ, Hᵢ)` — radius of the largest ball centred at `sᵢ` inside `Hᵢ`;
//! * `Δ(sᵢ, Hᵢ)` — radius of the smallest ball centred at `sᵢ` containing
//!   `Hᵢ`;
//! * the fatness parameter `φ(sᵢ, Hᵢ) = Δ/δ` (Theorem 2 bounds it by
//!   `(√β + 1)/(√β − 1)` for uniform power, `α = 2`, constant `β > 1`).

use crate::network::Network;
use crate::station::StationId;
use sinr_geometry::{Point, Vector};

/// Default number of ray samples for radial profiles.
pub const DEFAULT_RAY_SAMPLES: usize = 360;

/// A handle onto the reception zone `Hᵢ` of one station.
///
/// Borrow-based: the zone does not copy the network.
///
/// # Examples
///
/// ```
/// use sinr_core::{Network, StationId};
/// use sinr_geometry::Point;
///
/// let net = Network::uniform(
///     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap();
/// let zone = net.reception_zone(StationId(0));
/// assert!(zone.contains(Point::new(0.5, 0.0)));
/// let profile = zone.radial_profile(180).unwrap();
/// // Theorem 4.2: fatness ≤ (√2+1)/(√2−1) ≈ 5.83 for β = 2.
/// assert!(profile.fatness().unwrap() <= 5.83 + 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ReceptionZone<'a> {
    net: &'a Network,
    i: StationId,
}

impl<'a> ReceptionZone<'a> {
    /// Creates a handle for station `i` of `net`.
    pub fn new(net: &'a Network, i: StationId) -> Self {
        ReceptionZone { net, i }
    }

    /// The owning network.
    pub fn network(&self) -> &'a Network {
        self.net
    }

    /// The station this zone belongs to.
    pub fn station_id(&self) -> StationId {
        self.i
    }

    /// The station position (an interior point of the zone unless the
    /// location is shared).
    pub fn center(&self) -> Point {
        self.net.position(self.i)
    }

    /// Membership test: `p ∈ Hᵢ`.
    pub fn contains(&self, p: Point) -> bool {
        self.net.is_heard(self.i, p)
    }

    /// True when another station shares this station's location, making
    /// the zone degenerate (`Hᵢ = {sᵢ}`).
    pub fn is_degenerate(&self) -> bool {
        self.net.is_colocated(self.i)
    }

    /// Distance from `sᵢ` to the zone boundary in direction `theta`
    /// (radians), or `None` when the zone is unbounded in that direction
    /// (possible only in the paper's *trivial* networks).
    ///
    /// For uniform power and `β ≥ 1` the zone is star-shaped w.r.t. `sᵢ`
    /// (Lemma 3.1), so this is *the* unique crossing; for `β < 1` there may
    /// be several crossings and the one found by bracketing is returned.
    pub fn boundary_radius(&self, theta: f64) -> Option<f64> {
        self.boundary_radius_along(Vector::from_angle(theta))
    }

    /// Like [`ReceptionZone::boundary_radius`], but along an arbitrary
    /// direction vector (need not be normalised; returns a distance).
    pub fn boundary_radius_along(&self, dir: Vector) -> Option<f64> {
        if self.is_degenerate() {
            return Some(0.0);
        }
        let u = dir.normalized()?;
        let c = self.center();
        // Initial scale: the nearest-station distance κ is the natural unit.
        let kappa = self.net.kappa(self.i);
        let mut hi = kappa.max(1e-9);
        let mut lo = 0.0;
        // Grow until outside (the zone is bounded unless trivial).
        let mut grew = false;
        for _ in 0..200 {
            if !self.contains(c + u * hi) {
                grew = true;
                break;
            }
            lo = hi;
            hi *= 2.0;
        }
        if !grew {
            return None; // unbounded (trivial network half-plane)
        }
        // Bisect [lo, hi] down to relative precision.
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if mid == lo || mid == hi {
                break;
            }
            if self.contains(c + u * mid) {
                lo = mid;
            } else {
                hi = mid;
            }
            if (hi - lo) <= 1e-14 * hi.max(1.0) {
                break;
            }
        }
        Some(0.5 * (lo + hi))
    }

    /// The boundary point in direction `theta`, or `None` if unbounded.
    pub fn boundary_point(&self, theta: f64) -> Option<Point> {
        let r = self.boundary_radius(theta)?;
        Some(self.center() + Vector::from_angle(theta) * r)
    }

    /// Samples the boundary radius in `samples` evenly spaced directions
    /// and refines the extreme directions, yielding a [`RadialProfile`].
    ///
    /// Returns `None` when the zone is unbounded in some sampled direction.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn radial_profile(&self, samples: usize) -> Option<RadialProfile> {
        assert!(samples > 0, "need at least one sample");
        let mut radii = Vec::with_capacity(samples);
        for k in 0..samples {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / samples as f64;
            radii.push(self.boundary_radius(theta)?);
        }
        let step = 2.0 * std::f64::consts::PI / samples as f64;

        // Locate sampled extremes.
        let (mut min_idx, mut max_idx) = (0usize, 0usize);
        for (k, r) in radii.iter().enumerate() {
            if *r < radii[min_idx] {
                min_idx = k;
            }
            if *r > radii[max_idx] {
                max_idx = k;
            }
        }
        // Golden-section refinement in the bracketing windows.
        let refine = |idx: usize, minimize: bool| -> Option<(f64, f64)> {
            let theta0 = idx as f64 * step;
            let mut a = theta0 - step;
            let mut b = theta0 + step;
            let phi = 0.5 * (3.0 - 5f64.sqrt());
            let mut x1 = a + phi * (b - a);
            let mut x2 = b - phi * (b - a);
            let mut f1 = self.boundary_radius(x1)?;
            let mut f2 = self.boundary_radius(x2)?;
            for _ in 0..60 {
                let pick1 = if minimize { f1 < f2 } else { f1 > f2 };
                if pick1 {
                    b = x2;
                    x2 = x1;
                    f2 = f1;
                    x1 = a + phi * (b - a);
                    f1 = self.boundary_radius(x1)?;
                } else {
                    a = x1;
                    x1 = x2;
                    f1 = f2;
                    x2 = b - phi * (b - a);
                    f2 = self.boundary_radius(x2)?;
                }
                if (b - a).abs() < 1e-12 {
                    break;
                }
            }
            let theta = 0.5 * (a + b);
            Some((theta, self.boundary_radius(theta)?))
        };
        let (theta_min, r_min) = refine(min_idx, true)?;
        let (theta_max, r_max) = refine(max_idx, false)?;
        let delta = r_min.min(radii[min_idx]);
        let big_delta = r_max.max(radii[max_idx]);

        Some(RadialProfile {
            radii,
            delta,
            delta_theta: theta_min,
            big_delta,
            big_delta_theta: theta_max,
        })
    }

    /// A polygonal approximation of the zone boundary with `samples`
    /// vertices (counter-clockwise), or `None` when the zone is unbounded.
    pub fn boundary_polygon(&self, samples: usize) -> Option<Vec<Point>> {
        assert!(samples >= 3, "need at least 3 vertices");
        let c = self.center();
        let mut pts = Vec::with_capacity(samples);
        for k in 0..samples {
            let theta = 2.0 * std::f64::consts::PI * k as f64 / samples as f64;
            let r = self.boundary_radius(theta)?;
            pts.push(c + Vector::from_angle(theta) * r);
        }
        Some(pts)
    }

    /// Shoelace-estimated zone area from a boundary polygon of `samples`
    /// vertices. Exact in the limit; for convex zones the polygon is
    /// inscribed, so this is a (tight) underestimate.
    pub fn area_estimate(&self, samples: usize) -> Option<f64> {
        let pts = self.boundary_polygon(samples)?;
        let n = pts.len();
        let mut acc = 0.0;
        for k in 0..n {
            let p = pts[k];
            let q = pts[(k + 1) % n];
            acc += p.x * q.y - q.x * p.y;
        }
        Some(0.5 * acc.abs())
    }

    /// Estimated boundary length from a polygon of `samples` vertices.
    pub fn perimeter_estimate(&self, samples: usize) -> Option<f64> {
        let pts = self.boundary_polygon(samples)?;
        let n = pts.len();
        Some((0..n).map(|k| pts[k].dist(pts[(k + 1) % n])).sum())
    }

    /// The fatness parameter `φ(sᵢ, Hᵢ) = Δ/δ` computed from a profile of
    /// [`DEFAULT_RAY_SAMPLES`] directions. `None` when the zone is
    /// unbounded or degenerate (where `φ` is undefined, as in a trivial
    /// network — footnote 4 of the paper).
    pub fn fatness(&self) -> Option<f64> {
        self.radial_profile(DEFAULT_RAY_SAMPLES)?.fatness()
    }
}

/// A sampled radial description of a reception zone: boundary radii in
/// evenly spaced directions plus refined extreme radii.
#[derive(Debug, Clone, PartialEq)]
pub struct RadialProfile {
    radii: Vec<f64>,
    delta: f64,
    delta_theta: f64,
    big_delta: f64,
    big_delta_theta: f64,
}

impl RadialProfile {
    /// The sampled radii (direction `k` is at angle `2πk/samples`).
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// `δ` — the largest inscribed-ball radius found.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The direction (radians) achieving `δ`.
    pub fn delta_direction(&self) -> f64 {
        self.delta_theta
    }

    /// `Δ` — the smallest enclosing-ball radius found.
    pub fn big_delta(&self) -> f64 {
        self.big_delta
    }

    /// The direction (radians) achieving `Δ`.
    pub fn big_delta_direction(&self) -> f64 {
        self.big_delta_theta
    }

    /// The fatness parameter `φ = Δ/δ`, or `None` for a degenerate zone
    /// (`δ = 0`).
    pub fn fatness(&self) -> Option<f64> {
        if self.delta > 0.0 {
            Some(self.big_delta / self.delta)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn two_station_net(beta: f64) -> Network {
        Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, beta).unwrap()
    }

    #[test]
    fn two_station_boundary_exact() {
        // β = 2, stations at 0 and 4. Along +x the boundary solves
        // (4−r)/r = √2 ⇒ r = 4/(1+√2); along −x, (4+r)/r = √2 ⇒ r = 4/(√2−1).
        let net = two_station_net(2.0);
        let zone = net.reception_zone(StationId(0));
        let r_toward = zone.boundary_radius(0.0).unwrap();
        let r_away = zone.boundary_radius(std::f64::consts::PI).unwrap();
        assert!(
            (r_toward - 4.0 / (1.0 + 2f64.sqrt())).abs() < 1e-9,
            "{r_toward}"
        );
        assert!(
            (r_away - 4.0 / (2f64.sqrt() - 1.0)).abs() < 1e-9,
            "{r_away}"
        );
        // Lemma 4.3 equality case (ψ1 = 1): Δ/δ = (√β+1)/(√β−1).
        let expect = (2f64.sqrt() + 1.0) / (2f64.sqrt() - 1.0);
        assert!((r_away / r_toward - expect).abs() < 1e-9);
    }

    #[test]
    fn profile_extremes_match_geometry() {
        let net = two_station_net(2.0);
        let zone = net.reception_zone(StationId(0));
        let profile = zone.radial_profile(256).unwrap();
        // δ is toward the interferer (θ = 0), Δ away (θ = π).
        assert!((profile.delta() - 4.0 / (1.0 + 2f64.sqrt())).abs() < 1e-6);
        assert!((profile.big_delta() - 4.0 / (2f64.sqrt() - 1.0)).abs() < 1e-6);
        let d = profile
            .delta_direction()
            .rem_euclid(2.0 * std::f64::consts::PI);
        assert!(
            !(0.1..=2.0 * std::f64::consts::PI - 0.1).contains(&d),
            "δ direction {d}"
        );
        let big = profile
            .big_delta_direction()
            .rem_euclid(2.0 * std::f64::consts::PI);
        assert!(
            (big - std::f64::consts::PI).abs() < 0.1,
            "Δ direction {big}"
        );
    }

    #[test]
    fn fatness_bound_respected() {
        // Theorem 4.2: φ ≤ (√β+1)/(√β−1).
        for beta in [1.5, 2.0, 4.0, 6.0, 10.0] {
            let net = two_station_net(beta);
            let phi = net.reception_zone(StationId(0)).fatness().unwrap();
            let bound = (beta.sqrt() + 1.0) / (beta.sqrt() - 1.0);
            assert!(phi <= bound + 1e-6, "β={beta}: φ={phi} > bound={bound}");
            // Two equal stations achieve the bound exactly (Lemma 4.3).
            assert!(phi >= bound - 1e-3, "β={beta}: φ={phi} ≪ bound={bound}");
        }
    }

    #[test]
    fn trivial_network_unbounded() {
        let net = two_station_net(1.0); // trivial: half-plane zones
        let zone = net.reception_zone(StationId(0));
        // Toward the other station the boundary exists (the bisector)…
        assert!(zone.boundary_radius(0.0).is_some());
        // …but away from it the zone is unbounded.
        assert!(zone.boundary_radius(std::f64::consts::PI).is_none());
        assert!(zone.radial_profile(16).is_none());
        assert!(zone.fatness().is_none());
    }

    #[test]
    fn degenerate_zone_is_a_point() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        let zone = net.reception_zone(StationId(0));
        assert!(zone.is_degenerate());
        assert_eq!(zone.boundary_radius(1.0), Some(0.0));
        let profile = zone.radial_profile(8).unwrap();
        assert_eq!(profile.delta(), 0.0);
        assert!(profile.fatness().is_none());
    }

    #[test]
    fn noise_only_zone_is_a_disc() {
        // Two stations far apart with noise: near s0 the zone is nearly the
        // noise-limited disc of radius 1/√(βN).
        let net = Network::uniform(
            vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)],
            0.01,
            4.0,
        )
        .unwrap();
        let zone = net.reception_zone(StationId(0));
        let ideal = 1.0 / (4.0 * 0.01f64).sqrt(); // 5.0
        let profile = zone.radial_profile(64).unwrap();
        assert!(
            (profile.delta() - ideal).abs() < 0.05,
            "δ={}",
            profile.delta()
        );
        assert!((profile.big_delta() - ideal).abs() < 0.05);
        // Nearly round: fatness ≈ 1.
        assert!(profile.fatness().unwrap() < 1.02);
    }

    #[test]
    fn area_and_perimeter_of_round_zone() {
        let net = Network::uniform(
            vec![Point::new(0.0, 0.0), Point::new(1000.0, 0.0)],
            0.01,
            4.0,
        )
        .unwrap();
        let zone = net.reception_zone(StationId(0));
        let r = 5.0_f64; // noise-limited radius, see above
        let area = zone.area_estimate(512).unwrap();
        let per = zone.perimeter_estimate(512).unwrap();
        assert!(
            (area - std::f64::consts::PI * r * r).abs() < 0.3,
            "area {area}"
        );
        assert!(
            (per - 2.0 * std::f64::consts::PI * r).abs() < 0.1,
            "perimeter {per}"
        );
    }

    #[test]
    fn boundary_points_are_on_the_boundary() {
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 1.0),
                Point::new(-1.0, 4.0),
            ],
            0.02,
            2.5,
        )
        .unwrap();
        let zone = net.reception_zone(StationId(0));
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let p = zone.boundary_point(theta).unwrap();
            let s = net.sinr(StationId(0), p);
            assert!(
                (s - net.beta()).abs() < 1e-6 * net.beta(),
                "SINR at boundary point should equal β: {s}"
            );
        }
    }

    #[test]
    fn zone_contains_matches_network() {
        let net = two_station_net(2.0);
        let zone = net.reception_zone(StationId(1));
        for k in 0..40 {
            let p = Point::new(k as f64 * 0.2, 0.3);
            assert_eq!(zone.contains(p), net.is_heard(StationId(1), p));
        }
    }

    #[test]
    #[should_panic]
    fn zero_samples_panics() {
        let net = two_station_net(2.0);
        let _ = net.reception_zone(StationId(0)).radial_profile(0);
    }
}
