//! Stations and their identifiers.

use sinr_geometry::Point;

/// Index of a station within its network (the `i` of `sᵢ`).
///
/// A thin newtype so that station indices cannot be confused with other
/// integers (grid rows, sample counts, …) at API boundaries.
///
/// # Examples
///
/// ```
/// use sinr_core::StationId;
///
/// let id = StationId(3);
/// assert_eq!(id.index(), 3);
/// assert_eq!(format!("{id}"), "s3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationId(pub usize);

impl StationId {
    /// The raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for StationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

impl From<usize> for StationId {
    fn from(i: usize) -> Self {
        StationId(i)
    }
}

/// A *stable* station handle that survives the index reshuffling of
/// in-place network surgery.
///
/// [`StationId`] is a *positional* index: [`Network::remove_station`]
/// (swap-remove) moves the last station into the freed slot, so indices
/// are only valid until the next removal. A `StationKey` is handed out
/// once per station ([`Network::station_key`]) and never reused; resolve
/// it back to the current index with [`Network::station_by_key`].
///
/// [`Network::remove_station`]: crate::Network::remove_station
/// [`Network::station_key`]: crate::Network::station_key
/// [`Network::station_by_key`]: crate::Network::station_by_key
///
/// # Examples
///
/// ```
/// use sinr_core::{Network, StationId};
/// use sinr_geometry::Point;
///
/// let mut net = Network::uniform(vec![
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(0.0, 4.0),
/// ], 0.0, 2.0)?;
/// let key = net.station_key(StationId(2));
/// net.remove_station(StationId(0))?; // s2 swaps into slot 0
/// assert_eq!(net.station_by_key(key), Some(StationId(0)));
/// # Ok::<(), sinr_core::NetworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StationKey(pub u64);

impl StationKey {
    /// The raw key value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for StationKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "k{}", self.0)
    }
}

/// A transmitting radio station: an identifier, a position, and a transmit
/// power.
///
/// In the paper a station `sᵢ` doubles as the point `(aᵢ, bᵢ)` where it
/// resides; [`Station::position`] is that point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Station {
    /// Index within the network.
    pub id: StationId,
    /// Location in the plane.
    pub position: Point,
    /// Transmit power `ψᵢ > 0`.
    pub power: f64,
}

impl Station {
    /// Creates a station.
    ///
    /// # Panics
    ///
    /// Panics if `power` is not strictly positive and finite.
    pub fn new(id: StationId, position: Point, power: f64) -> Self {
        assert!(
            power > 0.0 && power.is_finite(),
            "transmit power must be positive, got {power}"
        );
        Station {
            id,
            position,
            power,
        }
    }
}

impl std::fmt::Display for Station {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}@{} (ψ={})", self.id, self.position, self.power)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        let id: StationId = 7usize.into();
        assert_eq!(id.index(), 7);
        assert_eq!(StationId(7), id);
        assert!(StationId(2) < StationId(10));
    }

    #[test]
    fn station_display() {
        let s = Station::new(StationId(1), Point::new(2.0, 3.0), 1.5);
        let txt = format!("{s}");
        assert!(txt.contains("s1") && txt.contains("1.5"));
    }

    #[test]
    #[should_panic]
    fn non_positive_power_panics() {
        let _ = Station::new(StationId(0), Point::ORIGIN, 0.0);
    }
}
