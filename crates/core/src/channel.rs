//! Stochastic channels: Monte-Carlo reception probability over the
//! deterministic SINR engines.
//!
//! The SINR diagrams of Avin et al. are the *deterministic skeleton* of a
//! fundamentally stochastic model: real links fade and shadow, so the
//! production-shaped question is not "is `p` in `Hᵢ`" but "with what
//! probability is `p` in `Hᵢ` when the channel is drawn from a fading
//! distribution". This module layers that question over the existing
//! engines without forking any of their machinery.
//!
//! ## The gain-folding identity
//!
//! Every model here is a *multiplicative per-station gain vector*
//! `g = (g₁ … gₙ)`, `gⱼ > 0`, drawn per Monte-Carlo trial: station `j`'s
//! received energy becomes
//!
//! ```text
//! Eⱼ(p) = gⱼ · ψⱼ · dist(sⱼ, p)^{-α}
//! ```
//!
//! Because the gain multiplies the *power* term of the energy product,
//! a trial is exactly the deterministic model evaluated on the scaled
//! power vector `(g₁ψ₁ … gₙψₙ)` — the sealed [`PathLoss`](crate::engine::PathLoss) strategy, the
//! SoA scan kernels ([`crate::simd`]), and the reception test are reused
//! verbatim. The expensive per-batch state is built **once**:
//!
//! * the SoA columns `xs / ys` never change across trials — only the
//!   power column is rewritten (`n` multiplies per trial);
//! * the Morton order of the query batch is computed once;
//! * each tile's *unit-power* attenuation envelopes
//!   `[attₗₒ(j), attₕᵢ(j)]` over the tile box
//!   ([`crate::bounds::energy_envelope`] at `ψ = 1`) are computed once;
//!   per trial the certified envelope of station `j` is just
//!   `[attₗₒ(j)·gⱼψⱼ, attₕᵢ(j)·gⱼψⱼ]` — two multiplies per station per
//!   tile, *exactly* as tight as recomputing from scratch (the envelope
//!   is linear in the power), rather than widening a shared envelope by
//!   per-tile gain bounds;
//! * candidate pruning, the SIMD candidate scans
//!   ([`crate::simd::scan_slices`] — the same kernels as
//!   `locate_batch`), and the certified reception test at both ends of
//!   the residual interval run per trial on the scaled columns, with
//!   the backend's own serial kernel (on the scaled evaluator) as the
//!   uncertifiable-point fallback. Certified decisions agree with
//!   *every* summation order by the [`crate::tile::TOTAL_MARGIN`]
//!   contract, so each trial's reception bit is bit-identical to what
//!   the backend's deterministic `locate` would answer on the scaled
//!   network.
//!
//! Trials are the work-stealing units (the same scheduler as every other
//! batch path, [`crate::tile`]'s tile stealer), each worker owning one
//! scaled evaluator clone for the whole run.
//!
//! ## The seeding contract
//!
//! All randomness flows through the workspace's vendored `rand` shim
//! with an explicit `u64` seed. Trial `t` of a request with seed `s`
//! draws its gains from
//!
//! ```text
//! StdRng::seed_from_u64(s XOR (t + 1)·0x9E3779B97F4A7C15)
//! ```
//!
//! with [`Composed`](ChannelModel::Composed) atoms drawing from that one
//! stream in atom order, stations in index order, each atom consuming a
//! fixed number of variates per station. The gain stream therefore
//! depends only on `(model, seed, trial, n)` — not on the backend, the
//! SIMD kernel, thread scheduling, or which side of the server boundary
//! evaluates it — which is what lets the differential e2e harness pin
//! served Monte-Carlo answers bit-identical to fresh local engines.
//!
//! ## Exactness at the degenerate points
//!
//! * An **identity** channel ([`ChannelModel::is_identity`]) routes
//!   through the backend's own deterministic `locate_batch`, so the
//!   probabilities are exactly `0.0` / `1.0` and agree with the
//!   deterministic answers bit-for-bit *by construction* — the
//!   stochastic path may never disagree with the deterministic one.
//! * A gain-**deterministic** model with non-unit gains (e.g. fixed
//!   per-station offsets) runs exactly one trial, so probabilities are
//!   again exactly `0.0` / `1.0`.
//! * Otherwise `P = k/T` for integer `k` of `T` trials; `k = 0` and
//!   `k = T` produce exact `0.0` / `1.0`.
//!
//! The family is **sealed by construction**: [`ChannelModel`] is a
//! closed enum (not a trait), mirroring the sealed [`PathLoss`](crate::engine::PathLoss)
//! strategy — the certified-pruning argument above quantifies over all
//! implemented models, so downstream crates must not add their own.

use crate::bounds::{dist2_range_to_box, energy_envelope};
use crate::engine::{GeneralAlpha, InverseSquare, LocateError, Located, SinrEvaluator, BATCH_TILE};
use crate::simd::{self, SimdKernel};
use crate::station::StationId;
use crate::tile::{morton_order, receives_at_total, steal_tiles, BOUND_MARGIN, TOTAL_MARGIN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sinr_geometry::Point;
use std::sync::atomic::{AtomicU32, Ordering};

/// Hard cap on Monte-Carlo trials per request — bounds the work a single
/// (possibly remote) query can demand. `65 536` trials resolve
/// probabilities to ~`1.5e-5`, far below channel-model fidelity.
pub const MAX_TRIALS: u32 = 65_536;

/// Cap on [`ChannelModel::Composed`] atoms: enough to stack every atom
/// kind with room to spare, small enough that a wire-decoded spec can
/// never demand unbounded per-trial work.
pub const MAX_COMPOSED_ATOMS: usize = 16;

/// Monte-Carlo execution parameters: how many trials, and the seed the
/// per-trial gain streams derive from (see the [module
/// docs](self#the-seeding-contract)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct McConfig {
    /// Number of independent channel draws (`1 ..= MAX_TRIALS`).
    pub trials: u32,
    /// Base seed of the per-trial gain streams.
    pub seed: u64,
}

impl McConfig {
    /// Convenience constructor.
    pub fn new(trials: u32, seed: u64) -> Self {
        McConfig { trials, seed }
    }

    /// Checks the trial count is in `1 ..= MAX_TRIALS`.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidChannel`] otherwise.
    pub fn validate(&self) -> Result<(), ChannelError> {
        if self.trials == 0 {
            return Err(ChannelError::InvalidChannel(
                "trial count must be at least 1".into(),
            ));
        }
        if self.trials > MAX_TRIALS {
            return Err(ChannelError::InvalidChannel(format!(
                "trial count {} exceeds the cap of {MAX_TRIALS}",
                self.trials
            )));
        }
        Ok(())
    }
}

/// A stochastic channel model: a distribution over multiplicative
/// per-station gain vectors (sealed — a closed enum by design, see the
/// [module docs](self)).
///
/// Gains multiply the *energy* (power) term, so a draw is the
/// deterministic SINR model on a scaled power assignment. All models
/// are mutually independent across stations and across trials.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelModel {
    /// The identity channel: every gain is exactly 1 — the deterministic
    /// model itself.
    Deterministic,
    /// Log-normal shadowing: `gⱼ = 10^{σ·Zⱼ/10}` with `Zⱼ ~ N(0,1)` —
    /// the dB-domain Gaussian standard for slow fading. `σ = 0` is the
    /// identity.
    LogNormalShadowing {
        /// Shadowing standard deviation in dB (finite, `≥ 0`).
        sigma_db: f64,
    },
    /// Rayleigh fast fading: the *power* gain is `Exp(1)` (unit-mean
    /// exponential — the squared magnitude of a circularly-symmetric
    /// complex Gaussian amplitude).
    RayleighFading,
    /// A fixed per-station gain offset (antenna gains, calibration
    /// offsets): no randomness, gains applied verbatim.
    FixedGains {
        /// One finite positive gain per station, index-aligned with the
        /// network.
        gains: Vec<f64>,
    },
    /// The product of the atom models, applied in order (e.g. shadowing
    /// × fast fading). Atoms must not themselves be `Composed` (one
    /// level — enforced by [`ChannelModel::validate`] and rejected at
    /// wire decode).
    Composed(Vec<ChannelModel>),
}

impl ChannelModel {
    /// Checks the model is well-formed for a network of `n_stations`
    /// stations: finite non-negative `σ`, a full vector of finite
    /// positive fixed gains, and a flat composition of at most
    /// [`MAX_COMPOSED_ATOMS`] atoms.
    ///
    /// # Errors
    ///
    /// [`ChannelError::InvalidChannel`] describing the first violation.
    pub fn validate(&self, n_stations: usize) -> Result<(), ChannelError> {
        match self {
            ChannelModel::Deterministic | ChannelModel::RayleighFading => Ok(()),
            ChannelModel::LogNormalShadowing { sigma_db } => {
                if sigma_db.is_finite() && *sigma_db >= 0.0 {
                    Ok(())
                } else {
                    Err(ChannelError::InvalidChannel(format!(
                        "shadowing sigma must be finite and >= 0 dB, got {sigma_db}"
                    )))
                }
            }
            ChannelModel::FixedGains { gains } => {
                if gains.len() != n_stations {
                    return Err(ChannelError::InvalidChannel(format!(
                        "fixed-gain vector has {} entries but the network has {n_stations} \
                         stations",
                        gains.len()
                    )));
                }
                match gains.iter().find(|g| !(g.is_finite() && **g > 0.0)) {
                    Some(g) => Err(ChannelError::InvalidChannel(format!(
                        "fixed gains must be finite and > 0, got {g}"
                    ))),
                    None => Ok(()),
                }
            }
            ChannelModel::Composed(atoms) => {
                if atoms.len() > MAX_COMPOSED_ATOMS {
                    return Err(ChannelError::InvalidChannel(format!(
                        "composition has {} atoms, the cap is {MAX_COMPOSED_ATOMS}",
                        atoms.len()
                    )));
                }
                for atom in atoms {
                    if matches!(atom, ChannelModel::Composed(_)) {
                        return Err(ChannelError::InvalidChannel(
                            "compositions must be flat (no nested Composed)".into(),
                        ));
                    }
                    atom.validate(n_stations)?;
                }
                Ok(())
            }
        }
    }

    /// True when the model draws no randomness — every trial yields the
    /// same gain vector, so one trial decides the probability exactly.
    pub fn is_deterministic(&self) -> bool {
        match self {
            ChannelModel::Deterministic | ChannelModel::FixedGains { .. } => true,
            ChannelModel::LogNormalShadowing { sigma_db } => *sigma_db == 0.0,
            ChannelModel::RayleighFading => false,
            ChannelModel::Composed(atoms) => atoms.iter().all(ChannelModel::is_deterministic),
        }
    }

    /// True when every gain is exactly 1 — the channel *is* the
    /// deterministic model, and the Monte-Carlo answer must match
    /// `locate_batch` bit-for-bit (the degenerate-channel contract).
    pub fn is_identity(&self) -> bool {
        match self {
            ChannelModel::Deterministic => true,
            ChannelModel::LogNormalShadowing { sigma_db } => *sigma_db == 0.0,
            ChannelModel::RayleighFading => false,
            ChannelModel::FixedGains { gains } => gains.iter().all(|&g| g == 1.0),
            ChannelModel::Composed(atoms) => atoms.iter().all(ChannelModel::is_identity),
        }
    }

    /// Fills `out` (one slot per station) with the gain vector of trial
    /// `trial` under base seed `seed` — the exact stream the engines
    /// consume, exposed so baselines and differential tests can replay
    /// it. Gains of a valid model are always finite-or-zero and
    /// non-negative (`Exp(1)` can draw an exact 0).
    pub fn gains_for_trial(&self, seed: u64, trial: u32, out: &mut [f64]) {
        out.fill(1.0);
        let mut rng = trial_rng(seed, trial);
        self.apply_gains(&mut rng, out);
    }

    /// Multiplies this model's trial draw into `out`, consuming variates
    /// from `rng` in station index order.
    fn apply_gains(&self, rng: &mut StdRng, out: &mut [f64]) {
        match self {
            ChannelModel::Deterministic => {}
            ChannelModel::LogNormalShadowing { sigma_db } => {
                for g in out.iter_mut() {
                    // Draw unconditionally (even at σ = 0) so the stream
                    // position of later atoms is parameter-independent.
                    let z = standard_normal(rng);
                    *g *= 10f64.powf(sigma_db * z / 10.0);
                }
            }
            ChannelModel::RayleighFading => {
                for g in out.iter_mut() {
                    *g *= unit_exponential(rng);
                }
            }
            ChannelModel::FixedGains { gains } => {
                for (g, &f) in out.iter_mut().zip(gains) {
                    *g *= f;
                }
            }
            ChannelModel::Composed(atoms) => {
                for atom in atoms {
                    atom.apply_gains(rng, out);
                }
            }
        }
    }
}

/// Why a stochastic-channel query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelError {
    /// The engine is stale (same condition as
    /// [`QueryEngine::try_locate_batch`](crate::engine::QueryEngine::try_locate_batch)).
    Stale(LocateError),
    /// The channel model or Monte-Carlo config failed validation.
    InvalidChannel(String),
    /// This backend does not implement stochastic channels (e.g. the
    /// Theorem-3 approximate locator, whose zone structures assume the
    /// deterministic power assignment).
    Unsupported(&'static str),
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::Stale(e) => write!(f, "{e}"),
            ChannelError::InvalidChannel(msg) => write!(f, "invalid channel model: {msg}"),
            ChannelError::Unsupported(msg) => {
                write!(f, "stochastic channels unsupported: {msg}")
            }
        }
    }
}

impl std::error::Error for ChannelError {}

impl From<LocateError> for ChannelError {
    fn from(e: LocateError) -> Self {
        ChannelError::Stale(e)
    }
}

/// The per-trial RNG (see the [module docs](self#the-seeding-contract)):
/// trial indices are decorrelated by the 64-bit golden-ratio constant
/// before seeding splitmix64.
fn trial_rng(seed: u64, trial: u32) -> StdRng {
    StdRng::seed_from_u64(seed ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One `N(0, 1)` variate via Box–Muller (the shim has no normal
/// distribution). `u₁` is mapped into `(0, 1]` so the log never sees 0;
/// the second variate of the pair is discarded to keep the per-station
/// stream position fixed.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1 = 1.0 - rng.gen_range(0.0..1.0);
    let u2 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// One `Exp(1)` variate (the unit-mean Rayleigh *power* gain) via
/// inversion; `1 − u ∈ (0, 1]` keeps the log finite (an exact 0.0 gain
/// is possible and handled by the executor's envelope guard).
fn unit_exponential(rng: &mut StdRng) -> f64 {
    -(1.0 - rng.gen_range(0.0..1.0)).ln()
}

/// Per-tile once-per-batch state of the Monte-Carlo executor: the tile's
/// index range in the Morton order and each station's *unit-power*
/// attenuation envelope over the tile box. Scaling by the trial's
/// effective powers recovers exactly the envelope
/// [`crate::tile::locate_batch_tiled`] would compute from scratch.
struct TilePrep {
    start: usize,
    end: usize,
    /// False when the tile contains a non-finite query point — every
    /// trial runs such tiles through the serial kernel wholesale.
    finite: bool,
    att_lo: Vec<f64>,
    att_hi: Vec<f64>,
}

/// Builds the Morton order and the per-tile unit-power envelopes — the
/// trial-invariant half of the tiled pipeline, computed once per batch.
fn prepare_tiles(eval: &SinrEvaluator, points: &[Point]) -> (Vec<u32>, Vec<TilePrep>) {
    let order = morton_order(points);
    let tile = BATCH_TILE;
    let num_tiles = order.len().div_ceil(tile);
    let (xs, ys, _) = eval.soa();
    let n = xs.len();
    let alpha = eval.alpha();
    let k_general = GeneralAlpha::new(alpha);
    let mut preps = Vec::with_capacity(num_tiles);
    for t in 0..num_tiles {
        let start = t * tile;
        let end = ((t + 1) * tile).min(order.len());
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut finite = true;
        for &i in &order[start..end] {
            let p = points[i as usize];
            if !(p.x.is_finite() && p.y.is_finite()) {
                finite = false;
                break;
            }
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if !finite {
            preps.push(TilePrep {
                start,
                end,
                finite: false,
                att_lo: Vec::new(),
                att_hi: Vec::new(),
            });
            continue;
        }
        let mut att_lo = Vec::with_capacity(n);
        let mut att_hi = Vec::with_capacity(n);
        for j in 0..n {
            let (d_min, d_max) = dist2_range_to_box(min_x, min_y, max_x, max_y, xs[j], ys[j]);
            let (lo, hi) = if alpha == 2.0 {
                energy_envelope(InverseSquare, 1.0, d_min, d_max, BOUND_MARGIN)
            } else {
                energy_envelope(k_general, 1.0, d_min, d_max, BOUND_MARGIN)
            };
            att_lo.push(lo);
            att_hi.push(hi);
        }
        preps.push(TilePrep {
            start,
            end,
            finite: true,
            att_lo,
            att_hi,
        });
    }
    (order, preps)
}

/// Per-worker scratch of the Monte-Carlo executor: the lazily-cloned
/// scaled evaluator (one clone per worker for the whole run) plus the
/// per-trial gain and envelope/candidate columns, reused across trials.
#[derive(Default)]
struct McScratch {
    scaled: Option<SinrEvaluator>,
    gains: Vec<f64>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    cxs: Vec<f64>,
    cys: Vec<f64>,
    cws: Vec<f64>,
    cidx: Vec<u32>,
}

/// The shared Monte-Carlo reception-probability executor behind every
/// backend's
/// [`QueryEngine::reception_probability_batch`](crate::engine::QueryEngine::reception_probability_batch).
///
/// `serial` must be the *serial per-point kernel of the calling backend*
/// evaluated on the (scaled) evaluator it is handed — the same contract
/// as [`crate::tile::locate_batch_tiled`]'s fallback, making each
/// trial's reception bit identical to the backend's deterministic answer
/// on the scaled network. `deterministic_batch` must be the backend's
/// own `locate_batch` — the identity-channel fast path routes through it
/// so degenerate probabilities match the deterministic answers
/// bit-for-bit by construction. `kernel` drives the candidate scans.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
#[allow(clippy::too_many_arguments)]
pub(crate) fn reception_probability_driver<F, B>(
    eval: &SinrEvaluator,
    kernel: SimdKernel,
    model: &ChannelModel,
    mc: McConfig,
    points: &[Point],
    out: &mut [f64],
    serial: F,
    deterministic_batch: B,
) -> Result<(), ChannelError>
where
    F: Fn(&SinrEvaluator, Point) -> Located + Sync,
    B: FnOnce(&[Point], &mut [Located]),
{
    assert_eq!(
        points.len(),
        out.len(),
        "reception_probability_batch: {} points but {} output slots",
        points.len(),
        out.len()
    );
    model.validate(eval.len())?;
    mc.validate()?;
    eval.freshness()?;
    if points.is_empty() {
        return Ok(());
    }
    if model.is_identity() {
        let mut located = vec![Located::Silent; points.len()];
        deterministic_batch(points, &mut located);
        for (slot, l) in out.iter_mut().zip(&located) {
            *slot = if l.station().is_some() { 1.0 } else { 0.0 };
        }
        return Ok(());
    }
    // A gain-deterministic model needs exactly one trial.
    let trials = if model.is_deterministic() {
        1
    } else {
        mc.trials
    };
    let counts = mc_reception_counts(eval, kernel, model, mc.seed, trials, points, &serial);
    for (slot, c) in out.iter_mut().zip(counts) {
        // `c/trials` is exact at both extremes (`0/T = 0.0`, `T/T = 1.0`).
        *slot = c as f64 / trials as f64;
    }
    Ok(())
}

/// Counts, per point, in how many of the `trials` seeded channel draws
/// the point receives. Trials are the stolen work units; the per-batch
/// Morton order and unit-power tile envelopes are shared read-only.
fn mc_reception_counts<F>(
    eval: &SinrEvaluator,
    kernel: SimdKernel,
    model: &ChannelModel,
    seed: u64,
    trials: u32,
    points: &[Point],
    serial: &F,
) -> Vec<u32>
where
    F: Fn(&SinrEvaluator, Point) -> Located + Sync,
{
    let (xs, ys, ws) = eval.soa();
    let n = xs.len();
    let alpha = eval.alpha();
    let noise = eval.noise();
    let beta = eval.beta();
    // Tiling pays off whenever the network is large enough to prune,
    // regardless of batch length — the per-batch prep is amortized over
    // every trial, unlike the single-shot `locate_batch` heuristic.
    let tiled = n >= crate::tile::TILED_MIN_STATIONS;
    let (order, preps) = if tiled {
        prepare_tiles(eval, points)
    } else {
        (Vec::new(), Vec::new())
    };
    let counts: Vec<AtomicU32> = points.iter().map(|_| AtomicU32::new(0)).collect();
    steal_tiles::<McScratch, _>(trials as usize, |t, scratch| {
        let McScratch {
            scaled,
            gains,
            lb,
            ub,
            cxs,
            cys,
            cws,
            cidx,
        } = scratch;
        let scaled = scaled.get_or_insert_with(|| eval.clone());
        gains.resize(n, 1.0);
        model.gains_for_trial(seed, t as u32, gains);
        scaled.set_scaled_powers(ws, gains);
        if !tiled {
            for (i, &p) in points.iter().enumerate() {
                if serial(scaled, p).station().is_some() {
                    counts[i].fetch_add(1, Ordering::Relaxed);
                }
            }
            return;
        }
        let (_, _, sws) = scaled.soa();
        for prep in &preps {
            let idxs = &order[prep.start..prep.end];
            if !prep.finite {
                for &i in idxs {
                    if serial(scaled, points[i as usize]).station().is_some() {
                        counts[i as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
                continue;
            }
            // Scale the cached unit-power envelopes by this trial's
            // effective powers and find the best envelope bottom M.
            lb.clear();
            ub.clear();
            let mut m = f64::NEG_INFINITY;
            for ((&w, &att_lo), &att_hi) in sws.iter().zip(&prep.att_lo).zip(&prep.att_hi) {
                let mut lo = att_lo * w;
                let mut hi = att_hi * w;
                // `∞ · 0` (a station inside the tile box whose trial
                // gain underflowed to 0) is NaN; widen to the trivial
                // envelope so the station stays a candidate and the
                // pruning certificate stays sound.
                if lo.is_nan() || hi.is_nan() {
                    lo = 0.0;
                    hi = f64::INFINITY;
                }
                lb.push(lo);
                ub.push(hi);
                if lo > m {
                    m = lo;
                }
            }
            // Gather surviving candidates (ascending index — ties in the
            // argmax resolve exactly as the full scan), accumulating the
            // pruned stations' certified residual interval.
            cxs.clear();
            cys.clear();
            cws.clear();
            cidx.clear();
            let mut resid_lo = 0.0;
            let mut resid_hi = 0.0;
            for j in 0..n {
                if ub[j] >= m {
                    cidx.push(j as u32);
                    cxs.push(xs[j]);
                    cys.push(ys[j]);
                    cws.push(sws[j]);
                } else {
                    resid_lo += lb[j];
                    resid_hi += ub[j];
                }
            }
            if cidx.len() * 8 >= n * 7 {
                // Pruning didn't drop ≳ 1/8 of the stations — the full
                // serial scan is cheaper than the candidate machinery.
                for &i in idxs {
                    if serial(scaled, points[i as usize]).station().is_some() {
                        counts[i as usize].fetch_add(1, Ordering::Relaxed);
                    }
                }
                continue;
            }
            for &i in idxs {
                let p = points[i as usize];
                let received = match simd::scan_slices(kernel, alpha, cxs, cys, cws, p) {
                    // The point coincides with a station: reception by
                    // the `{sᵢ}` clause (coincident stations are always
                    // candidates — their envelope top is +∞).
                    Err(_) => true,
                    Ok(scan) => {
                        let hi_total = (scan.total + resid_hi) * (1.0 + TOTAL_MARGIN);
                        let lo_total = (scan.total + resid_lo) * (1.0 - TOTAL_MARGIN);
                        if receives_at_total(scan.best_energy, hi_total, noise, beta) {
                            true
                        } else if !receives_at_total(scan.best_energy, lo_total, noise, beta) {
                            false
                        } else {
                            serial(scaled, p).station().is_some()
                        }
                    }
                };
                if received {
                    counts[i as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    });
    counts.into_iter().map(AtomicU32::into_inner).collect()
}

/// Upper bound on `trials × chunk` sample slots held by the quantile
/// driver (32 MiB of `f64`s).
const QUANTILE_SAMPLE_SLOTS: usize = 1 << 22;

/// The shared SINR-distribution executor behind every backend's
/// [`QueryEngine::sinr_quantiles_batch`](crate::engine::QueryEngine::sinr_quantiles_batch):
/// per trial, the scaled evaluator's `sinr_batch` (bit-identical values
/// to serial `sinr` calls) fills one sample row; per point the sorted
/// samples are read at the nearest-rank quantile indices.
///
/// # Panics
///
/// Panics if `station` is out of range or `out` is not
/// `points.len() × quantiles.len()` long.
pub(crate) fn sinr_quantiles_driver(
    eval: &SinrEvaluator,
    model: &ChannelModel,
    mc: McConfig,
    station: StationId,
    points: &[Point],
    quantiles: &[f64],
    out: &mut [f64],
) -> Result<(), ChannelError> {
    assert!(
        station.0 < eval.len(),
        "station {station} out of range ({} stations)",
        eval.len()
    );
    assert_eq!(
        points.len() * quantiles.len(),
        out.len(),
        "sinr_quantiles_batch: {} points x {} quantiles but {} output slots",
        points.len(),
        quantiles.len(),
        out.len()
    );
    model.validate(eval.len())?;
    mc.validate()?;
    eval.freshness()?;
    if let Some(q) = quantiles.iter().find(|q| !(0.0..=1.0).contains(*q)) {
        return Err(ChannelError::InvalidChannel(format!(
            "quantiles must lie in [0, 1], got {q}"
        )));
    }
    if points.is_empty() || quantiles.is_empty() {
        return Ok(());
    }
    let trials = if model.is_deterministic() {
        1
    } else {
        mc.trials as usize
    };
    let n = eval.len();
    let (_, _, base_ws) = eval.soa();
    let base_ws = base_ws.to_vec();
    let mut scaled = eval.clone();
    let mut gains = vec![1.0; n];
    let chunk_len = (QUANTILE_SAMPLE_SLOTS / trials).clamp(1, points.len());
    let mut samples = vec![0.0; trials * chunk_len];
    let mut col = Vec::with_capacity(trials);
    let mut start = 0usize;
    while start < points.len() {
        let chunk = &points[start..(start + chunk_len).min(points.len())];
        let rows = &mut samples[..trials * chunk.len()];
        for (t, row) in rows.chunks_mut(chunk.len()).enumerate() {
            model.gains_for_trial(mc.seed, t as u32, &mut gains);
            scaled.set_scaled_powers(&base_ws, &gains);
            scaled.sinr_batch(station, chunk, row);
        }
        for i in 0..chunk.len() {
            col.clear();
            col.extend((0..trials).map(|t| rows[t * chunk.len() + i]));
            col.sort_unstable_by(f64::total_cmp);
            for (qi, &q) in quantiles.iter().enumerate() {
                let idx = ((q * (trials - 1) as f64).round() as usize).min(trials - 1);
                out[(start + i) * quantiles.len() + qi] = col[idx];
            }
        }
        start += chunk.len();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lognormal(sigma_db: f64) -> ChannelModel {
        ChannelModel::LogNormalShadowing { sigma_db }
    }

    #[test]
    fn gain_streams_are_deterministic_and_seed_sensitive() {
        let model = ChannelModel::Composed(vec![lognormal(6.0), ChannelModel::RayleighFading]);
        let mut a = vec![0.0; 32];
        let mut b = vec![0.0; 32];
        model.gains_for_trial(7, 3, &mut a);
        model.gains_for_trial(7, 3, &mut b);
        assert_eq!(a, b, "same (seed, trial) must replay the same gains");
        model.gains_for_trial(7, 4, &mut b);
        assert_ne!(a, b, "trials must decorrelate");
        model.gains_for_trial(8, 3, &mut b);
        assert_ne!(a, b, "seeds must decorrelate");
        assert!(a.iter().all(|g| g.is_finite() && *g >= 0.0));
    }

    #[test]
    fn identity_and_determinism_classification() {
        assert!(ChannelModel::Deterministic.is_identity());
        assert!(lognormal(0.0).is_identity());
        assert!(!lognormal(1.0).is_identity());
        assert!(!ChannelModel::RayleighFading.is_identity());
        assert!(ChannelModel::FixedGains {
            gains: vec![1.0, 1.0]
        }
        .is_identity());
        let offsets = ChannelModel::FixedGains {
            gains: vec![2.0, 0.5],
        };
        assert!(!offsets.is_identity());
        assert!(offsets.is_deterministic());
        assert!(
            ChannelModel::Composed(vec![ChannelModel::Deterministic, lognormal(0.0)]).is_identity()
        );
        assert!(!ChannelModel::Composed(vec![ChannelModel::RayleighFading]).is_deterministic());
    }

    #[test]
    fn validation_rejects_malformed_models() {
        assert!(lognormal(-1.0).validate(4).is_err());
        assert!(lognormal(f64::NAN).validate(4).is_err());
        assert!(ChannelModel::FixedGains {
            gains: vec![1.0; 3]
        }
        .validate(4)
        .is_err());
        assert!(ChannelModel::FixedGains {
            gains: vec![1.0, 0.0, 1.0, 1.0]
        }
        .validate(4)
        .is_err());
        let nested = ChannelModel::Composed(vec![ChannelModel::Composed(vec![])]);
        assert!(nested.validate(4).is_err());
        let too_many = ChannelModel::Composed(vec![ChannelModel::Deterministic; 17]);
        assert!(too_many.validate(4).is_err());
        assert!(McConfig::new(0, 1).validate().is_err());
        assert!(McConfig::new(MAX_TRIALS + 1, 1).validate().is_err());
        assert!(McConfig::new(1, 1).validate().is_ok());
    }

    #[test]
    fn identity_gains_are_exactly_one() {
        let model = ChannelModel::Composed(vec![lognormal(0.0), ChannelModel::Deterministic]);
        let mut g = vec![0.0; 16];
        model.gains_for_trial(99, 5, &mut g);
        assert!(g.iter().all(|&x| x == 1.0));
    }
}
