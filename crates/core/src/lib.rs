//! # sinr-core
//!
//! The SINR model of *"SINR Diagrams: Towards Algorithmically Usable SINR
//! Models of Wireless Networks"* (Avin, Emek, Kantor, Lotker, Peleg,
//! Roditty — PODC 2009), implemented as a reusable library.
//!
//! ## The model (paper, Section 2.2)
//!
//! A wireless network is `A = ⟨S, ψ, N, β⟩`: stations `S = {s₀, …, s_{n−1}}`
//! embedded in the plane, transmit powers `ψᵢ > 0`, background noise
//! `N ≥ 0`, and reception threshold `β`. The energy of `sᵢ` at `p` is
//! `E(sᵢ, p) = ψᵢ·dist(sᵢ, p)^{−α}` (the paper fixes the path-loss
//! exponent `α = 2`; this crate supports general `α > 0` for evaluation,
//! while the algebraic machinery requires `α = 2`). Station `sᵢ` is
//! *heard* at `p` iff
//!
//! ```text
//! SINR(sᵢ, p) = E(sᵢ, p) / (Σ_{j≠i} E(sⱼ, p) + N) ≥ β .
//! ```
//!
//! The *reception zone* `Hᵢ` is the set of points hearing `sᵢ` (plus `sᵢ`
//! itself); the *SINR diagram* is the partition of the plane into the `Hᵢ`
//! and the silent remainder `H_∅`.
//!
//! ## Query engine
//!
//! The [`engine`] module is the production query surface: build a
//! [`SinrEvaluator`] (a structure-of-arrays snapshot of the network with
//! an `α = 2` fast path) once, then answer *batches* of point-location
//! queries through the [`QueryEngine`] trait. Backend selection:
//!
//! * [`ExactScan`] — one amortized `O(n)` pass per point; exact for every
//!   network (any power assignment, `α`, `β`). The safe default.
//! * [`SimdScan`] — the same exact scan explicitly vectorized
//!   ([`simd`] module): 8×`f64` AVX-512 or 4×`f64` AVX2 lanes detected
//!   at runtime on x86-64, with SSE2 and portable scalar fallbacks;
//!   per-lane compensated summation. The raw-throughput default.
//! * [`VoronoiAssisted`] — kd-tree nearest-station dispatch per
//!   Observation 2.2; exact for uniform power (falls back to the scan
//!   otherwise) with smaller per-query constants.
//! * `PointLocator` (crate `sinr-pointloc`) — the Theorem-3 structure:
//!   `O(log n)` queries that may answer [`Located::Uncertain`] inside an
//!   `ε`-area band along zone boundaries; requires uniform power,
//!   `α = 2`, `β > 1` and `O(n³·ε⁻¹)` preprocessing.
//!
//! All four implement [`QueryEngine`], so consumers (rasterisation,
//! figures, benchmarks, servers) are backend-generic. Large batch calls
//! run through the spatially-coherent tiled executor of [`tile`]
//! (Morton-ordered tiles, certified per-tile candidate pruning,
//! bit-identical answers) on top of a std-only work-stealing scheduler
//! ([`engine::batch_map`]); see the [execution
//! model](engine#execution-model). The scalar functions in [`sinr`]
//! remain the ground truth the engine is tested against.
//!
//! ## Stochastic channels
//!
//! The [`channel`] module layers fading/shadowing over the deterministic
//! engines: a sealed [`ChannelModel`] family (log-normal shadowing,
//! Rayleigh fading, fixed gain offsets, and their composition) draws
//! seeded multiplicative per-station gain vectors, and
//! [`QueryEngine::reception_probability_batch`] /
//! [`QueryEngine::sinr_quantiles_batch`] answer Monte-Carlo reception
//! probability and SINR-distribution quantiles by folding the gains into
//! the power column — the SoA layout, Morton tiling and SIMD kernels are
//! built once and reused across every trial. Identity channels answer
//! bit-identically to `locate_batch`; see the [`channel`] module docs
//! for the gain-folding math and the seeding contract.
//!
//! ## Dynamic networks (epochs and deltas)
//!
//! Networks are mutable **in place**: [`Network::add_station`],
//! [`Network::remove_station`] (swap-remove), [`Network::move_station`]
//! and [`Network::set_power`] bump the network's revision counter and
//! emit a [`NetworkDelta`]. Engines track the revision they reflect —
//! querying a mutated-but-unsynced engine panics with a revision
//! mismatch (never a silently stale answer) — and
//! [`QueryEngine::apply`] patches any backend incrementally instead of
//! rebuilding, which is what makes mobile-station workloads
//! (`examples/mobile_stations.rs`) run on the batched path. See the
//! [`network`] and [`engine`] module docs for the full contract.
//!
//! ## Shared engines (RCU snapshots)
//!
//! Between mutations the diagram is a pure function of the network, so
//! one engine can serve any number of concurrent readers. The
//! [`snapshot`] module packages that as read-copy-update publication:
//! a [`SnapshotStore`] keeps a private master engine in step with a
//! live network via the epoch/delta path and publishes an immutable,
//! [frozen](QueryEngine::freeze) [`EngineSnapshot`] per revision behind
//! an [`Arc`](std::sync::Arc). Readers never block (loading a snapshot
//! is an `Arc` clone); mutations publish a *new* snapshot while
//! in-flight batches finish on the old one, which deallocates when its
//! last reader releases it. `sinr-server`'s named-network registry
//! serves N sessions from one store per (network, backend) this way.
//!
//! ```
//! use sinr_core::{Network, QueryEngine, Located};
//! use sinr_geometry::Point;
//!
//! let net = Network::uniform(
//!     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)],
//!     0.0,
//!     2.0,
//! )?;
//! let engine = net.query_engine();
//! let points = [Point::new(0.5, 0.0), Point::new(2.0, 0.0)];
//! let mut out = [Located::Silent; 2];
//! engine.locate_batch(&points, &mut out);
//! assert_eq!(out[0].station().map(|s| s.index()), Some(0));
//! assert_eq!(out[1], Located::Silent);
//! # Ok::<(), sinr_core::NetworkError>(())
//! ```
//!
//! ## What this crate provides
//!
//! * [`Network`] / [`NetworkBuilder`] — model construction, validation,
//!   similarity transforms (Lemma 2.3), station surgery (add / silence /
//!   relocate — the operations used by the paper's reductions), and the
//!   epoch-versioned in-place surgery with [`NetworkDelta`] emission and
//!   stable [`StationKey`] handles;
//! * [`sinr`] — energy, interference and SINR evaluation (Eq. (1));
//! * [`charpoly`] — the characteristic polynomial `Hᵢ(x, y)` of degree
//!   `2n` and its fast restriction to segments (the input to the Sturm
//!   segment test);
//! * [`ReceptionZone`] — boundary ray-shooting (via the monotonicity of
//!   Lemma 3.1), `δ`, `Δ` and the fatness parameter `φ = Δ/δ`
//!   (Section 2.1), boundary polygons, area estimates;
//! * [`convexity`] — empirical and algebraic convexity verification
//!   (Theorem 1 / Lemma 2.1);
//! * [`bounds`] — the closed-form bounds of Theorems 4.1 and 4.2;
//! * [`reductions`] — the executable proof constructions of Section 3
//!   (Lemma 3.10's replacement station, noise elimination);
//! * [`gen`] — seeded workload generators for benchmarks and tests.
//!
//! ## Example
//!
//! ```
//! use sinr_core::{Network, StationId};
//! use sinr_geometry::Point;
//!
//! let net = Network::builder()
//!     .station(Point::new(0.0, 0.0))
//!     .station(Point::new(4.0, 0.0))
//!     .threshold(2.0)
//!     .build()?;
//!
//! // Near s0, its signal dominates:
//! assert_eq!(net.heard_at(Point::new(0.5, 0.0)), Some(StationId(0)));
//! // Midway, nobody clears β = 2:
//! assert_eq!(net.heard_at(Point::new(2.0, 0.0)), None);
//! # Ok::<(), sinr_core::NetworkError>(())
//! ```

#![deny(missing_docs)]
// `unsafe` is denied everywhere except the two audited corners that need
// it: the `std::arch` intrinsics of [`simd`] and the disjoint-slot output
// writer of the work-stealing scheduler in [`engine`] (both opt out with
// a scoped `allow` and documented safety contracts).
#![deny(unsafe_code)]

pub mod bounds;
pub mod channel;
pub mod charpoly;
pub mod convexity;
pub mod engine;
pub mod gen;
pub mod network;
pub mod power;
pub mod reductions;
pub mod simd;
pub mod sinr;
pub mod snapshot;
pub mod station;
pub mod tile;
pub mod zone;

pub use channel::{ChannelError, ChannelModel, McConfig};
pub use convexity::{ConvexityReport, ConvexityViolation};
pub use engine::{
    BoxedEngine, ExactScan, LocateError, Located, QueryEngine, SinrEvaluator, SyncError,
    VoronoiAssisted,
};
pub use network::{
    BatchSurgeryError, DeltaOp, Network, NetworkBuilder, NetworkDelta, NetworkError, SurgeryOp,
    WireError,
};
pub use power::PowerAssignment;
pub use simd::{SimdKernel, SimdScan};
pub use snapshot::{EngineSnapshot, SnapshotError, SnapshotStore};
pub use station::{Station, StationId, StationKey};
pub use tile::{CellCert, CellDecision, SinrInterval, TileConfig, TileStats};
pub use zone::{RadialProfile, ReceptionZone};
