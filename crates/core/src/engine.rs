//! The batched, SoA-backed SINR query engine.
//!
//! The scalar functions of [`crate::sinr`] are the numeric ground truth,
//! but they answer one `(station, point)` question at a time and re-derive
//! everything per call — `heard_at` is `O(n²)` per point. The
//! production-shaped query is *many points against one network*, and this
//! module is that API:
//!
//! * [`SinrEvaluator`] — a per-network precomputation: stations in
//!   structure-of-arrays layout (split `xs` / `ys` / `powers` vectors for
//!   cache-friendly scans), the reception test rewritten division-free
//!   (`E ≥ β·(I + N)` instead of `E/(I+N) ≥ β`), and the path-loss
//!   attenuation monomorphized through the sealed [`PathLoss`] strategy so
//!   the paper's `α = 2` case compiles to a single multiply-free division
//!   per station. One evaluator pass answers "who is heard at `p`" in
//!   `O(n)` — the scalar loop needs `O(n²)`.
//! * [`QueryEngine`] — the backend-independent trait: [`QueryEngine::
//!   locate`], [`QueryEngine::locate_batch`] and [`QueryEngine::
//!   sinr_batch`]. Large batches run in parallel through [`batch_map`],
//!   a std-only work-stealing scheduler: the batch is cut into
//!   fixed-size tiles and worker threads claim tiles through one atomic
//!   counter, so skewed workloads (cheap rows next to expensive rows)
//!   keep every core busy.
//! * Backends: [`ExactScan`] (one amortized SoA pass per point, exact for
//!   every network), [`SimdScan`](crate::simd::SimdScan) (the same scan
//!   explicitly vectorized — 8×f64 AVX-512 or 4×f64 AVX2 lanes when the
//!   CPU has them, with SSE2 and portable scalar fallbacks), [`VoronoiAssisted`]
//!   (kd-tree nearest-station dispatch per Observation 2.2, exact for
//!   uniform power, falling back to the scan otherwise), and the
//!   Theorem-3 `PointLocator` of `sinr-pointloc` (sublinear per query,
//!   `ε`-approximate near zone boundaries).
//!
//! The [`Located`] answer type lives here so that every backend — across
//! crates — speaks the same language; `sinr-pointloc` re-exports it.
//!
//! ## Epochs, deltas and the staleness contract
//!
//! Engines snapshot the network at construction, so any later
//! [`Network`] surgery would silently desynchronize them. The epoch
//! protocol closes that hole:
//!
//! * every [`Network`] carries a revision counter, bumped by the
//!   in-place surgery ops ([`Network::add_station`],
//!   [`Network::remove_station`], [`Network::move_station`],
//!   [`Network::set_power`]), each of which emits a
//!   [`NetworkDelta`](crate::network::NetworkDelta);
//! * every engine records the revision it reflects
//!   ([`QueryEngine::revision`]) and watches the network's counter;
//!   querying a stale engine ([`QueryEngine::is_stale`]) **panics** with
//!   a revision-mismatch message — a stale engine never answers, and in
//!   particular never answers *wrong*;
//! * [`QueryEngine::apply`] consumes one delta and patches the engine
//!   incrementally — [`ExactScan`]/[`SimdScan`](crate::simd::SimdScan)
//!   edit their SoA columns in place (`O(1)` per delta thanks to the
//!   network's swap-remove index discipline), [`VoronoiAssisted`]
//!   maintains its weighted kd-tree through tombstones and an overflow
//!   list with a rebuild-threshold heuristic (power deltas re-weight
//!   the index in place, so uniform ↔ non-uniform transitions keep the
//!   tree), and the Theorem-3
//!   `PointLocator` patches its dispatcher eagerly while rebuilding
//!   invalidated per-zone grids lazily, on first dispatch;
//! * [`QueryEngine::sync`] is the catch-up path when the deltas were
//!   lost (or came from a different network): rebuild from the current
//!   network state.
//!
//! Deltas are bound to the emitting network *instance* and must be
//! applied in order; [`SyncError`] reports skipped/foreign deltas, and
//! backends with preconditions (the Theorem-3 locator) report mutations
//! they cannot represent as [`SyncError::Unsupported`].
//!
//! ## Which backend?
//!
//! | backend | query cost | exact? | preconditions |
//! |---|---|---|---|
//! | [`ExactScan`] | `O(n)` | yes | none |
//! | [`SimdScan`](crate::simd::SimdScan) | `O(n)`, ~`lanes`× smaller constants | yes | none (runtime CPU detection, scalar fallback) |
//! | [`VoronoiAssisted`] | `O(n)`, smaller constants | yes (boundary rounding as `SimdScan` — the candidate sum rides the SIMD lanes) | none (non-uniform power dispatches through the weighted tree — the power-diagram cell lookup) |
//! | `PointLocator` | `O(log n)` | `ε`-approximate near `∂Hᵢ` | uniform power, `α = 2`, `β > 1` |
//!
//! ## Execution model
//!
//! How a `locate_batch` call actually runs, in order of engagement:
//!
//! 1. **Serial** — batches shorter than [`PARALLEL_BATCH_THRESHOLD`]
//!    run a plain per-point loop on the calling thread.
//! 2. **Per-point work stealing** — longer batches against *small*
//!    networks (fewer than
//!    [`TILED_MIN_STATIONS`](crate::tile::TILED_MIN_STATIONS) stations)
//!    are cut into [`BATCH_TILE`]-input tiles claimed by worker threads
//!    through one atomic counter ([`batch_map`]).
//! 3. **Spatially-coherent tiled execution** ([`crate::tile`]) — longer
//!    batches against larger networks are Morton-sorted into
//!    [`BATCH_TILE`]-point spatial tiles (an index permutation; output
//!    positions never change), and each tile amortizes its work:
//!    * one `O(n)` pass computes every station's certified energy
//!      envelope over the tile's bounding box
//!      ([`crate::bounds::energy_envelope`]); stations provably
//!      dominated everywhere in the tile are **pruned** from the
//!      per-point scans, their interference carried as a certified
//!      residual interval;
//!    * each point scans only the gathered candidate columns (through
//!      the same SIMD kernels as the full scans), and the reception
//!      test is evaluated at both ends of the residual interval — a
//!      **pruning certificate**: agreement on both ends proves the
//!      full scan would decide identically;
//!    * **fallback conditions**: a point whose certificate is
//!      inconclusive (its margin to the `SINR = β` boundary is inside
//!      the interval width), any tile containing a non-finite query
//!      point, and any tile where pruning cannot drop ≳ 1/8 of the
//!      stations re-run the backend's own serial kernel, point by
//!      point — so tiled answers are **bit-identical** to the serial
//!      path for every backend and kernel (pinned by the
//!      tiled-differential and permutation-invariance suites).
//!
//!    Tiles are also the stealable work units, so the scheduler knob is
//!    shared: [`BATCH_TILE`] is both the steal granularity and the
//!    spatial tile size ([`crate::tile::TileConfig`] makes it tunable
//!    per call).
//!
//! [`VoronoiAssisted`] layers **proximity dispatch** on top: each query
//! first finds the one station that could possibly be heard — the
//! nearest station under uniform power (Observation 2.2,
//! [`Select::Nearest`](crate::tile::Select::Nearest) in the tiled
//! executor), or the station maximising `Pᵢ · att(d²)` under non-uniform
//! power (the power-diagram cell of Kantor et al.,
//! [`Select::MaxEnergy`](crate::tile::Select::MaxEnergy) /
//! the weighted kd-tree's best-first `strongest` walk) — then runs a
//! single candidate interference sum instead of an `O(n)` argmax scan.
//! Both walks and both tiled selection rules pick the same station as
//! the full scans on the same per-station energies, which is what keeps
//! the backend bit-identical to `SimdScan` per kernel.
//!
//! `sinr_batch` routes through the same certified tiled executor
//! ([`crate::tile::sinr_batch_tiled`]): Morton tiling for spatial
//! locality, plus a **bulk-zero certificate** — a tile where the
//! queried station's energy envelope tops out at exactly `0.0` while
//! noise or some other station's energy is provably positive writes
//! `+0.0` for the whole tile without per-point evaluation (exact, not
//! approximate: the inverse-square kernel's correctly-rounded
//! arithmetic makes the envelope bound itself bit-exact there). All
//! other points re-run the engine's own serial kernel, so `sinr_batch`
//! stays bit-identical to the serial path; the Theorem-3 `PointLocator`
//! reuses the tile grouping so queries dispatching to the same zone
//! grid are processed together.
//!
//! ## Interval certificates
//!
//! [`QueryEngine::sinr_bounds_cell`] extends the per-tile envelope
//! machinery into a queryable API: a [`CellCert`](crate::tile::CellCert)
//! carries, for an axis-aligned cell, a certified `[lo, hi]` SINR
//! interval per station ([`CellCert::sinr`](crate::tile::CellCert::sinr))
//! and a whole-cell decision
//! ([`CellDecision`](crate::tile::CellDecision)):
//!
//! * **`Reception(i)`** is claimed only when every *other* station is
//!   certified silent across the cell **and** station `i`'s reception
//!   test passes at the adversarial ends of the interference interval —
//!   sound for every point of the cell under the same
//!   `BOUND_MARGIN`/deep-fade widening rules as the batch certificates
//!   (the margins are one-sided: looseness degrades to `Mixed`, never
//!   to a wrong uniform claim);
//! * **`Silent`** requires every station's certified silence;
//! * **`Mixed`** is the honest "subdivide or evaluate per-point"
//!   answer, and the *only* possible answer for cells touching
//!   non-finite coordinates.
//!
//! Certificates chain: passing a parent cell's certificate for a
//! contained child re-envelopes only the parent's surviving candidates
//! (certified-silent stations freeze into a shared interference
//! residual), so quadtree refinement costs `O(candidates)` per cell,
//! not `O(n)`. [`QueryEngine::locate_in_cell`] closes the loop at
//! point scale: individual points inside a certified cell are answered
//! from the certificate's candidates alone (exact kernel energies plus
//! the frozen residual bracket, `O(candidates)` per point,
//! bit-identical to [`QueryEngine::locate`] wherever the margins pin
//! the answer), so refinement leaves only the truly ambiguous sliver
//! of points to full batched evaluation. The default implementations
//! return `None`/`false` — backends without sound envelopes (the
//! ε-approximate Theorem-3 locator) opt out, and callers degrade to
//! dense evaluation. `sinr-diagram` builds hierarchical rasterisation
//! on exactly this contract.
//!
//! ## Stochastic channels
//!
//! [`QueryEngine::reception_probability_batch`] and
//! [`QueryEngine::sinr_quantiles_batch`] layer a stochastic
//! [`ChannelModel`](crate::channel::ChannelModel) over the
//! deterministic model by **gain folding**: a channel trial is a
//! multiplicative per-station gain vector `g`, and since the received
//! energy is linear in transmit power,
//! `Eⱼ(p | gain gⱼ) = gⱼ · ψⱼ / d(sⱼ, p)^α`, evaluating a trial is
//! exactly evaluating the deterministic model on scaled powers
//! `gⱼ·ψⱼ`. Everything power-independent is therefore built **once**
//! per call — the SoA columns, the Morton point tiling, and each
//! station's *unit-power* energy envelope per tile — and a trial costs
//! two multiplies per station per tile (scaling the cached `[lo, hi]`
//! envelope by `gⱼ·ψⱼ`) before the usual certified pruning and
//! candidate scan run unchanged. A gain of exactly `0.0` (a deep-fade
//! draw) times an infinite envelope top (station inside the tile box)
//! is NaN; the executor **widens** such envelopes to the trivial
//! `[0, ∞]` so the station stays a candidate and the pruning
//! certificate stays sound. Uncertain points fall back to the
//! backend's serial kernel on the scaled evaluator, so per-trial
//! answers are bit-identical to rebuilding a scaled network and
//! engine from scratch — the degenerate
//! [`ChannelModel::Deterministic`](crate::channel::ChannelModel::Deterministic)
//! channel short-circuits through the backend's own `locate_batch`
//! and returns exactly `0.0`/`1.0`.
//!
//! The **seeding contract** makes every run replayable from one
//! explicit `u64` ([`McConfig`](crate::channel::McConfig)): trial `t`
//! draws from `StdRng::seed_from_u64(seed ^ (t+1)·0x9E37_79B9_…)`,
//! composed atoms consume one shared stream in atom order, and every
//! atom draws unconditionally — so trial gains depend only on
//! `(seed, trial, model, n)`, never on thread scheduling or which
//! worker claimed the trial. The same seed over the wire
//! (`ReceptionProbBatch`) reproduces the same probabilities
//! bit-for-bit on any machine.
//!
//! ## Example
//!
//! ```
//! use sinr_core::engine::{Located, QueryEngine, VoronoiAssisted};
//! use sinr_core::{Network, StationId};
//! use sinr_geometry::Point;
//!
//! let net = Network::uniform(
//!     vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
//!     0.0,
//!     2.0,
//! ).unwrap();
//! let engine = VoronoiAssisted::new(&net);
//!
//! let queries = [Point::new(0.5, 0.0), Point::new(3.0, 0.0)];
//! let mut answers = [Located::Silent; 2];
//! engine.locate_batch(&queries, &mut answers);
//! assert_eq!(answers[0], Located::Reception(StationId(0)));
//! assert_eq!(answers[1], Located::Silent);
//! ```

use crate::channel::{ChannelError, ChannelModel, McConfig};
use crate::network::{DeltaOp, Network, NetworkDelta};
use crate::simd::SimdKernel;
use crate::station::StationId;
use sinr_algebra::KahanSum;
use sinr_geometry::Point;
use sinr_voronoi::KdTree;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why an engine could not be brought in sync with its network.
#[derive(Debug, Clone, PartialEq)]
pub enum SyncError {
    /// The delta does not apply on top of the engine's revision — a
    /// delta was skipped, reordered, or applied twice. Recover with
    /// [`QueryEngine::sync`].
    RevisionMismatch {
        /// The revision the engine currently reflects.
        engine_revision: u64,
        /// The revision the delta applies on top of.
        delta_from: u64,
    },
    /// The delta was emitted by a different [`Network`] instance than
    /// the engine was built from.
    ForeignDelta,
    /// The backend cannot represent the requested network state (e.g.
    /// the Theorem-3 locator and a non-uniform power assignment).
    Unsupported(String),
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::RevisionMismatch {
                engine_revision,
                delta_from,
            } => write!(
                f,
                "delta applies on top of revision {delta_from} but the engine \
                 is at revision {engine_revision} (delta skipped or replayed)"
            ),
            SyncError::ForeignDelta => {
                write!(f, "delta was emitted by a different network instance")
            }
            SyncError::Unsupported(msg) => write!(f, "unsupported by this backend: {msg}"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Why an engine declined to answer a query.
///
/// This is the *recoverable* face of the staleness contract: the plain
/// query entry points ([`QueryEngine::locate`] and friends) **panic** on
/// a stale engine — a stale answer could be silently wrong, and a panic
/// is the loudest possible refusal — while the fallible entry points
/// ([`QueryEngine::try_locate`], [`QueryEngine::try_locate_batch`],
/// [`QueryEngine::try_sinr_batch`]) report the same condition as this
/// typed error, which long-lived services (the `sinr-server` session
/// loop) serialize to their clients instead of dying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LocateError {
    /// The source network has mutated past the engine's revision; catch
    /// up with [`QueryEngine::apply`] or [`QueryEngine::sync`].
    Stale {
        /// The revision the engine currently reflects.
        engine_revision: u64,
        /// The network's current revision.
        network_revision: u64,
    },
}

impl std::fmt::Display for LocateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LocateError::Stale {
                engine_revision,
                network_revision,
            } => write!(
                f,
                "stale query engine: the network is at revision {network_revision} but this \
                 engine was synced at revision {engine_revision}; apply the missed \
                 NetworkDeltas or sync(&network)"
            ),
        }
    }
}

impl std::error::Error for LocateError {}

/// The engine side of the epoch protocol: the network's revision cell
/// and the revision this engine's data reflects.
#[derive(Debug, Clone)]
struct EpochTag {
    cell: Arc<AtomicU64>,
    seen: u64,
}

impl EpochTag {
    fn of(net: &Network) -> Self {
        EpochTag {
            cell: Arc::clone(net.epoch_cell()),
            seen: net.revision(),
        }
    }

    #[inline]
    fn current(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// The answer of a point-location query, shared by every backend.
///
/// The exact backends ([`ExactScan`], [`VoronoiAssisted`]) never produce
/// [`Located::Uncertain`]; the Theorem-3 approximate structure uses it for
/// points inside the `ε`-area band `Hᵢ?` along a zone boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Located {
    /// The point is inside the reception zone of this station
    /// (`p ∈ Hᵢ`; for approximate backends `p ∈ Hᵢ⁺ ⊆ Hᵢ`).
    Reception(StationId),
    /// The point lies in the uncertain boundary band `Hᵢ?` of this
    /// station (the only candidate); its true status is unresolved at the
    /// backend's resolution.
    Uncertain(StationId),
    /// The point is outside every reception zone (`p ∈ H_∅`).
    Silent,
}

impl Located {
    /// The candidate station, if any.
    pub fn station(&self) -> Option<StationId> {
        match self {
            Located::Reception(i) | Located::Uncertain(i) => Some(*i),
            Located::Silent => None,
        }
    }
}

mod sealed {
    /// Seals [`super::PathLoss`]: the algebraic machinery of this
    /// workspace (characteristic polynomials, Sturm tests) is specific to
    /// the implemented attenuation laws, so downstream crates must not add
    /// their own.
    pub trait Sealed {}
    impl Sealed for super::InverseSquare {}
    impl Sealed for super::GeneralAlpha {}
}

/// A path-loss attenuation strategy (sealed).
///
/// Monomorphizing the evaluator kernels over this trait gives the paper's
/// `α = 2` setting a dedicated fast path — [`InverseSquare`] turns
/// `dist(s, p)^{−α}` into one division by the squared distance, with no
/// `powf` and no square root anywhere in the scan.
pub trait PathLoss: sealed::Sealed + Copy + Send + Sync {
    /// The attenuation `dist^{−α}` given the *squared* distance `d2 > 0`.
    fn attenuation(self, d2: f64) -> f64;
}

/// The paper's default `α = 2`: attenuation is `1/d²`.
#[derive(Debug, Clone, Copy)]
pub struct InverseSquare;

impl PathLoss for InverseSquare {
    #[inline(always)]
    fn attenuation(self, d2: f64) -> f64 {
        1.0 / d2
    }
}

/// General `α > 0`: attenuation is `(d²)^{−α/2}`.
#[derive(Debug, Clone, Copy)]
pub struct GeneralAlpha {
    half_alpha: f64,
}

impl GeneralAlpha {
    /// The strategy for path-loss exponent `alpha`.
    pub fn new(alpha: f64) -> Self {
        GeneralAlpha {
            half_alpha: alpha / 2.0,
        }
    }
}

impl PathLoss for GeneralAlpha {
    #[inline(always)]
    fn attenuation(self, d2: f64) -> f64 {
        d2.powf(-self.half_alpha)
    }
}

/// Batches at least this long are processed in parallel.
///
/// Public so the threshold-boundary regression tests (and downstream
/// batch drivers) can pin behaviour exactly at the serial/parallel
/// crossover.
pub const PARALLEL_BATCH_THRESHOLD: usize = 2048;

/// The batch granularity: both the work-stealing scheduler and the
/// spatial tiler of [`crate::tile`] hand out work in tiles of this many
/// inputs — **one knob, not two**. Coarse enough that the shared atomic
/// counter is cold and a tile's Morton bounding box is worth pruning
/// against, fine enough that skewed workloads rebalance across threads
/// and tiles stay spatially tight. Bench-tunable per call through
/// [`crate::tile::TileConfig::tile_points`] (this constant is its
/// default); the `engine_batch` bench sweeps it.
pub const BATCH_TILE: usize = 512;

/// Minimum inputs per thread for the static split of
/// [`batch_map_chunked`] — spawning a thread for fewer is pure overhead.
const MIN_STATIC_CHUNK: usize = 512;

/// The static split of [`batch_map_chunked`]: effective worker count and
/// chunk length for a batch of `len` on `threads` cores, with the thread
/// count clamped so no chunk is near-empty.
///
/// (Regression shape: `len` barely above [`PARALLEL_BATCH_THRESHOLD`] on
/// a high-core machine used to yield `threads` chunks of a few points
/// each; now at most `len.div_ceil(MIN_STATIC_CHUNK)` workers spawn.)
fn static_split(len: usize, threads: usize) -> (usize, usize) {
    let workers = threads.min(len.div_ceil(MIN_STATIC_CHUNK)).max(1);
    (workers, len.div_ceil(workers))
}

/// Applies `f` to every input, writing results into `out` — work-stolen
/// across the available cores when the batch is large, serial otherwise.
///
/// This is the shared batch driver of every [`QueryEngine`] backend
/// (including the Theorem-3 locator in `sinr-pointloc`). Large batches
/// are split into fixed-size tiles claimed by worker threads through one
/// atomic counter, so skewed per-input costs (e.g. rasters where some
/// rows hit a fast path and others fall back to an exact scan) no longer
/// idle whole threads the way the old one-chunk-per-core split did (that
/// split survives as [`batch_map_chunked`] for comparison).
///
/// # Panics
///
/// Panics if `inputs` and `out` have different lengths.
pub fn batch_map<I, O, F>(inputs: &[I], out: &mut [O], f: F)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert_eq!(
        inputs.len(),
        out.len(),
        "batch_map: {} inputs but {} output slots",
        inputs.len(),
        out.len()
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let len = inputs.len();
    if len < PARALLEL_BATCH_THRESHOLD || threads <= 1 {
        for (p, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = f(p);
        }
        return;
    }
    let slots = steal::OutputSlots::new(out);
    // One scheduler for the whole crate: the same tile-claiming loop
    // drives this per-point path and the spatial executors of
    // `crate::tile`.
    crate::tile::steal_tiles::<(), _>(len.div_ceil(BATCH_TILE), |tile, _scratch| {
        let start = tile * BATCH_TILE;
        let end = (start + BATCH_TILE).min(len);
        for (i, p) in inputs[start..end].iter().enumerate() {
            // Tiles are claimed exactly once (fetch_add), so every
            // index is written by exactly one worker.
            slots.write(start + i, f(p));
        }
    });
}

/// The PR-1 batch driver: one contiguous chunk per core, retained as the
/// reference implementation the work-stealing [`batch_map`] is
/// regression-tested against. Prefer [`batch_map`].
///
/// The chunk split clamps the effective thread count so every chunk has
/// at least ~[`MIN_STATIC_CHUNK`]/2 inputs — the original split computed
/// `len.div_ceil(threads)` unconditionally and spawned dozens of
/// near-empty threads when `len` barely exceeded
/// [`PARALLEL_BATCH_THRESHOLD`] on high-core machines.
///
/// # Panics
///
/// Panics if `inputs` and `out` have different lengths.
pub fn batch_map_chunked<I, O, F>(inputs: &[I], out: &mut [O], f: F)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert_eq!(
        inputs.len(),
        out.len(),
        "batch_map: {} inputs but {} output slots",
        inputs.len(),
        out.len()
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if inputs.len() < PARALLEL_BATCH_THRESHOLD || threads <= 1 {
        for (p, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = f(p);
        }
        return;
    }
    let (_, chunk) = static_split(inputs.len(), threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in inputs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (p, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = f(p);
                }
            });
        }
    });
}

/// The one unsafe corner of the scheduler: a `Send + Sync` handle to the
/// output slice that lets workers write disjoint slots concurrently.
#[allow(unsafe_code)]
pub(crate) mod steal {
    /// Shared view of `&mut [O]` for the work-stealing workers.
    ///
    /// Soundness: the handle is created from an exclusive borrow that
    /// outlives the thread scope, every index is written by exactly one
    /// worker (contiguous tiles are claimed via `fetch_add`, and the
    /// Morton-permuted tiles of [`crate::tile`] own disjoint index sets
    /// because the order is a permutation), and `write` bounds-checks
    /// the index. Writes go through `&mut`-style assignment so the
    /// previous value is dropped on the writing thread (hence
    /// `O: Send`).
    pub(crate) struct OutputSlots<O> {
        ptr: *mut O,
        len: usize,
    }

    // SAFETY: see the struct docs — slot ownership is partitioned by the
    // tile counter, so no two threads touch the same index.
    unsafe impl<O: Send> Send for OutputSlots<O> {}
    unsafe impl<O: Send> Sync for OutputSlots<O> {}

    impl<O> OutputSlots<O> {
        pub(crate) fn new(out: &mut [O]) -> Self {
            OutputSlots {
                ptr: out.as_mut_ptr(),
                len: out.len(),
            }
        }

        /// Writes `value` into slot `i`, dropping the previous value.
        #[inline]
        pub(crate) fn write(&self, i: usize, value: O) {
            assert!(i < self.len, "output slot {i} out of bounds ({})", self.len);
            // SAFETY: `i` is in bounds (asserted) and, per the tile
            // protocol, no other thread reads or writes this slot.
            unsafe { *self.ptr.add(i) = value }
        }
    }
}

/// One station scan: the quantities every reception decision needs.
///
/// Produced by the scalar kernels here and by the vectorized kernels of
/// [`crate::simd`]; consumed by [`SinrEvaluator::decide`].
pub(crate) struct Scan {
    /// Total energy `E(S, p)` (compensated sum).
    pub(crate) total: f64,
    /// Index of the maximum-energy station (first on ties).
    pub(crate) best: usize,
    /// Its energy.
    pub(crate) best_energy: f64,
}

/// The SoA-backed per-network evaluator: build once, query many.
///
/// Station coordinates and powers are split into `xs` / `ys` / `powers`
/// vectors so the per-point scan is three linear streams, and the
/// reception test is evaluated division-free (`E ≥ β·(I + N)`).
///
/// The key algebraic fact making one pass sufficient: with
/// `T = E(S, p)` the total energy, every station's SINR is
/// `E(sᵢ,p) / (T − E(sᵢ,p) + N)`, which is *strictly increasing* in
/// `E(sᵢ,p)`. The maximum-energy station is therefore the maximum-SINR
/// station for **any** power assignment and any `β` — so `locate` needs
/// one scan (total + argmax), not `n` interference sums.
#[derive(Debug, Clone)]
pub struct SinrEvaluator {
    xs: Vec<f64>,
    ys: Vec<f64>,
    powers: Vec<f64>,
    uniform: bool,
    noise: f64,
    beta: f64,
    alpha: f64,
    epoch: EpochTag,
}

impl SinrEvaluator {
    /// Builds the evaluator for a network (an `O(n)` copy).
    pub fn new(net: &Network) -> Self {
        let n = net.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for p in net.positions() {
            xs.push(p.x);
            ys.push(p.y);
        }
        let powers = net.ids().map(|i| net.power(i)).collect();
        SinrEvaluator {
            xs,
            ys,
            powers,
            uniform: net.is_uniform_power(),
            noise: net.noise(),
            beta: net.beta(),
            alpha: net.alpha(),
            epoch: EpochTag::of(net),
        }
    }

    /// The network revision this evaluator's data reflects.
    pub fn revision(&self) -> u64 {
        self.epoch.seen
    }

    /// True when the source network has mutated past this evaluator.
    pub fn is_stale(&self) -> bool {
        self.epoch.current() != self.epoch.seen
    }

    /// The staleness check in fallible form: `Ok(())` when this
    /// evaluator still reflects the source network, the
    /// [`LocateError::Stale`] describing the revision gap otherwise.
    ///
    /// Every backend's [`QueryEngine::freshness`] delegates here.
    #[inline]
    pub fn freshness(&self) -> Result<(), LocateError> {
        let now = self.epoch.current();
        if now == self.epoch.seen {
            Ok(())
        } else {
            Err(LocateError::Stale {
                engine_revision: self.epoch.seen,
                network_revision: now,
            })
        }
    }

    /// Enforces the staleness contract on every query entry point.
    ///
    /// # Panics
    ///
    /// Panics when the source network has mutated past this engine's
    /// revision — a stale engine must never answer (its answer could be
    /// silently wrong). Catch up with
    /// [`apply`](SinrEvaluator::apply)/[`sync`](SinrEvaluator::sync).
    /// The recoverable form of the same check is
    /// [`SinrEvaluator::freshness`].
    #[inline]
    pub fn assert_fresh(&self) {
        if let Err(e) = self.freshness() {
            panic!("{e}");
        }
    }

    /// Patches the evaluator in place with one [`NetworkDelta`] — `O(1)`
    /// column surgery instead of the `O(n)` rebuild of
    /// [`SinrEvaluator::new`].
    ///
    /// # Errors
    ///
    /// [`SyncError::ForeignDelta`] when the delta was emitted by a
    /// different network; [`SyncError::RevisionMismatch`] when a delta
    /// was skipped or replayed. The evaluator is untouched on error.
    pub fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        if !delta.is_from(&self.epoch.cell) {
            return Err(SyncError::ForeignDelta);
        }
        if delta.from_revision() != self.epoch.seen {
            return Err(SyncError::RevisionMismatch {
                engine_revision: self.epoch.seen,
                delta_from: delta.from_revision(),
            });
        }
        match delta.op() {
            DeltaOp::Add {
                position, power, ..
            } => {
                self.xs.push(position.x);
                self.ys.push(position.y);
                self.powers.push(*power);
            }
            DeltaOp::Remove { id, .. } => {
                self.xs.swap_remove(id.0);
                self.ys.swap_remove(id.0);
                self.powers.swap_remove(id.0);
            }
            DeltaOp::Move { id, to, .. } => {
                self.xs[id.0] = to.x;
                self.ys[id.0] = to.y;
            }
            DeltaOp::SetPower { id, to, .. } => {
                self.powers[id.0] = *to;
            }
        }
        self.uniform = delta.uniform_after();
        self.epoch.seen = delta.to_revision();
        Ok(())
    }

    /// Rebuilds from the network's current state — the catch-up path
    /// when the deltas were lost, or when retargeting the evaluator at a
    /// different network.
    pub fn sync(&mut self, net: &Network) {
        *self = SinrEvaluator::new(net);
    }

    /// Detaches the evaluator from its source network's epoch cell,
    /// pinning it **fresh forever** at its current revision: later
    /// mutations of the source network no longer flip it stale (and its
    /// deltas no longer apply — [`SinrEvaluator::apply`] refuses them as
    /// [`SyncError::ForeignDelta`]). A frozen evaluator is an immutable
    /// snapshot of the revision it answers for; this is the primitive
    /// behind [`crate::snapshot`]'s shared engine snapshots.
    pub fn freeze(&mut self) {
        self.epoch = EpochTag {
            cell: Arc::new(AtomicU64::new(self.epoch.seen)),
            seen: self.epoch.seen,
        };
    }

    /// Overwrites the power column with `base[j] · gains[j]` — the
    /// gain-folding step of the stochastic channel layer
    /// ([`crate::channel`]): a channel trial is the deterministic model
    /// on the scaled powers, so only this column changes between trials
    /// while `xs`/`ys` (and everything derived from them) are reused.
    /// The uniform-power flag is recomputed, keeping the
    /// Observation-2.2 dispatch contract honest on scaled clones.
    pub(crate) fn set_scaled_powers(&mut self, base: &[f64], gains: &[f64]) {
        debug_assert_eq!(base.len(), self.powers.len());
        debug_assert_eq!(gains.len(), self.powers.len());
        for ((w, &b), &g) in self.powers.iter_mut().zip(base).zip(gains) {
            *w = b * g;
        }
        self.uniform = self.powers.iter().all(|&w| w == 1.0);
    }

    /// The station positions as points, in current index order.
    pub(crate) fn position_points(&self) -> Vec<Point> {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| Point::new(x, y))
            .collect()
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the evaluator covers no stations (never for one built
    /// from a [`Network`], which has `n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The reception threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The background noise `N`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The path-loss exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when every station transmits with power 1.
    pub fn is_uniform_power(&self) -> bool {
        self.uniform
    }

    /// The position of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: StationId) -> Point {
        Point::new(self.xs[i.0], self.ys[i.0])
    }

    /// Dispatches `f` with the monomorphized path-loss strategy — `α = 2`
    /// networks take the [`InverseSquare`] fast path.
    #[inline]
    fn with_kernel<T>(&self, f: impl FnOnce(&Self, DynKernel) -> T) -> T {
        if self.alpha == 2.0 {
            f(self, DynKernel::Square(InverseSquare))
        } else {
            f(self, DynKernel::General(GeneralAlpha::new(self.alpha)))
        }
    }

    /// One SoA pass: total energy plus the maximum-energy station.
    /// Returns `Err(j)` when `p` coincides with station `j` (first such
    /// index — reception is then decided by the `{sᵢ}` zone clause).
    #[inline]
    fn scan<K: PathLoss>(&self, k: K, p: Point) -> Result<Scan, usize> {
        let mut acc = KahanSum::new();
        let mut best = 0usize;
        let mut best_energy = f64::NEG_INFINITY;
        for j in 0..self.xs.len() {
            let dx = self.xs[j] - p.x;
            let dy = self.ys[j] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                return Err(j);
            }
            let e = k.attenuation(d2) * self.powers[j];
            acc.add(e);
            if e > best_energy {
                best_energy = e;
                best = j;
            }
        }
        Ok(Scan {
            total: acc.value(),
            best,
            best_energy,
        })
    }

    /// The station arrays in structure-of-arrays layout:
    /// `(xs, ys, powers)` — the streams the vectorized kernels of
    /// [`crate::simd`] consume.
    pub(crate) fn soa(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.xs, &self.ys, &self.powers)
    }

    /// Turns a completed [`Scan`] (or a coincident-station index) into
    /// the reception decision — shared by the scalar kernels here and the
    /// vectorized kernels of [`crate::simd`].
    #[inline]
    pub(crate) fn decide(&self, scan: Result<Scan, usize>) -> Located {
        match scan {
            // At a station's own position reception holds by the `{sᵢ}`
            // clause; for co-located stations the scalar ground truth
            // resolves to the first index, and `Err` carries exactly that.
            Err(j) => Located::Reception(StationId(j)),
            Ok(scan) => {
                let interference_plus_noise = (scan.total - scan.best_energy) + self.noise;
                // Division-free reception test: E ≥ β·(I + N). A
                // non-positive denominator means the interference
                // underflowed to zero with no noise — SINR is +∞.
                if interference_plus_noise <= 0.0
                    || scan.best_energy >= self.beta * interference_plus_noise
                {
                    Located::Reception(StationId(scan.best))
                } else {
                    Located::Silent
                }
            }
        }
    }

    #[inline]
    fn locate_with<K: PathLoss>(&self, k: K, p: Point) -> Located {
        self.decide(self.scan(k, p))
    }

    /// The scalar per-point kernel without the freshness check — the
    /// serial ground truth the tiled executor ([`crate::tile`]) falls
    /// back to per point (batch entry points assert freshness once).
    #[inline]
    pub(crate) fn locate_scalar(&self, p: Point) -> Located {
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => ev.locate_with(k, p),
            DynKernel::General(k) => ev.locate_with(k, p),
        })
    }

    /// Decides reception for the single candidate station `cand` (the
    /// [`VoronoiAssisted`] path — `cand` must be the maximum-energy
    /// station) from a candidate scan `(e_cand, total)` as produced by
    /// [`crate::simd::candidate_scan`]; `Err(j)` is a point coinciding
    /// with station `j`.
    #[inline]
    pub(crate) fn decide_candidate(&self, cand: usize, scan: Result<(f64, f64), usize>) -> Located {
        match scan {
            Err(j) => Located::Reception(StationId(j)),
            Ok((e_cand, total)) => {
                let interference_plus_noise = (total - e_cand) + self.noise;
                if interference_plus_noise <= 0.0 || e_cand >= self.beta * interference_plus_noise {
                    Located::Reception(StationId(cand))
                } else {
                    Located::Silent
                }
            }
        }
    }

    /// SINR of station `i` at `p`, matching [`crate::sinr::sinr`]'s
    /// conventions for points coinciding with stations.
    ///
    /// Unlike the `locate` kernels, the interference is summed directly
    /// over `j ≠ i` rather than derived as `total − eᵢ`: close to `sᵢ`
    /// the energy dominates the total and the subtraction would cancel
    /// catastrophically. (The `locate` decision is immune — cancellation
    /// is only severe when `eᵢ ≫ I`, which is far from the `β`
    /// boundary — but reported SINR values must be accurate everywhere.)
    #[inline]
    fn sinr_with<K: PathLoss>(&self, k: K, i: usize, p: Point) -> f64 {
        let mut acc = KahanSum::new();
        let mut e_i = 0.0;
        for j in 0..self.xs.len() {
            let dx = self.xs[j] - p.x;
            let dy = self.ys[j] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                // `p` is at station `j`. At `sᵢ` itself the SINR is +∞
                // unless an interferer is co-located (then 0); at another
                // station the interference is +∞, so the SINR is 0.
                if j != i && (self.xs[j] != self.xs[i] || self.ys[j] != self.ys[i]) {
                    return 0.0;
                }
                let colocated = (0..self.xs.len())
                    .any(|m| m != i && self.xs[m] == self.xs[i] && self.ys[m] == self.ys[i]);
                return if colocated { 0.0 } else { f64::INFINITY };
            }
            let e = k.attenuation(d2) * self.powers[j];
            if j == i {
                e_i = e;
            } else {
                acc.add(e);
            }
        }
        let denom = acc.value() + self.noise;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            e_i / denom
        }
    }

    /// Who (if anyone) is heard at `p` — the `O(n)` single-pass answer,
    /// equivalent to the scalar [`crate::sinr::heard_at`].
    ///
    /// # Panics
    ///
    /// Panics if the source network has mutated past this engine (see
    /// [`SinrEvaluator::assert_fresh`]).
    pub fn locate(&self, p: Point) -> Located {
        self.assert_fresh();
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => ev.locate_with(k, p),
            DynKernel::General(k) => ev.locate_with(k, p),
        })
    }

    /// The SINR of station `i` at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sinr(&self, i: StationId, p: Point) -> f64 {
        self.assert_fresh();
        assert!(i.0 < self.len(), "station {i} out of range");
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => ev.sinr_with(k, i.0, p),
            DynKernel::General(k) => ev.sinr_with(k, i.0, p),
        })
    }

    /// Batched [`SinrEvaluator::locate`]: answers are written into `out`.
    /// Large batches against large networks run through the
    /// spatially-coherent tiled executor of [`crate::tile`] (Morton
    /// tiles, certified candidate pruning, serial-kernel fallback —
    /// bit-identical answers); everything else takes the per-point
    /// work-stealing path. See the module-level [execution
    /// model](self#execution-model).
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    pub fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.assert_fresh();
        let cfg = crate::tile::TileConfig::default();
        if cfg.engages(points.len(), self.len()) {
            crate::tile::locate_batch_tiled(
                self,
                crate::simd::SimdKernel::Portable,
                crate::tile::Select::MaxEnergy,
                points,
                out,
                &cfg,
                |p| self.locate_scalar(p),
            );
            return;
        }
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => batch_map(points, out, |p| ev.locate_with(k, *p)),
            DynKernel::General(k) => batch_map(points, out, |p| ev.locate_with(k, *p)),
        });
    }

    /// Batched [`SinrEvaluator::sinr`] for one station across many
    /// points — scheduled in Morton-tile order for spatial coherence.
    /// Batches that clear [`TileConfig`](crate::tile::TileConfig)'s
    /// engagement thresholds run the certified tiled executor
    /// ([`crate::tile::sinr_batch_tiled`]): tiles whose value is
    /// provably `+0.0` everywhere are bulk-filled, every other point
    /// runs the unchanged per-point kernel — so values stay
    /// bit-identical to serial [`SinrEvaluator::sinr`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slice lengths differ.
    pub fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.assert_fresh();
        assert!(i.0 < self.len(), "station {i} out of range");
        let cfg = crate::tile::TileConfig::default();
        if cfg.engages(points.len(), self.len()) {
            self.with_kernel(|ev, k| match k {
                DynKernel::Square(k) => {
                    crate::tile::sinr_batch_tiled(ev, i, points, out, &cfg, |p| {
                        ev.sinr_with(k, i.0, p)
                    });
                }
                DynKernel::General(k) => {
                    crate::tile::sinr_batch_tiled(ev, i, points, out, &cfg, |p| {
                        ev.sinr_with(k, i.0, p)
                    });
                }
            });
            return;
        }
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => {
                crate::tile::batch_map_morton(points, out, &cfg, |p| ev.sinr_with(k, i.0, p))
            }
            DynKernel::General(k) => {
                crate::tile::batch_map_morton(points, out, &cfg, |p| ev.sinr_with(k, i.0, p))
            }
        });
    }

    /// Interval-certified evaluation of the axis-aligned cell
    /// `[min, max]`: per-station energy envelopes, leave-one-out
    /// interference brackets, certified SINR intervals
    /// ([`CellCert::sinr`](crate::tile::CellCert::sinr)) and — when the
    /// margins allow — a uniform reception
    /// [`CellDecision`](crate::tile::CellDecision) for the whole cell.
    ///
    /// Pass a certificate of a **containing** cell as `parent` to
    /// re-envelope only its surviving candidates (the refinement
    /// contract; see [`crate::tile`]).
    ///
    /// # Panics
    ///
    /// Panics if the engine is stale.
    pub fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> crate::tile::CellCert {
        self.assert_fresh();
        crate::tile::cell_certificate(self, min, max, parent)
    }

    /// Certified batched location against an ancestor cell certificate
    /// — the evaluator-level worker behind
    /// [`QueryEngine::locate_in_cell`]: candidate-only certified
    /// decisions ([`crate::tile::locate_in_cell`]); points the margins
    /// cannot pin come back `None` for the caller's batch path.
    ///
    /// # Panics
    ///
    /// Panics if the engine is stale or the slice lengths differ.
    pub fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) {
        self.assert_fresh();
        crate::tile::locate_in_cell(self, crate::tile::Select::MaxEnergy, cert, points, out);
    }
}

/// Runtime kernel choice, resolved once per call (not once per point).
#[derive(Clone, Copy)]
enum DynKernel {
    Square(InverseSquare),
    General(GeneralAlpha),
}

/// The backend-independent query interface: one network, many points.
///
/// Implementations: [`ExactScan`], [`VoronoiAssisted`] (this crate) and
/// the Theorem-3 `PointLocator` (`sinr-pointloc`). All three agree with
/// the scalar ground truth [`crate::sinr::heard_at`] wherever they answer
/// definitely; only approximate backends may answer
/// [`Located::Uncertain`].
pub trait QueryEngine {
    /// Who (if anyone) is heard at `p`?
    fn locate(&self, p: Point) -> Located;

    /// Batched [`QueryEngine::locate`]: `out[k]` receives the answer for
    /// `points[k]`.
    ///
    /// The default implementation is a serial loop; the provided backends
    /// override it with the work-stealing [`batch_map`] scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        assert_eq!(
            points.len(),
            out.len(),
            "locate_batch: {} points but {} output slots",
            points.len(),
            out.len()
        );
        for (p, slot) in points.iter().zip(out.iter_mut()) {
            *slot = self.locate(*p);
        }
    }

    /// The SINR of station `i` at each point, written into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slice lengths differ.
    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]);

    // --- The dynamic path (epochs and deltas) ----------------------------

    /// The staleness contract in fallible form: `Ok(())` when the engine
    /// still reflects its source network, [`LocateError::Stale`] (with
    /// both revisions) otherwise.
    ///
    /// The plain query methods *panic* on staleness; the `try_*` methods
    /// route through this check and return the error instead — the shape
    /// a long-lived service needs to serialize the condition rather than
    /// die. Implementations delegate to [`SinrEvaluator::freshness`].
    fn freshness(&self) -> Result<(), LocateError>;

    /// Fallible [`QueryEngine::locate`]: refuses a stale engine with a
    /// typed error instead of a panic.
    ///
    /// # Errors
    ///
    /// [`LocateError::Stale`] when the source network has mutated past
    /// this engine.
    fn try_locate(&self, p: Point) -> Result<Located, LocateError> {
        self.freshness()?;
        Ok(self.locate(p))
    }

    /// Fallible [`QueryEngine::locate_batch`].
    ///
    /// # Errors
    ///
    /// [`LocateError::Stale`] when the source network has mutated past
    /// this engine; `out` is untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    fn try_locate_batch(&self, points: &[Point], out: &mut [Located]) -> Result<(), LocateError> {
        self.freshness()?;
        self.locate_batch(points, out);
        Ok(())
    }

    /// Fallible [`QueryEngine::sinr_batch`].
    ///
    /// # Errors
    ///
    /// [`LocateError::Stale`] when the source network has mutated past
    /// this engine; `out` is untouched on error.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slice lengths differ.
    fn try_sinr_batch(
        &self,
        i: StationId,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), LocateError> {
        self.freshness()?;
        self.sinr_batch(i, points, out);
        Ok(())
    }

    // --- Interval certificates ([`crate::tile`]) -------------------------

    /// Interval-certified evaluation of one axis-aligned cell: a
    /// [`CellCert`](crate::tile::CellCert) bracketing every station's
    /// SINR over `[min, max]` and, when the certified brackets clear the
    /// margins, a uniform [`CellDecision`](crate::tile::CellDecision)
    /// that is **sound for this backend's own `locate`** at every point
    /// of the cell. Certificates chain: pass a containing cell's
    /// certificate as `parent` so only its surviving candidate stations
    /// are re-enveloped (the quadtree-refinement contract).
    ///
    /// The default declines with `None` — backends that cannot tie the
    /// envelope arithmetic to their answer path (approximate locators)
    /// keep it, and consumers must fall back to per-point evaluation.
    /// The exact backends override it via the generic executor.
    fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> Option<crate::tile::CellCert> {
        let _ = (min, max, parent);
        None
    }

    /// Certified per-point location against an ancestor cell
    /// certificate: for each point (all of which must lie inside
    /// `cert`'s cell), writes `Some` of this backend's own
    /// [`QueryEngine::locate`] answer when the certificate's surviving
    /// candidates plus its frozen residual bracket pin the decision
    /// ([`crate::tile::locate_in_cell`] — `O(candidates)` instead of a
    /// full scan), `None` when they cannot — those points belong on
    /// [`QueryEngine::locate_batch`]. Returns `true` when the backend
    /// supports the path at all. Every `Some` is bit-identical to
    /// `locate_batch` on the same point. This is how the quadtree
    /// rasteriser keeps boundary pixels cheap: their spatial scatter
    /// defeats batch-level tile pruning, but the refinement already
    /// holds a tight certificate for each one.
    ///
    /// The default declines with `false` (`out` untouched) — paired
    /// with [`QueryEngine::sinr_bounds_cell`]'s default, so backends
    /// without certificates route consumers back to
    /// [`QueryEngine::locate_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths (like every
    /// batched method).
    fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) -> bool {
        let _ = (cert, points, out);
        false
    }

    // --- Stochastic channels ([`crate::channel`]) ------------------------

    /// Monte-Carlo reception probability under a stochastic channel:
    /// `out[k]` receives the fraction of `mc.trials` seeded channel
    /// draws ([`ChannelModel::gains_for_trial`]) in which `points[k]`
    /// receives *some* station. Identity channels answer exactly `0.0` /
    /// `1.0`, bit-identical to [`QueryEngine::locate_batch`] (the
    /// degenerate-channel contract); see [`crate::channel`] for the
    /// gain-folding construction and the seeding contract.
    ///
    /// The default implementation declines with
    /// [`ChannelError::Unsupported`] — backends whose structures assume
    /// the deterministic power assignment (the Theorem-3 locator) keep
    /// it.
    ///
    /// # Errors
    ///
    /// [`ChannelError::Stale`] on a stale engine (`out` untouched),
    /// [`ChannelError::InvalidChannel`] for a malformed model or trial
    /// count, [`ChannelError::Unsupported`] from backends without the
    /// stochastic path.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    fn reception_probability_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        let _ = (model, mc, points, out);
        Err(ChannelError::Unsupported(
            "this backend does not implement stochastic channels",
        ))
    }

    /// Monte-Carlo SINR distribution of station `i`: for each point, the
    /// requested `quantiles` (each in `[0, 1]`, nearest-rank over the
    /// `mc.trials` sampled SINR values) are written row-major into `out`
    /// (`out[k * quantiles.len() + q]` is quantile `q` of point `k`).
    /// Per-trial values are bit-identical to
    /// [`QueryEngine::sinr_batch`] on the gain-scaled network.
    ///
    /// The default implementation declines with
    /// [`ChannelError::Unsupported`].
    ///
    /// # Errors
    ///
    /// As [`QueryEngine::reception_probability_batch`], plus
    /// [`ChannelError::InvalidChannel`] for quantiles outside `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out` is not
    /// `points.len() × quantiles.len()` long.
    fn sinr_quantiles_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        i: StationId,
        points: &[Point],
        quantiles: &[f64],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        let _ = (model, mc, i, points, quantiles, out);
        Err(ChannelError::Unsupported(
            "this backend does not implement stochastic channels",
        ))
    }

    /// The network revision this engine currently answers for.
    fn revision(&self) -> u64;

    /// True when the source network has mutated past this engine —
    /// queries will panic until [`QueryEngine::apply`] catches up on the
    /// missed deltas or [`QueryEngine::sync`] rebuilds.
    fn is_stale(&self) -> bool;

    /// Applies one [`NetworkDelta`] incrementally, avoiding a rebuild.
    ///
    /// Deltas must be applied in emission order with none skipped; the
    /// engine is unchanged on error.
    ///
    /// # Errors
    ///
    /// * [`SyncError::ForeignDelta`] — the delta came from a different
    ///   network instance;
    /// * [`SyncError::RevisionMismatch`] — a delta was skipped or
    ///   replayed (recover with [`QueryEngine::sync`]);
    /// * [`SyncError::Unsupported`] — the backend cannot represent the
    ///   post-delta network (e.g. the Theorem-3 locator's uniform-power
    ///   precondition).
    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError>;

    /// Rebuilds the engine from the network's current state — the
    /// catch-up path when deltas were lost, and the only way to retarget
    /// an engine at a different network.
    ///
    /// # Errors
    ///
    /// [`SyncError::Unsupported`] when the backend's preconditions do
    /// not hold for `net`.
    fn sync(&mut self, net: &Network) -> Result<(), SyncError>;

    /// Detaches the engine from its source network, pinning it **fresh
    /// forever** at its current revision: later mutations of the source
    /// network no longer flip it stale, and its deltas no longer apply
    /// ([`SyncError::ForeignDelta`]). A frozen engine is an immutable
    /// snapshot of the revision it answers for — the primitive behind
    /// the RCU-style shared snapshots of [`crate::snapshot`] (a *live*
    /// clone still shares the source's epoch cell and would go stale
    /// mid-batch at the next mutation; freezing the clone is what makes
    /// it safely shareable).
    ///
    /// The default is a no-op, which is only correct for engines whose
    /// freshness never changes (e.g. test doubles without an epoch tag);
    /// every epoch-tracking backend overrides it via
    /// [`SinrEvaluator::freeze`].
    fn freeze(&mut self) {}
}

/// The exact linear-scan backend: one amortized SoA pass per point.
///
/// Exact for **every** network (any power assignment, any `α`, any `β`).
/// This is the engine-shaped replacement of the naive per-station loop:
/// same answers, `O(n)` instead of `O(n²)` per point.
#[derive(Debug, Clone)]
pub struct ExactScan {
    eval: SinrEvaluator,
}

impl ExactScan {
    /// Builds the backend for a network.
    pub fn new(net: &Network) -> Self {
        ExactScan {
            eval: SinrEvaluator::new(net),
        }
    }

    /// Wraps an already-built evaluator.
    pub fn from_evaluator(eval: SinrEvaluator) -> Self {
        ExactScan { eval }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &SinrEvaluator {
        &self.eval
    }
}

impl QueryEngine for ExactScan {
    fn locate(&self, p: Point) -> Located {
        self.eval.locate(p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.eval.locate_batch(points, out);
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }

    fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> Option<crate::tile::CellCert> {
        Some(self.eval.sinr_bounds_cell(min, max, parent))
    }

    fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) -> bool {
        self.eval.locate_in_cell(cert, points, out);
        true
    }

    fn freshness(&self) -> Result<(), LocateError> {
        self.eval.freshness()
    }

    fn reception_probability_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        crate::channel::reception_probability_driver(
            &self.eval,
            SimdKernel::Portable,
            model,
            mc,
            points,
            out,
            |ev, p| ev.locate_scalar(p),
            |pts, located| self.eval.locate_batch(pts, located),
        )
    }

    fn sinr_quantiles_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        i: StationId,
        points: &[Point],
        quantiles: &[f64],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        crate::channel::sinr_quantiles_driver(&self.eval, model, mc, i, points, quantiles, out)
    }

    fn revision(&self) -> u64 {
        self.eval.revision()
    }

    fn is_stale(&self) -> bool {
        self.eval.is_stale()
    }

    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        self.eval.apply(delta)
    }

    fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
        self.eval.sync(net);
        Ok(())
    }

    fn freeze(&mut self) {
        self.eval.freeze();
    }
}

/// The incrementally maintained station index of [`VoronoiAssisted`]: a
/// static weighted [`KdTree`] over a past snapshot, with **tombstones**
/// for stations removed, relocated, or re-powered since, and a linear
/// **overflow list** (position, power, index) for stations added or
/// changed since. Queries take the optimum over both — nearest by
/// squared distance under uniform power, strongest by
/// `power · att(d²)` (the power-diagram rule) otherwise — with ties
/// breaking toward the smallest current index, exactly the fresh-tree
/// rule, so an incrementally patched tree answers bit-for-bit like a
/// rebuilt one.
///
/// When tombstones + overflow cross the rebuild threshold (a quarter of
/// the stations, with a small-n floor) the structure is rebuilt from
/// scratch — the amortized-rebuild heuristic that keeps the overflow
/// scan from degrading the `O(log n)` dispatch toward `O(n)`.
#[derive(Debug, Clone)]
struct DynamicTree {
    tree: KdTree,
    /// kd-tree site slot → current station index; `None` = tombstone.
    tree_to_cur: Vec<Option<usize>>,
    /// current station index → where the station lives.
    cur_to_slot: Vec<SlotRef>,
    /// Stations living outside the tree:
    /// `(position, power, current index)`.
    overflow: Vec<(Point, f64, usize)>,
    /// Number of tombstoned tree slots.
    dead: usize,
}

#[derive(Debug, Clone, Copy)]
enum SlotRef {
    /// Index into `DynamicTree::tree` sites.
    Tree(usize),
    /// Index into `DynamicTree::overflow`.
    Overflow(usize),
}

impl DynamicTree {
    fn build(positions: Vec<Point>, powers: Vec<f64>) -> Self {
        let n = positions.len();
        DynamicTree {
            tree: KdTree::build_weighted(positions, powers),
            tree_to_cur: (0..n).map(Some).collect(),
            cur_to_slot: (0..n).map(SlotRef::Tree).collect(),
            overflow: Vec::new(),
            dead: 0,
        }
    }

    /// Nearest live station: `(current index, squared distance)`. The
    /// Observation-2.2 dispatch — legal under uniform power only.
    fn nearest(&self, p: Point) -> (usize, f64) {
        let mut best = self.tree.nearest_mapped(p, |slot| self.tree_to_cur[slot]);
        for &(q, _, cur) in &self.overflow {
            let d2 = q.dist_sq(p);
            let better = match best {
                None => true,
                Some((bi, bd)) => d2 < bd || (d2 == bd && cur < bi),
            };
            if better {
                best = Some((cur, d2));
            }
        }
        best.expect("a built network has ≥ 2 stations")
    }

    /// Strongest live station under `att`:
    /// `(current index, squared distance, strength)` maximising
    /// `power · att(d²)` — the power-diagram (weighted Voronoi)
    /// nearest-dominator dispatch, legal for every power assignment.
    fn strongest(&self, p: Point, att: impl Fn(f64) -> f64) -> (usize, f64, f64) {
        let mut best = self
            .tree
            .strongest_mapped(p, &att, |slot| self.tree_to_cur[slot]);
        for &(q, w, cur) in &self.overflow {
            let d2 = q.dist_sq(p);
            let strength = att(d2) * w;
            let better = match best {
                None => true,
                Some((bi, _, bs)) => strength > bs || (strength == bs && cur < bi),
            };
            if better {
                best = Some((cur, d2, strength));
            }
        }
        best.expect("a built network has ≥ 2 stations")
    }

    /// Detaches station `i` from whichever store holds it (tombstoning a
    /// tree slot, or swap-removing an overflow entry and re-pointing the
    /// entry that took its place).
    fn detach(&mut self, i: usize) {
        match self.cur_to_slot[i] {
            SlotRef::Tree(t) => {
                self.tree_to_cur[t] = None;
                self.dead += 1;
            }
            SlotRef::Overflow(o) => {
                self.overflow.swap_remove(o);
                if o < self.overflow.len() {
                    let moved_cur = self.overflow[o].2;
                    self.cur_to_slot[moved_cur] = SlotRef::Overflow(o);
                }
            }
        }
    }

    /// Mirrors [`DeltaOp::Add`]: the new station gets the next index.
    fn add(&mut self, position: Point, power: f64) {
        let cur = self.cur_to_slot.len();
        self.cur_to_slot
            .push(SlotRef::Overflow(self.overflow.len()));
        self.overflow.push((position, power, cur));
    }

    /// Mirrors [`DeltaOp::Remove`]'s swap-remove index discipline.
    fn remove(&mut self, i: usize, last_index: usize) {
        self.detach(i);
        if i != last_index {
            // `detach` above may have re-pointed `last_index`'s slot ref
            // (overflow swap), so read it only now.
            let moved = self.cur_to_slot[last_index];
            self.cur_to_slot[i] = moved;
            match moved {
                SlotRef::Tree(t) => self.tree_to_cur[t] = Some(i),
                SlotRef::Overflow(o) => self.overflow[o].2 = i,
            }
        }
        self.cur_to_slot.pop();
    }

    /// Mirrors [`DeltaOp::Move`]: in-tree stations are tombstoned and
    /// reinserted into the overflow (carrying their current power);
    /// overflow stations move in place.
    fn relocate(&mut self, i: usize, to: Point, power: f64) {
        match self.cur_to_slot[i] {
            SlotRef::Overflow(o) => self.overflow[o].0 = to,
            SlotRef::Tree(t) => {
                self.tree_to_cur[t] = None;
                self.dead += 1;
                self.cur_to_slot[i] = SlotRef::Overflow(self.overflow.len());
                self.overflow.push((to, power, i));
            }
        }
    }

    /// Mirrors [`DeltaOp::SetPower`]: overflow stations re-weight in
    /// place; in-tree stations whose baked weight already equals the new
    /// power are untouched (the static aggregates stay exact), otherwise
    /// they are tombstoned and reinserted with the new power.
    fn set_power(&mut self, i: usize, to: f64) {
        match self.cur_to_slot[i] {
            SlotRef::Overflow(o) => self.overflow[o].1 = to,
            SlotRef::Tree(t) => {
                if self.tree.weights()[t] == to {
                    return;
                }
                let position = self.tree.sites()[t];
                self.tree_to_cur[t] = None;
                self.dead += 1;
                self.cur_to_slot[i] = SlotRef::Overflow(self.overflow.len());
                self.overflow.push((position, to, i));
            }
        }
    }

    /// The rebuild-threshold heuristic: rebuild once a quarter of the
    /// stations (floor 16) have left the static tree.
    fn should_rebuild(&self) -> bool {
        self.dead + self.overflow.len() > (self.cur_to_slot.len() / 4).max(16)
    }
}

/// The proximity-dispatch backend: kd-tree nearest-*dominator* search.
///
/// For uniform power the maximum-energy station *is* the nearest station
/// (Observation 2.2), so each query needs one `O(log n)` nearest-
/// neighbour search plus a single interference sum. For **non-uniform**
/// power the analogous dispatch (Kantor–Lotker–Parter–Peleg) is a
/// weighted Voronoi — power-diagram — cell lookup: the only station that
/// can be heard at `p` is the one maximising `Pᵢ · att(d²)`, found by the
/// kd-tree's best-first branch-and-bound over per-subtree
/// `(bbox, max power)` aggregates ([`KdTree::strongest_mapped`]). One
/// weighted tree serves both regimes; the cheaper nearest walk is chosen
/// per query whenever the current powers are uniform. Exact for all `β`
/// (for `β ≤ 1` the strongest heard station is the strongest overall, by
/// the same monotonicity as [`SinrEvaluator`]).
///
/// The candidate interference sum rides the vectorized lanes of
/// [`crate::simd`] (the same runtime kernel selection as
/// [`SimdScan`](crate::simd::SimdScan), minus the argmax bookkeeping the
/// kd-tree dispatch makes redundant), so this backend shares `SimdScan`'s
/// numerical contract: answers match the scalar ground truth everywhere
/// except within rounding tolerance of a `SINR = β` decision boundary.
///
/// Under [`QueryEngine::apply`] the kd-tree is maintained through
/// tombstones and an overflow list with a rebuild threshold (see
/// [`DynamicTree`]); power deltas re-weight the index in place, so
/// uniform ↔ non-uniform transitions no longer drop it.
#[derive(Debug, Clone)]
pub struct VoronoiAssisted {
    eval: SinrEvaluator,
    /// The weighted proximity index; never dropped.
    tree: DynamicTree,
    /// The vectorized kernel for the candidate interference sum.
    kernel: SimdKernel,
}

impl VoronoiAssisted {
    /// Builds the backend: `O(n log n)` for the kd-tree.
    pub fn new(net: &Network) -> Self {
        let eval = SinrEvaluator::new(net);
        let powers = eval.soa().2.to_vec();
        let tree = DynamicTree::build(net.positions().to_vec(), powers);
        VoronoiAssisted {
            eval,
            tree,
            kernel: SimdKernel::detect(),
        }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &SinrEvaluator {
        &self.eval
    }

    /// True when queries dispatch through the kd-tree — since the
    /// power-diagram dispatch, **always** for this backend.
    ///
    /// Historically this flipped to `false` on non-uniform power (the
    /// Observation-2.2 nearest-station shortcut is only legal under
    /// uniform power, and the backend fell back to an exact scan).
    /// The weighted nearest-dominator search removed the fallback: the
    /// same tree answers `argmax Pᵢ · att(d²)` exactly for every power
    /// assignment, so the method is kept only for callers that report
    /// which dispatch a backend uses.
    pub fn uses_proximity_dispatch(&self) -> bool {
        true
    }

    /// The SIMD kernel the candidate interference sum resolved to.
    pub fn kernel(&self) -> SimdKernel {
        self.kernel
    }

    /// The proximity dispatch: nearest station under uniform power
    /// (Observation 2.2 — no weight bookkeeping in the walk), strongest
    /// station (`argmax Pᵢ · att(d²)`, the power-diagram cell) otherwise.
    /// Either way the winner is the only station that can be heard, and
    /// ties break toward the smallest index — the scan kernels' rule.
    #[inline]
    fn dispatch_candidate(&self, p: Point) -> (usize, f64) {
        if self.eval.is_uniform_power() {
            self.tree.nearest(p)
        } else {
            let (cand, d2, _) = self.eval.with_kernel(|_, k| match k {
                DynKernel::Square(kk) => self.tree.strongest(p, |d2| kk.attenuation(d2)),
                DynKernel::General(kk) => self.tree.strongest(p, |d2| kk.attenuation(d2)),
            });
            (cand, d2)
        }
    }

    #[inline]
    fn locate_via_tree(&self, p: Point) -> Located {
        let (cand, d2) = self.dispatch_candidate(p);
        if d2 == 0.0 {
            // At a station's position: reception by the `{sᵢ}` clause.
            // Both walks break co-location ties toward the smallest
            // index (all co-located stations tie at `d² = 0` /
            // infinite strength), matching the scalar ground truth.
            return Located::Reception(StationId(cand));
        }
        self.eval.decide_candidate(
            cand,
            crate::simd::candidate_scan(&self.eval, self.kernel, cand, p),
        )
    }

    /// The tiled executor's per-point candidate rule for the current
    /// powers: [`Select::Nearest`](crate::tile::Select::Nearest) under
    /// uniform power (the kd-tree's nearest walk),
    /// [`Select::MaxEnergy`](crate::tile::Select::MaxEnergy) otherwise
    /// (the power-diagram argmax — identical winner to the weighted
    /// walk, since both maximise the same per-station energies).
    #[inline]
    fn tile_select(&self) -> crate::tile::Select {
        if self.eval.is_uniform_power() {
            crate::tile::Select::Nearest
        } else {
            crate::tile::Select::MaxEnergy
        }
    }
}

impl QueryEngine for VoronoiAssisted {
    fn locate(&self, p: Point) -> Located {
        self.eval.assert_fresh();
        self.locate_via_tree(p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.eval.assert_fresh();
        let cfg = crate::tile::TileConfig::default();
        if cfg.engages(points.len(), self.eval.len()) {
            // Tiled proximity dispatch: the per-tile candidate set
            // plays the kd-tree's role (the winning station always
            // survives pruning under either selection rule), with the
            // serial tree walk as the per-point fallback.
            crate::tile::locate_batch_tiled(
                &self.eval,
                self.kernel,
                self.tile_select(),
                points,
                out,
                &cfg,
                |p| self.locate_via_tree(p),
            );
            return;
        }
        batch_map(points, out, |p| self.locate_via_tree(*p));
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }

    fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> Option<crate::tile::CellCert> {
        // Sound for the tree dispatch too: a certified Reception pins a
        // strict unique energy argmax, which is exactly the station the
        // power-diagram walk (and, under uniform power, the nearest
        // walk) selects; certified Silent fails every station's test
        // including whichever one the tree walk picks. The cell
        // certificates' envelopes are per-station and power-aware, so
        // this holds for every power assignment.
        Some(self.eval.sinr_bounds_cell(min, max, parent))
    }

    fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) -> bool {
        self.eval.assert_fresh();
        // Certified decisions under this backend's per-query candidate
        // rule (nearest for uniform power, max-energy otherwise);
        // uncertifiable points stay `None` for the caller's tiled
        // batch path.
        crate::tile::locate_in_cell(&self.eval, self.tile_select(), cert, points, out);
        true
    }

    fn freshness(&self) -> Result<(), LocateError> {
        self.eval.freshness()
    }

    fn reception_probability_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        // Identity channels route through `locate_batch` inside the
        // driver (so degenerate answers keep this backend's tree-based
        // summation order bit-for-bit); non-identity trials scale the
        // powers per trial, which the static tree's baked weights do
        // not track — the per-trial serial kernel is the exact scalar
        // scan over the trial-scaled evaluator.
        crate::channel::reception_probability_driver(
            &self.eval,
            self.kernel,
            model,
            mc,
            points,
            out,
            |ev, p| ev.locate_scalar(p),
            |pts, located| self.locate_batch(pts, located),
        )
    }

    fn sinr_quantiles_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        i: StationId,
        points: &[Point],
        quantiles: &[f64],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        crate::channel::sinr_quantiles_driver(&self.eval, model, mc, i, points, quantiles, out)
    }

    fn revision(&self) -> u64 {
        self.eval.revision()
    }

    fn is_stale(&self) -> bool {
        self.eval.is_stale()
    }

    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        self.eval.apply(delta)?;
        // The weighted index absorbs every delta kind — including power
        // changes, which historically dropped the tree (the unweighted
        // index could only serve uniform networks). Uniform ↔
        // non-uniform transitions are now just re-weights.
        match delta.op() {
            DeltaOp::Add {
                position, power, ..
            } => self.tree.add(*position, *power),
            DeltaOp::Remove { id, last_index, .. } => self.tree.remove(id.0, *last_index),
            DeltaOp::Move { id, to, .. } => {
                let power = self.eval.soa().2[id.0];
                self.tree.relocate(id.0, *to, power);
            }
            DeltaOp::SetPower { id, to, .. } => self.tree.set_power(id.0, *to),
        }
        if self.tree.should_rebuild() {
            self.tree = DynamicTree::build(self.eval.position_points(), self.eval.soa().2.to_vec());
        }
        Ok(())
    }

    fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
        *self = VoronoiAssisted::new(net);
        Ok(())
    }

    fn freeze(&mut self) {
        self.eval.freeze();
    }
}

/// A backend chosen at runtime: any [`QueryEngine`] behind one owned,
/// object-safe handle.
///
/// The concrete backends are distinct types (deliberately — batch hot
/// loops monomorphize over them), which is the wrong shape for callers
/// that pick a backend from a config value, a CLI flag, or a network
/// client's `Bind` frame (`sinr-server`). `BoxedEngine` erases the type
/// while keeping the whole [`QueryEngine`] contract, including the
/// dynamic path (`apply`/`sync`), and remembers a stable backend name
/// for logs and wire responses.
///
/// Constructors cover this crate's backends; [`BoxedEngine::new`] wraps
/// any other implementation (e.g. the Theorem-3 `PointLocator` of
/// `sinr-pointloc`).
///
/// # Examples
///
/// ```
/// use sinr_core::engine::{BoxedEngine, QueryEngine};
/// use sinr_core::Network;
/// use sinr_geometry::Point;
///
/// let net = Network::uniform(
///     vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
///     0.0,
///     2.0,
/// ).unwrap();
/// let engine = match "simd_scan" {
///     "exact_scan" => BoxedEngine::exact_scan(&net),
///     "simd_scan" => BoxedEngine::simd_scan(&net),
///     _ => BoxedEngine::voronoi_assisted(&net),
/// };
/// assert_eq!(engine.backend_name(), "simd_scan");
/// assert!(engine.locate(Point::new(0.5, 0.0)).station().is_some());
/// ```
pub struct BoxedEngine {
    inner: Box<dyn CloneableEngine>,
    backend: &'static str,
}

/// Object-safe clone support for the erased engine: a blanket impl
/// covers every cloneable, thread-safe [`QueryEngine`], so
/// [`BoxedEngine`] itself can be [`Clone`] + [`Sync`] — the shape
/// snapshot publication ([`crate::snapshot`]) needs (clone the master,
/// freeze the clone, share it behind an `Arc`).
trait CloneableEngine: QueryEngine + Send + Sync {
    fn boxed_clone(&self) -> Box<dyn CloneableEngine>;
}

impl<E: QueryEngine + Clone + Send + Sync + 'static> CloneableEngine for E {
    fn boxed_clone(&self) -> Box<dyn CloneableEngine> {
        Box::new(self.clone())
    }
}

impl Clone for BoxedEngine {
    fn clone(&self) -> Self {
        BoxedEngine {
            inner: self.inner.boxed_clone(),
            backend: self.backend,
        }
    }
}

impl std::fmt::Debug for BoxedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoxedEngine")
            .field("backend", &self.backend)
            .field("revision", &self.inner.revision())
            .finish()
    }
}

impl BoxedEngine {
    /// Wraps any engine under the given stable backend name. The engine
    /// must be `Clone + Send + Sync` so the erased handle stays
    /// cloneable and shareable (every shipped backend is).
    pub fn new<E: QueryEngine + Clone + Send + Sync + 'static>(
        backend: &'static str,
        engine: E,
    ) -> Self {
        BoxedEngine {
            inner: Box::new(engine),
            backend,
        }
    }

    /// An [`ExactScan`] behind the erased handle (`"exact_scan"`).
    pub fn exact_scan(net: &Network) -> Self {
        BoxedEngine::new("exact_scan", ExactScan::new(net))
    }

    /// A [`SimdScan`](crate::simd::SimdScan) behind the erased handle
    /// (`"simd_scan"`).
    pub fn simd_scan(net: &Network) -> Self {
        BoxedEngine::new("simd_scan", crate::simd::SimdScan::new(net))
    }

    /// A [`VoronoiAssisted`] behind the erased handle
    /// (`"voronoi_assisted"`).
    pub fn voronoi_assisted(net: &Network) -> Self {
        BoxedEngine::new("voronoi_assisted", VoronoiAssisted::new(net))
    }

    /// The stable name of the wrapped backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend
    }
}

impl QueryEngine for BoxedEngine {
    fn locate(&self, p: Point) -> Located {
        self.inner.locate(p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.inner.locate_batch(points, out);
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.inner.sinr_batch(i, points, out);
    }

    fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> Option<crate::tile::CellCert> {
        self.inner.sinr_bounds_cell(min, max, parent)
    }

    fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) -> bool {
        self.inner.locate_in_cell(cert, points, out)
    }

    fn freshness(&self) -> Result<(), LocateError> {
        self.inner.freshness()
    }

    fn reception_probability_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        self.inner
            .reception_probability_batch(model, mc, points, out)
    }

    fn sinr_quantiles_batch(
        &self,
        model: &ChannelModel,
        mc: McConfig,
        i: StationId,
        points: &[Point],
        quantiles: &[f64],
        out: &mut [f64],
    ) -> Result<(), ChannelError> {
        self.inner
            .sinr_quantiles_batch(model, mc, i, points, quantiles, out)
    }

    fn revision(&self) -> u64 {
        self.inner.revision()
    }

    fn is_stale(&self) -> bool {
        self.inner.is_stale()
    }

    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        self.inner.apply(delta)
    }

    fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
        self.inner.sync(net)
    }

    fn freeze(&mut self) {
        self.inner.freeze();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinr;

    fn nets() -> Vec<Network> {
        vec![
            // Uniform, β > 1, no noise.
            Network::uniform(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(4.0, 0.0),
                    Point::new(1.0, 3.0),
                ],
                0.0,
                2.0,
            )
            .unwrap(),
            // Uniform, β < 1, noisy.
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 0.4).unwrap(),
            // Non-uniform power.
            Network::builder()
                .station_with_power(Point::new(0.0, 0.0), 4.0)
                .station(Point::new(3.0, 0.0))
                .station_with_power(Point::new(0.0, 5.0), 0.5)
                .background_noise(0.01)
                .threshold(1.5)
                .build()
                .unwrap(),
            // α = 4.
            Network::builder()
                .station(Point::new(0.0, 0.0))
                .station(Point::new(4.0, 1.0))
                .path_loss(4.0)
                .threshold(2.0)
                .build()
                .unwrap(),
            // Co-located pair plus a third station.
            Network::uniform(
                vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
                0.0,
                2.0,
            )
            .unwrap(),
        ]
    }

    fn grid_points(half: f64, steps: i32) -> Vec<Point> {
        let mut pts = Vec::new();
        for a in -steps..=steps {
            for b in -steps..=steps {
                pts.push(Point::new(
                    a as f64 * half / steps as f64,
                    b as f64 * half / steps as f64,
                ));
            }
        }
        pts
    }

    #[test]
    fn exact_scan_matches_scalar_ground_truth() {
        for net in nets() {
            let engine = ExactScan::new(&net);
            for p in grid_points(6.0, 25) {
                let expected = sinr::heard_at(&net, p);
                assert_eq!(
                    engine.locate(p).station(),
                    expected,
                    "ExactScan disagrees at {p} in {net}"
                );
            }
        }
    }

    #[test]
    fn voronoi_assisted_matches_scalar_ground_truth() {
        for net in nets() {
            let engine = VoronoiAssisted::new(&net);
            // The weighted tree serves every power assignment.
            assert!(engine.uses_proximity_dispatch());
            for p in grid_points(6.0, 25) {
                let expected = sinr::heard_at(&net, p);
                let got = engine.locate(p).station();
                if got != expected {
                    // The candidate sum runs on the SIMD lanes, so (like
                    // SimdScan) only genuine SINR = β boundary rounding
                    // may differ from the scalar summation order.
                    let boundary = net.ids().any(|i| {
                        let s = sinr::sinr(&net, i, p);
                        s.is_finite() && (s - net.beta()).abs() <= 1e-9 * (1.0 + net.beta())
                    });
                    assert!(
                        boundary,
                        "VoronoiAssisted disagrees at {p} in {net}: {got:?} vs {expected:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn station_positions_locate_as_reception() {
        for net in nets() {
            for engine in [
                Box::new(ExactScan::new(&net)) as Box<dyn QueryEngine>,
                Box::new(VoronoiAssisted::new(&net)),
            ] {
                for i in net.ids() {
                    let got = engine.locate(net.position(i));
                    match got {
                        Located::Reception(_) => {}
                        other => panic!("station {i} of {net}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_scalar_calls_and_parallelizes() {
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(1.0, 3.0),
            ],
            0.01,
            1.5,
        )
        .unwrap();
        let engine = VoronoiAssisted::new(&net);
        // Above PARALLEL_BATCH_THRESHOLD so the parallel path runs.
        let points = grid_points(5.0, 40);
        assert!(points.len() > PARALLEL_BATCH_THRESHOLD);
        let mut batch = vec![Located::Silent; points.len()];
        engine.locate_batch(&points, &mut batch);
        for (p, got) in points.iter().zip(&batch) {
            assert_eq!(*got, engine.locate(*p), "batch/scalar mismatch at {p}");
        }
    }

    #[test]
    fn sinr_batch_matches_scalar_sinr() {
        for net in nets() {
            let eval = SinrEvaluator::new(&net);
            let points = grid_points(5.0, 12);
            let mut out = vec![0.0; points.len()];
            for i in net.ids() {
                eval.sinr_batch(i, &points, &mut out);
                for (p, got) in points.iter().zip(&out) {
                    let expected = sinr::sinr(&net, i, *p);
                    if expected.is_infinite() {
                        assert!(got.is_infinite(), "{i} at {p}: {got} vs ∞");
                    } else {
                        assert!(
                            (got - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                            "{i} at {p}: {got} vs {expected}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn evaluator_accessors() {
        let net = Network::builder()
            .station_with_power(Point::new(1.0, 2.0), 3.0)
            .station(Point::new(-1.0, 0.5))
            .background_noise(0.07)
            .threshold(2.5)
            .path_loss(3.0)
            .build()
            .unwrap();
        let eval = SinrEvaluator::new(&net);
        assert_eq!(eval.len(), 2);
        assert!(!eval.is_empty());
        assert_eq!(eval.beta(), 2.5);
        assert_eq!(eval.noise(), 0.07);
        assert_eq!(eval.alpha(), 3.0);
        assert!(!eval.is_uniform_power());
        assert_eq!(eval.position(StationId(0)), Point::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "batch_map")]
    fn mismatched_batch_lengths_panic() {
        let net = Network::uniform(vec![Point::ORIGIN, Point::new(1.0, 0.0)], 0.0, 2.0).unwrap();
        let engine = ExactScan::new(&net);
        let mut out = vec![Located::Silent; 3];
        engine.locate_batch(&[Point::ORIGIN], &mut out);
    }

    #[test]
    fn batch_map_parallel_and_serial_agree() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let mut out = vec![0u64; inputs.len()];
        batch_map(&inputs, &mut out, |x| x * 3 + 1);
        assert!(inputs.iter().zip(&out).all(|(x, y)| *y == x * 3 + 1));
        let small: Vec<u64> = (0..7).collect();
        let mut small_out = vec![0u64; 7];
        batch_map(&small, &mut small_out, |x| x + 1);
        assert_eq!(small_out, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn work_stealing_and_chunked_agree() {
        // Sizes straddling the threshold and the tile size, including a
        // non-multiple-of-tile length.
        for len in [
            PARALLEL_BATCH_THRESHOLD - 1,
            PARALLEL_BATCH_THRESHOLD,
            PARALLEL_BATCH_THRESHOLD + 1,
            3 * BATCH_TILE + 17,
            25_000,
        ] {
            let inputs: Vec<u64> = (0..len as u64).collect();
            let mut stolen = vec![0u64; len];
            let mut chunked = vec![u64::MAX; len];
            batch_map(&inputs, &mut stolen, |x| x.wrapping_mul(0x9E37_79B9) ^ 7);
            batch_map_chunked(&inputs, &mut chunked, |x| x.wrapping_mul(0x9E37_79B9) ^ 7);
            assert_eq!(stolen, chunked, "schedulers disagree at len {len}");
        }
    }

    #[test]
    fn batch_map_drops_previous_values_exactly_once() {
        // The work-stealing writer overwrites initialized slots; each old
        // value must be dropped exactly once and each new value kept.
        let len = PARALLEL_BATCH_THRESHOLD + 123;
        let inputs: Vec<u64> = (0..len as u64).collect();
        let mut out: Vec<std::sync::Arc<u64>> = (0..len as u64).map(std::sync::Arc::new).collect();
        let probes: Vec<std::sync::Arc<u64>> = out.clone();
        batch_map(&inputs, &mut out, |x| std::sync::Arc::new(x + 1));
        for (x, slot) in inputs.iter().zip(&out) {
            assert_eq!(**slot, x + 1);
        }
        // The originals are only referenced by `probes` now.
        assert!(probes.iter().all(|p| std::sync::Arc::strong_count(p) == 1));
    }

    #[test]
    fn static_split_clamps_thread_count() {
        // Regression: a batch barely above the parallel threshold on a
        // high-core machine must not shatter into near-empty chunks.
        let (workers, chunk) = static_split(PARALLEL_BATCH_THRESHOLD + 1, 128);
        assert_eq!(
            workers,
            (PARALLEL_BATCH_THRESHOLD + 1).div_ceil(MIN_STATIC_CHUNK)
        );
        assert!(chunk >= MIN_STATIC_CHUNK / 2, "chunk {chunk} too small");
        assert!(workers * chunk > PARALLEL_BATCH_THRESHOLD);
        // Plenty of work: every core gets a chunk.
        let (workers, chunk) = static_split(1_000_000, 16);
        assert_eq!(workers, 16);
        assert_eq!(chunk, 62_500);
        // Degenerate guards.
        assert_eq!(static_split(1, 64), (1, 1));
        let (w, c) = static_split(MIN_STATIC_CHUNK * 3, 2);
        assert_eq!((w, c), (2, MIN_STATIC_CHUNK * 3 / 2));
    }
}
