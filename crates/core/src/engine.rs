//! The batched, SoA-backed SINR query engine.
//!
//! The scalar functions of [`crate::sinr`] are the numeric ground truth,
//! but they answer one `(station, point)` question at a time and re-derive
//! everything per call — `heard_at` is `O(n²)` per point. The
//! production-shaped query is *many points against one network*, and this
//! module is that API:
//!
//! * [`SinrEvaluator`] — a per-network precomputation: stations in
//!   structure-of-arrays layout (split `xs` / `ys` / `powers` vectors for
//!   cache-friendly scans), the reception test rewritten division-free
//!   (`E ≥ β·(I + N)` instead of `E/(I+N) ≥ β`), and the path-loss
//!   attenuation monomorphized through the sealed [`PathLoss`] strategy so
//!   the paper's `α = 2` case compiles to a single multiply-free division
//!   per station. One evaluator pass answers "who is heard at `p`" in
//!   `O(n)` — the scalar loop needs `O(n²)`.
//! * [`QueryEngine`] — the backend-independent trait: [`QueryEngine::
//!   locate`], [`QueryEngine::locate_batch`] and [`QueryEngine::
//!   sinr_batch`]. Batch calls run chunked in parallel across the
//!   available cores for large inputs.
//! * Backends: [`ExactScan`] (one amortized SoA pass per point, exact for
//!   every network), [`VoronoiAssisted`] (kd-tree nearest-station dispatch
//!   per Observation 2.2, exact for uniform power, falling back to the
//!   scan otherwise), and the Theorem-3 `PointLocator` of `sinr-pointloc`
//!   (sublinear per query, `ε`-approximate near zone boundaries).
//!
//! The [`Located`] answer type lives here so that every backend — across
//! crates — speaks the same language; `sinr-pointloc` re-exports it.
//!
//! ## Which backend?
//!
//! | backend | query cost | exact? | preconditions |
//! |---|---|---|---|
//! | [`ExactScan`] | `O(n)` | yes | none |
//! | [`VoronoiAssisted`] | `O(n)`, smaller constants | yes | none (falls back to scan for non-uniform power) |
//! | `PointLocator` | `O(log n)` | `ε`-approximate near `∂Hᵢ` | uniform power, `α = 2`, `β > 1` |
//!
//! ## Example
//!
//! ```
//! use sinr_core::engine::{Located, QueryEngine, VoronoiAssisted};
//! use sinr_core::{Network, StationId};
//! use sinr_geometry::Point;
//!
//! let net = Network::uniform(
//!     vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
//!     0.0,
//!     2.0,
//! ).unwrap();
//! let engine = VoronoiAssisted::new(&net);
//!
//! let queries = [Point::new(0.5, 0.0), Point::new(3.0, 0.0)];
//! let mut answers = [Located::Silent; 2];
//! engine.locate_batch(&queries, &mut answers);
//! assert_eq!(answers[0], Located::Reception(StationId(0)));
//! assert_eq!(answers[1], Located::Silent);
//! ```

use crate::network::Network;
use crate::station::StationId;
use sinr_algebra::KahanSum;
use sinr_geometry::Point;
use sinr_voronoi::KdTree;

/// The answer of a point-location query, shared by every backend.
///
/// The exact backends ([`ExactScan`], [`VoronoiAssisted`]) never produce
/// [`Located::Uncertain`]; the Theorem-3 approximate structure uses it for
/// points inside the `ε`-area band `Hᵢ?` along a zone boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Located {
    /// The point is inside the reception zone of this station
    /// (`p ∈ Hᵢ`; for approximate backends `p ∈ Hᵢ⁺ ⊆ Hᵢ`).
    Reception(StationId),
    /// The point lies in the uncertain boundary band `Hᵢ?` of this
    /// station (the only candidate); its true status is unresolved at the
    /// backend's resolution.
    Uncertain(StationId),
    /// The point is outside every reception zone (`p ∈ H_∅`).
    Silent,
}

impl Located {
    /// The candidate station, if any.
    pub fn station(&self) -> Option<StationId> {
        match self {
            Located::Reception(i) | Located::Uncertain(i) => Some(*i),
            Located::Silent => None,
        }
    }
}

mod sealed {
    /// Seals [`super::PathLoss`]: the algebraic machinery of this
    /// workspace (characteristic polynomials, Sturm tests) is specific to
    /// the implemented attenuation laws, so downstream crates must not add
    /// their own.
    pub trait Sealed {}
    impl Sealed for super::InverseSquare {}
    impl Sealed for super::GeneralAlpha {}
}

/// A path-loss attenuation strategy (sealed).
///
/// Monomorphizing the evaluator kernels over this trait gives the paper's
/// `α = 2` setting a dedicated fast path — [`InverseSquare`] turns
/// `dist(s, p)^{−α}` into one division by the squared distance, with no
/// `powf` and no square root anywhere in the scan.
pub trait PathLoss: sealed::Sealed + Copy + Send + Sync {
    /// The attenuation `dist^{−α}` given the *squared* distance `d2 > 0`.
    fn attenuation(self, d2: f64) -> f64;
}

/// The paper's default `α = 2`: attenuation is `1/d²`.
#[derive(Debug, Clone, Copy)]
pub struct InverseSquare;

impl PathLoss for InverseSquare {
    #[inline(always)]
    fn attenuation(self, d2: f64) -> f64 {
        1.0 / d2
    }
}

/// General `α > 0`: attenuation is `(d²)^{−α/2}`.
#[derive(Debug, Clone, Copy)]
pub struct GeneralAlpha {
    half_alpha: f64,
}

impl GeneralAlpha {
    /// The strategy for path-loss exponent `alpha`.
    pub fn new(alpha: f64) -> Self {
        GeneralAlpha {
            half_alpha: alpha / 2.0,
        }
    }
}

impl PathLoss for GeneralAlpha {
    #[inline(always)]
    fn attenuation(self, d2: f64) -> f64 {
        d2.powf(-self.half_alpha)
    }
}

/// Batches at least this long are processed in parallel chunks.
const PARALLEL_BATCH_THRESHOLD: usize = 2048;

/// Applies `f` to every input, writing results into `out` — chunked across
/// the available cores when the batch is large, serial otherwise.
///
/// This is the shared batch driver of every [`QueryEngine`] backend
/// (including the Theorem-3 locator in `sinr-pointloc`).
///
/// # Panics
///
/// Panics if `inputs` and `out` have different lengths.
pub fn batch_map<I, O, F>(inputs: &[I], out: &mut [O], f: F)
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert_eq!(
        inputs.len(),
        out.len(),
        "batch_map: {} inputs but {} output slots",
        inputs.len(),
        out.len()
    );
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if inputs.len() < PARALLEL_BATCH_THRESHOLD || threads <= 1 {
        for (p, slot) in inputs.iter().zip(out.iter_mut()) {
            *slot = f(p);
        }
        return;
    }
    let chunk = inputs.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in inputs.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(|| {
                for (p, slot) in in_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = f(p);
                }
            });
        }
    });
}

/// One station scan: the quantities every reception decision needs.
struct Scan {
    /// Total energy `E(S, p)` (compensated sum).
    total: f64,
    /// Index of the maximum-energy station (first on ties).
    best: usize,
    /// Its energy.
    best_energy: f64,
}

/// The SoA-backed per-network evaluator: build once, query many.
///
/// Station coordinates and powers are split into `xs` / `ys` / `powers`
/// vectors so the per-point scan is three linear streams, and the
/// reception test is evaluated division-free (`E ≥ β·(I + N)`).
///
/// The key algebraic fact making one pass sufficient: with
/// `T = E(S, p)` the total energy, every station's SINR is
/// `E(sᵢ,p) / (T − E(sᵢ,p) + N)`, which is *strictly increasing* in
/// `E(sᵢ,p)`. The maximum-energy station is therefore the maximum-SINR
/// station for **any** power assignment and any `β` — so `locate` needs
/// one scan (total + argmax), not `n` interference sums.
#[derive(Debug, Clone)]
pub struct SinrEvaluator {
    xs: Vec<f64>,
    ys: Vec<f64>,
    powers: Vec<f64>,
    uniform: bool,
    noise: f64,
    beta: f64,
    alpha: f64,
}

impl SinrEvaluator {
    /// Builds the evaluator for a network (an `O(n)` copy).
    pub fn new(net: &Network) -> Self {
        let n = net.len();
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for p in net.positions() {
            xs.push(p.x);
            ys.push(p.y);
        }
        let powers = net.ids().map(|i| net.power(i)).collect();
        SinrEvaluator {
            xs,
            ys,
            powers,
            uniform: net.is_uniform_power(),
            noise: net.noise(),
            beta: net.beta(),
            alpha: net.alpha(),
        }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the evaluator covers no stations (never for one built
    /// from a [`Network`], which has `n ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The reception threshold `β`.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The background noise `N`.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The path-loss exponent `α`.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// True when every station transmits with power 1.
    pub fn is_uniform_power(&self) -> bool {
        self.uniform
    }

    /// The position of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: StationId) -> Point {
        Point::new(self.xs[i.0], self.ys[i.0])
    }

    /// Dispatches `f` with the monomorphized path-loss strategy — `α = 2`
    /// networks take the [`InverseSquare`] fast path.
    #[inline]
    fn with_kernel<T>(&self, f: impl FnOnce(&Self, DynKernel) -> T) -> T {
        if self.alpha == 2.0 {
            f(self, DynKernel::Square(InverseSquare))
        } else {
            f(self, DynKernel::General(GeneralAlpha::new(self.alpha)))
        }
    }

    /// One SoA pass: total energy plus the maximum-energy station.
    /// Returns `Err(j)` when `p` coincides with station `j` (first such
    /// index — reception is then decided by the `{sᵢ}` zone clause).
    #[inline]
    fn scan<K: PathLoss>(&self, k: K, p: Point) -> Result<Scan, usize> {
        let mut acc = KahanSum::new();
        let mut best = 0usize;
        let mut best_energy = f64::NEG_INFINITY;
        for j in 0..self.xs.len() {
            let dx = self.xs[j] - p.x;
            let dy = self.ys[j] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                return Err(j);
            }
            let e = k.attenuation(d2) * self.powers[j];
            acc.add(e);
            if e > best_energy {
                best_energy = e;
                best = j;
            }
        }
        Ok(Scan {
            total: acc.value(),
            best,
            best_energy,
        })
    }

    /// Energy of station `i` and the total energy, in one pass.
    /// `Err(j)` when `p` coincides with station `j`.
    #[inline]
    fn energy_and_total<K: PathLoss>(&self, k: K, i: usize, p: Point) -> Result<(f64, f64), usize> {
        let mut acc = KahanSum::new();
        let mut e_i = 0.0;
        for j in 0..self.xs.len() {
            let dx = self.xs[j] - p.x;
            let dy = self.ys[j] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                return Err(j);
            }
            let e = k.attenuation(d2) * self.powers[j];
            acc.add(e);
            if j == i {
                e_i = e;
            }
        }
        Ok((e_i, acc.value()))
    }

    #[inline]
    fn locate_with<K: PathLoss>(&self, k: K, p: Point) -> Located {
        match self.scan(k, p) {
            // At a station's own position reception holds by the `{sᵢ}`
            // clause; for co-located stations the scalar ground truth
            // resolves to the first index, and `Err` carries exactly that.
            Err(j) => Located::Reception(StationId(j)),
            Ok(scan) => {
                let interference_plus_noise = (scan.total - scan.best_energy) + self.noise;
                // Division-free reception test: E ≥ β·(I + N). A
                // non-positive denominator means the interference
                // underflowed to zero with no noise — SINR is +∞.
                if interference_plus_noise <= 0.0
                    || scan.best_energy >= self.beta * interference_plus_noise
                {
                    Located::Reception(StationId(scan.best))
                } else {
                    Located::Silent
                }
            }
        }
    }

    /// Decides reception for the single candidate station `i` (the
    /// [`VoronoiAssisted`] path — `i` must be the maximum-energy station).
    #[inline]
    fn locate_candidate_with<K: PathLoss>(&self, k: K, i: usize, p: Point) -> Located {
        match self.energy_and_total(k, i, p) {
            Err(j) => Located::Reception(StationId(j)),
            Ok((e_i, total)) => {
                let interference_plus_noise = (total - e_i) + self.noise;
                if interference_plus_noise <= 0.0 || e_i >= self.beta * interference_plus_noise {
                    Located::Reception(StationId(i))
                } else {
                    Located::Silent
                }
            }
        }
    }

    /// SINR of station `i` at `p`, matching [`crate::sinr::sinr`]'s
    /// conventions for points coinciding with stations.
    ///
    /// Unlike the `locate` kernels, the interference is summed directly
    /// over `j ≠ i` rather than derived as `total − eᵢ`: close to `sᵢ`
    /// the energy dominates the total and the subtraction would cancel
    /// catastrophically. (The `locate` decision is immune — cancellation
    /// is only severe when `eᵢ ≫ I`, which is far from the `β`
    /// boundary — but reported SINR values must be accurate everywhere.)
    #[inline]
    fn sinr_with<K: PathLoss>(&self, k: K, i: usize, p: Point) -> f64 {
        let mut acc = KahanSum::new();
        let mut e_i = 0.0;
        for j in 0..self.xs.len() {
            let dx = self.xs[j] - p.x;
            let dy = self.ys[j] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                // `p` is at station `j`. At `sᵢ` itself the SINR is +∞
                // unless an interferer is co-located (then 0); at another
                // station the interference is +∞, so the SINR is 0.
                if j != i && (self.xs[j] != self.xs[i] || self.ys[j] != self.ys[i]) {
                    return 0.0;
                }
                let colocated = (0..self.xs.len())
                    .any(|m| m != i && self.xs[m] == self.xs[i] && self.ys[m] == self.ys[i]);
                return if colocated { 0.0 } else { f64::INFINITY };
            }
            let e = k.attenuation(d2) * self.powers[j];
            if j == i {
                e_i = e;
            } else {
                acc.add(e);
            }
        }
        let denom = acc.value() + self.noise;
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            e_i / denom
        }
    }

    /// Who (if anyone) is heard at `p` — the `O(n)` single-pass answer,
    /// equivalent to the scalar [`crate::sinr::heard_at`].
    pub fn locate(&self, p: Point) -> Located {
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => ev.locate_with(k, p),
            DynKernel::General(k) => ev.locate_with(k, p),
        })
    }

    /// The SINR of station `i` at `p`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn sinr(&self, i: StationId, p: Point) -> f64 {
        assert!(i.0 < self.len(), "station {i} out of range");
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => ev.sinr_with(k, i.0, p),
            DynKernel::General(k) => ev.sinr_with(k, i.0, p),
        })
    }

    /// Batched [`SinrEvaluator::locate`]: answers are written into `out`,
    /// chunked across cores for large batches.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    pub fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => batch_map(points, out, |p| ev.locate_with(k, *p)),
            DynKernel::General(k) => batch_map(points, out, |p| ev.locate_with(k, *p)),
        });
    }

    /// Batched [`SinrEvaluator::sinr`] for one station across many points.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slice lengths differ.
    pub fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        assert!(i.0 < self.len(), "station {i} out of range");
        self.with_kernel(|ev, k| match k {
            DynKernel::Square(k) => batch_map(points, out, |p| ev.sinr_with(k, i.0, *p)),
            DynKernel::General(k) => batch_map(points, out, |p| ev.sinr_with(k, i.0, *p)),
        });
    }
}

/// Runtime kernel choice, resolved once per call (not once per point).
#[derive(Clone, Copy)]
enum DynKernel {
    Square(InverseSquare),
    General(GeneralAlpha),
}

/// The backend-independent query interface: one network, many points.
///
/// Implementations: [`ExactScan`], [`VoronoiAssisted`] (this crate) and
/// the Theorem-3 `PointLocator` (`sinr-pointloc`). All three agree with
/// the scalar ground truth [`crate::sinr::heard_at`] wherever they answer
/// definitely; only approximate backends may answer
/// [`Located::Uncertain`].
pub trait QueryEngine {
    /// Who (if anyone) is heard at `p`?
    fn locate(&self, p: Point) -> Located;

    /// Batched [`QueryEngine::locate`]: `out[k]` receives the answer for
    /// `points[k]`.
    ///
    /// The default implementation is a serial loop; the provided backends
    /// override it with chunked parallel iteration.
    ///
    /// # Panics
    ///
    /// Panics if `points` and `out` have different lengths.
    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        assert_eq!(
            points.len(),
            out.len(),
            "locate_batch: {} points but {} output slots",
            points.len(),
            out.len()
        );
        for (p, slot) in points.iter().zip(out.iter_mut()) {
            *slot = self.locate(*p);
        }
    }

    /// The SINR of station `i` at each point, written into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or the slice lengths differ.
    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]);
}

/// The exact linear-scan backend: one amortized SoA pass per point.
///
/// Exact for **every** network (any power assignment, any `α`, any `β`).
/// This is the engine-shaped replacement of the naive per-station loop:
/// same answers, `O(n)` instead of `O(n²)` per point.
#[derive(Debug, Clone)]
pub struct ExactScan {
    eval: SinrEvaluator,
}

impl ExactScan {
    /// Builds the backend for a network.
    pub fn new(net: &Network) -> Self {
        ExactScan {
            eval: SinrEvaluator::new(net),
        }
    }

    /// Wraps an already-built evaluator.
    pub fn from_evaluator(eval: SinrEvaluator) -> Self {
        ExactScan { eval }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &SinrEvaluator {
        &self.eval
    }
}

impl QueryEngine for ExactScan {
    fn locate(&self, p: Point) -> Located {
        self.eval.locate(p)
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.eval.locate_batch(points, out);
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }
}

/// The Observation-2.2 backend: kd-tree nearest-station dispatch.
///
/// For uniform power the maximum-energy station *is* the nearest station,
/// so each query needs one `O(log n)` proximity search plus a single
/// interference sum — no argmax bookkeeping in the hot loop. Exact for
/// all `β` (for `β ≤ 1` the strongest heard station is the nearest one,
/// by the same monotonicity as [`SinrEvaluator`]).
///
/// For non-uniform power the nearest station need not be the strongest,
/// so construction transparently falls back to the exact scan.
#[derive(Debug, Clone)]
pub struct VoronoiAssisted {
    eval: SinrEvaluator,
    /// `None` ⇒ non-uniform power ⇒ exact-scan fallback.
    tree: Option<KdTree>,
}

impl VoronoiAssisted {
    /// Builds the backend: `O(n log n)` for the kd-tree.
    pub fn new(net: &Network) -> Self {
        let eval = SinrEvaluator::new(net);
        let tree = eval
            .is_uniform_power()
            .then(|| KdTree::build(net.positions().to_vec()));
        VoronoiAssisted { eval, tree }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &SinrEvaluator {
        &self.eval
    }

    /// True when queries dispatch through the kd-tree (uniform power);
    /// false when the backend is running on the exact-scan fallback.
    pub fn uses_proximity_dispatch(&self) -> bool {
        self.tree.is_some()
    }

    #[inline]
    fn locate_via_tree<K: PathLoss>(&self, k: K, tree: &KdTree, p: Point) -> Located {
        let (nearest, dist) = tree.nearest(p).expect("n ≥ 2 stations");
        if dist == 0.0 {
            // At a station's position: reception by the `{sᵢ}` clause (the
            // kd-tree breaks co-location ties toward the smallest index,
            // matching the scalar ground truth).
            return Located::Reception(StationId(nearest));
        }
        self.eval.locate_candidate_with(k, nearest, p)
    }
}

impl QueryEngine for VoronoiAssisted {
    fn locate(&self, p: Point) -> Located {
        match &self.tree {
            None => self.eval.locate(p),
            Some(tree) => self.eval.with_kernel(|_, k| match k {
                DynKernel::Square(k) => self.locate_via_tree(k, tree, p),
                DynKernel::General(k) => self.locate_via_tree(k, tree, p),
            }),
        }
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        match &self.tree {
            None => self.eval.locate_batch(points, out),
            Some(tree) => self.eval.with_kernel(|_, k| match k {
                DynKernel::Square(k) => {
                    batch_map(points, out, |p| self.locate_via_tree(k, tree, *p))
                }
                DynKernel::General(k) => {
                    batch_map(points, out, |p| self.locate_via_tree(k, tree, *p))
                }
            }),
        }
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        self.eval.sinr_batch(i, points, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinr;

    fn nets() -> Vec<Network> {
        vec![
            // Uniform, β > 1, no noise.
            Network::uniform(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(4.0, 0.0),
                    Point::new(1.0, 3.0),
                ],
                0.0,
                2.0,
            )
            .unwrap(),
            // Uniform, β < 1, noisy.
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 0.4).unwrap(),
            // Non-uniform power.
            Network::builder()
                .station_with_power(Point::new(0.0, 0.0), 4.0)
                .station(Point::new(3.0, 0.0))
                .station_with_power(Point::new(0.0, 5.0), 0.5)
                .background_noise(0.01)
                .threshold(1.5)
                .build()
                .unwrap(),
            // α = 4.
            Network::builder()
                .station(Point::new(0.0, 0.0))
                .station(Point::new(4.0, 1.0))
                .path_loss(4.0)
                .threshold(2.0)
                .build()
                .unwrap(),
            // Co-located pair plus a third station.
            Network::uniform(
                vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
                0.0,
                2.0,
            )
            .unwrap(),
        ]
    }

    fn grid_points(half: f64, steps: i32) -> Vec<Point> {
        let mut pts = Vec::new();
        for a in -steps..=steps {
            for b in -steps..=steps {
                pts.push(Point::new(
                    a as f64 * half / steps as f64,
                    b as f64 * half / steps as f64,
                ));
            }
        }
        pts
    }

    #[test]
    fn exact_scan_matches_scalar_ground_truth() {
        for net in nets() {
            let engine = ExactScan::new(&net);
            for p in grid_points(6.0, 25) {
                let expected = sinr::heard_at(&net, p);
                assert_eq!(
                    engine.locate(p).station(),
                    expected,
                    "ExactScan disagrees at {p} in {net}"
                );
            }
        }
    }

    #[test]
    fn voronoi_assisted_matches_scalar_ground_truth() {
        for net in nets() {
            let engine = VoronoiAssisted::new(&net);
            assert_eq!(engine.uses_proximity_dispatch(), net.is_uniform_power());
            for p in grid_points(6.0, 25) {
                let expected = sinr::heard_at(&net, p);
                assert_eq!(
                    engine.locate(p).station(),
                    expected,
                    "VoronoiAssisted disagrees at {p} in {net}"
                );
            }
        }
    }

    #[test]
    fn station_positions_locate_as_reception() {
        for net in nets() {
            for engine in [
                Box::new(ExactScan::new(&net)) as Box<dyn QueryEngine>,
                Box::new(VoronoiAssisted::new(&net)),
            ] {
                for i in net.ids() {
                    let got = engine.locate(net.position(i));
                    match got {
                        Located::Reception(_) => {}
                        other => panic!("station {i} of {net}: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn batch_agrees_with_scalar_calls_and_parallelizes() {
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(4.0, 0.0),
                Point::new(1.0, 3.0),
            ],
            0.01,
            1.5,
        )
        .unwrap();
        let engine = VoronoiAssisted::new(&net);
        // Above PARALLEL_BATCH_THRESHOLD so the chunked path runs.
        let points = grid_points(5.0, 40);
        assert!(points.len() > PARALLEL_BATCH_THRESHOLD);
        let mut batch = vec![Located::Silent; points.len()];
        engine.locate_batch(&points, &mut batch);
        for (p, got) in points.iter().zip(&batch) {
            assert_eq!(*got, engine.locate(*p), "batch/scalar mismatch at {p}");
        }
    }

    #[test]
    fn sinr_batch_matches_scalar_sinr() {
        for net in nets() {
            let eval = SinrEvaluator::new(&net);
            let points = grid_points(5.0, 12);
            let mut out = vec![0.0; points.len()];
            for i in net.ids() {
                eval.sinr_batch(i, &points, &mut out);
                for (p, got) in points.iter().zip(&out) {
                    let expected = sinr::sinr(&net, i, *p);
                    if expected.is_infinite() {
                        assert!(got.is_infinite(), "{i} at {p}: {got} vs ∞");
                    } else {
                        assert!(
                            (got - expected).abs() <= 1e-9 * (1.0 + expected.abs()),
                            "{i} at {p}: {got} vs {expected}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn evaluator_accessors() {
        let net = Network::builder()
            .station_with_power(Point::new(1.0, 2.0), 3.0)
            .station(Point::new(-1.0, 0.5))
            .background_noise(0.07)
            .threshold(2.5)
            .path_loss(3.0)
            .build()
            .unwrap();
        let eval = SinrEvaluator::new(&net);
        assert_eq!(eval.len(), 2);
        assert!(!eval.is_empty());
        assert_eq!(eval.beta(), 2.5);
        assert_eq!(eval.noise(), 0.07);
        assert_eq!(eval.alpha(), 3.0);
        assert!(!eval.is_uniform_power());
        assert_eq!(eval.position(StationId(0)), Point::new(1.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "batch_map")]
    fn mismatched_batch_lengths_panic() {
        let net = Network::uniform(vec![Point::ORIGIN, Point::new(1.0, 0.0)], 0.0, 2.0).unwrap();
        let engine = ExactScan::new(&net);
        let mut out = vec![Located::Silent; 3];
        engine.locate_batch(&[Point::ORIGIN], &mut out);
    }

    #[test]
    fn batch_map_parallel_and_serial_agree() {
        let inputs: Vec<u64> = (0..10_000).collect();
        let mut out = vec![0u64; inputs.len()];
        batch_map(&inputs, &mut out, |x| x * 3 + 1);
        assert!(inputs.iter().zip(&out).all(|(x, y)| *y == x * 3 + 1));
        let small: Vec<u64> = (0..7).collect();
        let mut small_out = vec![0u64; 7];
        batch_map(&small, &mut small_out, |x| x + 1);
        assert_eq!(small_out, vec![1, 2, 3, 4, 5, 6, 7]);
    }
}
