//! Transmit-power assignments.
//!
//! The paper's headline results (Theorems 1–3) are for *uniform power
//! networks* — `ψ = 1̄` — while the model itself (and the open problems of
//! Section 1.4) allows per-station powers. [`PowerAssignment`] captures
//! both so the evaluation machinery works in general, and the theorem-level
//! code can check `is_uniform()` before promising convexity.

/// A power assignment `ψ` for the stations of a network.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum PowerAssignment {
    /// Every station transmits with power 1 (the paper's `1̄`).
    #[default]
    Uniform,
    /// Station `i` transmits with power `powers[i] > 0`.
    PerStation(Vec<f64>),
}

impl PowerAssignment {
    /// The power of station `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for a per-station assignment.
    #[inline]
    pub fn power(&self, i: usize) -> f64 {
        match self {
            PowerAssignment::Uniform => 1.0,
            PowerAssignment::PerStation(v) => v[i],
        }
    }

    /// True when all stations share power 1 (or the per-station vector is
    /// constantly 1).
    pub fn is_uniform(&self) -> bool {
        match self {
            PowerAssignment::Uniform => true,
            PowerAssignment::PerStation(v) => v.iter().all(|&p| p == 1.0),
        }
    }

    /// Validates the assignment against a network of `n` stations.
    ///
    /// Returns an error message when lengths mismatch or a power is not
    /// strictly positive and finite.
    pub fn validate(&self, n: usize) -> Result<(), String> {
        match self {
            PowerAssignment::Uniform => Ok(()),
            PowerAssignment::PerStation(v) => {
                if v.len() != n {
                    return Err(format!(
                        "power vector has {} entries for {} stations",
                        v.len(),
                        n
                    ));
                }
                for (i, &p) in v.iter().enumerate() {
                    if !(p > 0.0 && p.is_finite()) {
                        return Err(format!("power of station {i} must be positive, got {p}"));
                    }
                }
                Ok(())
            }
        }
    }

    /// The assignment restricted to the stations selected by `keep`
    /// (used when silencing or removing stations).
    pub fn filtered(&self, keep: &[bool]) -> PowerAssignment {
        match self {
            PowerAssignment::Uniform => PowerAssignment::Uniform,
            PowerAssignment::PerStation(v) => PowerAssignment::PerStation(
                v.iter()
                    .zip(keep.iter())
                    .filter_map(|(p, k)| k.then_some(*p))
                    .collect(),
            ),
        }
    }

    /// Removes station `i` by swap-remove (the last station takes index
    /// `i`), matching the index surgery of
    /// [`Network::remove_station`](crate::Network::remove_station).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for a per-station assignment.
    pub fn swap_remove(&mut self, i: usize) {
        if let PowerAssignment::PerStation(v) = self {
            v.swap_remove(i);
        }
    }

    /// Sets the power of station `i` to `p` in a network of `n` stations,
    /// materializing the per-station vector when a uniform assignment
    /// becomes non-uniform. (A vector that returns to all-ones still
    /// reports [`PowerAssignment::is_uniform`] as `true`.)
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn set(&mut self, i: usize, p: f64, n: usize) {
        assert!(i < n, "station {i} out of range for {n} stations");
        match self {
            PowerAssignment::Uniform => {
                if p != 1.0 {
                    let mut v = vec![1.0; n];
                    v[i] = p;
                    *self = PowerAssignment::PerStation(v);
                }
            }
            PowerAssignment::PerStation(v) => v[i] = p,
        }
    }

    /// The assignment with one more station of power `p` appended.
    pub fn extended(&self, n: usize, p: f64) -> PowerAssignment {
        if p == 1.0 && self.is_uniform() {
            return PowerAssignment::Uniform;
        }
        let mut v: Vec<f64> = (0..n).map(|i| self.power(i)).collect();
        v.push(p);
        PowerAssignment::PerStation(v)
    }
}

impl From<Vec<f64>> for PowerAssignment {
    fn from(v: Vec<f64>) -> Self {
        PowerAssignment::PerStation(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_basics() {
        let u = PowerAssignment::Uniform;
        assert_eq!(u.power(0), 1.0);
        assert_eq!(u.power(99), 1.0);
        assert!(u.is_uniform());
        assert!(u.validate(5).is_ok());
    }

    #[test]
    fn per_station() {
        let p = PowerAssignment::PerStation(vec![1.0, 2.0, 0.5]);
        assert_eq!(p.power(1), 2.0);
        assert!(!p.is_uniform());
        assert!(p.validate(3).is_ok());
        assert!(p.validate(2).is_err());
        // all-ones per-station counts as uniform
        let ones = PowerAssignment::PerStation(vec![1.0, 1.0]);
        assert!(ones.is_uniform());
    }

    #[test]
    fn invalid_powers_rejected() {
        assert!(PowerAssignment::PerStation(vec![1.0, 0.0])
            .validate(2)
            .is_err());
        assert!(PowerAssignment::PerStation(vec![1.0, -3.0])
            .validate(2)
            .is_err());
        assert!(PowerAssignment::PerStation(vec![f64::NAN, 1.0])
            .validate(2)
            .is_err());
        assert!(PowerAssignment::PerStation(vec![f64::INFINITY])
            .validate(1)
            .is_err());
    }

    #[test]
    fn swap_remove_and_set() {
        let mut p = PowerAssignment::PerStation(vec![1.0, 2.0, 3.0]);
        p.swap_remove(0);
        assert_eq!(p, PowerAssignment::PerStation(vec![3.0, 2.0]));
        let mut u = PowerAssignment::Uniform;
        u.swap_remove(1);
        assert!(u.is_uniform());
        // set: uniform stays uniform for p = 1, materializes otherwise
        u.set(0, 1.0, 2);
        assert_eq!(u, PowerAssignment::Uniform);
        u.set(1, 2.5, 2);
        assert_eq!(u, PowerAssignment::PerStation(vec![1.0, 2.5]));
        u.set(1, 1.0, 2);
        assert!(u.is_uniform());
    }

    #[test]
    fn filtering_and_extension() {
        let p = PowerAssignment::PerStation(vec![1.0, 2.0, 3.0]);
        let f = p.filtered(&[true, false, true]);
        assert_eq!(f, PowerAssignment::PerStation(vec![1.0, 3.0]));
        let u = PowerAssignment::Uniform.filtered(&[true, false]);
        assert!(u.is_uniform());
        // extension
        let e = PowerAssignment::Uniform.extended(2, 1.0);
        assert!(e.is_uniform());
        let e = PowerAssignment::Uniform.extended(2, 4.0);
        assert_eq!(e, PowerAssignment::PerStation(vec![1.0, 1.0, 4.0]));
    }
}
