//! Energy, interference and SINR evaluation (Eq. (1) of the paper).
//!
//! The functions here are the numeric ground truth of the whole workspace:
//! the characteristic polynomials of [`crate::charpoly`], the zone geometry
//! of [`crate::zone`] and the point-location structure all validate
//! against direct evaluation of these formulas.
//!
//! ## Points coinciding with stations
//!
//! `SINR(sᵢ, ·)` is undefined at station locations (the paper handles this
//! by defining `Hᵢ` as `{p ∉ S : SINR ≥ β} ∪ {sᵢ}`). We adopt limits that
//! realise the same zones: at `p = sᵢ` the energy of `sᵢ` is `+∞` and its
//! SINR is `+∞` (heard); at `p = sⱼ (j ≠ i)` the interference is `+∞` and
//! the SINR of `sᵢ` is `0` (not heard, unless `sᵢ` is co-located too, in
//! which case membership follows from the `{sᵢ}` clause).

use crate::network::Network;
use crate::station::StationId;
use sinr_algebra::KahanSum;
use sinr_geometry::Point;

/// Received energy `E(sᵢ, p) = ψᵢ · dist(sᵢ, p)^{−α}`.
///
/// Returns `+∞` when `p` coincides with the station.
pub fn energy(net: &Network, i: StationId, p: Point) -> f64 {
    let d2 = net.position(i).dist_sq(p);
    if d2 == 0.0 {
        return f64::INFINITY;
    }
    let alpha = net.alpha();
    let attenuation = if alpha == 2.0 {
        d2
    } else {
        d2.powf(alpha / 2.0)
    };
    net.power(i) / attenuation
}

/// Energy of a set of stations at `p`: `E(T, p) = Σ_{i ∈ T} E(sᵢ, p)`.
pub fn energy_of_set<I: IntoIterator<Item = StationId>>(net: &Network, set: I, p: Point) -> f64 {
    let mut acc = KahanSum::new();
    for i in set {
        let e = energy(net, i, p);
        if e.is_infinite() {
            return f64::INFINITY;
        }
        acc.add(e);
    }
    acc.value()
}

/// Interference to `sᵢ` at `p`: the energy of all *other* stations,
/// `I(sᵢ, p) = E(S − {sᵢ}, p)`.
pub fn interference(net: &Network, i: StationId, p: Point) -> f64 {
    energy_of_set(net, net.ids().filter(|j| *j != i), p)
}

/// The signal-to-interference-&-noise ratio of `sᵢ` at `p` — Eq. (1):
///
/// ```text
/// SINR(sᵢ, p) = ψᵢ·dist(sᵢ,p)^{−α} / (Σ_{j≠i} ψⱼ·dist(sⱼ,p)^{−α} + N)
/// ```
///
/// Always positive; `+∞` exactly at `p = sᵢ` (when not co-located with an
/// interferer), `0` at other stations' locations.
pub fn sinr(net: &Network, i: StationId, p: Point) -> f64 {
    let e = energy(net, i, p);
    let intf = interference(net, i, p);
    if e.is_infinite() {
        if intf.is_infinite() {
            // Co-located with an interferer: the ratio has no limit; zero
            // is the conservative choice (reception decided by the {sᵢ}
            // clause in `is_heard`).
            return 0.0;
        }
        return f64::INFINITY;
    }
    if intf.is_infinite() {
        return 0.0;
    }
    e / (intf + net.noise())
}

/// The fundamental rule of the SINR model: `sᵢ` is heard at `p` iff
/// `SINR(sᵢ, p) ≥ β` (with `sᵢ ∈ Hᵢ` by definition).
pub fn is_heard(net: &Network, i: StationId, p: Point) -> bool {
    if p == net.position(i) {
        return true; // the {sᵢ} clause of the zone definition
    }
    sinr(net, i, p) >= net.beta()
}

/// The station heard at `p`, if any (the strongest one when `β ≤ 1`
/// permits several; unique automatically when `β > 1`).
///
/// This is the scalar `O(n²)` ground truth; for batched queries build a
/// [`crate::engine::QueryEngine`] backend instead (`O(n)` per point).
pub fn heard_at(net: &Network, p: Point) -> Option<StationId> {
    let mut best: Option<(StationId, f64)> = None;
    for i in net.ids() {
        // One SINR evaluation per station, reused for both the reception
        // test and the strongest-station comparison. The `{sᵢ}` clause of
        // `is_heard` is preserved by checking the position directly.
        let v = sinr(net, i, p);
        if v >= net.beta() || p == net.position(i) {
            match best {
                Some((_, b)) if b >= v => {}
                _ => best = Some((i, v)),
            }
        }
    }
    best.map(|(i, _)| i)
}

/// Evaluates the *reciprocal* SINR `f(x)` of Lemma 3.1 along the segment
/// from `sᵢ` towards `p`, at relative position `x ∈ (0, 1]` (so `x = 1` is
/// `p` itself). Strictly increasing in `x` when `SINR(sᵢ, p) ≥ 1` — the
/// monotonicity that makes zone boundaries ray-shootable.
pub fn reciprocal_sinr_along(net: &Network, i: StationId, p: Point, x: f64) -> f64 {
    debug_assert!(x > 0.0 && x <= 1.0);
    let q = net.position(i).lerp(p, x);
    1.0 / sinr(net, i, q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;

    fn net2(beta: f64, noise: f64) -> Network {
        Network::uniform(
            vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)],
            noise,
            beta,
        )
        .unwrap()
    }

    #[test]
    fn energy_inverse_square() {
        let net = net2(1.0, 0.0);
        let s0 = StationId(0);
        assert_eq!(energy(&net, s0, Point::new(1.0, 0.0)), 1.0);
        assert_eq!(energy(&net, s0, Point::new(2.0, 0.0)), 0.25);
        assert_eq!(energy(&net, s0, Point::new(0.0, 3.0)), 1.0 / 9.0);
        assert!(energy(&net, s0, Point::ORIGIN).is_infinite());
    }

    #[test]
    fn energy_general_alpha() {
        let net = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(4.0, 0.0))
            .path_loss(4.0)
            .build()
            .unwrap();
        // α = 4: energy at distance 2 is 1/16.
        assert!((energy(&net, StationId(0), Point::new(2.0, 0.0)) - 1.0 / 16.0).abs() < 1e-15);
    }

    #[test]
    fn sinr_symmetric_point() {
        // At the midpoint of two equal stations, SINR = 1 for both.
        let net = net2(1.0, 0.0);
        let mid = Point::new(2.0, 0.0);
        assert!((sinr(&net, StationId(0), mid) - 1.0).abs() < 1e-12);
        assert!((sinr(&net, StationId(1), mid) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reception_two_stations() {
        // β = 2, stations at 0 and 4: s0 is heard where d1/d0 ≥ √2.
        let net = net2(2.0, 0.0);
        let s0 = StationId(0);
        assert!(is_heard(&net, s0, Point::new(1.0, 0.0))); // d1/d0 = 3
        assert!(!is_heard(&net, s0, Point::new(2.0, 0.0))); // ratio 1
                                                            // boundary: x/(4−x) = 1/√2 ⇒ x = 4/(1+√2) ≈ 1.6569
        let xb = 4.0 / (1.0 + 2f64.sqrt());
        assert!(is_heard(&net, s0, Point::new(xb - 1e-9, 0.0)));
        assert!(!is_heard(&net, s0, Point::new(xb + 1e-9, 0.0)));
    }

    #[test]
    fn noise_shrinks_reception() {
        let quiet = net2(2.0, 0.0);
        let noisy = net2(2.0, 0.5);
        let p = Point::new(1.2, 0.0);
        assert!(sinr(&noisy, StationId(0), p) < sinr(&quiet, StationId(0), p));
    }

    #[test]
    fn station_locations() {
        let net = net2(2.0, 0.0);
        // At s0: s0 heard (the {s_i} clause), s1 not.
        assert!(is_heard(&net, StationId(0), Point::ORIGIN));
        assert!(!is_heard(&net, StationId(1), Point::ORIGIN));
        assert_eq!(sinr(&net, StationId(1), Point::ORIGIN), 0.0);
        assert!(sinr(&net, StationId(0), Point::ORIGIN).is_infinite());
    }

    #[test]
    fn colocated_stations() {
        let net = Network::uniform(
            vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
            0.0,
            2.0,
        )
        .unwrap();
        // Two stations at the origin jam each other everywhere...
        assert!(!is_heard(&net, StationId(0), Point::new(1.0, 0.0)));
        // ...but each still "hears itself" at its own location by definition.
        assert!(is_heard(&net, StationId(0), Point::ORIGIN));
        assert_eq!(sinr(&net, StationId(0), Point::ORIGIN), 0.0);
    }

    #[test]
    fn heard_at_unique_when_beta_over_one() {
        let net = net2(2.0, 0.0);
        assert_eq!(heard_at(&net, Point::new(0.5, 0.0)), Some(StationId(0)));
        assert_eq!(heard_at(&net, Point::new(3.5, 0.0)), Some(StationId(1)));
        assert_eq!(heard_at(&net, Point::new(2.0, 0.0)), None);
        // β > 1 ⇒ at most one station heard anywhere: scan a grid.
        for i in -20..20 {
            for j in -20..20 {
                let p = Point::new(i as f64 * 0.35, j as f64 * 0.35);
                let n = net.ids().filter(|s| is_heard(&net, *s, p)).count();
                assert!(n <= 1, "two stations heard at {p}");
            }
        }
    }

    #[test]
    fn heard_at_strongest_when_beta_below_one() {
        // β = 0.4: near the midpoint both stations clear the threshold;
        // heard_at returns the stronger.
        let net = net2(0.4, 0.0);
        let p = Point::new(1.9, 0.0);
        let both = net.ids().filter(|s| is_heard(&net, *s, p)).count();
        assert_eq!(both, 2);
        assert_eq!(heard_at(&net, p), Some(StationId(0)));
    }

    #[test]
    fn kahan_interference_many_stations() {
        // 1000 far stations with tiny energies: compensated summation keeps
        // the interference accurate.
        let mut b = Network::builder().threshold(2.0);
        b = b.station(Point::ORIGIN);
        for k in 0..1000 {
            let angle = k as f64 * 0.01 * std::f64::consts::PI;
            b = b.station(Point::new(1e4 * angle.cos(), 1e4 * angle.sin()));
        }
        let net = b.build().unwrap();
        let intf = interference(&net, StationId(0), Point::new(0.1, 0.0));
        // Each distant station contributes ≈ 1e-8; total ≈ 1e-5.
        assert!(intf > 0.9e-5 && intf < 1.1e-5, "interference {intf}");
    }

    #[test]
    fn lemma_3_1_monotonicity_spot_check() {
        // The reciprocal SINR f(x) is strictly increasing along s0→p when
        // SINR(s0, p) ≥ 1.
        let net = Network::uniform(
            vec![
                Point::new(0.0, 0.0),
                Point::new(5.0, 1.0),
                Point::new(-3.0, 4.0),
            ],
            0.02,
            1.0,
        )
        .unwrap();
        let p = Point::new(0.8, -0.3);
        assert!(sinr(&net, StationId(0), p) >= 1.0, "precondition");
        let mut last = 0.0;
        for k in 1..=20 {
            let x = k as f64 / 20.0;
            let f = reciprocal_sinr_along(&net, StationId(0), p, x);
            assert!(f > last, "f({x}) = {f} not increasing past {last}");
            last = f;
        }
    }
}
