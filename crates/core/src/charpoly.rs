//! The characteristic polynomial `Hᵢ(x, y)` of a reception zone
//! (paper, Section 2.2) and its restriction to lines and segments.
//!
//! For a network `⟨S, ψ, N, β⟩` with path loss `α = 2`, write
//! `D_k(x, y) = (a_k − x)² + (b_k − y)²` for the squared distance to
//! station `k`. Rearranging `SINR(sᵢ, p) ≥ β` over the common denominator
//! `Π_k D_k` gives: station `sᵢ` is heard at `p = (x, y)` iff
//!
//! ```text
//! Hᵢ(x,y) = β·Σ_{j≠i} ψⱼ·Π_{k≠j} D_k  +  β·N·Π_k D_k  −  ψᵢ·Π_{k≠i} D_k  ≤ 0 .
//! ```
//!
//! (The paper's displayed formula omits the factor `β` on the noise term;
//! the factor is algebraically required — multiplying the reception
//! inequality through by the positive `Π_k D_k` carries `β` onto both
//! interference and noise — and our tests verify this form agrees with
//! direct SINR evaluation everywhere.)
//!
//! `Hᵢ` has degree `2n` (degree `2n − 2` when `N = 0`). Restricted to a
//! parametrised line it becomes a univariate polynomial whose sign pattern
//! encodes reception along the line — the object consumed by the Sturm
//! segment test of Section 5.1 and by the line-intersection convexity
//! check of Lemma 2.1.
//!
//! ## Fast restricted construction
//!
//! Building the full bivariate `Hᵢ` costs `O(n⁴)` coefficient work and is
//! only viable for small `n`; the segment test needs the *restriction*
//! only. We therefore build the univariate restriction directly in
//! `O(n²)`:
//!
//! 1. restrict each `D_k` to the line — a quadratic `D_k(t)`;
//! 2. normalise each quadratic by its max-|coefficient| `λ_k` (all the
//!    `λ_k` are positive, so dividing term `j` of `Hᵢ` by `Λ = Π λ_k`
//!    rescales `Hᵢ` by a positive constant — harmless for sign queries —
//!    provided each `ψⱼ` is replaced by `ψⱼ/λⱼ`);
//! 3. form `P̃ = Π_{k≠i} D̃_k` once, and recover each `Π_{k≠i,k≠j} D̃_k`
//!    by *deflation* (exact division of `P̃` by the quadratic `D̃ⱼ`),
//!    choosing forward or backward synthetic division per factor for
//!    numerical stability.

use crate::network::Network;
use crate::station::StationId;
use sinr_algebra::{BiPoly, Poly};
use sinr_geometry::{Point, Segment, Vector};

/// Quadratic restriction of `D_k` to the line `p(t) = origin + t·dir`:
/// `D_k(t) = |dir|²·t² + 2·dir·(origin − s_k)·t + |origin − s_k|²`.
fn dist_quadratic(origin: Point, dir: Vector, s: Point) -> [f64; 3] {
    let w = origin - s;
    [w.norm_sq(), 2.0 * dir.dot(w), dir.norm_sq()]
}

/// Deflates `p` by an exact quadratic factor `q = q0 + q1·t + q2·t²`,
/// returning the quotient and discarding the (theoretically zero)
/// remainder.
///
/// Chooses forward deflation (from the leading coefficient) when
/// `|q2| ≥ |q0|` and backward deflation (from the constant term)
/// otherwise; for the distance quadratics `|q1| ≤ 2√(q0·q2)`, so the
/// larger of the two end coefficients is always within a factor 2 of the
/// max — the division is well conditioned.
fn deflate_quadratic(p: &Poly, q: [f64; 3]) -> Poly {
    let n = match p.degree() {
        None => return Poly::zero(),
        Some(d) if d < 2 => return Poly::zero(),
        Some(d) => d,
    };
    let out_deg = n - 2;
    let mut out = vec![0.0; out_deg + 1];
    if q[2].abs() >= q[0].abs() {
        // Forward: peel from the top. p_k = Σ out_{k-2} q2 + out_{k-1} q1 + out_k q0
        // → iterate k from n down to 2: out_{k-2} = (p_k − out_{k-1}·q1 − out_k·q0)/q2
        // using out indices beyond out_deg as zero.
        for k in (2..=n).rev() {
            let a1 = if k - 1 <= out_deg { out[k - 1] } else { 0.0 };
            let a0 = if k <= out_deg { out[k] } else { 0.0 };
            out[k - 2] = (p.coeff(k) - a1 * q[1] - a0 * q[0]) / q[2];
        }
    } else {
        // Backward: peel from the bottom.
        // p_k = out_k q0 + out_{k-1} q1 + out_{k-2} q2  (out_j = 0 for j < 0)
        for k in 0..=out_deg {
            let a1 = if k >= 1 { out[k - 1] } else { 0.0 };
            let a2 = if k >= 2 { out[k - 2] } else { 0.0 };
            out[k] = (p.coeff(k) - a1 * q[1] - a2 * q[2]) / q[0];
        }
    }
    Poly::from_coeffs(out)
}

/// The restriction of the characteristic polynomial `Hᵢ` to the
/// parametrised line `p(t) = origin + t·dir`, up to a positive constant
/// factor.
///
/// The sign contract is exact: for any `t` with `p(t) ∉ S`,
/// `sᵢ` is heard at `p(t)` iff the returned polynomial is `≤ 0` at `t`.
/// With a segment's endpoints as `origin` and `origin + dir`, the
/// parameter range `[0, 1]` traces the segment — see
/// [`restricted_to_segment`].
///
/// # Panics
///
/// Panics if the network's path-loss exponent is not a (small) even
/// integer — the polynomial formulation exists only for even `α`; the
/// paper fixes `α = 2`, and even `α > 2` extends Section 1.4's open
/// problem with the same machinery (degree `α·n` instead of `2n`).
///
/// # Examples
///
/// ```
/// use sinr_core::{charpoly, Network, StationId};
/// use sinr_geometry::{Point, Vector};
///
/// let net = Network::uniform(
///     vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap();
/// // Along the x-axis, the boundary of H0 is where 2·x² = (4−x)².
/// let h = charpoly::restricted_to_line(&net, StationId(0), Point::ORIGIN, Vector::UNIT_X);
/// let boundary = 4.0 / (1.0 + 2f64.sqrt());
/// assert!(h.eval(boundary).abs() < 1e-9);
/// assert!(h.eval(boundary - 0.5) < 0.0); // inside H0
/// assert!(h.eval(boundary + 0.5) > 0.0); // outside
/// ```
pub fn restricted_to_line(net: &Network, i: StationId, origin: Point, dir: Vector) -> Poly {
    let m = even_alpha_half(net.alpha()).unwrap_or_else(|| {
        panic!(
            "characteristic polynomials require an even path-loss exponent (got α = {})",
            net.alpha()
        )
    });
    let n = net.len();
    let beta = net.beta();
    let noise = net.noise();

    // Degenerate direction: the "line" is a point; return the constant sign.
    if dir.norm_sq() == 0.0 {
        let heard = net.sinr(i, origin);
        // Positive ⇔ not heard, mirroring the H ≤ 0 convention.
        return Poly::constant(if heard >= beta { -1.0 } else { 1.0 });
    }

    // Normalised quadratics and their scales. With path loss α = 2m the
    // attenuation atom is D_k(t)^m; normalising D_k by λ_k scales the atom
    // by λ_k^m, so the power rescaling uses λ_k^m.
    let mut quads: Vec<[f64; 3]> = Vec::with_capacity(n);
    let mut scaled_power: Vec<f64> = Vec::with_capacity(n);
    for j in 0..n {
        let q = dist_quadratic(origin, dir, net.position(StationId(j)));
        let lambda = q[0].abs().max(q[1].abs()).max(q[2].abs());
        debug_assert!(lambda > 0.0, "dir ≠ 0 ⇒ q2 > 0");
        quads.push([q[0] / lambda, q[1] / lambda, q[2] / lambda]);
        scaled_power.push(net.power(StationId(j)) / lambda.powi(m as i32));
    }

    // P̃ = Π_{k≠i} D̃_k^m.
    let mut prod = Poly::one();
    for (k, q) in quads.iter().enumerate() {
        if k != i.0 {
            let atom = Poly::from_coeffs(vec![q[0], q[1], q[2]]).pow(m);
            prod = &prod * &atom;
        }
    }

    // Σ_{j≠i} (ψⱼ/λⱼ^m)·(P̃ / D̃ⱼ^m), deflating one quadratic factor at a
    // time (each deflation is well conditioned by the end-coefficient
    // choice).
    let mut interference_sum = Poly::zero();
    for (j, q) in quads.iter().enumerate() {
        if j == i.0 {
            continue;
        }
        let t_j = if n == 2 {
            Poly::one() // P̃ is exactly D̃ⱼ^m
        } else {
            let mut t = prod.clone();
            for _ in 0..m {
                t = deflate_quadratic(&t, *q);
            }
            t
        };
        interference_sum = &interference_sum + &t_j.scaled(scaled_power[j]);
    }

    let d_i = Poly::from_coeffs(vec![quads[i.0][0], quads[i.0][1], quads[i.0][2]]).pow(m);
    let mut h = &(&d_i * &interference_sum).scaled(beta) - &prod.scaled(scaled_power[i.0]);
    if noise > 0.0 {
        // β·N·(Π_k D_k^m)/Λ = β·N·D̃ᵢ^m·P̃, since D̃ᵢ^m·P̃ multiplies every
        // normalised atom exactly once.
        h = &h + &(&d_i * &prod).scaled(beta * noise);
    }
    h
}

/// Returns `m` when `alpha == 2m` for a positive integer `m`, else `None`.
fn even_alpha_half(alpha: f64) -> Option<u32> {
    let m = alpha / 2.0;
    if m >= 1.0 && m.fract() == 0.0 && m <= 16.0 {
        Some(m as u32)
    } else {
        None
    }
}

/// The restriction of `Hᵢ` to a segment, parametrised so that `t ∈ [0, 1]`
/// traces the segment from `seg.a` to `seg.b`. Same sign contract as
/// [`restricted_to_line`].
pub fn restricted_to_segment(net: &Network, i: StationId, seg: &Segment) -> Poly {
    restricted_to_line(net, i, seg.a, seg.direction())
}

/// The full bivariate characteristic polynomial `Hᵢ(x, y)` (reference
/// implementation, `O(n⁴)` coefficient work — intended for small `n`,
/// cross-validation and display; the segment test uses
/// [`restricted_to_line`] instead).
///
/// # Panics
///
/// Panics if the network's path-loss exponent is not `α = 2`.
pub fn char_bipoly(net: &Network, i: StationId) -> BiPoly {
    assert_eq!(
        net.alpha(),
        2.0,
        "characteristic polynomials require path-loss exponent α = 2 (got {})",
        net.alpha()
    );
    let n = net.len();
    let beta = net.beta();
    let quads: Vec<BiPoly> = net
        .positions()
        .iter()
        .map(|s| BiPoly::squared_distance(s.x, s.y))
        .collect();

    // All-but-one products via prefix/suffix tables.
    let mut prefix = vec![BiPoly::constant(1.0)];
    for q in &quads {
        let last = prefix.last().expect("non-empty").clone();
        prefix.push(last.mul(q));
    }
    let mut suffix = vec![BiPoly::constant(1.0); n + 1];
    for k in (0..n).rev() {
        suffix[k] = quads[k].mul(&suffix[k + 1]);
    }
    let all_but = |j: usize| prefix[j].mul(&suffix[j + 1]);

    let mut h = BiPoly::zero();
    for j in 0..n {
        if j == i.0 {
            continue;
        }
        h = h.add(&all_but(j).scaled(beta * net.power(StationId(j))));
    }
    if net.noise() > 0.0 {
        h = h.add(&prefix[n].scaled(beta * net.noise()));
    }
    h.sub(&all_but(i.0).scaled(net.power(i)))
}

/// The degree the characteristic polynomial should have: `α·n` with
/// noise, `α·(n − 1)` without (the paper's `2n` / `2n − 2` at `α = 2`,
/// Section 2.2).
pub fn expected_degree(net: &Network) -> usize {
    let alpha = net.alpha() as usize;
    if net.noise() > 0.0 {
        alpha * net.len()
    } else {
        alpha * (net.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use sinr_geometry::Segment;

    fn sample_net(n: usize, noise: f64, beta: f64) -> Network {
        // Deterministic pseudo-random station layout.
        let mut state: u64 = 0xABCDEF0 + n as u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 10.0 - 5.0
        };
        let pts: Vec<Point> = (0..n).map(|_| Point::new(next(), next())).collect();
        Network::uniform(pts, noise, beta).unwrap()
    }

    #[test]
    fn sign_contract_matches_reception_two_stations() {
        let net =
            Network::uniform(vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)], 0.0, 2.0).unwrap();
        let h = restricted_to_line(&net, StationId(0), Point::ORIGIN, Vector::UNIT_X);
        for k in 1..40 {
            let t = k as f64 * 0.1;
            let p = Point::new(t, 0.0);
            if p == net.position(StationId(1)) {
                continue;
            }
            let heard = net.is_heard(StationId(0), p);
            assert_eq!(h.eval(t) <= 0.0, heard, "mismatch at t={t}");
        }
    }

    #[test]
    fn degree_matches_paper() {
        for n in [2usize, 3, 5, 8] {
            let no_noise = sample_net(n, 0.0, 2.0);
            let h = restricted_to_line(&no_noise, StationId(0), Point::ORIGIN, Vector::UNIT_X);
            assert_eq!(h.degree(), Some(2 * n - 2), "n={n}, no noise");
            assert_eq!(expected_degree(&no_noise), 2 * n - 2);
            let noisy = sample_net(n, 0.05, 2.0);
            let h = restricted_to_line(&noisy, StationId(0), Point::ORIGIN, Vector::UNIT_X);
            assert_eq!(h.degree(), Some(2 * n), "n={n}, noisy");
            assert_eq!(expected_degree(&noisy), 2 * n);
        }
    }

    #[test]
    fn restriction_sign_matches_reception_random_networks() {
        for n in [2usize, 3, 4, 8, 16, 32] {
            for (noise, beta) in [(0.0, 1.5), (0.02, 2.0), (0.1, 6.0)] {
                let net = sample_net(n, noise, beta);
                for i in [0usize, n - 1] {
                    let seg = Segment::new(Point::new(-6.0, -2.5), Point::new(6.0, 3.0));
                    let h = restricted_to_segment(&net, StationId(i), &seg);
                    for k in 0..=60 {
                        let t = k as f64 / 60.0;
                        let p = seg.point_at(t);
                        let s = net.sinr(StationId(i), p);
                        // Skip knife-edge points where the sign is genuinely ambiguous.
                        if (s - beta).abs() < 1e-6 * beta {
                            continue;
                        }
                        // Skip points where |H(t)| is numerically
                        // indistinguishable from zero. Two error sources:
                        // Horner evaluation rounding (the bound below) and
                        // construction rounding from the deflations/sums
                        // (proportional to the polynomial's coefficient
                        // magnitude). Near-zero values occur legitimately
                        // when the line passes very close to a station and a
                        // D_k factor almost vanishes.
                        let (v, bound) = h.eval_with_error_bound(t);
                        let construction = 1e-10 * (1.0 + h.max_coeff_abs());
                        if v.abs() <= bound.max(construction) {
                            continue;
                        }
                        let heard = s >= beta;
                        assert_eq!(
                            v <= 0.0,
                            heard,
                            "n={n} noise={noise} beta={beta} i={i} t={t}: H={v}, SINR={s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn restriction_agrees_with_bipoly_reference() {
        for n in [2usize, 3, 5] {
            for noise in [0.0, 0.07] {
                let net = sample_net(n, noise, 1.8);
                let i = StationId(0);
                let big = char_bipoly(&net, i);
                let (origin, dir) = (Point::new(-1.0, 0.5), Vector::new(2.0, 1.0));
                let reference = big.restrict(origin.x, origin.y, dir.x, dir.y);
                let fast = restricted_to_line(&net, i, origin, dir);
                // Equal up to a positive constant: compare ratios at several points.
                let mut ratio: Option<f64> = None;
                for k in 0..10 {
                    let t = -1.0 + 0.37 * k as f64;
                    let (rv, fv) = (reference.eval(t), fast.eval(t));
                    if rv.abs() < 1e-9 || fv.abs() < 1e-12 {
                        continue;
                    }
                    let r = rv / fv;
                    assert!(r > 0.0, "ratio must be a positive constant, got {r}");
                    if let Some(prev) = ratio {
                        assert!(
                            (r - prev).abs() < 1e-6 * prev.abs(),
                            "non-constant ratio: {r} vs {prev} (n={n}, noise={noise})"
                        );
                    }
                    ratio = Some(r);
                }
                assert!(ratio.is_some(), "never compared");
            }
        }
    }

    #[test]
    fn bipoly_sign_matches_reception() {
        let net = sample_net(4, 0.05, 2.0);
        let i = StationId(2);
        let h = char_bipoly(&net, i);
        for gx in -8..8 {
            for gy in -8..8 {
                let p = Point::new(gx as f64 * 0.7, gy as f64 * 0.7);
                let s = net.sinr(i, p);
                if !s.is_finite() || (s - net.beta()).abs() < 1e-9 {
                    continue;
                }
                assert_eq!(h.eval(p.x, p.y) <= 0.0, s >= net.beta(), "at {p}");
            }
        }
    }

    #[test]
    fn deflation_recovers_cofactor() {
        // Deflating a product of quadratics by one factor recovers the rest.
        let q1 = [2.0, -1.0, 1.0];
        let q2 = [5.0, 0.5, 3.0];
        let q3 = [0.25, 0.1, 0.004]; // near-degenerate leading coeff: backward path
        let p1 = Poly::from_coeffs(q1.to_vec());
        let p2 = Poly::from_coeffs(q2.to_vec());
        let p3 = Poly::from_coeffs(q3.to_vec());
        let prod = &(&p1 * &p2) * &p3;
        for (q, rest) in [(q1, &p2 * &p3), (q2, &p1 * &p3), (q3, &p1 * &p2)] {
            let got = deflate_quadratic(&prod, q);
            for d in 0..=4usize {
                assert!(
                    (got.coeff(d) - rest.coeff(d)).abs() < 1e-9 * (1.0 + rest.coeff(d).abs()),
                    "coeff {d}: {} vs {}",
                    got.coeff(d),
                    rest.coeff(d)
                );
            }
        }
    }

    #[test]
    fn degenerate_direction_is_constant_sign() {
        let net = sample_net(3, 0.01, 2.0);
        let inside = net.position(StationId(0));
        let h = restricted_to_line(&net, StationId(0), inside, Vector::ZERO);
        assert!(h.is_constant());
    }

    #[test]
    #[should_panic]
    fn odd_path_loss_panics() {
        let net = Network::builder()
            .station(Point::ORIGIN)
            .station(Point::new(1.0, 0.0))
            .path_loss(3.0)
            .build()
            .unwrap();
        let _ = restricted_to_line(&net, StationId(0), Point::ORIGIN, Vector::UNIT_X);
    }

    #[test]
    fn alpha_four_sign_contract() {
        // The even-α generalisation: α = 4 restriction agrees with direct
        // SINR evaluation and has degree 4(n−1) without noise.
        let mut state: u64 = 0x5EED;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64) * 8.0 - 4.0
        };
        for n in [2usize, 3, 5] {
            let pts: Vec<Point> = (0..n).map(|_| Point::new(next(), next())).collect();
            let net = Network::builder()
                .stations(pts)
                .path_loss(4.0)
                .threshold(2.0)
                .background_noise(0.0)
                .build()
                .unwrap();
            let i = StationId(0);
            let h = restricted_to_line(&net, i, Point::new(-5.0, -1.3), Vector::new(10.0, 2.0));
            assert_eq!(h.degree(), Some(4 * (n - 1)), "n={n}");
            assert_eq!(expected_degree(&net), 4 * (n - 1));
            for k in 0..=40 {
                let t = k as f64 / 40.0;
                let p = Point::new(-5.0 + 10.0 * t, -1.3 + 2.0 * t);
                let s = net.sinr(i, p);
                if !s.is_finite() || (s - 2.0).abs() < 1e-6 {
                    continue;
                }
                let (v, bound) = h.eval_with_error_bound(t);
                let construction = 1e-10 * (1.0 + h.max_coeff_abs());
                if v.abs() <= bound.max(construction) {
                    continue;
                }
                assert_eq!(v <= 0.0, s >= 2.0, "α=4, n={n}, t={t}: H={v}, SINR={s}");
            }
        }
    }
}
