//! Spatially-coherent tiled batch execution.
//!
//! The per-point batch path treats a 100k-point `locate_batch` as 100k
//! independent queries: every point pays a full station scan (or its own
//! kd-tree walk). But SINR diagrams have exploitable spatial structure —
//! reception zones are fat and convex (Theorem 1 / Theorem 4.2), so
//! *nearby query points share almost all of their per-point work*. This
//! module is the batch-level amortization of that observation (the
//! regime of Aronov & Katz's batched point location): sort the batch
//! into Morton-ordered spatial tiles, compute a **shared, certified
//! candidate set** once per tile, and run the SIMD kernels over short
//! contiguous candidate columns instead of the whole network.
//!
//! ## The pipeline
//!
//! 1. **Morton ordering** — each query point is mapped to a 16-bit ×
//!    16-bit grid cell over the batch's bounding box and the cells are
//!    interleaved into a Z-order key; a stable radix sort by that key
//!    yields an index *permutation* (the input and output slices are
//!    never reordered — answers land at their original positions, so the
//!    output is positionally identical to the per-point path).
//! 2. **Per-tile candidate pruning** — consecutive runs of
//!    [`TileConfig::tile_points`] sorted points form a tile. One `O(n)`
//!    pass over the station columns computes each station's certified
//!    energy envelope over the tile's bounding box
//!    ([`crate::bounds::energy_envelope`]); stations whose envelope top
//!    is *provably dominated* (below the best envelope bottom `M`) can
//!    never be the strongest station for any point of the tile and are
//!    dropped from the per-point scan. Their interference is not
//!    dropped — it is carried as a certified residual interval
//!    `[L_R, U_R]` (the sums of the pruned envelopes).
//! 3. **Certified per-point decision** — each point scans only the
//!    gathered candidate columns (through the same SIMD kernels as the
//!    full scans — AVX-512/AVX2/SSE2/portable). Per-station energies are
//!    bit-identical to the full scan's by kernel contract, so the argmax
//!    (or nearest-station) choice is *exact*. The reception test is then
//!    evaluated at both ends of the residual interval: if both ends
//!    agree, the decision is certified and emitted; if they disagree
//!    (the point sits within the interval's width of the `SINR = β`
//!    boundary), the point **falls back to the backend's own serial
//!    kernel** — never an approximate answer.
//!
//! ## The correctness contract
//!
//! Answers are **bit-identical** to the serial per-point path of the
//! same backend, for every input ordering — pinned by the
//! permutation-invariance and tiled-vs-serial differential suites. The
//! certificates are one-sided with explicit rounding margins
//! ([`BOUND_MARGIN`], [`TOTAL_MARGIN`]), so floating-point looseness can
//! only ever cause a fallback (a perf event), never a changed answer.
//! Tiles whose points are not all finite fall back wholesale.
//!
//! Tiles are the work-stealing scheduler's unit (the same
//! [`BATCH_TILE`]-point granularity as the
//! per-point scheduler), so skewed tiles rebalance across cores exactly
//! like skewed points did.

use crate::bounds::{dist2_range_to_box, energy_envelope};
use crate::engine::steal::OutputSlots;
use crate::engine::{
    GeneralAlpha, InverseSquare, Located, PathLoss, SinrEvaluator, BATCH_TILE,
    PARALLEL_BATCH_THRESHOLD,
};
use crate::simd::{self, SimdKernel};
use crate::station::StationId;
use sinr_algebra::KahanSum;
use sinr_geometry::Point;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Relative widening applied to each station's per-tile energy envelope
/// so it certifiably brackets the kernels' rounded energies (worst case
/// a few ulps ≈ `1e-15`; four orders of magnitude of slack).
pub const BOUND_MARGIN: f64 = 1e-12;

/// Relative widening applied to the total-energy interval before the
/// certified reception test, absorbing every summation-order difference
/// between kernels (compensated or plain, any lane count, any station
/// count the engine supports). Points whose reception margin is tighter
/// than this fall back to the serial kernel.
pub const TOTAL_MARGIN: f64 = 1e-8;

/// Below this many stations the pruned tile path is not engaged by the
/// default config: the full scan is already a few dozen nanoseconds, so
/// Morton sorting and per-tile envelopes would cost more than they save.
pub const TILED_MIN_STATIONS: usize = 128;

/// Tuning knobs of the tiled executor.
///
/// The defaults are the shared batch granularity
/// ([`BATCH_TILE`] points per tile — one knob
/// for both the work-stealing scheduler and the spatial tiler) and the
/// thresholds the engines ship with; benches and differential tests
/// construct custom configs to sweep the tile size or force the tiled
/// path onto small inputs.
#[derive(Debug, Clone, Copy)]
pub struct TileConfig {
    /// Query points per spatial tile (and per stolen work unit).
    pub tile_points: usize,
    /// Minimum station count for the pruned path to pay for itself.
    pub min_stations: usize,
    /// Minimum batch length; shorter batches stay on the serial loop.
    pub min_points: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            tile_points: BATCH_TILE,
            min_stations: TILED_MIN_STATIONS,
            min_points: PARALLEL_BATCH_THRESHOLD,
        }
    }
}

impl TileConfig {
    /// True when a batch of `n_points` against `n_stations` should take
    /// the pruned tiled path under this config.
    pub fn engages(&self, n_points: usize, n_stations: usize) -> bool {
        n_points >= self.min_points && n_stations >= self.min_stations
    }
}

/// How the tiled executor selects each point's candidate transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Select {
    /// Maximum-energy station (first index on exact energy ties) — the
    /// rule of the full scans ([`crate::engine::ExactScan`],
    /// [`crate::simd::SimdScan`]) *and* of
    /// [`crate::engine::VoronoiAssisted`]'s power-diagram dispatch on
    /// non-uniform networks (the candidate argmax over `Pᵢ · att(d²)`
    /// is exactly the weighted kd-tree's nearest-dominator rule); exact
    /// for every network. The station envelopes the executor prunes
    /// with are per-station and power-aware, so pruning stays certified
    /// under any power assignment.
    MaxEnergy,
    /// Nearest station (first index on exact squared-distance ties) —
    /// the Observation-2.2 dispatch [`crate::engine::VoronoiAssisted`]
    /// uses when the current powers are uniform. Only equivalent to
    /// `MaxEnergy` for uniform power; callers must not use it otherwise
    /// (the engines never do — `VoronoiAssisted` switches to
    /// `MaxEnergy` per batch when powers differ).
    Nearest,
}

/// Aggregate observability of one tiled run (for benches and tests —
/// the counters say nothing about answers, which are always exact).
#[derive(Debug, Default, Clone, Copy)]
pub struct TileStats {
    /// Total query points.
    pub points: u64,
    /// Tiles processed.
    pub tiles: u64,
    /// Tiles that ran the pruned candidate path (the rest fell back
    /// wholesale: non-finite points, or pruning could not drop enough
    /// stations to pay for the gather).
    pub pruned_tiles: u64,
    /// Σ |candidate set| over pruned tiles (divide by `pruned_tiles`
    /// for the mean candidate count the per-point scans actually ran).
    pub candidate_stations: u64,
    /// Points whose certified decision was inconclusive and re-ran the
    /// backend's serial kernel.
    pub fallback_points: u64,
}

impl TileStats {
    /// Mean candidate-set size over the pruned tiles (`None` when no
    /// tile took the pruned path).
    pub fn mean_candidates(&self) -> Option<f64> {
        (self.pruned_tiles > 0).then(|| self.candidate_stations as f64 / self.pruned_tiles as f64)
    }
}

/// Spreads the low 16 bits of `v` to the even bit positions.
fn spread16(v: u32) -> u32 {
    let mut x = v & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// The Morton (Z-order) permutation of `points`: indices sorted by the
/// interleaved 16+16-bit grid cell over the batch bounding box, ties
/// (and non-finite points, which all map to the max key) in original
/// order — the sort is a stable two-pass radix, so the permutation is
/// deterministic for any input.
pub fn morton_order(points: &[Point]) -> Vec<u32> {
    assert!(
        points.len() <= u32::MAX as usize,
        "batches beyond u32::MAX points are unsupported"
    );
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in points {
        if p.x.is_finite() && p.y.is_finite() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
    }
    let scale_x = grid_scale(min_x, max_x);
    let scale_y = grid_scale(min_y, max_y);
    let mut keyed: Vec<(u32, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let key = if p.x.is_finite() && p.y.is_finite() {
                // `as u32` saturates, so the top grid row stays in range.
                let gx = ((p.x - min_x) * scale_x) as u32;
                let gy = ((p.y - min_y) * scale_y) as u32;
                spread16(gx.min(0xFFFF)) | (spread16(gy.min(0xFFFF)) << 1)
            } else {
                u32::MAX
            };
            (key, i as u32)
        })
        .collect();
    // Stable LSD radix sort: O(n), and stability gives the
    // deterministic original-order tie rule for free. The digit width
    // follows the batch size — two 16-bit passes amortize their 64k
    // histograms only on large batches; smaller batches take four
    // 8-bit passes so a threshold-sized call does not pay ~1 MiB of
    // histogram zeroing to sort a few thousand keys.
    let (digit_bits, shifts): (u32, &[u32]) = if keyed.len() >= 1 << 15 {
        (16, &[0, 16])
    } else {
        (8, &[0, 8, 16, 24])
    };
    let mask = (1u32 << digit_bits) - 1;
    let mut aux = vec![(0u32, 0u32); keyed.len()];
    let mut counts = vec![0usize; 1 << digit_bits];
    for &shift in shifts {
        counts.iter_mut().for_each(|c| *c = 0);
        for &(k, _) in &keyed {
            counts[((k >> shift) & mask) as usize] += 1;
        }
        let mut pos = 0usize;
        for c in counts.iter_mut() {
            let n = *c;
            *c = pos;
            pos += n;
        }
        for &(k, i) in &keyed {
            let d = ((k >> shift) & mask) as usize;
            aux[counts[d]] = (k, i);
            counts[d] += 1;
        }
        std::mem::swap(&mut keyed, &mut aux);
    }
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Cells-per-unit for one axis of the Morton grid (0 collapses the axis
/// when the extent is degenerate or not finite).
fn grid_scale(min: f64, max: f64) -> f64 {
    let width = max - min;
    if width > 0.0 && width.is_finite() {
        65535.0 / width
    } else {
        0.0
    }
}

/// Runs `f(tile_index, &mut scratch)` over `0..num_tiles`, work-stolen
/// across the available cores through one atomic counter (inline when
/// one worker suffices). Each worker owns one `S` scratch value for the
/// whole run, so per-tile allocations amortize away.
///
/// This is the **one** work-stealing scheduler of the crate:
/// [`crate::engine::batch_map`]'s parallel branch and both tiled
/// executors here run through it, so the worker-count clamp and the
/// `fetch_add` claim protocol (which the `OutputSlots` soundness
/// argument leans on) exist in exactly one place.
pub(crate) fn steal_tiles<S: Default, F: Fn(usize, &mut S) + Sync>(num_tiles: usize, f: F) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = threads.min(num_tiles);
    if workers <= 1 {
        let mut scratch = S::default();
        for t in 0..num_tiles {
            f(t, &mut scratch);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = S::default();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= num_tiles {
                        break;
                    }
                    f(t, &mut scratch);
                }
            });
        }
    });
}

/// Morton-permuted tile scheduling for an arbitrary per-point function:
/// same answers as a serial loop of `f` (it *is* `f`, per point — only
/// the visit order and the thread placement change), with spatially
/// coherent tiles as the stealable work units. This is the
/// locality-only flavour of the executor — the Theorem-3 `PointLocator`
/// routes `locate_batch` through it so queries dispatching to the same
/// zone grid are processed together, and `sinr_batch` uses it for its
/// batch path.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
pub fn batch_map_morton<O, F>(points: &[Point], out: &mut [O], cfg: &TileConfig, f: F)
where
    O: Send,
    F: Fn(Point) -> O + Sync,
{
    assert_eq!(
        points.len(),
        out.len(),
        "batch_map: {} points but {} output slots",
        points.len(),
        out.len()
    );
    let tile = cfg.tile_points.max(1);
    if points.len() < cfg.min_points {
        for (p, slot) in points.iter().zip(out.iter_mut()) {
            *slot = f(*p);
        }
        return;
    }
    let order = morton_order(points);
    let slots = OutputSlots::new(out);
    let num_tiles = order.len().div_ceil(tile);
    steal_tiles::<(), _>(num_tiles, |t, _scratch| {
        let idxs = &order[t * tile..((t + 1) * tile).min(order.len())];
        for &i in idxs {
            // The Morton order is a permutation, so tiles own disjoint
            // original indices and every slot is written exactly once.
            slots.write(i as usize, f(points[i as usize]));
        }
    });
}

/// Per-worker scratch of the pruned executor: the per-station envelope
/// columns and the gathered candidate SoA columns, reused across tiles.
#[derive(Default)]
struct Scratch {
    lb: Vec<f64>,
    ub: Vec<f64>,
    cxs: Vec<f64>,
    cys: Vec<f64>,
    cws: Vec<f64>,
    cidx: Vec<u32>,
}

/// The reception test of [`SinrEvaluator::decide`] evaluated at an
/// assumed total energy — the exact expression shape of the serial
/// kernels, which is (weakly) anti-monotone in `total` under rounding,
/// making one-sided certification sound: reception at the interval's
/// top certifies reception at the kernel's true total, non-reception at
/// the bottom certifies silence.
#[inline]
pub(crate) fn receives_at_total(best_e: f64, total: f64, noise: f64, beta: f64) -> bool {
    let interference_plus_noise = (total - best_e) + noise;
    interference_plus_noise <= 0.0 || best_e >= beta * interference_plus_noise
}

/// The per-point outcome of a certified tile scan.
enum Certified {
    Answer(Located),
    /// The decision sits within the residual interval of the `β`
    /// boundary — re-run the backend's serial kernel.
    Fallback,
}

/// The tile-pruned batch executor behind
/// [`QueryEngine::locate_batch`](crate::engine::QueryEngine::locate_batch)
/// for the scan backends: Morton tiles, per-tile certified candidate
/// sets, SIMD candidate scans, certified decisions with serial-kernel
/// fallback (see the [module docs](self) for the pipeline and the
/// bit-identity contract).
///
/// `fallback` must be the *serial per-point kernel of the calling
/// backend* — it is consulted verbatim for non-finite tiles, unpruned
/// tiles and uncertifiable points, which is what makes the executor's
/// answers bit-identical to that backend's serial path. `kernel` drives
/// the candidate scans (any supported kernel yields identical answers;
/// backends pass their pinned kernel). `Select::Nearest` additionally
/// requires uniform power (the Observation-2.2 precondition — the
/// caller's contract, as for [`crate::engine::VoronoiAssisted`]).
///
/// Returns run statistics; answers are written into `out` at their
/// original positions.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
pub fn locate_batch_tiled<F>(
    eval: &SinrEvaluator,
    kernel: SimdKernel,
    select: Select,
    points: &[Point],
    out: &mut [Located],
    cfg: &TileConfig,
    fallback: F,
) -> TileStats
where
    F: Fn(Point) -> Located + Sync,
{
    assert_eq!(
        points.len(),
        out.len(),
        "batch_map: {} points but {} output slots",
        points.len(),
        out.len()
    );
    debug_assert!(
        select == Select::MaxEnergy || eval.is_uniform_power(),
        "Select::Nearest requires uniform power (Observation 2.2)"
    );
    let tile = cfg.tile_points.max(1);
    let order = morton_order(points);
    let slots = OutputSlots::new(out);
    let num_tiles = order.len().div_ceil(tile);
    let (xs, ys, ws) = eval.soa();
    let n = xs.len();
    let alpha = eval.alpha();
    let noise = eval.noise();
    let beta = eval.beta();
    let pruned_tiles = AtomicU64::new(0);
    let candidate_stations = AtomicU64::new(0);
    let fallback_points = AtomicU64::new(0);
    steal_tiles::<Scratch, _>(num_tiles, |t, scratch| {
        let idxs = &order[t * tile..((t + 1) * tile).min(order.len())];
        // Tile bounding box; a non-finite point poisons every envelope,
        // so such tiles run the serial kernel wholesale.
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut finite = true;
        for &i in idxs {
            let p = points[i as usize];
            if !(p.x.is_finite() && p.y.is_finite()) {
                finite = false;
                break;
            }
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if !finite {
            for &i in idxs {
                slots.write(i as usize, fallback(points[i as usize]));
            }
            return;
        }
        // Certified per-station energy envelopes over the tile box, and
        // the best envelope bottom M: a station whose top is below M is
        // provably never the strongest anywhere in the tile.
        scratch.lb.clear();
        scratch.ub.clear();
        let mut m = f64::NEG_INFINITY;
        let k_general = GeneralAlpha::new(alpha);
        for j in 0..n {
            let (d_min, d_max) = dist2_range_to_box(min_x, min_y, max_x, max_y, xs[j], ys[j]);
            let (lo, hi) = if alpha == 2.0 {
                energy_envelope(InverseSquare, ws[j], d_min, d_max, BOUND_MARGIN)
            } else {
                energy_envelope(k_general, ws[j], d_min, d_max, BOUND_MARGIN)
            };
            scratch.lb.push(lo);
            scratch.ub.push(hi);
            if lo > m {
                m = lo;
            }
        }
        // Candidate gather (ascending index — the argmax/argmin
        // first-index tie rules ride on this) and the residual
        // interference interval over the pruned stations.
        scratch.cxs.clear();
        scratch.cys.clear();
        scratch.cws.clear();
        scratch.cidx.clear();
        let mut resid_lo = 0.0f64;
        let mut resid_hi = 0.0f64;
        for j in 0..n {
            if scratch.ub[j] >= m {
                scratch.cidx.push(j as u32);
                scratch.cxs.push(xs[j]);
                scratch.cys.push(ys[j]);
                scratch.cws.push(ws[j]);
            } else {
                resid_lo += scratch.lb[j];
                resid_hi += scratch.ub[j];
            }
        }
        let n_c = scratch.cidx.len();
        // Pruning that keeps ~everything cannot pay for the gather and
        // the certification: run the serial kernel directly.
        if n_c * 8 >= n * 7 {
            for &i in idxs {
                slots.write(i as usize, fallback(points[i as usize]));
            }
            return;
        }
        pruned_tiles.fetch_add(1, Ordering::Relaxed);
        candidate_stations.fetch_add(n_c as u64, Ordering::Relaxed);
        let mut tile_fallbacks = 0u64;
        for &i in idxs {
            let p = points[i as usize];
            let outcome = match select {
                Select::MaxEnergy => {
                    certify_max_energy(kernel, alpha, scratch, p, resid_lo, resid_hi, noise, beta)
                }
                Select::Nearest => {
                    certify_nearest(alpha, scratch, p, resid_lo, resid_hi, noise, beta)
                }
            };
            let answer = match outcome {
                Certified::Answer(a) => a,
                Certified::Fallback => {
                    tile_fallbacks += 1;
                    fallback(p)
                }
            };
            slots.write(i as usize, answer);
        }
        if tile_fallbacks > 0 {
            fallback_points.fetch_add(tile_fallbacks, Ordering::Relaxed);
        }
    });
    TileStats {
        points: points.len() as u64,
        tiles: num_tiles as u64,
        pruned_tiles: pruned_tiles.into_inner(),
        candidate_stations: candidate_stations.into_inner(),
        fallback_points: fallback_points.into_inner(),
    }
}

/// Certified decision from the interval `[S_C + L_R, S_C + U_R]`
/// (widened by [`TOTAL_MARGIN`]) around every kernel's rounded total.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_decision(
    best: StationId,
    best_e: f64,
    s_c: f64,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    let hi = (s_c + resid_hi) * (1.0 + TOTAL_MARGIN);
    let lo = (s_c + resid_lo) * (1.0 - TOTAL_MARGIN);
    if receives_at_total(best_e, hi, noise, beta) {
        Certified::Answer(Located::Reception(best))
    } else if !receives_at_total(best_e, lo, noise, beta) {
        Certified::Answer(Located::Silent)
    } else {
        Certified::Fallback
    }
}

/// One certified point in `MaxEnergy` mode: SIMD argmax scan of the
/// candidate columns (per-station energies bit-identical to the full
/// scan, so the argmax index is exact), then the certified decision.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_max_energy(
    kernel: SimdKernel,
    alpha: f64,
    scratch: &Scratch,
    p: Point,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    match simd::scan_slices(kernel, alpha, &scratch.cxs, &scratch.cys, &scratch.cws, p) {
        // Coincident stations always survive pruning (their envelope
        // top is ∞), so the first coincident candidate is the first
        // coincident station of the whole scan.
        Err(c) => Certified::Answer(Located::Reception(StationId(scratch.cidx[c] as usize))),
        Ok(scan) => certify_decision(
            StationId(scratch.cidx[scan.best] as usize),
            scan.best_energy,
            scan.total,
            resid_lo,
            resid_hi,
            noise,
            beta,
        ),
    }
}

/// One certified point in `Nearest` mode: exact nearest candidate by
/// squared distance (strictly-less, first index on exact ties — the
/// kd-tree's documented rule; the nearest station always survives
/// pruning since for uniform power it is also the strongest), then the
/// certified decision with its energy.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_nearest(
    alpha: f64,
    scratch: &Scratch,
    p: Point,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    let mut sum = 0.0f64;
    let k_general = GeneralAlpha::new(alpha);
    for c in 0..scratch.cidx.len() {
        let dx = scratch.cxs[c] - p.x;
        let dy = scratch.cys[c] - p.y;
        let d2 = dx * dx + dy * dy;
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
        // Plain positive sum: only feeds the certified bounds, whose
        // TOTAL_MARGIN dwarfs the uncompensated rounding.
        sum += if alpha == 2.0 {
            InverseSquare.attenuation(d2) * scratch.cws[c]
        } else {
            k_general.attenuation(d2) * scratch.cws[c]
        };
    }
    let station = StationId(scratch.cidx[best] as usize);
    if best_d2 == 0.0 {
        // At a station's position: reception by the `{sᵢ}` clause, tie
        // toward the smallest index — the serial tree path's rule.
        return Certified::Answer(Located::Reception(station));
    }
    // The candidate's energy, computed with the exact operation
    // sequence of every scan kernel (`RN(RN(attenuation)·ψ)`).
    let best_e = if alpha == 2.0 {
        InverseSquare.attenuation(best_d2) * scratch.cws[best]
    } else {
        k_general.attenuation(best_d2) * scratch.cws[best]
    };
    certify_decision(station, best_e, sum, resid_lo, resid_hi, noise, beta)
}

// ---------------------------------------------------------------------
// Interval-certified cell evaluation
// ---------------------------------------------------------------------

/// Relative slack widening the leave-one-out interference sums of a
/// cell certificate. The sums are (at most) `n` compensated additions
/// plus the frozen chain's plain additions, so their relative rounding
/// is bounded by `n·ε ≈ 1e-12` at the engine's practical station
/// counts; `1e-11` dwarfs it while staying negligible against
/// [`TOTAL_MARGIN`].
const SUM_SLACK: f64 = 1e-11;

/// Relative envelope width below which a certified-silent station is
/// **frozen** into descendant certificates' residual sums instead of
/// being re-enveloped per descendant cell. Per-station widths
/// `hi ≤ lo·(1 + FREEZE_REL)` add up to an aggregate residual width of
/// at most `FREEZE_REL · I` over the frozen set, so descendants'
/// certified SINR intervals widen by at most that *relative* amount —
/// only cells already within ~`FREEZE_REL` of the `β` boundary can flip
/// from resolved to [`CellDecision::Mixed`], and those sit inside the
/// boundary band the refinement subdivides anyway. This is what makes a
/// root-to-leaf quadtree refinement cost `O(surviving candidates)` per
/// cell instead of `O(n)`: a station at distance `≳ 4/FREEZE_REL` cell
/// radii freezes, so far stations drop out after a few levels.
///
/// The value trades certificate cost against bracket *width*: frozen
/// widths are paid by every descendant decision — including the
/// per-point certified path ([`locate_in_cell`]), whose hit rate near
/// the `β` boundary is set directly by the accumulated frozen width
/// (a point whose reception margin is smaller than the frozen bracket
/// cannot be pinned and falls through to the batched serial kernel).
/// `0.05` keeps that uncertifiable band to a few pixels at heatmap
/// resolutions; looser values make certificates cheaper but push whole
/// pixel bands onto the `O(n)` fallback, which measures strictly worse
/// on megapixel grids.
const FREEZE_REL: f64 = 0.05;

/// A certified bracket `[lo, hi]` of one station's SINR over a cell:
/// every value [`SinrEvaluator::sinr`] returns for any point of the
/// cell (including the `0`/`+∞` co-location conventions) lies inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinrInterval {
    /// Certified lower end (`≥ 0`).
    pub lo: f64,
    /// Certified upper end (`+∞` when unbounded over the cell).
    pub hi: f64,
}

impl SinrInterval {
    /// True when `v` lies inside the bracket (NaN is never inside).
    pub fn contains(&self, v: f64) -> bool {
        self.lo <= v && v <= self.hi
    }
}

/// The uniform classification a [`CellCert`] proved for its whole cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellDecision {
    /// Every point of the cell locates as `Reception(i)` — the
    /// station's certified test passes everywhere in the cell *and*
    /// every other station is certified silent (which pins the argmax).
    Reception(StationId),
    /// Every point of the cell locates as `Silent`: every station's
    /// certified test fails everywhere in the cell.
    Silent,
    /// The certificate straddles a decision boundary (or the cell
    /// contains a station, or a bound degenerated): no uniform claim —
    /// subdivide or evaluate per point.
    Mixed,
}

/// One frozen layer of an ancestor chain: stations whose envelopes were
/// pinned at some ancestor cell (Arc-shared by every descendant).
#[derive(Debug)]
struct FrozenLayer {
    parent: Option<Arc<FrozenLayer>>,
    /// `(station index, energy lo, energy hi)` — all finite.
    entries: Vec<(u32, f64, f64)>,
}

/// A certified interval evaluation of one axis-aligned cell: per-station
/// energy envelopes over the cell box, the leave-one-out interference
/// brackets they imply, and the uniform reception [`CellDecision`] they
/// certify (if any).
///
/// Certificates chain: passing one as the `parent` of
/// [`QueryEngine::sinr_bounds_cell`](crate::engine::QueryEngine::sinr_bounds_cell)
/// for a **contained** child cell re-envelopes only the parent's
/// surviving candidates, while stations the parent proved silent with
/// tight envelopes are carried as a frozen residual (their ancestor-cell
/// envelopes remain valid for any sub-cell). The hierarchical raster
/// refinement in `sinr-diagram` leans on this: certificate cost tracks
/// the *local* station set, not `n`.
#[derive(Debug, Clone)]
pub struct CellCert {
    min_x: f64,
    min_y: f64,
    max_x: f64,
    max_y: f64,
    n: usize,
    decision: CellDecision,
    /// Surviving candidates `(station index, energy lo, energy hi)`,
    /// ascending by index.
    cands: Vec<(u32, f64, f64)>,
    frozen: Option<Arc<FrozenLayer>>,
    /// Plain sums of the frozen entries' envelope ends (all finite).
    frozen_lo: f64,
    frozen_hi: f64,
    /// Finite-part totals over **all** stations, and the count of
    /// infinite envelope ends excluded from them.
    sum_lo: f64,
    sum_hi: f64,
    inf_lo: u32,
    inf_hi: u32,
    noise: f64,
    beta: f64,
}

impl CellCert {
    /// The uniform classification this certificate proved.
    pub fn decision(&self) -> CellDecision {
        self.decision
    }

    /// The cell box this certificate covers: `(min, max)` corners.
    pub fn cell(&self) -> (Point, Point) {
        (
            Point::new(self.min_x, self.min_y),
            Point::new(self.max_x, self.max_y),
        )
    }

    /// Number of surviving (non-frozen) candidate stations — the cost
    /// driver of refining this certificate into child cells.
    pub fn candidates(&self) -> usize {
        self.cands.len()
    }

    /// The reception threshold `β` this certificate's decision was
    /// certified against.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The background noise `N` folded into the certified brackets.
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// The station's certified energy envelope: from the candidate list
    /// if it survived, else from the frozen ancestor chain.
    fn energy_bounds(&self, j: usize) -> (f64, f64) {
        let key = j as u32;
        if let Ok(c) = self.cands.binary_search_by_key(&key, |&(idx, _, _)| idx) {
            let (_, lo, hi) = self.cands[c];
            return (lo, hi);
        }
        let mut layer = self.frozen.as_deref();
        while let Some(l) = layer {
            if let Some(&(_, lo, hi)) = l.entries.iter().find(|&&(idx, _, _)| idx == key) {
                return (lo, hi);
            }
            layer = l.parent.as_deref();
        }
        unreachable!("station {j} is neither a candidate nor frozen")
    }

    /// Leave-one-out interference bracket for a station with energy
    /// envelope `(elo, ehi)`: totals minus the station's own ends, with
    /// infinity bookkeeping (an `∞` end elsewhere forces that side to
    /// `∞`) and [`SUM_SLACK`] widening against cancellation.
    fn interference_bounds(&self, elo: f64, ehi: f64) -> (f64, f64) {
        let inf_lo_others = self.inf_lo - u32::from(elo == f64::INFINITY);
        let lo = if inf_lo_others > 0 {
            f64::INFINITY
        } else {
            let own = if elo.is_finite() { elo } else { 0.0 };
            ((self.sum_lo - own) - SUM_SLACK * self.sum_lo).max(0.0)
        };
        let inf_hi_others = self.inf_hi - u32::from(ehi == f64::INFINITY);
        let hi = if inf_hi_others > 0 {
            f64::INFINITY
        } else {
            let own = if ehi.is_finite() { ehi } else { 0.0 };
            ((self.sum_hi - own) + SUM_SLACK * self.sum_hi).max(0.0)
        };
        (lo, hi)
    }

    /// The certified SINR bracket of `station` over the cell: every
    /// value [`SinrEvaluator::sinr`] can return for a point of the cell
    /// — including the co-location conventions (`0` at another station,
    /// `+∞` at the station itself) — lies inside.
    ///
    /// # Panics
    ///
    /// Panics if `station` is out of range.
    pub fn sinr(&self, station: StationId) -> SinrInterval {
        assert!(
            station.0 < self.n,
            "station {station} out of range ({} stations)",
            self.n
        );
        let (elo, ehi) = self.energy_bounds(station.0);
        let (i_lo, i_hi) = self.interference_bounds(elo, ehi);
        // Lower end: smallest energy over largest interference+noise.
        // NaN (∞/∞) and 0/0 collapse to the trivial 0.
        let den_hi = (i_hi + self.noise) * (1.0 + TOTAL_MARGIN);
        let mut lo = (elo / den_hi) * (1.0 - TOTAL_MARGIN);
        if lo.is_nan() || lo <= 0.0 {
            lo = 0.0;
        }
        // Upper end: a non-positive denominator lower bound means the
        // evaluator can report +∞ (its `denom ≤ 0` clause).
        let den_lo = (i_lo + self.noise) * (1.0 - TOTAL_MARGIN);
        let hi = if den_lo > 0.0 {
            let h = (ehi / den_lo) * (1.0 + TOTAL_MARGIN);
            if h.is_nan() {
                f64::INFINITY
            } else {
                h
            }
        } else {
            f64::INFINITY
        };
        SinrInterval { lo, hi }
    }
}

/// The certified reception test of one candidate over a whole cell:
/// with energy at least `lo` everywhere and interference+noise at most
/// `ipn_hi`, does the engine's division-free test pass at **every**
/// point? The slack term is scaled by the *envelope top* `hi` (not just
/// the interference) because the serial kernels derive interference as
/// `total − e`, whose rounding is relative to the total the station
/// itself can dominate.
#[inline]
fn cell_receives(lo: f64, hi: f64, others_hi: f64, noise: f64, beta: f64) -> bool {
    let ipn_hi = (others_hi + noise) + TOTAL_MARGIN * (hi + others_hi + noise);
    lo.is_finite() && (ipn_hi <= 0.0 || lo >= beta * ipn_hi)
}

/// The certified silence test: with energy at most `hi` everywhere and
/// interference+noise at least `ipn_lo`, the engine's test *fails* at
/// every point (and its `ipn ≤ 0` escape hatch certifiably cannot
/// fire). An infinite `hi` (a station inside the cell) is never
/// certifiably silent.
#[inline]
fn cell_silent(hi: f64, others_lo: f64, noise: f64, beta: f64) -> bool {
    let ipn_lo = (others_lo + noise) - TOTAL_MARGIN * (hi + others_lo + noise);
    hi.is_finite() && ipn_lo > 0.0 && hi < beta * ipn_lo
}

/// The generic cell-certificate executor behind
/// [`QueryEngine::sinr_bounds_cell`](crate::engine::QueryEngine::sinr_bounds_cell):
/// per-station energy envelopes over the cell box (the same
/// [`energy_envelope`] primitive as the batch pruning and the
/// stochastic-channel tile cache — unit-power attenuation times power,
/// widened by [`BOUND_MARGIN`]), leave-one-out interference brackets,
/// and the certified classification.
///
/// The classification is sound for **every** shipped backend: a
/// [`CellDecision::Reception`]/[`CellDecision::Silent`] answer is a
/// proof about the serial kernels' rounded arithmetic at every point of
/// the cell (see the per-test docs), and the scan/tree/SIMD backends
/// agree wherever such a proof exists (their summation-order differences
/// are inside [`TOTAL_MARGIN`], and a certified unique argmax is also
/// the unique nearest station under uniform power). Anything the
/// margins cannot prove comes back [`CellDecision::Mixed`] — never a
/// wrong uniform claim. Degenerate cells (non-finite corners, stations
/// inside the box, co-locations) degrade to `Mixed` through the
/// envelopes' `∞`/NaN widening.
///
/// `parent` must be a certificate of the **same evaluator** (same
/// revision) for a cell containing `[min, max]`; its surviving
/// candidates are re-enveloped over the child box while its frozen
/// residual is inherited as-is, and candidates the child proves silent
/// with relatively tight envelopes ([`FREEZE_REL`]) are frozen in turn.
pub(crate) fn cell_certificate(
    eval: &SinrEvaluator,
    min: Point,
    max: Point,
    parent: Option<&CellCert>,
) -> CellCert {
    let (xs, ys, ws) = eval.soa();
    let n = xs.len();
    let noise = eval.noise();
    let beta = eval.beta();
    let alpha = eval.alpha();
    let k_general = GeneralAlpha::new(alpha);
    if let Some(p) = parent {
        debug_assert_eq!(p.n, n, "parent certificate is for a different network");
        debug_assert!(
            p.min_x <= min.x && p.min_y <= min.y && max.x <= p.max_x && max.y <= p.max_y,
            "child cell not contained in the parent certificate's cell"
        );
    }
    let finite_cell = min.x.is_finite()
        && min.y.is_finite()
        && max.x.is_finite()
        && max.y.is_finite()
        && min.x <= max.x
        && min.y <= max.y;
    // Pass 1: envelope every inherited candidate over the child box.
    let inherited = parent.map(|p| p.cands.len()).unwrap_or(n);
    let mut ent: Vec<(u32, f64, f64)> = Vec::with_capacity(inherited);
    let mut cand_lo = KahanSum::new();
    let mut cand_hi = KahanSum::new();
    let mut inf_lo = 0u32;
    let mut inf_hi = 0u32;
    let mut envelope = |j: usize| {
        let (mut lo, mut hi) = if finite_cell {
            let (d_min, d_max) = dist2_range_to_box(min.x, min.y, max.x, max.y, xs[j], ys[j]);
            if alpha == 2.0 {
                energy_envelope(InverseSquare, ws[j], d_min, d_max, BOUND_MARGIN)
            } else {
                energy_envelope(k_general, ws[j], d_min, d_max, BOUND_MARGIN)
            }
        } else {
            (0.0, f64::INFINITY)
        };
        // Non-finite station coordinates (or any other NaN source)
        // widen to the trivial envelope — the station can then never be
        // pruned, frozen, or certified, only force `Mixed`.
        if lo.is_nan() || hi.is_nan() {
            lo = 0.0;
            hi = f64::INFINITY;
        }
        if lo.is_finite() {
            cand_lo.add(lo);
        } else {
            inf_lo += 1;
        }
        if hi.is_finite() {
            cand_hi.add(hi);
        } else {
            inf_hi += 1;
        }
        ent.push((j as u32, lo, hi));
    };
    match parent {
        Some(p) => p.cands.iter().for_each(|&(j, _, _)| envelope(j as usize)),
        None => (0..n).for_each(&mut envelope),
    }
    let (mut frozen_lo, mut frozen_hi, frozen_parent) = match parent {
        Some(p) => (p.frozen_lo, p.frozen_hi, p.frozen.clone()),
        None => (0.0, 0.0, None),
    };
    let sum_lo = frozen_lo + cand_lo.value();
    let sum_hi = frozen_hi + cand_hi.value();
    // Pass 2: classify each candidate against the others' bracket, and
    // partition tight certified-silent candidates into the frozen set.
    // Surviving candidates compact in place over `ent` (ascending order
    // is preserved, which the argmax first-index tie rules ride on);
    // only the frozen minority moves out.
    let mut new_frozen: Vec<(u32, f64, f64)> = Vec::new();
    let mut non_silent = 0usize;
    let mut rx: Option<StationId> = None;
    let mut rx_certified = false;
    let mut kept = 0usize;
    for i in 0..ent.len() {
        let (j, lo, hi) = ent[i];
        let others_hi = if inf_hi - u32::from(hi == f64::INFINITY) > 0 {
            f64::INFINITY
        } else {
            let own = if hi.is_finite() { hi } else { 0.0 };
            ((sum_hi - own) + SUM_SLACK * sum_hi).max(0.0)
        };
        let others_lo = if inf_lo - u32::from(lo == f64::INFINITY) > 0 {
            f64::INFINITY
        } else {
            let own = if lo.is_finite() { lo } else { 0.0 };
            ((sum_lo - own) - SUM_SLACK * sum_lo).max(0.0)
        };
        if cell_silent(hi, others_lo, noise, beta) {
            if hi <= lo * (1.0 + FREEZE_REL) {
                frozen_lo += lo;
                frozen_hi += hi;
                new_frozen.push((j, lo, hi));
                continue;
            }
        } else {
            non_silent += 1;
            if non_silent == 1 {
                rx = Some(StationId(j as usize));
                rx_certified = cell_receives(lo, hi, others_hi, noise, beta);
            }
        }
        ent[kept] = (j, lo, hi);
        kept += 1;
    }
    ent.truncate(kept);
    let cands = ent;
    // Reception needs a *unique* non-silent candidate whose own test is
    // certified: silence of every other station pins the argmax (an
    // argmax `m ≠ i` with `e_m ≥ e_i ≥ β·(I_i + N) ≥ β·(I_m + N) > e_m`
    // is a contradiction), so every backend's selection rule lands on
    // the certified station. Two certified receivers (possible for
    // `β < 1`) stay `Mixed` — the argmax is not uniform there.
    let decision = if non_silent == 0 {
        CellDecision::Silent
    } else if non_silent == 1 && rx_certified {
        CellDecision::Reception(rx.expect("non_silent == 1 recorded a candidate"))
    } else {
        CellDecision::Mixed
    };
    let frozen = if new_frozen.is_empty() {
        frozen_parent
    } else {
        Some(Arc::new(FrozenLayer {
            parent: frozen_parent,
            entries: new_frozen,
        }))
    };
    CellCert {
        min_x: min.x,
        min_y: min.y,
        max_x: max.x,
        max_y: max.y,
        n,
        decision,
        cands,
        frozen,
        frozen_lo,
        frozen_hi,
        sum_lo,
        sum_hi,
        inf_lo,
        inf_hi,
        noise,
        beta,
    }
}

/// Batched point location against an ancestor [`CellCert`] — the
/// per-point counterpart of the refinement's whole-cell decisions,
/// behind
/// [`QueryEngine::locate_in_cell`](crate::engine::QueryEngine::locate_in_cell).
///
/// For each point (which must lie inside the certificate's cell), the
/// candidates' exact kernel energies at the point plus the certificate's
/// frozen residual bracket give a certified total interval, and the
/// decision follows the same one-sided tests as the tiled executor
/// (`certify_decision`). A `Some` answer is **bit-identical to the
/// backend's own `locate`** at that point; points whose decision sits
/// inside the residual interval come back `None`, and the caller keeps
/// them on its ordinary batch path (re-running a full per-point scan
/// here would cost more than the batch executor's pruned one). Cost per
/// point is `O(candidates)`: for boundary pixels of a quadtree
/// refinement the candidate list is the handful of locally competitive
/// stations, so even a modest hit rate beats full scans.
///
/// Soundness of answering from the candidates alone: every
/// non-candidate station is frozen **certified-silent** over an ancestor
/// cell containing the point. A certified reception for the candidate
/// argmax `c` pins the *global* argmax at `c` — a frozen `f` with
/// `e_f ≥ e_c` would pass the reception test whenever `c` does (the
/// test is monotone in energy at fixed total), contradicting its
/// silence certificate; the same exclusion argument as
/// [`CellDecision::Reception`]'s unique-argmax rule, and under uniform
/// power it equally pins the nearest station for `Select::Nearest`. A
/// certified failure answers `Silent` regardless of the argmax: a
/// frozen argmax fails by its own certificate, a candidate argmax by
/// this one.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
pub fn locate_in_cell(
    eval: &SinrEvaluator,
    select: Select,
    cert: &CellCert,
    points: &[Point],
    out: &mut [Option<Located>],
) {
    assert_eq!(
        points.len(),
        out.len(),
        "locate_in_cell: {} points but {} output slots",
        points.len(),
        out.len()
    );
    debug_assert_eq!(
        cert.n,
        eval.soa().0.len(),
        "certificate is for a different network"
    );
    debug_assert!(
        select == Select::MaxEnergy || eval.is_uniform_power(),
        "Select::Nearest requires uniform power (Observation 2.2)"
    );
    for (p, slot) in points.iter().zip(out.iter_mut()) {
        *slot = locate_in_cert(eval, select, cert, *p);
    }
}

/// One certified point location against `cert` (see
/// [`locate_in_cell`]); `None` when the margins cannot pin the decision
/// or the point lies outside the certified cell.
fn locate_in_cert(
    eval: &SinrEvaluator,
    select: Select,
    cert: &CellCert,
    p: Point,
) -> Option<Located> {
    // Outside the certified cell the envelopes say nothing.
    if !(p.x >= cert.min_x && p.x <= cert.max_x && p.y >= cert.min_y && p.y <= cert.max_y) {
        return None;
    }
    if cert.cands.is_empty() {
        // Every station is frozen certified-silent over an ancestor
        // cell containing `p`: whichever station any backend selects,
        // its test provably fails there.
        return Some(Located::Silent);
    }
    let (xs, ys, ws) = eval.soa();
    let alpha = eval.alpha();
    let k_general = GeneralAlpha::new(alpha);
    let mut sum = 0.0f64;
    let mut best = usize::MAX;
    let mut best_e = f64::NEG_INFINITY;
    let mut best_d2 = f64::INFINITY;
    for &(j, _, _) in &cert.cands {
        let j = j as usize;
        let dx = xs[j] - p.x;
        let dy = ys[j] - p.y;
        let d2 = dx * dx + dy * dy;
        if d2 == 0.0 {
            // Co-located with a station: reception by the `{sᵢ}`
            // clause, first index — and this IS the full scan's first
            // co-location: a frozen station is never co-located with a
            // cell point (inside an ancestor cell its envelope top is
            // `∞` there, which `cell_silent` rejects), and candidates
            // ascend by index.
            return Some(Located::Reception(StationId(j)));
        }
        // The exact per-station operation sequence of every scan
        // kernel: `RN(RN(attenuation)·ψ)`. Plain positive sum — it only
        // feeds the certified bounds, whose `TOTAL_MARGIN` dwarfs the
        // uncompensated rounding (as in the tiled executor).
        let e = if alpha == 2.0 {
            InverseSquare.attenuation(d2) * ws[j]
        } else {
            k_general.attenuation(d2) * ws[j]
        };
        sum += e;
        match select {
            Select::MaxEnergy => {
                // Strictly-greater keeps the first index on exact
                // energy ties — the scan kernels' argmax rule.
                if e > best_e {
                    best_e = e;
                    best = j;
                }
            }
            Select::Nearest => {
                // Strictly-less, first index on exact distance ties —
                // the kd-tree's documented rule.
                if d2 < best_d2 {
                    best_d2 = d2;
                    best_e = e;
                    best = j;
                }
            }
        }
    }
    match certify_decision(
        StationId(best),
        best_e,
        sum,
        cert.frozen_lo,
        cert.frozen_hi,
        cert.noise,
        cert.beta,
    ) {
        Certified::Answer(a) => Some(a),
        Certified::Fallback => None,
    }
}

/// The tile-pruned `sinr_batch` executor: Morton-ordered tiles (the
/// locality the per-point path already had) plus a certified
/// **exact-zero bulk fill** — the one value-level prune that preserves
/// bit-identity. Unlike reception *decisions*, SINR *values* depend on
/// the serial kernel's exact summation, so a tile can only be skipped
/// when every per-point value is provably the same bit pattern: station
/// `i`'s rounded energy is exactly `+0.0` everywhere in the tile (its
/// envelope top is `0.0` — monotone rounded `1/d²` arithmetic, so only
/// claimed for `α = 2`) while the denominator is certifiably positive,
/// making every quotient exactly `+0.0`. All other tiles evaluate
/// `exact` per point, so answers are bit-identical to the serial path
/// for every input.
///
/// In the returned [`TileStats`], `pruned_tiles` counts bulk-filled
/// tiles (their points never ran `exact`), `fallback_points` counts
/// per-point evaluations, and `candidate_stations` stays 0 (no
/// candidate gather happens on this path).
///
/// # Panics
///
/// Panics if `station` is out of range or the slice lengths differ.
pub fn sinr_batch_tiled<F>(
    eval: &SinrEvaluator,
    station: StationId,
    points: &[Point],
    out: &mut [f64],
    cfg: &TileConfig,
    exact: F,
) -> TileStats
where
    F: Fn(Point) -> f64 + Sync,
{
    assert_eq!(
        points.len(),
        out.len(),
        "batch_map: {} points but {} output slots",
        points.len(),
        out.len()
    );
    let (xs, ys, ws) = eval.soa();
    let n = xs.len();
    assert!(station.0 < n, "station {station} out of range");
    let i = station.0;
    let alpha = eval.alpha();
    let noise = eval.noise();
    let tile = cfg.tile_points.max(1);
    let order = morton_order(points);
    let slots = OutputSlots::new(out);
    let num_tiles = order.len().div_ceil(tile);
    let pruned_tiles = AtomicU64::new(0);
    let fallback_points = AtomicU64::new(0);
    steal_tiles::<(), _>(num_tiles, |t, _scratch| {
        let idxs = &order[t * tile..((t + 1) * tile).min(order.len())];
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut finite = true;
        for &k in idxs {
            let p = points[k as usize];
            if !(p.x.is_finite() && p.y.is_finite()) {
                finite = false;
                break;
            }
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        // The bulk-zero certificate. Monotonicity of the rounded energy
        // in the distance holds for the division kernel (`1/d²` and the
        // product with the power are correctly rounded, hence weakly
        // monotone); `powf` makes no such promise, so `α ≠ 2` always
        // takes the per-point path.
        let mut bulk_zero = false;
        if finite && alpha == 2.0 {
            let (d_min_i, d_max_i) = dist2_range_to_box(min_x, min_y, max_x, max_y, xs[i], ys[i]);
            let (_, hi_i) = energy_envelope(InverseSquare, ws[i], d_min_i, d_max_i, BOUND_MARGIN);
            if hi_i == 0.0 {
                // Energy is exactly +0.0 tile-wide; the quotient is
                // +0.0 iff the denominator is positive. Noise settles
                // it; otherwise some other station must have a positive
                // certified energy floor over the tile.
                bulk_zero = noise > 0.0
                    || (0..n).any(|j| {
                        if j == i {
                            return false;
                        }
                        let (_, d_max) =
                            dist2_range_to_box(min_x, min_y, max_x, max_y, xs[j], ys[j]);
                        let (lo, _) =
                            energy_envelope(InverseSquare, ws[j], 1.0, d_max, BOUND_MARGIN);
                        lo > 0.0
                    });
            }
        }
        if bulk_zero {
            pruned_tiles.fetch_add(1, Ordering::Relaxed);
            for &k in idxs {
                slots.write(k as usize, 0.0);
            }
            return;
        }
        fallback_points.fetch_add(idxs.len() as u64, Ordering::Relaxed);
        for &k in idxs {
            let p = points[k as usize];
            let v = exact(p);
            #[cfg(debug_assertions)]
            if finite {
                // Cross-check the value against the cell certificate —
                // the interval layer and the exact kernels must agree.
                let cert = cell_certificate(
                    eval,
                    Point::new(min_x, min_y),
                    Point::new(max_x, max_y),
                    None,
                );
                let iv = cert.sinr(station);
                debug_assert!(
                    iv.contains(v),
                    "sinr {v} of {station} at {p} outside certified [{}, {}]",
                    iv.lo,
                    iv.hi
                );
            }
            slots.write(k as usize, v);
        }
    });
    TileStats {
        points: points.len() as u64,
        tiles: num_tiles as u64,
        pruned_tiles: pruned_tiles.into_inner(),
        candidate_stations: 0,
        fallback_points: fallback_points.into_inner(),
    }
}

#[cfg(test)]
mod cert_tests {
    use super::*;
    use crate::network::Network;

    fn nets() -> Vec<Network> {
        vec![
            Network::uniform(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(4.0, 0.0),
                    Point::new(1.0, 3.0),
                ],
                0.0,
                2.0,
            )
            .unwrap(),
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 0.4).unwrap(),
            Network::builder()
                .station_with_power(Point::new(0.0, 0.0), 4.0)
                .station(Point::new(3.0, 0.0))
                .station_with_power(Point::new(0.0, 5.0), 0.5)
                .background_noise(0.01)
                .threshold(1.5)
                .build()
                .unwrap(),
            Network::builder()
                .station(Point::new(0.0, 0.0))
                .station(Point::new(4.0, 1.0))
                .path_loss(4.0)
                .threshold(2.0)
                .build()
                .unwrap(),
            Network::uniform(
                vec![Point::ORIGIN, Point::ORIGIN, Point::new(3.0, 0.0)],
                0.0,
                2.0,
            )
            .unwrap(),
        ]
    }

    /// Sample points of the closed cell `[min, max]`: corners, edge
    /// midpoints, center, and an interior 3×3 lattice.
    fn samples(min: Point, max: Point) -> Vec<Point> {
        let mut pts = Vec::new();
        for fx in [0.0, 0.25, 0.5, 0.75, 1.0] {
            for fy in [0.0, 0.25, 0.5, 0.75, 1.0] {
                pts.push(Point::new(
                    min.x + fx * (max.x - min.x),
                    min.y + fy * (max.y - min.y),
                ));
            }
        }
        pts
    }

    fn check_cert_sound(eval: &SinrEvaluator, cert: &CellCert, min: Point, max: Point) {
        let n = eval.len();
        for p in samples(min, max) {
            let loc = eval.locate(p);
            match cert.decision() {
                CellDecision::Reception(i) => assert_eq!(
                    loc,
                    Located::Reception(i),
                    "cell [{min:?},{max:?}] certified Reception({i}) but locate({p:?}) = {loc:?}"
                ),
                CellDecision::Silent => assert_eq!(
                    loc,
                    Located::Silent,
                    "cell [{min:?},{max:?}] certified Silent but locate({p:?}) = {loc:?}"
                ),
                CellDecision::Mixed => {}
            }
            for j in 0..n {
                let v = eval.sinr(StationId(j), p);
                let iv = cert.sinr(StationId(j));
                assert!(
                    iv.contains(v),
                    "sinr {v} of station {j} at {p:?} outside certified [{}, {}] over [{min:?},{max:?}]",
                    iv.lo,
                    iv.hi
                );
            }
        }
    }

    #[test]
    fn cell_certificates_sound_on_fixture_grids() {
        for net in nets() {
            let eval = SinrEvaluator::new(&net);
            let steps = 8;
            let half = 6.0;
            let w = 2.0 * half / steps as f64;
            for r in 0..steps {
                for c in 0..steps {
                    let min = Point::new(-half + c as f64 * w, -half + r as f64 * w);
                    let max = Point::new(min.x + w, min.y + w);
                    let cert = eval.sinr_bounds_cell(min, max, None);
                    check_cert_sound(&eval, &cert, min, max);
                }
            }
        }
    }

    #[test]
    fn chained_certificates_sound_and_prune() {
        let net = crate::gen::random_uniform_network(7, 200, 40.0, 0.01, 2.0).unwrap();
        let eval = SinrEvaluator::new(&net);
        let root_min = Point::new(-40.0, -40.0);
        let root_max = Point::new(40.0, 40.0);
        let root = eval.sinr_bounds_cell(root_min, root_max, None);
        let mut min_cands = usize::MAX;
        // Three levels of quadtree refinement down one diagonal, checking
        // soundness at every level and that freezing actually bites.
        let mut min = root_min;
        let mut max = root_max;
        let mut parent = root;
        for _ in 0..5 {
            let mid = Point::new(0.5 * (min.x + max.x), 0.5 * (min.y + max.y));
            max = mid;
            min = Point::new(0.5 * (min.x + mid.x), 0.5 * (min.y + mid.y));
            let child = eval.sinr_bounds_cell(min, max, Some(&parent));
            check_cert_sound(&eval, &child, min, max);
            // Chained answers must match the unchained certificate's
            // interval soundness too (fresh envelopes, no inheritance).
            let fresh = eval.sinr_bounds_cell(min, max, None);
            check_cert_sound(&eval, &fresh, min, max);
            min_cands = min_cands.min(child.candidates());
            parent = child;
        }
        assert!(
            min_cands < 200,
            "five levels of refinement never froze a single station"
        );
    }

    #[test]
    fn degenerate_cells_answer_mixed() {
        let net = nets().remove(0);
        let eval = SinrEvaluator::new(&net);
        // Non-finite corner.
        let cert = eval.sinr_bounds_cell(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0), None);
        assert_eq!(cert.decision(), CellDecision::Mixed);
        for j in 0..eval.len() {
            let iv = cert.sinr(StationId(j));
            assert_eq!(iv.lo, 0.0);
            assert_eq!(iv.hi, f64::INFINITY);
        }
        // A station inside the cell: its envelope top is ∞, so no
        // uniform claim survives.
        let cert = eval.sinr_bounds_cell(Point::new(-1.0, -1.0), Point::new(1.0, 1.0), None);
        assert_eq!(cert.decision(), CellDecision::Mixed);
        // Point cell exactly on a co-located pair (last fixture).
        let net = nets().pop().unwrap();
        let eval = SinrEvaluator::new(&net);
        let cert = eval.sinr_bounds_cell(Point::ORIGIN, Point::ORIGIN, None);
        assert_eq!(cert.decision(), CellDecision::Mixed);
        check_cert_sound(&eval, &cert, Point::ORIGIN, Point::ORIGIN);
    }

    #[test]
    fn sinr_batch_tiled_bulk_zero_matches_serial() {
        // One station astronomically far away: its energy rounds to
        // +0.0 everywhere near the origin, so every tile bulk-fills.
        let mut pts = vec![Point::new(1e200, 0.0)];
        for k in 0..160 {
            let a = k as f64 * std::f64::consts::FRAC_PI_8;
            pts.push(Point::new(3.0 * a.cos() + 0.01 * k as f64, 3.0 * a.sin()));
        }
        let net = Network::uniform(pts, 0.05, 2.0).unwrap();
        let eval = SinrEvaluator::new(&net);
        let far = StationId(0);
        let queries: Vec<Point> = (0..2048)
            .map(|k| {
                let x = (k % 64) as f64 * 0.1 - 3.2;
                let y = (k / 64) as f64 * 0.2 - 3.2;
                Point::new(x, y)
            })
            .collect();
        let cfg = TileConfig::default();
        let mut tiled = vec![f64::NAN; queries.len()];
        let stats = sinr_batch_tiled(&eval, far, &queries, &mut tiled, &cfg, |p| {
            eval.sinr(far, p)
        });
        assert!(stats.pruned_tiles > 0, "no tile took the bulk-zero path");
        for (k, p) in queries.iter().enumerate() {
            let serial = eval.sinr(far, *p);
            assert_eq!(
                tiled[k].to_bits(),
                serial.to_bits(),
                "tiled sinr differs from serial at {p:?}"
            );
        }
        // And a near station (never bulk-fillable) stays bit-identical
        // through the per-point fallback.
        let near = StationId(1);
        let mut tiled_near = vec![f64::NAN; queries.len()];
        sinr_batch_tiled(&eval, near, &queries, &mut tiled_near, &cfg, |p| {
            eval.sinr(near, p)
        });
        for (k, p) in queries.iter().enumerate() {
            assert_eq!(tiled_near[k].to_bits(), eval.sinr(near, *p).to_bits());
        }
    }
}
