//! Spatially-coherent tiled batch execution.
//!
//! The per-point batch path treats a 100k-point `locate_batch` as 100k
//! independent queries: every point pays a full station scan (or its own
//! kd-tree walk). But SINR diagrams have exploitable spatial structure —
//! reception zones are fat and convex (Theorem 1 / Theorem 4.2), so
//! *nearby query points share almost all of their per-point work*. This
//! module is the batch-level amortization of that observation (the
//! regime of Aronov & Katz's batched point location): sort the batch
//! into Morton-ordered spatial tiles, compute a **shared, certified
//! candidate set** once per tile, and run the SIMD kernels over short
//! contiguous candidate columns instead of the whole network.
//!
//! ## The pipeline
//!
//! 1. **Morton ordering** — each query point is mapped to a 16-bit ×
//!    16-bit grid cell over the batch's bounding box and the cells are
//!    interleaved into a Z-order key; a stable radix sort by that key
//!    yields an index *permutation* (the input and output slices are
//!    never reordered — answers land at their original positions, so the
//!    output is positionally identical to the per-point path).
//! 2. **Per-tile candidate pruning** — consecutive runs of
//!    [`TileConfig::tile_points`] sorted points form a tile. One `O(n)`
//!    pass over the station columns computes each station's certified
//!    energy envelope over the tile's bounding box
//!    ([`crate::bounds::energy_envelope`]); stations whose envelope top
//!    is *provably dominated* (below the best envelope bottom `M`) can
//!    never be the strongest station for any point of the tile and are
//!    dropped from the per-point scan. Their interference is not
//!    dropped — it is carried as a certified residual interval
//!    `[L_R, U_R]` (the sums of the pruned envelopes).
//! 3. **Certified per-point decision** — each point scans only the
//!    gathered candidate columns (through the same SIMD kernels as the
//!    full scans — AVX-512/AVX2/SSE2/portable). Per-station energies are
//!    bit-identical to the full scan's by kernel contract, so the argmax
//!    (or nearest-station) choice is *exact*. The reception test is then
//!    evaluated at both ends of the residual interval: if both ends
//!    agree, the decision is certified and emitted; if they disagree
//!    (the point sits within the interval's width of the `SINR = β`
//!    boundary), the point **falls back to the backend's own serial
//!    kernel** — never an approximate answer.
//!
//! ## The correctness contract
//!
//! Answers are **bit-identical** to the serial per-point path of the
//! same backend, for every input ordering — pinned by the
//! permutation-invariance and tiled-vs-serial differential suites. The
//! certificates are one-sided with explicit rounding margins
//! ([`BOUND_MARGIN`], [`TOTAL_MARGIN`]), so floating-point looseness can
//! only ever cause a fallback (a perf event), never a changed answer.
//! Tiles whose points are not all finite fall back wholesale.
//!
//! Tiles are the work-stealing scheduler's unit (the same
//! [`BATCH_TILE`]-point granularity as the
//! per-point scheduler), so skewed tiles rebalance across cores exactly
//! like skewed points did.

use crate::bounds::{dist2_range_to_box, energy_envelope};
use crate::engine::steal::OutputSlots;
use crate::engine::{
    GeneralAlpha, InverseSquare, Located, PathLoss, SinrEvaluator, BATCH_TILE,
    PARALLEL_BATCH_THRESHOLD,
};
use crate::simd::{self, SimdKernel};
use crate::station::StationId;
use sinr_geometry::Point;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Relative widening applied to each station's per-tile energy envelope
/// so it certifiably brackets the kernels' rounded energies (worst case
/// a few ulps ≈ `1e-15`; four orders of magnitude of slack).
pub const BOUND_MARGIN: f64 = 1e-12;

/// Relative widening applied to the total-energy interval before the
/// certified reception test, absorbing every summation-order difference
/// between kernels (compensated or plain, any lane count, any station
/// count the engine supports). Points whose reception margin is tighter
/// than this fall back to the serial kernel.
pub const TOTAL_MARGIN: f64 = 1e-8;

/// Below this many stations the pruned tile path is not engaged by the
/// default config: the full scan is already a few dozen nanoseconds, so
/// Morton sorting and per-tile envelopes would cost more than they save.
pub const TILED_MIN_STATIONS: usize = 128;

/// Tuning knobs of the tiled executor.
///
/// The defaults are the shared batch granularity
/// ([`BATCH_TILE`] points per tile — one knob
/// for both the work-stealing scheduler and the spatial tiler) and the
/// thresholds the engines ship with; benches and differential tests
/// construct custom configs to sweep the tile size or force the tiled
/// path onto small inputs.
#[derive(Debug, Clone, Copy)]
pub struct TileConfig {
    /// Query points per spatial tile (and per stolen work unit).
    pub tile_points: usize,
    /// Minimum station count for the pruned path to pay for itself.
    pub min_stations: usize,
    /// Minimum batch length; shorter batches stay on the serial loop.
    pub min_points: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            tile_points: BATCH_TILE,
            min_stations: TILED_MIN_STATIONS,
            min_points: PARALLEL_BATCH_THRESHOLD,
        }
    }
}

impl TileConfig {
    /// True when a batch of `n_points` against `n_stations` should take
    /// the pruned tiled path under this config.
    pub fn engages(&self, n_points: usize, n_stations: usize) -> bool {
        n_points >= self.min_points && n_stations >= self.min_stations
    }
}

/// How the tiled executor selects each point's candidate transmitter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Select {
    /// Maximum-energy station (first index on exact energy ties) — the
    /// rule of the full scans ([`crate::engine::ExactScan`],
    /// [`crate::simd::SimdScan`]); exact for every network.
    MaxEnergy,
    /// Nearest station (first index on exact squared-distance ties) —
    /// the Observation-2.2 dispatch of
    /// [`crate::engine::VoronoiAssisted`]. Only equivalent to
    /// `MaxEnergy` for uniform power; callers must not use it otherwise
    /// (the engines never do).
    Nearest,
}

/// Aggregate observability of one tiled run (for benches and tests —
/// the counters say nothing about answers, which are always exact).
#[derive(Debug, Default, Clone, Copy)]
pub struct TileStats {
    /// Total query points.
    pub points: u64,
    /// Tiles processed.
    pub tiles: u64,
    /// Tiles that ran the pruned candidate path (the rest fell back
    /// wholesale: non-finite points, or pruning could not drop enough
    /// stations to pay for the gather).
    pub pruned_tiles: u64,
    /// Σ |candidate set| over pruned tiles (divide by `pruned_tiles`
    /// for the mean candidate count the per-point scans actually ran).
    pub candidate_stations: u64,
    /// Points whose certified decision was inconclusive and re-ran the
    /// backend's serial kernel.
    pub fallback_points: u64,
}

impl TileStats {
    /// Mean candidate-set size over the pruned tiles (`None` when no
    /// tile took the pruned path).
    pub fn mean_candidates(&self) -> Option<f64> {
        (self.pruned_tiles > 0).then(|| self.candidate_stations as f64 / self.pruned_tiles as f64)
    }
}

/// Spreads the low 16 bits of `v` to the even bit positions.
fn spread16(v: u32) -> u32 {
    let mut x = v & 0xFFFF;
    x = (x | (x << 8)) & 0x00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333;
    x = (x | (x << 1)) & 0x5555_5555;
    x
}

/// The Morton (Z-order) permutation of `points`: indices sorted by the
/// interleaved 16+16-bit grid cell over the batch bounding box, ties
/// (and non-finite points, which all map to the max key) in original
/// order — the sort is a stable two-pass radix, so the permutation is
/// deterministic for any input.
pub fn morton_order(points: &[Point]) -> Vec<u32> {
    assert!(
        points.len() <= u32::MAX as usize,
        "batches beyond u32::MAX points are unsupported"
    );
    let mut min_x = f64::INFINITY;
    let mut min_y = f64::INFINITY;
    let mut max_x = f64::NEG_INFINITY;
    let mut max_y = f64::NEG_INFINITY;
    for p in points {
        if p.x.is_finite() && p.y.is_finite() {
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
    }
    let scale_x = grid_scale(min_x, max_x);
    let scale_y = grid_scale(min_y, max_y);
    let mut keyed: Vec<(u32, u32)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let key = if p.x.is_finite() && p.y.is_finite() {
                // `as u32` saturates, so the top grid row stays in range.
                let gx = ((p.x - min_x) * scale_x) as u32;
                let gy = ((p.y - min_y) * scale_y) as u32;
                spread16(gx.min(0xFFFF)) | (spread16(gy.min(0xFFFF)) << 1)
            } else {
                u32::MAX
            };
            (key, i as u32)
        })
        .collect();
    // Stable LSD radix sort: O(n), and stability gives the
    // deterministic original-order tie rule for free. The digit width
    // follows the batch size — two 16-bit passes amortize their 64k
    // histograms only on large batches; smaller batches take four
    // 8-bit passes so a threshold-sized call does not pay ~1 MiB of
    // histogram zeroing to sort a few thousand keys.
    let (digit_bits, shifts): (u32, &[u32]) = if keyed.len() >= 1 << 15 {
        (16, &[0, 16])
    } else {
        (8, &[0, 8, 16, 24])
    };
    let mask = (1u32 << digit_bits) - 1;
    let mut aux = vec![(0u32, 0u32); keyed.len()];
    let mut counts = vec![0usize; 1 << digit_bits];
    for &shift in shifts {
        counts.iter_mut().for_each(|c| *c = 0);
        for &(k, _) in &keyed {
            counts[((k >> shift) & mask) as usize] += 1;
        }
        let mut pos = 0usize;
        for c in counts.iter_mut() {
            let n = *c;
            *c = pos;
            pos += n;
        }
        for &(k, i) in &keyed {
            let d = ((k >> shift) & mask) as usize;
            aux[counts[d]] = (k, i);
            counts[d] += 1;
        }
        std::mem::swap(&mut keyed, &mut aux);
    }
    keyed.into_iter().map(|(_, i)| i).collect()
}

/// Cells-per-unit for one axis of the Morton grid (0 collapses the axis
/// when the extent is degenerate or not finite).
fn grid_scale(min: f64, max: f64) -> f64 {
    let width = max - min;
    if width > 0.0 && width.is_finite() {
        65535.0 / width
    } else {
        0.0
    }
}

/// Runs `f(tile_index, &mut scratch)` over `0..num_tiles`, work-stolen
/// across the available cores through one atomic counter (inline when
/// one worker suffices). Each worker owns one `S` scratch value for the
/// whole run, so per-tile allocations amortize away.
///
/// This is the **one** work-stealing scheduler of the crate:
/// [`crate::engine::batch_map`]'s parallel branch and both tiled
/// executors here run through it, so the worker-count clamp and the
/// `fetch_add` claim protocol (which the `OutputSlots` soundness
/// argument leans on) exist in exactly one place.
pub(crate) fn steal_tiles<S: Default, F: Fn(usize, &mut S) + Sync>(num_tiles: usize, f: F) {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let workers = threads.min(num_tiles);
    if workers <= 1 {
        let mut scratch = S::default();
        for t in 0..num_tiles {
            f(t, &mut scratch);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut scratch = S::default();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= num_tiles {
                        break;
                    }
                    f(t, &mut scratch);
                }
            });
        }
    });
}

/// Morton-permuted tile scheduling for an arbitrary per-point function:
/// same answers as a serial loop of `f` (it *is* `f`, per point — only
/// the visit order and the thread placement change), with spatially
/// coherent tiles as the stealable work units. This is the
/// locality-only flavour of the executor — the Theorem-3 `PointLocator`
/// routes `locate_batch` through it so queries dispatching to the same
/// zone grid are processed together, and `sinr_batch` uses it for its
/// batch path.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
pub fn batch_map_morton<O, F>(points: &[Point], out: &mut [O], cfg: &TileConfig, f: F)
where
    O: Send,
    F: Fn(Point) -> O + Sync,
{
    assert_eq!(
        points.len(),
        out.len(),
        "batch_map: {} points but {} output slots",
        points.len(),
        out.len()
    );
    let tile = cfg.tile_points.max(1);
    if points.len() < cfg.min_points {
        for (p, slot) in points.iter().zip(out.iter_mut()) {
            *slot = f(*p);
        }
        return;
    }
    let order = morton_order(points);
    let slots = OutputSlots::new(out);
    let num_tiles = order.len().div_ceil(tile);
    steal_tiles::<(), _>(num_tiles, |t, _scratch| {
        let idxs = &order[t * tile..((t + 1) * tile).min(order.len())];
        for &i in idxs {
            // The Morton order is a permutation, so tiles own disjoint
            // original indices and every slot is written exactly once.
            slots.write(i as usize, f(points[i as usize]));
        }
    });
}

/// Per-worker scratch of the pruned executor: the per-station envelope
/// columns and the gathered candidate SoA columns, reused across tiles.
#[derive(Default)]
struct Scratch {
    lb: Vec<f64>,
    ub: Vec<f64>,
    cxs: Vec<f64>,
    cys: Vec<f64>,
    cws: Vec<f64>,
    cidx: Vec<u32>,
}

/// The reception test of [`SinrEvaluator::decide`] evaluated at an
/// assumed total energy — the exact expression shape of the serial
/// kernels, which is (weakly) anti-monotone in `total` under rounding,
/// making one-sided certification sound: reception at the interval's
/// top certifies reception at the kernel's true total, non-reception at
/// the bottom certifies silence.
#[inline]
pub(crate) fn receives_at_total(best_e: f64, total: f64, noise: f64, beta: f64) -> bool {
    let interference_plus_noise = (total - best_e) + noise;
    interference_plus_noise <= 0.0 || best_e >= beta * interference_plus_noise
}

/// The per-point outcome of a certified tile scan.
enum Certified {
    Answer(Located),
    /// The decision sits within the residual interval of the `β`
    /// boundary — re-run the backend's serial kernel.
    Fallback,
}

/// The tile-pruned batch executor behind
/// [`QueryEngine::locate_batch`](crate::engine::QueryEngine::locate_batch)
/// for the scan backends: Morton tiles, per-tile certified candidate
/// sets, SIMD candidate scans, certified decisions with serial-kernel
/// fallback (see the [module docs](self) for the pipeline and the
/// bit-identity contract).
///
/// `fallback` must be the *serial per-point kernel of the calling
/// backend* — it is consulted verbatim for non-finite tiles, unpruned
/// tiles and uncertifiable points, which is what makes the executor's
/// answers bit-identical to that backend's serial path. `kernel` drives
/// the candidate scans (any supported kernel yields identical answers;
/// backends pass their pinned kernel). `Select::Nearest` additionally
/// requires uniform power (the Observation-2.2 precondition — the
/// caller's contract, as for [`crate::engine::VoronoiAssisted`]).
///
/// Returns run statistics; answers are written into `out` at their
/// original positions.
///
/// # Panics
///
/// Panics if `points` and `out` have different lengths.
pub fn locate_batch_tiled<F>(
    eval: &SinrEvaluator,
    kernel: SimdKernel,
    select: Select,
    points: &[Point],
    out: &mut [Located],
    cfg: &TileConfig,
    fallback: F,
) -> TileStats
where
    F: Fn(Point) -> Located + Sync,
{
    assert_eq!(
        points.len(),
        out.len(),
        "batch_map: {} points but {} output slots",
        points.len(),
        out.len()
    );
    debug_assert!(
        select == Select::MaxEnergy || eval.is_uniform_power(),
        "Select::Nearest requires uniform power (Observation 2.2)"
    );
    let tile = cfg.tile_points.max(1);
    let order = morton_order(points);
    let slots = OutputSlots::new(out);
    let num_tiles = order.len().div_ceil(tile);
    let (xs, ys, ws) = eval.soa();
    let n = xs.len();
    let alpha = eval.alpha();
    let noise = eval.noise();
    let beta = eval.beta();
    let pruned_tiles = AtomicU64::new(0);
    let candidate_stations = AtomicU64::new(0);
    let fallback_points = AtomicU64::new(0);
    steal_tiles::<Scratch, _>(num_tiles, |t, scratch| {
        let idxs = &order[t * tile..((t + 1) * tile).min(order.len())];
        // Tile bounding box; a non-finite point poisons every envelope,
        // so such tiles run the serial kernel wholesale.
        let mut min_x = f64::INFINITY;
        let mut min_y = f64::INFINITY;
        let mut max_x = f64::NEG_INFINITY;
        let mut max_y = f64::NEG_INFINITY;
        let mut finite = true;
        for &i in idxs {
            let p = points[i as usize];
            if !(p.x.is_finite() && p.y.is_finite()) {
                finite = false;
                break;
            }
            min_x = min_x.min(p.x);
            min_y = min_y.min(p.y);
            max_x = max_x.max(p.x);
            max_y = max_y.max(p.y);
        }
        if !finite {
            for &i in idxs {
                slots.write(i as usize, fallback(points[i as usize]));
            }
            return;
        }
        // Certified per-station energy envelopes over the tile box, and
        // the best envelope bottom M: a station whose top is below M is
        // provably never the strongest anywhere in the tile.
        scratch.lb.clear();
        scratch.ub.clear();
        let mut m = f64::NEG_INFINITY;
        let k_general = GeneralAlpha::new(alpha);
        for j in 0..n {
            let (d_min, d_max) = dist2_range_to_box(min_x, min_y, max_x, max_y, xs[j], ys[j]);
            let (lo, hi) = if alpha == 2.0 {
                energy_envelope(InverseSquare, ws[j], d_min, d_max, BOUND_MARGIN)
            } else {
                energy_envelope(k_general, ws[j], d_min, d_max, BOUND_MARGIN)
            };
            scratch.lb.push(lo);
            scratch.ub.push(hi);
            if lo > m {
                m = lo;
            }
        }
        // Candidate gather (ascending index — the argmax/argmin
        // first-index tie rules ride on this) and the residual
        // interference interval over the pruned stations.
        scratch.cxs.clear();
        scratch.cys.clear();
        scratch.cws.clear();
        scratch.cidx.clear();
        let mut resid_lo = 0.0f64;
        let mut resid_hi = 0.0f64;
        for j in 0..n {
            if scratch.ub[j] >= m {
                scratch.cidx.push(j as u32);
                scratch.cxs.push(xs[j]);
                scratch.cys.push(ys[j]);
                scratch.cws.push(ws[j]);
            } else {
                resid_lo += scratch.lb[j];
                resid_hi += scratch.ub[j];
            }
        }
        let n_c = scratch.cidx.len();
        // Pruning that keeps ~everything cannot pay for the gather and
        // the certification: run the serial kernel directly.
        if n_c * 8 >= n * 7 {
            for &i in idxs {
                slots.write(i as usize, fallback(points[i as usize]));
            }
            return;
        }
        pruned_tiles.fetch_add(1, Ordering::Relaxed);
        candidate_stations.fetch_add(n_c as u64, Ordering::Relaxed);
        let mut tile_fallbacks = 0u64;
        for &i in idxs {
            let p = points[i as usize];
            let outcome = match select {
                Select::MaxEnergy => {
                    certify_max_energy(kernel, alpha, scratch, p, resid_lo, resid_hi, noise, beta)
                }
                Select::Nearest => {
                    certify_nearest(alpha, scratch, p, resid_lo, resid_hi, noise, beta)
                }
            };
            let answer = match outcome {
                Certified::Answer(a) => a,
                Certified::Fallback => {
                    tile_fallbacks += 1;
                    fallback(p)
                }
            };
            slots.write(i as usize, answer);
        }
        if tile_fallbacks > 0 {
            fallback_points.fetch_add(tile_fallbacks, Ordering::Relaxed);
        }
    });
    TileStats {
        points: points.len() as u64,
        tiles: num_tiles as u64,
        pruned_tiles: pruned_tiles.into_inner(),
        candidate_stations: candidate_stations.into_inner(),
        fallback_points: fallback_points.into_inner(),
    }
}

/// Certified decision from the interval `[S_C + L_R, S_C + U_R]`
/// (widened by [`TOTAL_MARGIN`]) around every kernel's rounded total.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_decision(
    best: StationId,
    best_e: f64,
    s_c: f64,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    let hi = (s_c + resid_hi) * (1.0 + TOTAL_MARGIN);
    let lo = (s_c + resid_lo) * (1.0 - TOTAL_MARGIN);
    if receives_at_total(best_e, hi, noise, beta) {
        Certified::Answer(Located::Reception(best))
    } else if !receives_at_total(best_e, lo, noise, beta) {
        Certified::Answer(Located::Silent)
    } else {
        Certified::Fallback
    }
}

/// One certified point in `MaxEnergy` mode: SIMD argmax scan of the
/// candidate columns (per-station energies bit-identical to the full
/// scan, so the argmax index is exact), then the certified decision.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_max_energy(
    kernel: SimdKernel,
    alpha: f64,
    scratch: &Scratch,
    p: Point,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    match simd::scan_slices(kernel, alpha, &scratch.cxs, &scratch.cys, &scratch.cws, p) {
        // Coincident stations always survive pruning (their envelope
        // top is ∞), so the first coincident candidate is the first
        // coincident station of the whole scan.
        Err(c) => Certified::Answer(Located::Reception(StationId(scratch.cidx[c] as usize))),
        Ok(scan) => certify_decision(
            StationId(scratch.cidx[scan.best] as usize),
            scan.best_energy,
            scan.total,
            resid_lo,
            resid_hi,
            noise,
            beta,
        ),
    }
}

/// One certified point in `Nearest` mode: exact nearest candidate by
/// squared distance (strictly-less, first index on exact ties — the
/// kd-tree's documented rule; the nearest station always survives
/// pruning since for uniform power it is also the strongest), then the
/// certified decision with its energy.
#[inline]
#[allow(clippy::too_many_arguments)]
fn certify_nearest(
    alpha: f64,
    scratch: &Scratch,
    p: Point,
    resid_lo: f64,
    resid_hi: f64,
    noise: f64,
    beta: f64,
) -> Certified {
    let mut best = 0usize;
    let mut best_d2 = f64::INFINITY;
    let mut sum = 0.0f64;
    let k_general = GeneralAlpha::new(alpha);
    for c in 0..scratch.cidx.len() {
        let dx = scratch.cxs[c] - p.x;
        let dy = scratch.cys[c] - p.y;
        let d2 = dx * dx + dy * dy;
        if d2 < best_d2 {
            best_d2 = d2;
            best = c;
        }
        // Plain positive sum: only feeds the certified bounds, whose
        // TOTAL_MARGIN dwarfs the uncompensated rounding.
        sum += if alpha == 2.0 {
            InverseSquare.attenuation(d2) * scratch.cws[c]
        } else {
            k_general.attenuation(d2) * scratch.cws[c]
        };
    }
    let station = StationId(scratch.cidx[best] as usize);
    if best_d2 == 0.0 {
        // At a station's position: reception by the `{sᵢ}` clause, tie
        // toward the smallest index — the serial tree path's rule.
        return Certified::Answer(Located::Reception(station));
    }
    // The candidate's energy, computed with the exact operation
    // sequence of every scan kernel (`RN(RN(attenuation)·ψ)`).
    let best_e = if alpha == 2.0 {
        InverseSquare.attenuation(best_d2) * scratch.cws[best]
    } else {
        k_general.attenuation(best_d2) * scratch.cws[best]
    };
    certify_decision(station, best_e, sum, resid_lo, resid_hi, noise, beta)
}
