//! RCU-style shared engine snapshots: one immutable engine per
//! (network, backend, revision), served to any number of concurrent
//! readers behind an [`Arc`].
//!
//! ## Why
//!
//! The SINR diagram is a pure function of the network (the paper's
//! model: zones are determined by `⟨S, ψ, N, β⟩` alone), so between
//! mutations an engine is immutable — N readers do not need N engines.
//! The share-nothing serving model (one engine clone per session)
//! multiplies every kd-tree and SoA column by the session count; this
//! module replaces it with **read-copy-update** publication:
//!
//! * Readers call [`SnapshotStore::load`] and get an
//!   `Arc<EngineSnapshot>` — a cheap pointer clone under a mutex held
//!   for nanoseconds, never blocked by writers doing real work.
//! * A writer calls [`SnapshotStore::advance`] with the deltas of a
//!   mutation: the store's private **master** engine catches up
//!   incrementally (the PR 3 epoch/delta path — no rebuild), is cloned,
//!   and the clone is [frozen](QueryEngine::freeze) and published as
//!   the new current snapshot.
//! * In-flight batches keep answering on whatever `Arc` they loaded —
//!   frozen snapshots are *fresh forever* at their pinned revision, so
//!   a mutation mid-batch can never flip them stale. The old snapshot
//!   deallocates when the last reader drops its `Arc` (classic RCU
//!   grace-period-by-refcount).
//!
//! Publication costs one `O(n)` engine clone per revision — paid by the
//! mutator, once, regardless of reader count — instead of one engine
//! *rebuild or catch-up per session* per revision.
//!
//! ## Staleness contract
//!
//! A published snapshot intentionally steps outside the live staleness
//! machinery: [`EngineSnapshot::engine`] always reports fresh at
//! [`EngineSnapshot::revision`]. Readers that need the *current*
//! revision must re-`load` — the store's revision fence, mirrored by
//! `sinr-server`'s protocol (every response carries the revision it
//! answers for).

use crate::engine::{BoxedEngine, QueryEngine};
use crate::network::{Network, NetworkDelta};
use std::sync::{Arc, Mutex};

/// An immutable engine pinned at one network revision, shared behind an
/// [`Arc`] by every reader of that revision.
///
/// The wrapped engine is [frozen](QueryEngine::freeze): it answers for
/// [`EngineSnapshot::revision`] forever, regardless of what the source
/// network does next.
#[derive(Debug, Clone)]
pub struct EngineSnapshot {
    engine: BoxedEngine,
    revision: u64,
    stations: usize,
}

impl EngineSnapshot {
    /// Freezes `engine` (pinning it at its current revision) and wraps
    /// it; `stations` is the station count at that revision (recorded
    /// here because [`QueryEngine`] does not expose it, and servers
    /// need it to range-check station ids without consulting the —
    /// possibly already mutated — live network).
    pub fn freeze(mut engine: BoxedEngine, stations: usize) -> EngineSnapshot {
        engine.freeze();
        let revision = engine.revision();
        EngineSnapshot {
            engine,
            revision,
            stations,
        }
    }

    /// The frozen engine. Always fresh at [`EngineSnapshot::revision`].
    pub fn engine(&self) -> &BoxedEngine {
        &self.engine
    }

    /// The network revision this snapshot answers for.
    pub fn revision(&self) -> u64 {
        self.revision
    }

    /// The station count at this revision.
    pub fn stations(&self) -> usize {
        self.stations
    }

    /// The stable backend name of the wrapped engine.
    pub fn backend_name(&self) -> &'static str {
        self.engine.backend_name()
    }
}

/// Why a [`SnapshotStore`] can no longer serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// A mutation produced a network the store's backend cannot
    /// represent (e.g. the Theorem-3 locator's uniform-power
    /// precondition). The store is poisoned: every later
    /// [`SnapshotStore::load`]/[`SnapshotStore::advance`] repeats this
    /// error, and readers should detach.
    Unsupported(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Unsupported(msg) => {
                write!(f, "snapshot store cannot represent the network: {msg}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// The publication side of RCU: a private master engine tracking one
/// live [`Network`], and the currently published [`EngineSnapshot`].
///
/// One store serves one (network, backend) pair; a server keeps one
/// store per backend a client has attached with (see `sinr-server`'s
/// registry). All methods take `&self` — the store is shared behind an
/// [`Arc`] by every session attached to it.
#[derive(Debug)]
pub struct SnapshotStore {
    inner: Mutex<StoreInner>,
}

#[derive(Debug)]
struct StoreInner {
    /// Tracks the live network incrementally (shares its epoch cell, so
    /// deltas apply and staleness is observable). Never queried
    /// directly — cloned and frozen into each published snapshot.
    master: BoxedEngine,
    published: Arc<EngineSnapshot>,
    /// Set when a mutation escaped the backend's representable space;
    /// sticky (see [`SnapshotError::Unsupported`]).
    poisoned: Option<String>,
}

impl SnapshotStore {
    /// Wraps a freshly built engine for `net` and publishes the initial
    /// snapshot at the current revision.
    pub fn new(net: &Network, master: BoxedEngine) -> SnapshotStore {
        let published = Arc::new(EngineSnapshot::freeze(master.clone(), net.len()));
        SnapshotStore {
            inner: Mutex::new(StoreInner {
                master,
                published,
                poisoned: None,
            }),
        }
    }

    /// The currently published snapshot — an `Arc` clone under a
    /// briefly held mutex. Hold the returned `Arc` for the duration of
    /// a batch: concurrent [`SnapshotStore::advance`] calls publish
    /// *new* snapshots and never touch this one.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] once the store is poisoned.
    pub fn load(&self) -> Result<Arc<EngineSnapshot>, SnapshotError> {
        let inner = self.inner.lock().expect("snapshot store lock");
        match &inner.poisoned {
            Some(msg) => Err(SnapshotError::Unsupported(msg.clone())),
            None => Ok(Arc::clone(&inner.published)),
        }
    }

    /// The revision of the currently published snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] once the store is poisoned.
    pub fn revision(&self) -> Result<u64, SnapshotError> {
        self.load().map(|snap| snap.revision())
    }

    /// Catches the master up with a mutation of `net` (the deltas the
    /// mutation emitted, in order) and publishes a new snapshot.
    /// Incremental per delta ([`QueryEngine::apply`]); any refusal
    /// falls back to one full [`QueryEngine::sync`]. Idempotent on an
    /// already-current store (republishing nothing).
    ///
    /// Readers holding the previous `Arc` are unaffected — their
    /// snapshot stays frozen-fresh at its own revision.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Unsupported`] when the backend cannot represent
    /// the mutated network at all; the store is then poisoned and the
    /// previously published snapshot is withdrawn.
    pub fn advance(
        &self,
        net: &Network,
        deltas: &[NetworkDelta],
    ) -> Result<Arc<EngineSnapshot>, SnapshotError> {
        let mut inner = self.inner.lock().expect("snapshot store lock");
        if let Some(msg) = &inner.poisoned {
            return Err(SnapshotError::Unsupported(msg.clone()));
        }
        for delta in deltas {
            if inner.master.apply(delta).is_err() {
                break;
            }
        }
        if inner.master.is_stale() {
            if let Err(e) = inner.master.sync(net) {
                let msg = e.to_string();
                inner.poisoned = Some(msg.clone());
                return Err(SnapshotError::Unsupported(msg));
            }
        }
        if inner.master.revision() != inner.published.revision() {
            inner.published = Arc::new(EngineSnapshot::freeze(inner.master.clone(), net.len()));
        }
        Ok(Arc::clone(&inner.published))
    }

    /// The stable backend name of the master engine.
    pub fn backend_name(&self) -> &'static str {
        self.inner
            .lock()
            .expect("snapshot store lock")
            .master
            .backend_name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ExactScan, Located};
    use crate::network::SurgeryOp;
    use crate::station::StationId;
    use sinr_geometry::Point;

    fn net() -> Network {
        Network::uniform(
            vec![
                Point::new(-3.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(0.0, 4.0),
            ],
            0.01,
            1.5,
        )
        .unwrap()
    }

    #[test]
    fn frozen_snapshot_survives_source_mutation() {
        let mut net = net();
        let store = SnapshotStore::new(&net, BoxedEngine::exact_scan(&net));
        let snap0 = store.load().unwrap();
        assert_eq!(snap0.revision(), 0);
        assert_eq!(snap0.stations(), 3);

        let p = Point::new(-2.5, 0.0);
        let before = snap0.engine().try_locate(p).unwrap();

        // Mutate the live network: the snapshot must stay fresh and
        // keep answering for revision 0.
        let delta = net
            .apply_op(&SurgeryOp::Move {
                id: StationId(2),
                to: Point::new(0.5, -1.0),
            })
            .unwrap();
        assert_eq!(
            snap0.engine().try_locate(p).unwrap(),
            before,
            "frozen snapshot changed its answer after a source mutation"
        );
        assert_eq!(snap0.revision(), 0);

        // Advance publishes a NEW snapshot; the old Arc is untouched.
        let snap1 = store.advance(&net, std::slice::from_ref(&delta)).unwrap();
        assert_eq!(snap1.revision(), 1);
        assert!(!Arc::ptr_eq(&snap0, &snap1));
        assert_eq!(snap0.revision(), 0);
        snap0.engine().try_locate(p).unwrap();

        // The new snapshot answers bit-identically to a fresh engine at
        // the mutated revision.
        let fresh = ExactScan::new(&net);
        let probes: Vec<Point> = (0..200)
            .map(|k| Point::new((k % 20) as f64 * 0.4 - 4.0, (k / 20) as f64 * 0.5 - 2.0))
            .collect();
        let mut got = vec![Located::Silent; probes.len()];
        let mut want = vec![Located::Silent; probes.len()];
        snap1.engine().try_locate_batch(&probes, &mut got).unwrap();
        fresh.locate_batch(&probes, &mut want);
        assert_eq!(got, want);
    }

    #[test]
    fn advance_is_idempotent_and_load_shares_one_arc() {
        let mut net = net();
        let store = SnapshotStore::new(&net, BoxedEngine::simd_scan(&net));
        let a = store.load().unwrap();
        let b = store.load().unwrap();
        assert!(Arc::ptr_eq(&a, &b), "loads of one revision must share");

        let delta = net
            .apply_op(&SurgeryOp::SetPower {
                id: StationId(0),
                power: 1.0,
            })
            .unwrap();
        let c = store.advance(&net, std::slice::from_ref(&delta)).unwrap();
        let d = store.advance(&net, &[]).unwrap();
        assert!(
            Arc::ptr_eq(&c, &d),
            "advance on a current store must republish the same Arc"
        );
        assert_eq!(store.revision().unwrap(), 1);
    }

    #[test]
    fn old_snapshots_drop_on_last_release() {
        let mut net = net();
        let store = SnapshotStore::new(&net, BoxedEngine::exact_scan(&net));
        let old = store.load().unwrap();
        assert_eq!(Arc::strong_count(&old), 2, "store + this reader");
        let delta = net
            .apply_op(&SurgeryOp::Move {
                id: StationId(1),
                to: Point::new(2.0, 1.0),
            })
            .unwrap();
        store.advance(&net, std::slice::from_ref(&delta)).unwrap();
        // The store released its reference at publication; this reader
        // is the sole remaining owner — dropping it frees the engine.
        assert_eq!(Arc::strong_count(&old), 1);
    }
}
