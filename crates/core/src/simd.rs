//! Explicitly vectorized station scans — the [`SimdScan`] backend.
//!
//! [`super::engine::SinrEvaluator`] already stores the network in
//! structure-of-arrays layout (`xs` / `ys` / `powers`), so the per-point
//! scan is three linear streams begging to be processed several stations
//! per instruction. This module does exactly that:
//!
//! * **AVX-512F** (x86-64, detected at *runtime*): 8 × `f64` lanes —
//!   distance, attenuation, compensated accumulation and the argmax
//!   bookkeeping all stay in vector registers, with the comparisons in
//!   dedicated mask registers; one `vdivpd` per eight stations on the
//!   paper's `α = 2` fast path.
//! * **AVX2** (x86-64, detected at *runtime*): the same kernel at
//!   4 × `f64` lanes for machines without AVX-512.
//! * **SSE2** (x86-64 baseline, always available): the same kernel at
//!   2 × `f64` lanes.
//! * **Portable** (any architecture, and every `α ≠ 2` network): a
//!   4-lane *blocked* scalar kernel — plain Rust the optimizer is free
//!   to autovectorize, with identical lane semantics to the intrinsic
//!   paths. General-`α` attenuation needs `powf`, which has no vector
//!   form, so non-quadratic path loss always takes this kernel (the
//!   distance arithmetic and accumulation are still lane-blocked).
//!
//! ## Numerical contract
//!
//! The scalar kernels keep one Kahan–Babuška (Neumaier) accumulator; the
//! vector kernels keep one **per lane** — the same compensation step,
//! applied lane-wise — then merge the per-lane sums and compensation
//! terms through a scalar [`KahanSum`] and finish any remainder stations
//! (`n mod lanes`) serially on that same accumulator. Compensation is
//! therefore never dropped, but the summation *order* differs from the
//! scalar scan, so totals may differ by ordinary rounding. All
//! engine-equivalence guarantees are unchanged: answers match the ground
//! truth everywhere except within numeric tolerance of a `SINR = β`
//! decision boundary, exactly like [`super::engine::ExactScan`].
//!
//! The argmax tie rule is preserved exactly: each lane keeps the *first*
//! strictly-greater energy, and the lane merge breaks equal energies
//! toward the smallest station index — together that is the scalar
//! "first index wins" rule. Coincident points (`d² = 0`) are detected in
//! the vector loop with an exact compare and resolved to the smallest
//! station index, matching the scalar `Err(j)` path.
//!
//! ## Feature detection
//!
//! The instruction set is resolved **once, at construction**
//! ([`SimdScan::new`]) via `std::arch::is_x86_feature_detected!`, never
//! per query. The chosen kernel is observable through
//! [`SimdScan::kernel`] (and is emitted by the `engine_batch` bench JSON
//! lines), and [`SimdScan::with_kernel`] pins a specific kernel for
//! differential testing. Binaries need no special `RUSTFLAGS`: the
//! AVX-512 and AVX2 paths are compiled behind `#[target_feature]` and
//! only ever entered after the runtime check.
//!
//! This module is one of the two audited `unsafe` corners of the
//! workspace (`std::arch` intrinsics and the raw loads they require);
//! the other is the disjoint-slot output writer of the work-stealing
//! scheduler in [`crate::engine`]. The crate root keeps
//! `deny(unsafe_code)` everywhere else.
//!
//! ## Example
//!
//! ```
//! use sinr_core::engine::{Located, QueryEngine};
//! use sinr_core::simd::SimdScan;
//! use sinr_core::{Network, StationId};
//! use sinr_geometry::Point;
//!
//! let net = Network::uniform(
//!     vec![Point::new(0.0, 0.0), Point::new(6.0, 0.0)],
//!     0.0,
//!     2.0,
//! ).unwrap();
//! let engine = SimdScan::new(&net);
//! let queries = [Point::new(0.5, 0.0), Point::new(3.0, 0.0)];
//! let mut answers = [Located::Silent; 2];
//! engine.locate_batch(&queries, &mut answers);
//! assert_eq!(answers[0], Located::Reception(StationId(0)));
//! assert_eq!(answers[1], Located::Silent);
//! ```
#![allow(unsafe_code)]

use crate::engine::{
    batch_map, GeneralAlpha, InverseSquare, LocateError, Located, PathLoss, QueryEngine, Scan,
    SinrEvaluator, SyncError,
};
use crate::network::{Network, NetworkDelta};
use crate::station::StationId;
use sinr_algebra::KahanSum;
use sinr_geometry::Point;

/// The instruction set a [`SimdScan`] resolved to at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdKernel {
    /// 8 × `f64` AVX-512F lanes (x86-64, detected at runtime; the
    /// intrinsics are stable since Rust 1.89).
    Avx512,
    /// 4 × `f64` AVX2 lanes (x86-64, detected at runtime).
    Avx2,
    /// 2 × `f64` SSE2 lanes (part of the x86-64 baseline).
    Sse2,
    /// The portable 4-lane blocked scalar kernel (every architecture).
    Portable,
}

impl SimdKernel {
    /// Every kernel, widest first — the order `detect` prefers and the
    /// order differential tests iterate.
    pub const ALL: [SimdKernel; 4] = [
        SimdKernel::Avx512,
        SimdKernel::Avx2,
        SimdKernel::Sse2,
        SimdKernel::Portable,
    ];

    /// Number of `f64` lanes the kernel processes per step.
    pub fn lanes(self) -> usize {
        match self {
            SimdKernel::Avx512 => 8,
            SimdKernel::Avx2 => 4,
            SimdKernel::Sse2 => 2,
            SimdKernel::Portable => PORTABLE_LANES,
        }
    }

    /// Short stable name (used in bench JSON lines).
    pub fn name(self) -> &'static str {
        match self {
            SimdKernel::Avx512 => "avx512",
            SimdKernel::Avx2 => "avx2",
            SimdKernel::Sse2 => "sse2",
            SimdKernel::Portable => "portable",
        }
    }

    /// True when this kernel can run on the current machine.
    pub fn is_supported(self) -> bool {
        match self {
            SimdKernel::Portable => true,
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Sse2 => true,
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx2 => std::arch::is_x86_feature_detected!("avx2"),
            #[cfg(target_arch = "x86_64")]
            SimdKernel::Avx512 => std::arch::is_x86_feature_detected!("avx512f"),
            #[cfg(not(target_arch = "x86_64"))]
            SimdKernel::Sse2 | SimdKernel::Avx2 | SimdKernel::Avx512 => false,
        }
    }

    /// The widest kernel the current machine supports.
    pub fn detect() -> SimdKernel {
        #[cfg(target_arch = "x86_64")]
        {
            if SimdKernel::Avx512.is_supported() {
                SimdKernel::Avx512
            } else if SimdKernel::Avx2.is_supported() {
                SimdKernel::Avx2
            } else {
                SimdKernel::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdKernel::Portable
        }
    }
}

/// Lane width of the portable blocked kernel.
const PORTABLE_LANES: usize = 4;

/// Per-lane accumulator state after the vectorized prefix of a scan.
///
/// `processed` is the prefix length (a multiple of `L`); indices
/// `processed..n` still need the scalar tail of [`finish`].
struct LaneState<const L: usize> {
    sum: [f64; L],
    comp: [f64; L],
    best_energy: [f64; L],
    best_index: [usize; L],
    processed: usize,
}

impl<const L: usize> LaneState<L> {
    fn fresh() -> Self {
        LaneState {
            sum: [0.0; L],
            comp: [0.0; L],
            best_energy: [f64::NEG_INFINITY; L],
            best_index: [0; L],
            processed: 0,
        }
    }
}

/// Merges the per-lane accumulators and finishes the `n mod L` tail
/// serially, producing the same [`Scan`] the scalar kernels feed to
/// [`SinrEvaluator::decide`]. Returns `Err(j)` if a tail station
/// coincides with `p`. Operates on raw SoA columns so the tiled batch
/// executor ([`crate::tile`]) can run it over gathered candidate
/// columns as well as whole-network ones.
fn finish<K: PathLoss, const L: usize>(
    xs: &[f64],
    ys: &[f64],
    powers: &[f64],
    k: K,
    p: Point,
    lanes: LaneState<L>,
) -> Result<Scan, usize> {
    // Lane merge: per-lane sums and their compensation terms feed one
    // scalar Kahan accumulator (value = sum + comp, so adding both terms
    // loses nothing); equal best energies break toward the smaller
    // station index, which restores the scalar first-index tie rule.
    let mut acc = KahanSum::new();
    let mut best = 0usize;
    let mut best_energy = f64::NEG_INFINITY;
    if lanes.processed > 0 {
        for l in 0..L {
            acc.add(lanes.sum[l]);
            acc.add(lanes.comp[l]);
            let (e, i) = (lanes.best_energy[l], lanes.best_index[l]);
            if e > best_energy || (e == best_energy && i < best) {
                best_energy = e;
                best = i;
            }
        }
    }
    for j in lanes.processed..xs.len() {
        let dx = xs[j] - p.x;
        let dy = ys[j] - p.y;
        let d2 = dx * dx + dy * dy;
        if d2 == 0.0 {
            return Err(j);
        }
        let e = k.attenuation(d2) * powers[j];
        acc.add(e);
        // Tail indices all exceed the vectorized prefix's, so strict
        // comparison keeps the earlier station on ties.
        if e > best_energy {
            best_energy = e;
            best = j;
        }
    }
    Ok(Scan {
        total: acc.value(),
        best,
        best_energy,
    })
}

/// Merges the per-lane *sums* (no argmax) and finishes the `n mod L`
/// tail serially, then derives the candidate station's energy directly —
/// the [`candidate_scan`] counterpart of [`finish`]. Returns
/// `(e_candidate, total)`, or `Err(j)` if a tail station coincides with
/// `p`.
fn finish_sum<K: PathLoss, const L: usize>(
    eval: &SinrEvaluator,
    k: K,
    cand: usize,
    p: Point,
    lanes: LaneState<L>,
) -> Result<(f64, f64), usize> {
    let (xs, ys, powers) = eval.soa();
    let mut acc = KahanSum::new();
    if lanes.processed > 0 {
        for l in 0..L {
            acc.add(lanes.sum[l]);
            acc.add(lanes.comp[l]);
        }
    }
    for j in lanes.processed..xs.len() {
        let dx = xs[j] - p.x;
        let dy = ys[j] - p.y;
        let d2 = dx * dx + dy * dy;
        if d2 == 0.0 {
            return Err(j);
        }
        acc.add(k.attenuation(d2) * powers[j]);
    }
    // Recompute the candidate's energy with the exact operation sequence
    // of the scan kernels (`RN(RN(attenuation)·ψ)`), so the value is
    // bit-identical to what a full scan would have recorded for it.
    let dx = xs[cand] - p.x;
    let dy = ys[cand] - p.y;
    let d2 = dx * dx + dy * dy;
    debug_assert!(d2 > 0.0, "coincident candidate must have been caught above");
    Ok((k.attenuation(d2) * powers[cand], acc.value()))
}

/// The portable blocked kernel: `L` independent scalar lanes advanced in
/// lock-step, each with its own Neumaier compensation — semantically the
/// intrinsic kernels with the vector ISA erased. Also the only kernel
/// for general `α` (lane-wise `powf`). With `TRACK_BEST = false` the
/// argmax bookkeeping is compiled out (the [`candidate_scan`] path,
/// where the kd-tree has already named the only candidate).
fn blocked_lanes<K: PathLoss, const L: usize, const TRACK_BEST: bool>(
    xs: &[f64],
    ys: &[f64],
    powers: &[f64],
    k: K,
    p: Point,
) -> Result<LaneState<L>, usize> {
    let n = xs.len();
    let prefix = n - n % L;
    let mut lanes = LaneState::<L>::fresh();
    let mut j = 0;
    while j < prefix {
        for l in 0..L {
            let i = j + l;
            let dx = xs[i] - p.x;
            let dy = ys[i] - p.y;
            let d2 = dx * dx + dy * dy;
            if d2 == 0.0 {
                // Lanes are visited in index order, so this is the first
                // coincident station of the whole scan.
                return Err(i);
            }
            let e = k.attenuation(d2) * powers[i];
            // Neumaier step, branch-for-branch the scalar `KahanSum::add`.
            let t = lanes.sum[l] + e;
            lanes.comp[l] += if lanes.sum[l].abs() >= e.abs() {
                (lanes.sum[l] - t) + e
            } else {
                (e - t) + lanes.sum[l]
            };
            lanes.sum[l] = t;
            if TRACK_BEST && e > lanes.best_energy[l] {
                lanes.best_energy[l] = e;
                lanes.best_index[l] = i;
            }
        }
        j += L;
    }
    lanes.processed = prefix;
    Ok(lanes)
}

/// The full portable scan: blocked lanes, then the shared merge.
fn scan_blocked<K: PathLoss, const L: usize>(
    xs: &[f64],
    ys: &[f64],
    powers: &[f64],
    k: K,
    p: Point,
) -> Result<Scan, usize> {
    let lanes = blocked_lanes::<K, L, true>(xs, ys, powers, k, p)?;
    finish(xs, ys, powers, k, p, lanes)
}

/// One full argmax scan of arbitrary SoA columns on the named kernel —
/// the entry point shared by [`SimdScan`] (whole-network columns) and
/// the tiled batch executor of [`crate::tile`] (gathered candidate
/// columns). Per-station energies are computed with the exact same
/// operation sequence on every kernel (`RN(RN(attenuation)·ψ)`), so the
/// reported `best_energy` is bit-identical across kernels and to the
/// scalar ground truth; only the `total`'s summation *order* (and hence
/// ordinary rounding) differs. Returns `Err(j)` when station `j`
/// coincides with `p` (smallest such index).
///
/// `kernel` must be supported on the current machine (pinned at engine
/// construction); `α ≠ 2` always takes the portable blocked kernel
/// (`powf` has no vector form).
pub(crate) fn scan_slices(
    kernel: SimdKernel,
    alpha: f64,
    xs: &[f64],
    ys: &[f64],
    powers: &[f64],
    p: Point,
) -> Result<Scan, usize> {
    if alpha == 2.0 {
        let k = InverseSquare;
        #[cfg(target_arch = "x86_64")]
        match kernel {
            SimdKernel::Avx512 => {
                // SAFETY: support was verified at kernel selection time
                // (`detect`/`with_kernel`/`is_supported`).
                let lanes = unsafe { x86::scan_avx512::<true>(xs, ys, powers, p) }?;
                return finish(xs, ys, powers, k, p, lanes);
            }
            SimdKernel::Avx2 => {
                // SAFETY: as above.
                let lanes = unsafe { x86::scan_avx2::<true>(xs, ys, powers, p) }?;
                return finish(xs, ys, powers, k, p, lanes);
            }
            SimdKernel::Sse2 => {
                let lanes = x86::scan_sse2::<true>(xs, ys, powers, p)?;
                return finish(xs, ys, powers, k, p, lanes);
            }
            SimdKernel::Portable => {}
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = kernel;
        scan_blocked::<_, PORTABLE_LANES>(xs, ys, powers, k, p)
    } else {
        scan_blocked::<_, PORTABLE_LANES>(xs, ys, powers, GeneralAlpha::new(alpha), p)
    }
}

/// The x86-64 intrinsic kernels (α = 2 only: attenuation is one divide).
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::LaneState;
    use sinr_geometry::Point;
    use std::arch::x86_64::*;

    /// 8-lane AVX-512F scan over the multiple-of-8 prefix.
    ///
    /// The same kernel as [`scan_avx2`] at twice the width, with the
    /// comparisons living in `__mmask8` registers instead of blend
    /// vectors. Returns `Err(j)` when station `j` coincides with `p`
    /// (smallest such index — the lowest set mask bit is the lowest
    /// lane). With `TRACK_BEST = false` the argmax blends are compiled
    /// out. Deliberately FMA-free, like the narrower kernels: every
    /// energy must round exactly as `RN(RN(dx²)+RN(dy²))` then
    /// `RN(RN(1/d²)·ψ)` so prefix, tail and ground truth agree
    /// bit-for-bit per station.
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx512f` at runtime.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn scan_avx512<const TRACK_BEST: bool>(
        xs: &[f64],
        ys: &[f64],
        powers: &[f64],
        p: Point,
    ) -> Result<LaneState<8>, usize> {
        let n = xs.len();
        let prefix = n - n % 8;
        let mut lanes = LaneState::<8>::fresh();
        lanes.processed = prefix;
        unsafe {
            let px = _mm512_set1_pd(p.x);
            let py = _mm512_set1_pd(p.y);
            let zero = _mm512_setzero_pd();
            let one = _mm512_set1_pd(1.0);
            let mut sum = zero;
            let mut comp = zero;
            let mut best_e = _mm512_set1_pd(f64::NEG_INFINITY);
            let mut best_i = zero;
            // `_mm512_set_pd` lists the highest lane first: lane 0 = 0.0.
            let mut idx = _mm512_set_pd(7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.0);
            let step = _mm512_set1_pd(8.0);
            let mut j = 0usize;
            while j < prefix {
                let x = _mm512_loadu_pd(xs.as_ptr().add(j));
                let y = _mm512_loadu_pd(ys.as_ptr().add(j));
                let w = _mm512_loadu_pd(powers.as_ptr().add(j));
                let dx = _mm512_sub_pd(x, px);
                let dy = _mm512_sub_pd(y, py);
                // No FMA: see the function docs.
                let d2 = _mm512_add_pd(_mm512_mul_pd(dx, dx), _mm512_mul_pd(dy, dy));
                let coincident = _mm512_cmp_pd_mask::<_CMP_EQ_OQ>(d2, zero);
                if coincident != 0 {
                    return Err(j + coincident.trailing_zeros() as usize);
                }
                // α = 2 attenuation times power: RN(RN(1/d²)·ψ).
                let e = _mm512_mul_pd(_mm512_div_pd(one, d2), w);
                // Per-lane Neumaier step (the branch becomes a masked
                // blend; `_mm512_abs_pd` keeps us inside AVX512F — the
                // bitwise `_mm512_and_pd` trick would need AVX512DQ).
                let t = _mm512_add_pd(sum, e);
                let sum_bigger =
                    _mm512_cmp_pd_mask::<_CMP_GE_OQ>(_mm512_abs_pd(sum), _mm512_abs_pd(e));
                let delta_sum_big = _mm512_add_pd(_mm512_sub_pd(sum, t), e);
                let delta_e_big = _mm512_add_pd(_mm512_sub_pd(e, t), sum);
                comp = _mm512_add_pd(
                    comp,
                    _mm512_mask_blend_pd(sum_bigger, delta_e_big, delta_sum_big),
                );
                sum = t;
                if TRACK_BEST {
                    // Per-lane first-strictly-greater argmax.
                    let gt = _mm512_cmp_pd_mask::<_CMP_GT_OQ>(e, best_e);
                    best_e = _mm512_mask_blend_pd(gt, best_e, e);
                    best_i = _mm512_mask_blend_pd(gt, best_i, idx);
                    idx = _mm512_add_pd(idx, step);
                }
                j += 8;
            }
            _mm512_storeu_pd(lanes.sum.as_mut_ptr(), sum);
            _mm512_storeu_pd(lanes.comp.as_mut_ptr(), comp);
            _mm512_storeu_pd(lanes.best_energy.as_mut_ptr(), best_e);
            let mut raw_idx = [0.0f64; 8];
            _mm512_storeu_pd(raw_idx.as_mut_ptr(), best_i);
            for (slot, raw) in lanes.best_index.iter_mut().zip(raw_idx) {
                // Indices are exact in f64 (slice lengths < 2⁵³).
                *slot = raw as usize;
            }
        }
        Ok(lanes)
    }

    /// 4-lane AVX2 scan over the multiple-of-4 prefix.
    ///
    /// Returns `Err(j)` when station `j` coincides with `p` (smallest
    /// such index). Lane `l` of the accumulators covers indices
    /// `≡ l (mod 4)` within the prefix. With `TRACK_BEST = false` the
    /// argmax blends are compiled out (the candidate-sum path of
    /// `VoronoiAssisted`, which already knows the only candidate).
    ///
    /// # Safety
    ///
    /// The caller must have verified `avx2` at runtime. (The kernel
    /// deliberately avoids FMA — scalar-identical rounding matters more
    /// than the one fused add; see the `d2` comment below.)
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scan_avx2<const TRACK_BEST: bool>(
        xs: &[f64],
        ys: &[f64],
        powers: &[f64],
        p: Point,
    ) -> Result<LaneState<4>, usize> {
        let n = xs.len();
        let prefix = n - n % 4;
        let mut lanes = LaneState::<4>::fresh();
        lanes.processed = prefix;
        unsafe {
            let px = _mm256_set1_pd(p.x);
            let py = _mm256_set1_pd(p.y);
            let zero = _mm256_setzero_pd();
            let one = _mm256_set1_pd(1.0);
            let abs_mask = _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fff_ffff_ffff_ffff));
            let mut sum = zero;
            let mut comp = zero;
            let mut best_e = _mm256_set1_pd(f64::NEG_INFINITY);
            let mut best_i = zero;
            // `_mm256_set_pd` lists the highest lane first: lane 0 = 0.0.
            let mut idx = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
            let step = _mm256_set1_pd(4.0);
            let mut j = 0usize;
            while j < prefix {
                let x = _mm256_loadu_pd(xs.as_ptr().add(j));
                let y = _mm256_loadu_pd(ys.as_ptr().add(j));
                let w = _mm256_loadu_pd(powers.as_ptr().add(j));
                let dx = _mm256_sub_pd(x, px);
                let dy = _mm256_sub_pd(y, py);
                // No FMA here on purpose: `RN(RN(dx²) + RN(dy²))` must
                // round exactly like the scalar and tail computations, and
                // a fused `dy·dy + RN(dx²)` can differ by 1 ulp.
                let d2 = _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy));
                let coincident = _mm256_movemask_pd(_mm256_cmp_pd::<_CMP_EQ_OQ>(d2, zero)) as u32;
                if coincident != 0 {
                    // Lowest set bit = lowest lane = smallest index.
                    return Err(j + coincident.trailing_zeros() as usize);
                }
                // α = 2 attenuation times power, rounded exactly like the
                // scalar kernels: RN(RN(1/d²)·ψ), not the 1-ulp-different
                // RN(ψ/d²) — prefix, tail and ground truth must agree
                // bit-for-bit on each station's energy.
                let e = _mm256_mul_pd(_mm256_div_pd(one, d2), w);
                // Per-lane Neumaier step (branch becomes a blend).
                let t = _mm256_add_pd(sum, e);
                let sum_bigger = _mm256_cmp_pd::<_CMP_GE_OQ>(
                    _mm256_and_pd(sum, abs_mask),
                    _mm256_and_pd(e, abs_mask),
                );
                let delta_sum_big = _mm256_add_pd(_mm256_sub_pd(sum, t), e);
                let delta_e_big = _mm256_add_pd(_mm256_sub_pd(e, t), sum);
                comp = _mm256_add_pd(
                    comp,
                    _mm256_blendv_pd(delta_e_big, delta_sum_big, sum_bigger),
                );
                sum = t;
                if TRACK_BEST {
                    // Per-lane first-strictly-greater argmax.
                    let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(e, best_e);
                    best_e = _mm256_blendv_pd(best_e, e, gt);
                    best_i = _mm256_blendv_pd(best_i, idx, gt);
                    idx = _mm256_add_pd(idx, step);
                }
                j += 4;
            }
            _mm256_storeu_pd(lanes.sum.as_mut_ptr(), sum);
            _mm256_storeu_pd(lanes.comp.as_mut_ptr(), comp);
            _mm256_storeu_pd(lanes.best_energy.as_mut_ptr(), best_e);
            let mut raw_idx = [0.0f64; 4];
            _mm256_storeu_pd(raw_idx.as_mut_ptr(), best_i);
            for (slot, raw) in lanes.best_index.iter_mut().zip(raw_idx) {
                // Indices are exact in f64 (slice lengths < 2⁵³).
                *slot = raw as usize;
            }
        }
        Ok(lanes)
    }

    /// 2-lane SSE2 scan over the multiple-of-2 prefix — the x86-64
    /// baseline path, no runtime detection needed. Blends are synthesized
    /// from `and`/`andnot`/`or` (`blendv` is SSE4.1). `TRACK_BEST` as in
    /// [`scan_avx2`].
    pub(super) fn scan_sse2<const TRACK_BEST: bool>(
        xs: &[f64],
        ys: &[f64],
        powers: &[f64],
        p: Point,
    ) -> Result<LaneState<2>, usize> {
        #[inline(always)]
        unsafe fn blend(old: __m128d, new: __m128d, mask: __m128d) -> __m128d {
            unsafe { _mm_or_pd(_mm_and_pd(mask, new), _mm_andnot_pd(mask, old)) }
        }
        let n = xs.len();
        let prefix = n - n % 2;
        let mut lanes = LaneState::<2>::fresh();
        lanes.processed = prefix;
        // SAFETY: SSE2 is part of the x86-64 baseline; all loads stay in
        // bounds (`j + 1 < prefix ≤ n`).
        unsafe {
            let px = _mm_set1_pd(p.x);
            let py = _mm_set1_pd(p.y);
            let zero = _mm_setzero_pd();
            let one = _mm_set1_pd(1.0);
            let abs_mask = _mm_castsi128_pd(_mm_set1_epi64x(0x7fff_ffff_ffff_ffff));
            let mut sum = zero;
            let mut comp = zero;
            let mut best_e = _mm_set1_pd(f64::NEG_INFINITY);
            let mut best_i = zero;
            let mut idx = _mm_set_pd(1.0, 0.0);
            let step = _mm_set1_pd(2.0);
            let mut j = 0usize;
            while j < prefix {
                let x = _mm_loadu_pd(xs.as_ptr().add(j));
                let y = _mm_loadu_pd(ys.as_ptr().add(j));
                let w = _mm_loadu_pd(powers.as_ptr().add(j));
                let dx = _mm_sub_pd(x, px);
                let dy = _mm_sub_pd(y, py);
                let d2 = _mm_add_pd(_mm_mul_pd(dx, dx), _mm_mul_pd(dy, dy));
                let coincident = _mm_movemask_pd(_mm_cmpeq_pd(d2, zero)) as u32;
                if coincident != 0 {
                    return Err(j + coincident.trailing_zeros() as usize);
                }
                // Same rounding as the scalar kernels: RN(RN(1/d²)·ψ).
                let e = _mm_mul_pd(_mm_div_pd(one, d2), w);
                let t = _mm_add_pd(sum, e);
                let sum_bigger = _mm_cmpge_pd(_mm_and_pd(sum, abs_mask), _mm_and_pd(e, abs_mask));
                let delta_sum_big = _mm_add_pd(_mm_sub_pd(sum, t), e);
                let delta_e_big = _mm_add_pd(_mm_sub_pd(e, t), sum);
                comp = _mm_add_pd(comp, blend(delta_e_big, delta_sum_big, sum_bigger));
                sum = t;
                if TRACK_BEST {
                    let gt = _mm_cmpgt_pd(e, best_e);
                    best_e = blend(best_e, e, gt);
                    best_i = blend(best_i, idx, gt);
                    idx = _mm_add_pd(idx, step);
                }
                j += 2;
            }
            _mm_storeu_pd(lanes.sum.as_mut_ptr(), sum);
            _mm_storeu_pd(lanes.comp.as_mut_ptr(), comp);
            _mm_storeu_pd(lanes.best_energy.as_mut_ptr(), best_e);
            let mut raw_idx = [0.0f64; 2];
            _mm_storeu_pd(raw_idx.as_mut_ptr(), best_i);
            for (slot, raw) in lanes.best_index.iter_mut().zip(raw_idx) {
                *slot = raw as usize;
            }
        }
        Ok(lanes)
    }
}

/// The explicitly vectorized exact-scan backend.
///
/// Same answers as [`crate::engine::ExactScan`] (exact for every network,
/// any power assignment, any `α`, any `β`; summation rounding may differ
/// only within tolerance of a `SINR = β` boundary), at several stations
/// per instruction on the `α = 2` fast path. The instruction set is
/// detected once at construction — see the [module docs](self) for the
/// feature-detection story and the portable fallback.
#[derive(Debug, Clone)]
pub struct SimdScan {
    eval: SinrEvaluator,
    kernel: SimdKernel,
}

impl SimdScan {
    /// Builds the backend for a network, detecting the widest supported
    /// instruction set (an `O(n)` copy; no query-time detection).
    pub fn new(net: &Network) -> Self {
        SimdScan::from_evaluator(SinrEvaluator::new(net))
    }

    /// Wraps an already-built evaluator, detecting the instruction set.
    pub fn from_evaluator(eval: SinrEvaluator) -> Self {
        SimdScan {
            eval,
            kernel: SimdKernel::detect(),
        }
    }

    /// Wraps an evaluator with an explicitly chosen kernel — for
    /// differential testing of the kernel implementations.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` is not supported on the current machine.
    pub fn with_kernel(eval: SinrEvaluator, kernel: SimdKernel) -> Self {
        assert!(
            kernel.is_supported(),
            "SIMD kernel {} is not supported on this machine",
            kernel.name()
        );
        SimdScan { eval, kernel }
    }

    /// The underlying evaluator.
    pub fn evaluator(&self) -> &SinrEvaluator {
        &self.eval
    }

    /// The instruction set resolved at construction. Networks with
    /// `α ≠ 2` always scan through [`SimdKernel::Portable`] regardless
    /// (general attenuation needs `powf`).
    pub fn kernel(&self) -> SimdKernel {
        self.kernel
    }

    /// One vectorized scan of all stations.
    fn scan(&self, p: Point) -> Result<Scan, usize> {
        let (xs, ys, powers) = self.eval.soa();
        scan_slices(self.kernel, self.eval.alpha(), xs, ys, powers, p)
    }
}

impl QueryEngine for SimdScan {
    fn locate(&self, p: Point) -> Located {
        self.eval.assert_fresh();
        self.eval.decide(self.scan(p))
    }

    fn locate_batch(&self, points: &[Point], out: &mut [Located]) {
        self.eval.assert_fresh();
        let cfg = crate::tile::TileConfig::default();
        if cfg.engages(points.len(), self.eval.len()) {
            // Tiled execution with this engine's pinned kernel driving
            // the candidate scans and its own full scan as the
            // per-point fallback (see `crate::tile` for the
            // bit-identity contract).
            crate::tile::locate_batch_tiled(
                &self.eval,
                self.kernel,
                crate::tile::Select::MaxEnergy,
                points,
                out,
                &cfg,
                |p| self.eval.decide(self.scan(p)),
            );
            return;
        }
        batch_map(points, out, |p| self.eval.decide(self.scan(*p)));
    }

    fn sinr_batch(&self, i: StationId, points: &[Point], out: &mut [f64]) {
        // Reported SINR values need the direct `j ≠ i` interference sum
        // (see `SinrEvaluator::sinr`); the scalar path is already exact.
        self.eval.sinr_batch(i, points, out);
    }

    fn sinr_bounds_cell(
        &self,
        min: Point,
        max: Point,
        parent: Option<&crate::tile::CellCert>,
    ) -> Option<crate::tile::CellCert> {
        // The intrinsics kernels' summation-order differences are
        // inside `TOTAL_MARGIN`, so the generic certificate covers this
        // backend's lane-reassociated scans too.
        Some(self.eval.sinr_bounds_cell(min, max, parent))
    }

    fn locate_in_cell(
        &self,
        cert: &crate::tile::CellCert,
        points: &[Point],
        out: &mut [Option<Located>],
    ) -> bool {
        self.eval.assert_fresh();
        // Candidate-certified decisions (the scalar candidate energies
        // are bit-identical to every kernel's, so the certified argmax
        // matches the vectorized scans); uncertifiable points stay
        // `None` for the caller's tiled batch path.
        crate::tile::locate_in_cell(
            &self.eval,
            crate::tile::Select::MaxEnergy,
            cert,
            points,
            out,
        );
        true
    }

    fn freshness(&self) -> Result<(), LocateError> {
        self.eval.freshness()
    }

    fn reception_probability_batch(
        &self,
        model: &crate::channel::ChannelModel,
        mc: crate::channel::McConfig,
        points: &[Point],
        out: &mut [f64],
    ) -> Result<(), crate::channel::ChannelError> {
        // The pinned kernel drives both the candidate scans and the
        // per-trial serial fallback, so every trial's reception bit is
        // exactly what this engine's `locate` would answer on the
        // gain-scaled network.
        crate::channel::reception_probability_driver(
            &self.eval,
            self.kernel,
            model,
            mc,
            points,
            out,
            |ev, p| {
                let (xs, ys, powers) = ev.soa();
                ev.decide(scan_slices(self.kernel, ev.alpha(), xs, ys, powers, p))
            },
            |pts, located| self.locate_batch(pts, located),
        )
    }

    fn sinr_quantiles_batch(
        &self,
        model: &crate::channel::ChannelModel,
        mc: crate::channel::McConfig,
        i: StationId,
        points: &[Point],
        quantiles: &[f64],
        out: &mut [f64],
    ) -> Result<(), crate::channel::ChannelError> {
        crate::channel::sinr_quantiles_driver(&self.eval, model, mc, i, points, quantiles, out)
    }

    fn revision(&self) -> u64 {
        self.eval.revision()
    }

    fn is_stale(&self) -> bool {
        self.eval.is_stale()
    }

    fn apply(&mut self, delta: &NetworkDelta) -> Result<(), SyncError> {
        // The SoA patch is kernel-independent; the pinned/detected
        // instruction set stays as constructed.
        self.eval.apply(delta)
    }

    fn sync(&mut self, net: &Network) -> Result<(), SyncError> {
        self.eval.sync(net);
        Ok(())
    }

    fn freeze(&mut self) {
        self.eval.freeze();
    }
}

/// Vectorized single-candidate scan: the total energy `E(S, p)` plus the
/// candidate station's own energy, with **no argmax bookkeeping** — the
/// [`crate::engine::VoronoiAssisted`] hot path, where Observation 2.2
/// has already named the only possible transmitter. Runs on the same
/// lane kernels (and the same per-lane Neumaier compensation) as the
/// full scans, selected by the same `kernel` machinery; `α ≠ 2` networks
/// take the portable blocked kernel.
///
/// Returns `(e_candidate, total)`, or `Err(j)` when `p` coincides with
/// station `j` (smallest index).
pub(crate) fn candidate_scan(
    eval: &SinrEvaluator,
    kernel: SimdKernel,
    cand: usize,
    p: Point,
) -> Result<(f64, f64), usize> {
    let (xs, ys, powers) = eval.soa();
    if eval.alpha() == 2.0 {
        let k = InverseSquare;
        #[cfg(target_arch = "x86_64")]
        match kernel {
            SimdKernel::Avx512 => {
                // SAFETY: the kernel was verified at engine build.
                let lanes = unsafe { x86::scan_avx512::<false>(xs, ys, powers, p) }?;
                return finish_sum(eval, k, cand, p, lanes);
            }
            SimdKernel::Avx2 => {
                // SAFETY: the kernel was verified at engine build.
                let lanes = unsafe { x86::scan_avx2::<false>(xs, ys, powers, p) }?;
                return finish_sum(eval, k, cand, p, lanes);
            }
            SimdKernel::Sse2 => {
                let lanes = x86::scan_sse2::<false>(xs, ys, powers, p)?;
                return finish_sum(eval, k, cand, p, lanes);
            }
            SimdKernel::Portable => {}
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = kernel;
        let lanes = blocked_lanes::<_, PORTABLE_LANES, false>(xs, ys, powers, k, p)?;
        finish_sum(eval, k, cand, p, lanes)
    } else {
        let k = GeneralAlpha::new(eval.alpha());
        let lanes = blocked_lanes::<_, PORTABLE_LANES, false>(xs, ys, powers, k, p)?;
        finish_sum(eval, k, cand, p, lanes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sinr;

    fn nets() -> Vec<Network> {
        vec![
            // Uniform, β > 1, no noise; n = 3 exercises the AVX2 pure
            // tail (prefix 0) and the SSE2 1-station tail.
            Network::uniform(
                vec![
                    Point::new(0.0, 0.0),
                    Point::new(4.0, 0.0),
                    Point::new(1.0, 3.0),
                ],
                0.0,
                2.0,
            )
            .unwrap(),
            // Uniform, β < 1, noisy, n = 2.
            Network::uniform(vec![Point::new(-2.0, 0.0), Point::new(2.0, 0.0)], 0.05, 0.4).unwrap(),
            // Non-uniform power, n = 5 (vector prefix + tail on AVX2).
            Network::builder()
                .station_with_power(Point::new(0.0, 0.0), 4.0)
                .station(Point::new(3.0, 0.0))
                .station_with_power(Point::new(0.0, 5.0), 0.5)
                .station_with_power(Point::new(-3.0, -1.0), 1.5)
                .station(Point::new(2.0, -4.0))
                .background_noise(0.01)
                .threshold(1.5)
                .build()
                .unwrap(),
            // α = 4 → portable generic-α kernel.
            Network::builder()
                .station(Point::new(0.0, 0.0))
                .station(Point::new(4.0, 1.0))
                .path_loss(4.0)
                .threshold(2.0)
                .build()
                .unwrap(),
            // Co-located pair plus more: the `d² = 0` vector-mask path.
            Network::uniform(
                vec![
                    Point::ORIGIN,
                    Point::ORIGIN,
                    Point::new(3.0, 0.0),
                    Point::new(-3.0, 1.0),
                ],
                0.0,
                2.0,
            )
            .unwrap(),
            // n = 11: a real vector prefix *and* tail on the 8-lane
            // AVX-512 kernel (the smaller nets are pure tail there).
            Network::uniform(
                (0..11)
                    .map(|i| Point::new(i as f64 * 2.5, ((i * 7) % 5) as f64))
                    .collect(),
                0.01,
                1.8,
            )
            .unwrap(),
        ]
    }

    fn grid_points(half: f64, steps: i32) -> Vec<Point> {
        let mut pts = Vec::new();
        for a in -steps..=steps {
            for b in -steps..=steps {
                pts.push(Point::new(
                    a as f64 * half / steps as f64,
                    b as f64 * half / steps as f64,
                ));
            }
        }
        pts
    }

    fn supported_kernels() -> Vec<SimdKernel> {
        SimdKernel::ALL
            .into_iter()
            .filter(|k| k.is_supported())
            .collect()
    }

    #[test]
    fn detected_kernel_is_supported() {
        let k = SimdKernel::detect();
        assert!(k.is_supported());
        assert!(k.lanes() >= 2);
        assert!(!k.name().is_empty());
    }

    #[test]
    fn every_supported_kernel_matches_scalar_ground_truth() {
        for net in nets() {
            for kernel in supported_kernels() {
                let engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
                assert_eq!(engine.kernel(), kernel);
                for p in grid_points(6.0, 25) {
                    let expected = sinr::heard_at(&net, p);
                    let got = engine.locate(p);
                    assert!(
                        !matches!(got, Located::Uncertain(_)),
                        "SimdScan answered Uncertain"
                    );
                    if got.station() != expected {
                        // Tolerate only genuine boundary rounding.
                        let boundary = net.ids().any(|i| {
                            let s = sinr::sinr(&net, i, p);
                            s.is_finite() && (s - net.beta()).abs() <= 1e-9 * (1.0 + net.beta())
                        });
                        assert!(
                            boundary,
                            "{} kernel disagrees at {p} in {net}: {:?} vs {:?}",
                            kernel.name(),
                            got.station(),
                            expected
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn station_positions_locate_as_reception() {
        for net in nets() {
            for kernel in supported_kernels() {
                let engine = SimdScan::with_kernel(SinrEvaluator::new(&net), kernel);
                for i in net.ids() {
                    match engine.locate(net.position(i)) {
                        Located::Reception(_) => {}
                        other => panic!("station {i} of {net} ({}): {other:?}", kernel.name()),
                    }
                }
            }
        }
    }

    #[test]
    fn batch_equals_serial_exactly() {
        for net in nets() {
            let engine = SimdScan::new(&net);
            let points = grid_points(5.0, 30);
            let mut batch = vec![Located::Silent; points.len()];
            engine.locate_batch(&points, &mut batch);
            for (p, got) in points.iter().zip(&batch) {
                assert_eq!(*got, engine.locate(*p), "batch/serial mismatch at {p}");
            }
        }
    }

    #[test]
    fn sinr_batch_matches_scalar() {
        let net = &nets()[2];
        let engine = SimdScan::new(net);
        let points = grid_points(5.0, 10);
        let mut out = vec![0.0; points.len()];
        for i in net.ids() {
            engine.sinr_batch(i, &points, &mut out);
            for (p, got) in points.iter().zip(&out) {
                let expected = sinr::sinr(net, i, *p);
                if expected.is_infinite() {
                    assert!(got.is_infinite());
                } else {
                    assert!((got - expected).abs() <= 1e-9 * (1.0 + expected.abs()));
                }
            }
        }
    }

    #[test]
    fn kernel_metadata() {
        assert_eq!(SimdKernel::Avx512.lanes(), 8);
        assert_eq!(SimdKernel::Avx2.lanes(), 4);
        assert_eq!(SimdKernel::Sse2.lanes(), 2);
        assert_eq!(SimdKernel::Portable.lanes(), 4);
        assert_eq!(SimdKernel::Avx512.name(), "avx512");
        assert_eq!(SimdKernel::Avx2.name(), "avx2");
        assert_eq!(SimdKernel::Sse2.name(), "sse2");
        assert_eq!(SimdKernel::Portable.name(), "portable");
        assert!(SimdKernel::Portable.is_supported());
        assert_eq!(SimdKernel::ALL.len(), 4);
    }
}
