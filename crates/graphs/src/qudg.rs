//! The Quasi Unit Disk Graph (Q-UDG) of Kuhn, Wattenhofer and Zollinger.
//!
//! Two concentric circles per station: within the inner radius `r`
//! connectivity is *guaranteed*, within the outer radius `R ≥ r` it is
//! *possible* (adversarial), beyond `R` impossible. The paper remarks that
//! its Theorem 2 (fatness of SINR reception zones) "lends support" to this
//! model: a fat zone is sandwiched between two concentric balls, exactly
//! the Q-UDG picture with `R/r` bounded by the fatness parameter.

use sinr_geometry::Point;

/// Adjacency status of a station pair in a Q-UDG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QudgLink {
    /// Distance ≤ inner radius: the link always exists.
    Guaranteed,
    /// Inner radius < distance ≤ outer radius: the link may exist.
    Possible,
    /// Distance > outer radius: the link never exists.
    Absent,
}

/// A Quasi Unit Disk Graph with inner radius `r` and outer radius `R`.
///
/// # Examples
///
/// ```
/// use sinr_graphs::{QuasiUnitDiskGraph, qudg::QudgLink};
/// use sinr_geometry::Point;
///
/// let g = QuasiUnitDiskGraph::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(0.5, 0.0),
///     Point::new(1.5, 0.0),
///     Point::new(9.0, 0.0),
/// ], 1.0, 2.0);
/// assert_eq!(g.link(0, 1), QudgLink::Guaranteed);
/// assert_eq!(g.link(0, 2), QudgLink::Possible);
/// assert_eq!(g.link(0, 3), QudgLink::Absent);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuasiUnitDiskGraph {
    positions: Vec<Point>,
    inner: f64,
    outer: f64,
}

impl QuasiUnitDiskGraph {
    /// Creates a Q-UDG.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < inner ≤ outer < ∞`.
    pub fn new(positions: Vec<Point>, inner: f64, outer: f64) -> Self {
        assert!(
            inner > 0.0 && outer >= inner && outer.is_finite(),
            "need 0 < inner ≤ outer, got {inner}, {outer}"
        );
        QuasiUnitDiskGraph {
            positions,
            inner,
            outer,
        }
    }

    /// Builds the Q-UDG whose two radii sandwich a SINR reception zone
    /// with inscribed radius `delta` and circumradius `big_delta`
    /// (the reading of Theorem 2 suggested by the paper).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < delta ≤ big_delta`.
    pub fn from_zone_radii(positions: Vec<Point>, delta: f64, big_delta: f64) -> Self {
        QuasiUnitDiskGraph::new(positions, delta, big_delta)
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Inner (guaranteed-connectivity) radius.
    pub fn inner_radius(&self) -> f64 {
        self.inner
    }

    /// Outer (possible-connectivity) radius.
    pub fn outer_radius(&self) -> f64 {
        self.outer
    }

    /// The ratio `R/r ≥ 1` (bounded by the fatness parameter when built
    /// from zone radii).
    pub fn radius_ratio(&self) -> f64 {
        self.outer / self.inner
    }

    /// The link status of pair `(i, j)`.
    pub fn link(&self, i: usize, j: usize) -> QudgLink {
        if i == j {
            return QudgLink::Absent;
        }
        let d = self.positions[i].dist(self.positions[j]);
        if d <= self.inner {
            QudgLink::Guaranteed
        } else if d <= self.outer {
            QudgLink::Possible
        } else {
            QudgLink::Absent
        }
    }

    /// Guaranteed neighbours of `i`.
    pub fn guaranteed_neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |j| self.link(i, *j) == QudgLink::Guaranteed)
    }

    /// Possible (but not guaranteed) neighbours of `i`.
    pub fn possible_neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |j| self.link(i, *j) == QudgLink::Possible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g() -> QuasiUnitDiskGraph {
        QuasiUnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.8, 0.0),
                Point::new(1.7, 0.0),
                Point::new(4.0, 0.0),
            ],
            1.0,
            2.0,
        )
    }

    #[test]
    fn link_classification() {
        let g = g();
        assert_eq!(g.link(0, 1), QudgLink::Guaranteed);
        assert_eq!(g.link(0, 2), QudgLink::Possible);
        assert_eq!(g.link(0, 3), QudgLink::Absent);
        assert_eq!(g.link(2, 3), QudgLink::Absent); // 2.3 > 2.0
        assert_eq!(g.link(1, 1), QudgLink::Absent); // no self-link
    }

    #[test]
    fn link_symmetry() {
        let g = g();
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_eq!(g.link(i, j), g.link(j, i));
            }
        }
    }

    #[test]
    fn neighbor_iterators() {
        let g = g();
        assert_eq!(g.guaranteed_neighbors(0).collect::<Vec<_>>(), vec![1]);
        assert_eq!(g.possible_neighbors(0).collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn ratio_and_zone_construction() {
        let g = QuasiUnitDiskGraph::from_zone_radii(vec![Point::ORIGIN], 0.5, 1.5);
        assert!((g.radius_ratio() - 3.0).abs() < 1e-12);
        assert_eq!(g.inner_radius(), 0.5);
        assert_eq!(g.outer_radius(), 1.5);
    }

    #[test]
    fn degenerate_equal_radii_is_udg() {
        let g = QuasiUnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(3.0, 0.0),
            ],
            1.0,
            1.0,
        );
        // No "possible" band: links are guaranteed or absent.
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_ne!(g.link(i, j), QudgLink::Possible);
            }
        }
    }

    #[test]
    #[should_panic]
    fn inverted_radii_panic() {
        let _ = QuasiUnitDiskGraph::new(vec![], 2.0, 1.0);
    }
}
