//! UDG-vs-SINR outcome classification — the quantitative form of the
//! paper's Figures 2–4.
//!
//! The paper narrates two failure modes of graph-based reception:
//!
//! * **false positive** (Figure 2): the UDG diagram says the receiver
//!   hears a station, but the *cumulative* interference of stations just
//!   outside the UDG radius silences it in the SINR model;
//! * **false negative** (Figure 4, steps 2–3): the UDG collision rule
//!   declares a loss, yet the SINR model still delivers the message
//!   because the interferer is far or weak enough.
//!
//! [`classify_at`] evaluates both models at a point; [`compare_on_grid`]
//! aggregates the disagreement statistics over a sampling window.

use crate::protocol::ProtocolModel;
use sinr_core::{Network, StationId};
use sinr_geometry::{BBox, Point};

/// The joint outcome of UDG (protocol-model) and SINR reception at a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Comparison {
    /// Both models agree nobody is heard.
    AgreeSilent,
    /// Both models agree on the same heard station.
    AgreeHeard(StationId),
    /// UDG hears a station but SINR hears nothing — a *false positive* of
    /// the graph model (cumulative interference ignored; Figure 2).
    FalsePositive(StationId),
    /// UDG hears nothing but SINR hears a station — a *false negative* of
    /// the graph model (over-eager collision rule; Figure 4(A)/(B)).
    FalseNegative(StationId),
    /// The models hear *different* stations.
    Different {
        /// Station heard by the UDG / protocol model.
        udg: StationId,
        /// Station heard by the SINR model.
        sinr: StationId,
    },
}

impl Comparison {
    /// True when the two models agree (silent or same station).
    pub fn agrees(&self) -> bool {
        matches!(self, Comparison::AgreeSilent | Comparison::AgreeHeard(_))
    }
}

/// Classifies reception at point `p`: SINR reception per `net` (with its
/// own threshold/noise) versus protocol-model reception with radius
/// `udg.radius()` over the same station set.
///
/// `transmitting[i]` masks the active stations *in both models*; for the
/// SINR side the silent stations are removed from the network
/// (`Network::without_station` semantics).
///
/// # Panics
///
/// Panics when the mask length differs from the station count, fewer than
/// two stations transmit, or the protocol model's positions differ from
/// the network's.
///
/// # Examples
///
/// ```
/// use sinr_core::Network;
/// use sinr_graphs::{classify_at, Comparison, ProtocolModel};
/// use sinr_geometry::Point;
///
/// let positions = vec![Point::new(0.0, 0.0), Point::new(3.0, 0.0)];
/// let net = Network::uniform(positions.clone(), 0.0, 2.0).unwrap();
/// let udg = ProtocolModel::new(positions, 1.0);
/// let c = classify_at(&net, &udg, &[true, true], Point::new(0.4, 0.0));
/// assert!(c.agrees());
/// ```
pub fn classify_at(
    net: &Network,
    udg: &ProtocolModel,
    transmitting: &[bool],
    p: Point,
) -> Comparison {
    assert_eq!(transmitting.len(), net.len(), "mask length mismatch");
    assert_eq!(udg.positions(), net.positions(), "model position mismatch");

    let udg_heard = udg.heard_at(transmitting, p).map(StationId);

    // SINR over the transmitting subset only.
    let sinr_heard = {
        let active: Vec<Point> = net
            .positions()
            .iter()
            .zip(transmitting.iter())
            .filter_map(|(pos, tx)| tx.then_some(*pos))
            .collect();
        assert!(active.len() >= 2, "need at least two transmitting stations");
        let sub = Network::uniform(active, net.noise(), net.beta()).expect("validated inputs");
        sub.heard_at(p).map(|sub_id| {
            // Map the subnetwork index back to the original station id.
            let mut seen = 0usize;
            let mut original = 0usize;
            for (idx, tx) in transmitting.iter().enumerate() {
                if *tx {
                    if seen == sub_id.index() {
                        original = idx;
                        break;
                    }
                    seen += 1;
                }
            }
            StationId(original)
        })
    };

    match (udg_heard, sinr_heard) {
        (None, None) => Comparison::AgreeSilent,
        (Some(u), Some(s)) if u == s => Comparison::AgreeHeard(u),
        (Some(u), Some(s)) => Comparison::Different { udg: u, sinr: s },
        (Some(u), None) => Comparison::FalsePositive(u),
        (None, Some(s)) => Comparison::FalseNegative(s),
    }
}

/// Aggregated disagreement statistics over a sample grid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DisagreementCounts {
    /// Points where both models were silent.
    pub agree_silent: usize,
    /// Points where both models heard the same station.
    pub agree_heard: usize,
    /// Graph-model false positives (UDG hears, SINR silent).
    pub false_positive: usize,
    /// Graph-model false negatives (UDG silent, SINR hears).
    pub false_negative: usize,
    /// Points where the models heard different stations.
    pub different: usize,
}

impl DisagreementCounts {
    /// Total number of sampled points.
    pub fn total(&self) -> usize {
        self.agree_silent
            + self.agree_heard
            + self.false_positive
            + self.false_negative
            + self.different
    }

    /// Fraction of sampled points where the models disagree.
    pub fn disagreement_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.false_positive + self.false_negative + self.different) as f64 / t as f64
        }
    }

    /// Records one comparison outcome.
    pub fn record(&mut self, c: Comparison) {
        match c {
            Comparison::AgreeSilent => self.agree_silent += 1,
            Comparison::AgreeHeard(_) => self.agree_heard += 1,
            Comparison::FalsePositive(_) => self.false_positive += 1,
            Comparison::FalseNegative(_) => self.false_negative += 1,
            Comparison::Different { .. } => self.different += 1,
        }
    }
}

impl std::fmt::Display for DisagreementCounts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "agree(silent)={} agree(heard)={} false+={} false-={} different={} (disagreement {:.2}%)",
            self.agree_silent,
            self.agree_heard,
            self.false_positive,
            self.false_negative,
            self.different,
            100.0 * self.disagreement_rate()
        )
    }
}

/// Compares the two models on a `res × res` grid over `window`.
pub fn compare_on_grid(
    net: &Network,
    udg: &ProtocolModel,
    transmitting: &[bool],
    window: &BBox,
    res: usize,
) -> DisagreementCounts {
    assert!(res >= 2);
    let mut counts = DisagreementCounts::default();
    for j in 0..res {
        for i in 0..res {
            let p = window.at_fraction(i as f64 / (res - 1) as f64, j as f64 / (res - 1) as f64);
            // Skip exact station positions (SINR undefined there).
            if net.positions().contains(&p) {
                continue;
            }
            counts.record(classify_at(net, udg, transmitting, p));
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 2's cumulative-interference scenario: s1 close to p, three
    /// more stations just outside the UDG radius of p whose combined
    /// interference kills SINR reception.
    fn figure2_like() -> (Network, ProtocolModel, Point) {
        let p = Point::new(0.0, 0.0);
        let positions = vec![
            Point::new(0.8, 0.0),  // s1: inside the UDG ball of p
            Point::new(-1.3, 0.0), // s2..s4: just outside radius 1.0
            Point::new(0.0, 1.3),
            Point::new(0.0, -1.3),
        ];
        let net = Network::uniform(positions.clone(), 0.0, 1.2).unwrap();
        let udg = ProtocolModel::new(positions, 1.0);
        (net, udg, p)
    }

    #[test]
    fn figure2_false_positive() {
        let (net, udg, p) = figure2_like();
        let tx = vec![true; 4];
        // UDG: only s1 covers p ⇒ heard. SINR: cumulative interference of
        // s2..s4 ⇒ silent.
        assert_eq!(udg.heard_at(&tx, p), Some(0));
        assert_eq!(net.heard_at(p), None);
        assert_eq!(
            classify_at(&net, &udg, &tx, p),
            Comparison::FalsePositive(StationId(0))
        );
    }

    #[test]
    fn figure4_false_negative() {
        // Two stations both covering p in UDG ⇒ collision ⇒ silent; but one
        // is much closer, so SINR still delivers.
        let p = Point::new(0.0, 0.0);
        let positions = vec![Point::new(0.2, 0.0), Point::new(0.9, 0.0)];
        let net = Network::uniform(positions.clone(), 0.0, 1.5).unwrap();
        let udg = ProtocolModel::new(positions, 1.0);
        let tx = vec![true, true];
        assert_eq!(udg.heard_at(&tx, p), None);
        assert_eq!(net.heard_at(p), Some(StationId(0)));
        assert_eq!(
            classify_at(&net, &udg, &tx, p),
            Comparison::FalseNegative(StationId(0))
        );
    }

    #[test]
    fn agreement_when_isolated() {
        let positions = vec![Point::new(0.0, 0.0), Point::new(100.0, 0.0)];
        let net = Network::uniform(positions.clone(), 0.01, 2.0).unwrap();
        let udg = ProtocolModel::new(positions, 1.0);
        let tx = vec![true, true];
        let near = Point::new(0.3, 0.0);
        assert_eq!(
            classify_at(&net, &udg, &tx, near),
            Comparison::AgreeHeard(StationId(0))
        );
        let far = Point::new(50.0, 50.0);
        assert_eq!(classify_at(&net, &udg, &tx, far), Comparison::AgreeSilent);
    }

    #[test]
    fn masking_matches_subnetwork() {
        // Silencing a station changes the SINR side exactly like removing it.
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(-2.0, 0.0),
        ];
        let net = Network::uniform(positions.clone(), 0.0, 1.5).unwrap();
        let udg = ProtocolModel::new(positions.clone(), 1.0);
        let p = Point::new(0.5, 0.2);
        let masked = classify_at(&net, &udg, &[true, true, false], p);
        let sub = Network::uniform(vec![positions[0], positions[1]], 0.0, 1.5).unwrap();
        let sub_heard = sub.heard_at(p).map(|i| StationId(i.index()));
        match masked {
            Comparison::AgreeHeard(s) | Comparison::FalseNegative(s) => {
                assert_eq!(Some(s), sub_heard)
            }
            Comparison::AgreeSilent | Comparison::FalsePositive(_) => assert_eq!(sub_heard, None),
            Comparison::Different { sinr, .. } => assert_eq!(Some(sinr), sub_heard),
        }
    }

    #[test]
    fn grid_counts_sum() {
        let (net, udg, _) = figure2_like();
        let window = BBox::centered_square(3.0);
        let counts = compare_on_grid(&net, &udg, &[true; 4], &window, 21);
        assert_eq!(counts.total(), 21 * 21);
        assert!(
            counts.false_positive > 0,
            "Figure 2 scenario must show false positives"
        );
        assert!(counts.disagreement_rate() > 0.0);
        assert!(counts.disagreement_rate() < 1.0);
    }

    #[test]
    fn comparison_agrees_helper() {
        assert!(Comparison::AgreeSilent.agrees());
        assert!(Comparison::AgreeHeard(StationId(0)).agrees());
        assert!(!Comparison::FalsePositive(StationId(0)).agrees());
        assert!(!Comparison::FalseNegative(StationId(0)).agrees());
        assert!(!Comparison::Different {
            udg: StationId(0),
            sinr: StationId(1)
        }
        .agrees());
    }
}
