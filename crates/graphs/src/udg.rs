//! The unit disk graph (UDG) model.
//!
//! Stations are points in the plane; two stations are adjacent iff their
//! distance is at most the (unit) radius. This is "the model of choice for
//! many protocol designers" (paper, Section 1.1): it abstracts away
//! interference entirely, which is precisely what Figures 2–4 criticise.

use sinr_geometry::Point;

/// A unit disk graph over a set of station positions.
///
/// The radius is configurable (the "unit" is a modelling choice); the
/// classical UDG uses `radius = 1`.
///
/// # Examples
///
/// ```
/// use sinr_graphs::UnitDiskGraph;
/// use sinr_geometry::Point;
///
/// let g = UnitDiskGraph::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(0.8, 0.0),
///     Point::new(5.0, 0.0),
/// ], 1.0);
/// assert!(g.adjacent(0, 1));
/// assert!(!g.adjacent(0, 2));
/// assert_eq!(g.degree(0), 1);
/// assert_eq!(g.edges().count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct UnitDiskGraph {
    positions: Vec<Point>,
    radius: f64,
}

impl UnitDiskGraph {
    /// Creates a UDG with the given positions and adjacency radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn new(positions: Vec<Point>, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "UDG radius must be positive, got {radius}"
        );
        UnitDiskGraph { positions, radius }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The adjacency radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The vertex positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// The position of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn position(&self, i: usize) -> Point {
        self.positions[i]
    }

    /// Adjacency: `dist(sᵢ, sⱼ) ≤ radius` (self-loops excluded).
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        i != j && self.positions[i].dist(self.positions[j]) <= self.radius
    }

    /// Whether a point `p` is covered by vertex `i`'s disk.
    pub fn covers(&self, i: usize, p: Point) -> bool {
        self.positions[i].dist(p) <= self.radius
    }

    /// Iterator over the neighbours of vertex `i`.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |j| self.adjacent(i, *j))
    }

    /// The degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.neighbors(i).count()
    }

    /// Iterator over undirected edges `(i, j)` with `i < j`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.len())
            .flat_map(move |i| ((i + 1)..self.len()).map(move |j| (i, j)))
            .filter(move |(i, j)| self.adjacent(*i, *j))
    }

    /// Connected components as vertex lists (BFS).
    pub fn components(&self) -> Vec<Vec<usize>> {
        let n = self.len();
        let mut seen = vec![false; n];
        let mut out = Vec::new();
        for start in 0..n {
            if seen[start] {
                continue;
            }
            let mut comp = vec![start];
            seen[start] = true;
            let mut queue = std::collections::VecDeque::from([start]);
            while let Some(u) = queue.pop_front() {
                for v in self.neighbors(u) {
                    if !seen[v] {
                        seen[v] = true;
                        comp.push(v);
                        queue.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            out.push(comp);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain() -> UnitDiskGraph {
        UnitDiskGraph::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(1.8, 0.0),
                Point::new(10.0, 0.0),
            ],
            1.0,
        )
    }

    #[test]
    fn adjacency_and_degrees() {
        let g = chain();
        assert!(g.adjacent(0, 1));
        assert!(g.adjacent(1, 2));
        assert!(!g.adjacent(0, 2));
        assert!(!g.adjacent(0, 0)); // no self-loops
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = chain();
        for i in 0..g.len() {
            for j in 0..g.len() {
                assert_eq!(g.adjacent(i, j), g.adjacent(j, i));
            }
        }
    }

    #[test]
    fn boundary_distance_counts() {
        // dist exactly equal to radius ⇒ adjacent (closed disk).
        let g = UnitDiskGraph::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1.0);
        assert!(g.adjacent(0, 1));
    }

    #[test]
    fn edges_enumeration() {
        let g = chain();
        let edges: Vec<(usize, usize)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn components_partition() {
        let g = chain();
        let comps = g.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![0, 1, 2]);
        assert_eq!(comps[1], vec![3]);
    }

    #[test]
    fn coverage() {
        let g = chain();
        assert!(g.covers(0, Point::new(0.5, 0.5)));
        assert!(!g.covers(0, Point::new(1.5, 0.0)));
    }

    #[test]
    #[should_panic]
    fn bad_radius_panics() {
        let _ = UnitDiskGraph::new(vec![], 0.0);
    }
}
