//! The two-graph (connectivity + interference) formulation.
//!
//! "More elaborate graph-based models may employ two separate graphs, a
//! connectivity graph `Gc` and an interference graph `Gi`, such that a
//! station `s` will successfully receive a message transmitted by `s′` iff
//! `s` and `s′` are neighbors in `Gc` and `s` does not have a concurrently
//! transmitting neighbor in `Gi`." (paper, Section 1.2.) A common special
//! case augments `Gi` with all 2-hop neighbours of `Gc`.

use crate::udg::UnitDiskGraph;
use sinr_geometry::Point;

/// A connectivity graph paired with a (typically larger) interference
/// graph over the same vertex set.
///
/// # Examples
///
/// ```
/// use sinr_graphs::InterferencePair;
/// use sinr_geometry::Point;
///
/// // Connectivity radius 1, interference radius 2.
/// let pair = InterferencePair::from_radii(vec![
///     Point::new(0.0, 0.0),
///     Point::new(0.9, 0.0),
///     Point::new(2.5, 0.0),
/// ], 1.0, 2.0);
/// // s1 hears s0 when s2 is silent…
/// assert!(pair.receives(&[true, false, false], 1, 0));
/// // …but not when s2 (an interference-graph neighbour) transmits.
/// assert!(!pair.receives(&[true, false, true], 1, 0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct InterferencePair {
    connectivity: UnitDiskGraph,
    interference: UnitDiskGraph,
}

impl InterferencePair {
    /// Builds the pair from two disk radii over the same positions
    /// (`r_interference ≥ r_connectivity`).
    ///
    /// # Panics
    ///
    /// Panics if the interference radius is smaller than the connectivity
    /// radius.
    pub fn from_radii(positions: Vec<Point>, r_connectivity: f64, r_interference: f64) -> Self {
        assert!(
            r_interference >= r_connectivity,
            "interference radius must dominate connectivity radius"
        );
        InterferencePair {
            connectivity: UnitDiskGraph::new(positions.clone(), r_connectivity),
            interference: UnitDiskGraph::new(positions, r_interference),
        }
    }

    /// Builds the classical special case: `Gi = Gc` augmented with all
    /// 2-hop `Gc` neighbours — approximated geometrically by doubling the
    /// radius (a 2-hop path of unit edges spans distance at most 2).
    pub fn two_hop(positions: Vec<Point>, radius: f64) -> Self {
        InterferencePair::from_radii(positions, radius, 2.0 * radius)
    }

    /// The connectivity graph `Gc`.
    pub fn connectivity(&self) -> &UnitDiskGraph {
        &self.connectivity
    }

    /// The interference graph `Gi`.
    pub fn interference(&self) -> &UnitDiskGraph {
        &self.interference
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.connectivity.len()
    }

    /// True when there are no stations.
    pub fn is_empty(&self) -> bool {
        self.connectivity.is_empty()
    }

    /// Does station `receiver` successfully receive `sender`'s message,
    /// given the transmit mask? (`sender` must be transmitting; the
    /// receiver must be a `Gc` neighbour of the sender and must have no
    /// *other* transmitting `Gi` neighbour.)
    ///
    /// # Panics
    ///
    /// Panics on a transmit-mask length mismatch.
    pub fn receives(&self, transmitting: &[bool], receiver: usize, sender: usize) -> bool {
        assert_eq!(
            transmitting.len(),
            self.len(),
            "transmit mask length mismatch"
        );
        if !transmitting[sender] || receiver == sender {
            return false;
        }
        if !self.connectivity.adjacent(receiver, sender) {
            return false;
        }
        !(0..self.len()).any(|j| {
            j != sender
                && j != receiver
                && transmitting[j]
                && self.interference.adjacent(receiver, j)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_reception_and_interference() {
        let pair = InterferencePair::from_radii(
            vec![
                Point::new(0.0, 0.0),
                Point::new(0.9, 0.0),
                Point::new(2.5, 0.0),
            ],
            1.0,
            2.0,
        );
        assert!(pair.receives(&[true, false, false], 1, 0));
        // The far station is outside Gc but inside Gi of the receiver.
        assert!(!pair.connectivity().adjacent(1, 2));
        assert!(pair.interference().adjacent(1, 2));
        assert!(!pair.receives(&[true, false, true], 1, 0));
    }

    #[test]
    fn silent_sender_not_received() {
        let pair = InterferencePair::two_hop(vec![Point::new(0.0, 0.0), Point::new(0.5, 0.0)], 1.0);
        assert!(!pair.receives(&[false, false], 1, 0));
        assert!(!pair.receives(&[true, false], 0, 0)); // self
    }

    #[test]
    fn two_hop_doubles_radius() {
        let pair = InterferencePair::two_hop(vec![Point::new(0.0, 0.0), Point::new(1.5, 0.0)], 1.0);
        assert_eq!(pair.interference().radius(), 2.0);
        assert!(!pair.connectivity().adjacent(0, 1));
        assert!(pair.interference().adjacent(0, 1));
    }

    #[test]
    fn out_of_range_never_received() {
        let pair = InterferencePair::from_radii(
            vec![Point::new(0.0, 0.0), Point::new(5.0, 0.0)],
            1.0,
            2.0,
        );
        assert!(!pair.receives(&[true, false], 1, 0));
    }

    #[test]
    #[should_panic]
    fn inverted_radii_panic() {
        let _ = InterferencePair::from_radii(vec![], 2.0, 1.0);
    }
}
