//! The protocol model: graph-based reception with the collision rule.
//!
//! The paper (Section 1.1): "a station s will successfully receive a
//! message transmitted by a station s′ if and only if s and s′ are
//! neighbors in G and s does not have a concurrently transmitting neighbor
//! in G". For arbitrary receiver *points* (the figures place a receiver
//! `p` that is not itself a station), the same rule applies with the
//! point's radius-`r` ball as its neighbourhood — this is exactly the
//! "UDG diagram" drawn in Figures 2–4.

use sinr_geometry::Point;

/// Protocol-model (UDG-diagram) reception semantics over a set of station
/// positions with a common radius.
///
/// # Examples
///
/// ```
/// use sinr_graphs::ProtocolModel;
/// use sinr_geometry::Point;
///
/// let m = ProtocolModel::new(vec![
///     Point::new(0.0, 0.0),
///     Point::new(1.6, 0.0),
/// ], 1.0);
/// let p = Point::new(0.5, 0.0); // covered by s0 only
/// let all = vec![true, true];
/// assert_eq!(m.heard_at(&all, p), Some(0));
/// // A point covered by both transmitters suffers a collision:
/// let q = Point::new(0.8, 0.0);
/// assert_eq!(m.heard_at(&all, q), None);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolModel {
    positions: Vec<Point>,
    radius: f64,
}

impl ProtocolModel {
    /// Creates a protocol model with the given station positions and
    /// reception radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive and finite.
    pub fn new(positions: Vec<Point>, radius: f64) -> Self {
        assert!(
            radius > 0.0 && radius.is_finite(),
            "radius must be positive, got {radius}"
        );
        ProtocolModel { positions, radius }
    }

    /// Number of stations.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when there are no stations.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The reception radius.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The station positions.
    pub fn positions(&self) -> &[Point] {
        &self.positions
    }

    /// Is station `i` (which must be transmitting) heard at point `p`,
    /// given the set of concurrently transmitting stations?
    ///
    /// Rule: `p` is within radius of `sᵢ`, and *no other transmitting
    /// station* is within radius of `p`.
    ///
    /// # Panics
    ///
    /// Panics if `transmitting.len()` differs from the station count or if
    /// `i` is out of range.
    pub fn is_heard(&self, transmitting: &[bool], i: usize, p: Point) -> bool {
        assert_eq!(
            transmitting.len(),
            self.len(),
            "transmit mask length mismatch"
        );
        if !transmitting[i] {
            return false;
        }
        if self.positions[i].dist(p) > self.radius {
            return false;
        }
        !self
            .positions
            .iter()
            .enumerate()
            .any(|(j, s)| j != i && transmitting[j] && s.dist(p) <= self.radius)
    }

    /// The station heard at `p` under the collision rule, if any.
    ///
    /// At most one station can satisfy the rule (two covering transmitters
    /// collide), so the answer is unique by construction.
    pub fn heard_at(&self, transmitting: &[bool], p: Point) -> Option<usize> {
        assert_eq!(
            transmitting.len(),
            self.len(),
            "transmit mask length mismatch"
        );
        let mut covering = (0..self.len())
            .filter(|&j| transmitting[j] && self.positions[j].dist(p) <= self.radius);
        let first = covering.next()?;
        if covering.next().is_some() {
            None // collision
        } else {
            Some(first)
        }
    }

    /// The "reception zone" of station `i` in the UDG diagram, evaluated
    /// pointwise: covered by `sᵢ` and by no other transmitter.
    /// (Provided for symmetry with the SINR zone API.)
    pub fn zone_contains(&self, transmitting: &[bool], i: usize, p: Point) -> bool {
        self.is_heard(transmitting, i, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ProtocolModel {
        ProtocolModel::new(
            vec![
                Point::new(0.0, 0.0),
                Point::new(3.0, 0.0),
                Point::new(1.5, 2.0),
            ],
            1.0,
        )
    }

    #[test]
    fn lone_transmitter_heard_in_disk() {
        let m = model();
        let tx = vec![true, false, false];
        assert!(m.is_heard(&tx, 0, Point::new(0.5, 0.0)));
        assert!(m.is_heard(&tx, 0, Point::new(1.0, 0.0))); // boundary inclusive
        assert!(!m.is_heard(&tx, 0, Point::new(1.1, 0.0)));
        // Silent stations are never heard.
        assert!(!m.is_heard(&tx, 1, Point::new(3.0, 0.0)));
    }

    #[test]
    fn collisions_silence_overlap() {
        let m = ProtocolModel::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 0.0)], 1.0);
        let tx = vec![true, true];
        // Overlap region: both disks cover (0.5, 0) ⇒ collision.
        assert_eq!(m.heard_at(&tx, Point::new(0.5, 0.0)), None);
        assert!(!m.is_heard(&tx, 0, Point::new(0.5, 0.0)));
        // Non-overlap parts still receive.
        assert_eq!(m.heard_at(&tx, Point::new(-0.5, 0.0)), Some(0));
        assert_eq!(m.heard_at(&tx, Point::new(1.5, 0.0)), Some(1));
    }

    #[test]
    fn heard_at_none_outside_all() {
        let m = model();
        let tx = vec![true, true, true];
        assert_eq!(m.heard_at(&tx, Point::new(10.0, 10.0)), None);
    }

    #[test]
    fn uniqueness_of_heard_station() {
        let m = model();
        let tx = vec![true, true, true];
        for gx in -10..25 {
            for gy in -10..25 {
                let p = Point::new(gx as f64 * 0.2, gy as f64 * 0.2);
                let direct = (0..3).filter(|&i| m.is_heard(&tx, i, p)).count();
                assert!(direct <= 1);
                match m.heard_at(&tx, p) {
                    Some(i) => assert!(m.is_heard(&tx, i, p)),
                    None => assert_eq!(direct, 0),
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn mask_length_mismatch_panics() {
        let m = model();
        let _ = m.heard_at(&[true, true], Point::ORIGIN);
    }
}
